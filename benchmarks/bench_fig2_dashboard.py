"""Figure 2: the perfSONAR mesh dashboard.

The paper's Figure 2 shows "regular perfSONAR monitoring of the ESnet
infrastructure" — a grid of site pairs where colour denotes the degree of
throughput and each square is halved to show the rate per direction.

We run the mesh over the library's reference national backbone
(:func:`repro.core.wan.national_backbone` — eight sites, redundant 100G
hub ring), degrade one site's access span, and regenerate the dashboard.
Shape checks: the grid is complete, healthy pairs band 'good', the pairs
crossing the degraded span band below 'good', and the cells are
direction-resolved.
"""

from __future__ import annotations

from repro.analysis.report import ExperimentRecord
from repro.netsim import Simulator
from repro.perfsonar import (
    Dashboard,
    MeasurementArchive,
    MeshConfig,
    MeshSchedule,
    RateBand,
)
from repro.core.wan import national_backbone
from repro.units import Gbps, minutes, seconds

SITES = ["lbl", "anl", "ornl", "bnl", "slac"]


def run_dashboard():
    topo = national_backbone()
    sim = Simulator(seed=2)
    archive = MeasurementArchive()
    mesh = MeshSchedule(topo, SITES, sim, archive,
                        config=MeshConfig(owamp_interval=minutes(2),
                                          bwctl_interval=minutes(20),
                                          bwctl_duration=seconds(10)))
    mesh.start()
    sim.run_until(minutes(30).s)
    # Degrade the ORNL access span (a §3.3 soft failure) and re-test.
    topo.link_between("ornl", "hub-south").degrade(
        loss_probability=1 / 5000)
    mesh.run_bwctl_round()
    dash = Dashboard(archive, SITES, expected_rate=Gbps(10),
                     good_fraction=0.5, bad_fraction=0.05)
    return dash


def test_figure2_dashboard(benchmark):
    from _common import assert_record, emit

    dash = benchmark.pedantic(run_dashboard, rounds=1, iterations=1)
    emit("fig2_dashboard",
         "Figure 2 — perfSONAR mesh dashboard (ornl span degraded):\n\n"
         + dash.render_text() + "\n\nCSV export:\n" + dash.render_csv())

    grid = dash.grid()
    cells = [c for row in grid for c in row if c is not None]
    problems = dash.problem_pairs()

    record = ExperimentRecord(
        "Figure 2",
        "a complete per-pair bidirectional grid; healthy paths colour "
        "'good', a degraded path shows immediately as a low-throughput "
        "cell",
        f"{len(cells)} directed cells; {len(problems)} problem pairs, "
        f"all involving ornl",
    )
    record.add_check("grid covers every ordered pair with data",
                     lambda: len(cells) == len(SITES) * (len(SITES) - 1)
                     and all(c.forward_band is not RateBand.NO_DATA
                             for c in cells))
    record.add_check("at least one pair flagged below 'good'",
                     lambda: len(problems) > 0)
    record.add_check("every problem pair crosses the degraded site",
                     lambda: all("ornl" in (src, dst)
                                 for src, dst, _ in problems))
    record.add_check("cells are direction-resolved (two glyphs per cell)",
                     lambda: all(len(c.glyphs) == 2 for c in cells))
    record.add_check("healthy pairs band 'good'",
                     lambda: any(
                         c.forward_band is RateBand.GOOD for c in cells
                         if "ornl" not in (c.row, c.col)))
    assert_record(record)

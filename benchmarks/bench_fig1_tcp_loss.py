"""Figure 1: TCP throughput vs round-trip time under packet loss.

The paper's Figure 1 plots, for 10 Gbps hosts with 9 KB MTUs:

* the Mathis-equation prediction at the §2 loss rate (1/22000);
* measured TCP-Reno and TCP-Hamilton (H-TCP) across ESnet at that loss;
* the loss-free throughput as the topmost (purple) line.

We regenerate all four series with the fluid TCP model over a simulated
10 Gbps path, sweeping RTT from ~1 ms (metro) to 100 ms (trans-
continental), and check the figure's shape:

* loss-free stays at ~line rate at every RTT;
* lossy curves fall roughly as 1/RTT (Mathis);
* H-TCP sits above Reno at high RTT but both sit far below loss-free.
"""

from __future__ import annotations

import numpy as np

from repro.analysis import ResultTable, ascii_chart
from repro.analysis.report import ExperimentRecord
from repro.analysis.sweep import sweep
from repro.netsim import Link, Topology
from repro.tcp import HTcp, Reno, TcpConnection
from repro.tcp.mathis import mathis_throughput_array
from repro.units import Gbps, MB, bytes_, ms, seconds

from _common import assert_record, emit, quick, sweep_kwargs

LOSS_RATE = 1.0 / 22_000.0
RTTS_MS = quick((1, 2, 5, 10, 20, 40, 60, 80, 100), (1, 10, 100))
SEEDS = quick((1, 2, 3), (1,))
MAX_ROUNDS = quick(200_000, 20_000)

ALGORITHMS = {"reno": Reno, "htcp": HTcp}


def path_profile(rtt_ms: float, loss: float):
    topo = Topology("fig1")
    topo.add_host("a", nic_rate=Gbps(10))
    topo.add_host("b", nic_rate=Gbps(10))
    topo.connect("a", "b", Link(rate=Gbps(10), delay=ms(rtt_ms / 2),
                                mtu=bytes_(9000), loss_probability=loss))
    profile = topo.profile_between("a", "b")
    from dataclasses import replace
    # Figure 1's hosts are tuned: windows big enough for every RTT swept.
    return replace(profile,
                   flow=profile.flow.with_(max_receive_window=MB(512)))


def measure(algorithm_cls, rtt_ms: float, loss: float, seed: int) -> float:
    """Mean throughput (bps) of a 30 s test at the given working point."""
    profile = path_profile(rtt_ms, loss)
    rng = np.random.default_rng(seed) if loss > 0 else None
    conn = TcpConnection(profile, algorithm=algorithm_cls(), rng=rng)
    return conn.measure(seconds(30),
                        max_rounds=MAX_ROUNDS).mean_throughput.bps


def measure_point(algorithm: str, rtt_ms: float, loss: float,
                  rep: int) -> float:
    """Grid-point wrapper for :func:`sweep` (module-level: picklable)."""
    return measure(ALGORITHMS[algorithm], rtt_ms, loss, rep)


def generate_figure():
    """Regenerate the four Figure 1 series through the sweep engine.

    The measured curves fan out over ``REPRO_WORKERS`` processes and
    reuse ``REPRO_CACHE`` entries when set — with results identical to
    a serial, uncached run (see docs/execution.md).
    """
    mss = path_profile(10, 0).flow.mss
    rtts_s = np.array(RTTS_MS) / 1e3
    mathis = mathis_throughput_array(mss, rtts_s, LOSS_RATE)
    lossfree_result = sweep(
        measure_point,
        {"algorithm": ["htcp"], "rtt_ms": list(RTTS_MS),
         "loss": [0.0], "rep": [0]},
        **sweep_kwargs())
    lossfree = np.array(lossfree_result.values())
    lossy = sweep(
        measure_point,
        {"algorithm": ["reno", "htcp"], "rtt_ms": list(RTTS_MS),
         "loss": [LOSS_RATE], "rep": list(SEEDS)},
        **sweep_kwargs())
    by_point = {}
    for record in lossy.records:
        key = (record.params["algorithm"], record.params["rtt_ms"])
        by_point.setdefault(key, []).append(record.value)
    reno = np.array([np.mean(by_point[("reno", r)]) for r in RTTS_MS])
    htcp = np.array([np.mean(by_point[("htcp", r)]) for r in RTTS_MS])
    return mathis, lossfree, reno, htcp


def render(mathis, lossfree, reno, htcp) -> str:
    table = ResultTable(
        "Figure 1 — TCP throughput vs RTT, 10 Gbps hosts, 9 KB MTU, "
        f"loss 1/22000 ({LOSS_RATE:.4%})",
        ["rtt (ms)", "loss-free (Gbps)", "mathis bound (Gbps)",
         "reno measured (Gbps)", "htcp measured (Gbps)"],
    )
    for i, rtt in enumerate(RTTS_MS):
        table.add_row([rtt, lossfree[i] / 1e9, mathis[i] / 1e9,
                       reno[i] / 1e9, htcp[i] / 1e9])
    x = np.array(RTTS_MS, dtype=float)
    chart = ascii_chart(
        [("loss-free", x, lossfree),
         ("mathis", x, mathis),
         ("reno", x, reno),
         ("htcp", x, htcp)],
        title="Figure 1 (log y): throughput vs RTT",
        logy=True, xlabel="rtt ms", ylabel="bps",
    )
    return table.render_text() + "\n\n" + chart


def test_figure1(benchmark):
    mathis, lossfree, reno, htcp = benchmark.pedantic(
        generate_figure, rounds=1, iterations=1)
    emit("fig1_tcp_loss", render(mathis, lossfree, reno, htcp))

    record = ExperimentRecord(
        "Figure 1",
        "loss-free TCP rides the top of the chart at all RTTs; with "
        "1/22000 loss both Reno and H-TCP collapse with RTT, H-TCP above "
        "Reno",
        f"loss-free {lossfree.min() / 1e9:.1f}-{lossfree.max() / 1e9:.1f} "
        f"Gbps; at 100 ms: reno {reno[-1] / 1e6:.0f} Mbps, "
        f"htcp {htcp[-1] / 1e6:.0f} Mbps, mathis {mathis[-1] / 1e6:.0f} Mbps",
    )
    record.add_check(
        "loss-free >= 8 Gbps at every RTT (topmost line)",
        lambda: bool((lossfree >= 8e9).all()))
    record.add_check(
        "lossy throughput decreases monotonically with RTT (reno)",
        lambda: bool((np.diff(reno) < 0).all()))
    record.add_check(
        "H-TCP >= Reno at every RTT >= 10 ms",
        lambda: bool((htcp[3:] >= reno[3:]).all()))
    record.add_check(
        "at 100 ms, loss costs >= 10x vs loss-free (both algorithms)",
        lambda: bool(lossfree[-1] > 10 * reno[-1]
                     and lossfree[-1] > 5 * htcp[-1]))
    record.add_check(
        "measured Reno within 4x of the Mathis bound at high RTT "
        "(the paper's measured curves also sit above the C=1 theory line)",
        lambda: bool(np.all(
            (reno[4:] / mathis[4:] > 1 / 4) & (reno[4:] / mathis[4:] < 4))))
    assert_record(record)

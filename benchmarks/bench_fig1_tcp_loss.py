"""Figure 1: TCP throughput vs round-trip time under packet loss.

The paper's Figure 1 plots, for 10 Gbps hosts with 9 KB MTUs:

* the Mathis-equation prediction at the §2 loss rate (1/22000);
* measured TCP-Reno and TCP-Hamilton (H-TCP) across ESnet at that loss;
* the loss-free throughput as the topmost (purple) line.

We regenerate all four series with the fluid TCP model over a simulated
10 Gbps path, sweeping RTT from ~1 ms (metro) to 100 ms (trans-
continental), and check the figure's shape:

* loss-free stays at ~line rate at every RTT;
* lossy curves fall roughly as 1/RTT (Mathis);
* H-TCP sits above Reno at high RTT but both sit far below loss-free.

The measured series run as :class:`repro.experiment.SweepSpec` grids
over the registered ``fig1_tcp`` target — the full-resolution lossy
spec is committed as ``specs/fig1_tcp_loss.json``, so ``repro run``
reproduces this bench's numbers from the JSON alone.
"""

from __future__ import annotations

import numpy as np

from repro.analysis import ResultTable, ascii_chart
from repro.analysis.report import ExperimentRecord
from repro.experiment import RunContext, SweepSpec, run_experiment
from repro.netsim import Link, Topology
from repro.tcp.mathis import mathis_throughput_array
from repro.units import Gbps, bytes_, ms

from _common import assert_record, emit, quick

LOSS_RATE = 1.0 / 22_000.0
RTTS_MS = quick((1, 2, 5, 10, 20, 40, 60, 80, 100), (1, 10, 100))
SEEDS = quick((1, 2, 3), (1,))
MAX_ROUNDS = quick(200_000, 20_000)


def lossfree_spec() -> SweepSpec:
    """The topmost (purple) line: H-TCP with zero loss at every RTT."""
    return SweepSpec.from_grid(
        {"algorithm": ["htcp"], "rtt_ms": list(RTTS_MS), "loss": [0.0],
         "rep": [0], "max_rounds": [MAX_ROUNDS]},
        name="fig1-lossfree", target="fig1_tcp", value_label="bps",
        description="Figure 1 loss-free ceiling: tuned H-TCP at 10 Gbps, "
                    "9 KB MTU, across the RTT sweep")


def lossy_spec() -> SweepSpec:
    """Both measured curves at the §2 loss rate, three seeds each."""
    return SweepSpec.from_grid(
        {"algorithm": ["reno", "htcp"], "rtt_ms": list(RTTS_MS),
         "loss": [LOSS_RATE], "rep": list(SEEDS),
         "max_rounds": [MAX_ROUNDS]},
        name="fig1-tcp-loss", target="fig1_tcp", value_label="bps",
        description="Figure 1 measured grid: Reno and H-TCP at the "
                    "paper's 1/22000 loss, 10 Gbps hosts, 9 KB MTU")


def path_mss():
    """The swept path's MSS (9 KB MTU minus headers) for the Mathis line."""
    topo = Topology("fig1")
    topo.add_host("a", nic_rate=Gbps(10))
    topo.add_host("b", nic_rate=Gbps(10))
    topo.connect("a", "b", Link(rate=Gbps(10), delay=ms(5),
                                mtu=bytes_(9000)))
    return topo.profile_between("a", "b").flow.mss


def generate_figure():
    """Regenerate the four Figure 1 series through the experiment layer.

    The measured curves fan out over ``REPRO_WORKERS`` processes and
    reuse ``REPRO_CACHE`` entries when set — with results identical to
    a serial, uncached run (see docs/execution.md and
    docs/experiments.md).
    """
    rtts_s = np.array(RTTS_MS) / 1e3
    mathis = mathis_throughput_array(path_mss(), rtts_s, LOSS_RATE)
    ctx = RunContext.from_env()
    lossfree_result = run_experiment(lossfree_spec(), ctx,
                                     persist=False).value
    lossfree = np.array(lossfree_result.values())
    lossy = run_experiment(lossy_spec(), ctx, persist=False).value
    by_point = {}
    for record in lossy.records:
        key = (record.params["algorithm"], record.params["rtt_ms"])
        by_point.setdefault(key, []).append(record.value)
    reno = np.array([np.mean(by_point[("reno", r)]) for r in RTTS_MS])
    htcp = np.array([np.mean(by_point[("htcp", r)]) for r in RTTS_MS])
    return mathis, lossfree, reno, htcp


def render(mathis, lossfree, reno, htcp) -> str:
    table = ResultTable(
        "Figure 1 — TCP throughput vs RTT, 10 Gbps hosts, 9 KB MTU, "
        f"loss 1/22000 ({LOSS_RATE:.4%})",
        ["rtt (ms)", "loss-free (Gbps)", "mathis bound (Gbps)",
         "reno measured (Gbps)", "htcp measured (Gbps)"],
    )
    for i, rtt in enumerate(RTTS_MS):
        table.add_row([rtt, lossfree[i] / 1e9, mathis[i] / 1e9,
                       reno[i] / 1e9, htcp[i] / 1e9])
    x = np.array(RTTS_MS, dtype=float)
    chart = ascii_chart(
        [("loss-free", x, lossfree),
         ("mathis", x, mathis),
         ("reno", x, reno),
         ("htcp", x, htcp)],
        title="Figure 1 (log y): throughput vs RTT",
        logy=True, xlabel="rtt ms", ylabel="bps",
    )
    return table.render_text() + "\n\n" + chart


def test_figure1(benchmark):
    mathis, lossfree, reno, htcp = benchmark.pedantic(
        generate_figure, rounds=1, iterations=1)
    emit("fig1_tcp_loss", render(mathis, lossfree, reno, htcp))

    record = ExperimentRecord(
        "Figure 1",
        "loss-free TCP rides the top of the chart at all RTTs; with "
        "1/22000 loss both Reno and H-TCP collapse with RTT, H-TCP above "
        "Reno",
        f"loss-free {lossfree.min() / 1e9:.1f}-{lossfree.max() / 1e9:.1f} "
        f"Gbps; at 100 ms: reno {reno[-1] / 1e6:.0f} Mbps, "
        f"htcp {htcp[-1] / 1e6:.0f} Mbps, mathis {mathis[-1] / 1e6:.0f} Mbps",
    )
    record.add_check(
        "loss-free >= 8 Gbps at every RTT (topmost line)",
        lambda: bool((lossfree >= 8e9).all()))
    record.add_check(
        "lossy throughput decreases monotonically with RTT (reno)",
        lambda: bool((np.diff(reno) < 0).all()))
    record.add_check(
        "H-TCP >= Reno at every RTT >= 10 ms",
        lambda: bool((htcp[3:] >= reno[3:]).all()))
    record.add_check(
        "at 100 ms, loss costs >= 10x vs loss-free (both algorithms)",
        lambda: bool(lossfree[-1] > 10 * reno[-1]
                     and lossfree[-1] > 5 * htcp[-1]))
    record.add_check(
        "measured Reno within 4x of the Mathis bound at high RTT "
        "(the paper's measured curves also sit above the C=1 theory line)",
        lambda: bool(np.all(
            (reno[4:] / mathis[4:] > 1 / 4) & (reno[4:] / mathis[4:] < 4))))
    assert_record(record)

"""§2 line-card incident: device-level arithmetic + end-to-end collapse +
detection by OWAMP but not by counters.

The paper's numbers: a failing 10 Gbps line card dropping 1 of 22,000
packets (0.0046%) forwards 812,744 frames/s at peak, so it loses ~37
packets/s — only ~450 Kbps at the device — yet end-to-end TCP collapses
(Figure 1), and "this packet loss was not being reported by the router's
internal error monitoring, and was only noticed using the owamp active
packet loss monitoring tool".

The monitoring timeline runs as a :class:`repro.experiment.ScenarioSpec`
(committed as ``specs/linecard_softfail.json``), so the same incident
replays via ``repro run specs/linecard_softfail.json`` and its detection
numbers are golden-gated in CI.
"""

from __future__ import annotations

import numpy as np

from repro.analysis import ResultTable
from repro.analysis.report import ExperimentRecord
from repro.core import simple_science_dmz
from repro.devices.faults import FailingLineCard, FaultInjector
from repro.experiment import (
    FaultSpec,
    MeshSpec,
    RunContext,
    ScenarioSpec,
    run_experiment,
)
from repro.netsim import Simulator
from repro.tcp import Reno, TcpConnection
from repro.tcp.mathis import packets_lost_per_second, packets_per_second
from repro.units import Gbps, bytes_, minutes, seconds

from _common import assert_record, emit


def incident_spec() -> ScenarioSpec:
    """The §2 incident as data: fault at T+30 min, 90-minute watch."""
    return ScenarioSpec(
        name="linecard-softfail",
        seed=5,
        description="§2 failing line card on the border router: 1/22000 "
                    "loss, OWAMP mesh every minute, 90-minute watch",
        design="simple-science-dmz",
        until_s=minutes(90).s,
        mesh=MeshSpec(hosts=("dmz-perfsonar", "remote-dtn"),
                      owamp_interval_s=60.0, bwctl_interval_s=600.0,
                      owamp_packets=20_000),
        faults=(FaultSpec(kind="linecard", at_s=minutes(30).s),),
    )


def run_incident():
    """Returns (fps, lost_per_s, device_kbps, clean_bps, degraded_bps,
    counter_visible, alert_delay_minutes)."""
    fps = packets_per_second(Gbps(10), bytes_(1538))
    lost = packets_lost_per_second(Gbps(10), bytes_(1538), 1 / 22000)
    device_kbps = lost * 1538 * 8 / 1e3

    bundle = simple_science_dmz()
    topo = bundle.topology
    policy = bundle.science_policy

    profile = topo.profile_between("dtn1", bundle.remote_dtn, **policy)
    clean = TcpConnection(profile, algorithm=Reno()).measure(
        seconds(30)).mean_throughput.bps

    # The monitoring timeline itself: one spec, one run, cacheable.
    result = run_experiment(incident_spec(), RunContext.from_env(),
                            persist=False)
    delay_s = result.payload["detection_delays_s"]["0"]
    delay_min = None if delay_s is None else delay_s / 60

    # End-to-end impact while the card is failing: same fault, applied
    # to a fresh copy of the design (the spec run owns its own bundle).
    fault = FailingLineCard()
    FaultInjector(Simulator(seed=0)).inject_now(topo.node("border"), fault)
    degraded_profile = topo.profile_between("dtn1", bundle.remote_dtn,
                                            **policy)
    degraded = TcpConnection(degraded_profile, algorithm=Reno(),
                             rng=np.random.default_rng(8)).measure(
        seconds(30), max_rounds=100_000).mean_throughput.bps

    counter_visible = bool(fault.visible_to_counters)
    return fps, lost, device_kbps, clean, degraded, counter_visible, delay_min


def test_linecard_incident(benchmark):
    (fps, lost, device_kbps, clean, degraded,
     counter_visible, delay_min) = benchmark.pedantic(
        run_incident, rounds=1, iterations=1)

    table = ResultTable(
        "§2 failing line card — device arithmetic vs end-to-end impact",
        ["quantity", "paper", "measured"],
    )
    table.add_row(["frames/s at peak (1538 B)", "812,744", f"{fps:,.0f}"])
    table.add_row(["packets lost per second", "37", f"{lost:.0f}"])
    table.add_row(["device-level loss", "~450 Kbps", f"{device_kbps:.0f} Kbps"])
    table.add_row(["end-to-end TCP clean", "~10 Gbps class",
                   f"{clean / 1e9:.2f} Gbps"])
    table.add_row(["end-to-end TCP w/ fault", "collapses (Fig 1)",
                   f"{degraded / 1e6:.0f} Mbps"])
    table.add_row(["visible to device counters", "no",
                   "yes" if counter_visible else "no"])
    table.add_row(["noticed by OWAMP", "yes",
                   f"yes (+{delay_min:.0f} min)" if delay_min is not None
                   else "NO"])
    emit("linecard_softfail", table.render_text())

    record = ExperimentRecord(
        "§2 line-card example",
        "1/22000 loss = 37 pkt/s = 450 Kbps on the device, but dramatic "
        "end-to-end TCP collapse; invisible to counters, caught by OWAMP",
        f"{lost:.0f} pkt/s, {device_kbps:.0f} Kbps device-level; "
        f"TCP {clean / 1e9:.1f} Gbps -> {degraded / 1e6:.0f} Mbps; "
        f"OWAMP alert {delay_min} min after onset",
    )
    record.add_check("812,744 frames/s", lambda: round(fps) == 812_744)
    record.add_check("~37 packets/s lost", lambda: round(lost) == 37)
    record.add_check("device-level loss within 420-470 Kbps",
                     lambda: 420 < device_kbps < 470)
    record.add_check("device loss is < 0.01% of line rate yet TCP loses "
                     ">= 80% of its throughput",
                     lambda: device_kbps / 1e7 < 1e-4
                     and degraded < 0.2 * clean)
    record.add_check("fault invisible to counters",
                     lambda: not counter_visible)
    record.add_check("OWAMP-based alert within 30 min of onset",
                     lambda: delay_min is not None and delay_min <= 30)
    assert_record(record)

"""§5: why firewalls break science flows — burst analysis.

The paper's argument, quantified:

1. "a 200 Mbps TCP flow between hosts with Gigabit Ethernet interfaces
   is actually composed of short bursts at or close to 1Gbps with pauses
   in between" — regenerated as a packet trace;
2. a firewall built from low-speed processors must buffer those bursts;
   with business-sized input buffers the burst tails drop — swept over
   buffer depth with both the closed-form model and the packet simulator;
3. the same policy enforced as a router ACL costs nothing.
"""

from __future__ import annotations

import numpy as np

from repro.analysis import ResultTable
from repro.analysis.report import ExperimentRecord
from repro.devices.firewall import Firewall
from repro.netsim.buffers import DropTailQueue
from repro.netsim.packetsim import BurstySource, burst_trace, simulate_fan_in
from repro.units import Gbps, KB, Mbps, seconds

from _common import assert_record, emit

#: The §5 example flow: 200 Mbps average on GigE.
FLOW = BurstySource(name="science", line_rate=Gbps(1), mean_rate=Mbps(200),
                    burst_size=KB(512))
#: One firewall inspection processor (§5's "lower-speed processors").
PROC_RATE = Mbps(650)
BUFFER_SWEEP_KB = (64, 128, 256, 512, 1024, 4096)


def run_burst_study():
    rng = np.random.default_rng(4)
    # 1. burstiness of the "200 Mbps" flow.
    centers, rate = burst_trace(FLOW, seconds(2.0), rng,
                                bin_width=seconds(0.0005))
    peak = float(rate.max())
    idle_fraction = float((rate == 0).mean())
    # Keep a 100 ms window of the trace for the rendered figure.
    window = centers < 0.1
    run_burst_study.trace = (centers[window], rate[window])

    # 2. burst loss vs input-buffer depth (closed form + packet sim).
    closed, simulated = {}, {}
    for buf_kb in BUFFER_SWEEP_KB:
        queue = DropTailQueue(capacity=KB(buf_kb), service_rate=PROC_RATE)
        closed[buf_kb] = queue.burst_loss_fraction(FLOW.burst_size,
                                                   FLOW.line_rate)
        result = simulate_fan_in([FLOW], egress_rate=PROC_RATE,
                                 buffer_size=KB(buf_kb),
                                 duration=seconds(2.0),
                                 rng=np.random.default_rng(5))
        simulated[buf_kb] = result.loss_fraction

    # 3. firewall vs ACL transit cost summary.
    firewall = Firewall(name="fw", processor_rate=PROC_RATE,
                        input_buffer=KB(256), expected_burst=FLOW.burst_size,
                        expected_line_rate=FLOW.line_rate)
    return peak, idle_fraction, closed, simulated, firewall


def test_firewall_burst(benchmark):
    peak, idle_fraction, closed, simulated, firewall = benchmark.pedantic(
        run_burst_study, rounds=1, iterations=1)

    table = ResultTable(
        "§5 — TCP burstiness into a firewall processor "
        f"({FLOW.mean_rate.human()} flow on {FLOW.line_rate.human()} NIC, "
        f"{FLOW.burst_size.human()} bursts, processor "
        f"{PROC_RATE.human()})",
        ["input buffer (KB)", "burst loss (closed form)",
         "packet-sim loss"],
    )
    for buf_kb in BUFFER_SWEEP_KB:
        table.add_row([buf_kb, f"{closed[buf_kb]:.3%}",
                       f"{simulated[buf_kb]:.3%}"])
    header = (f"flow peaks at {peak / 1e9:.2f} Gbps with "
              f"{idle_fraction:.0%} idle time — 'short bursts at or close "
              f"to 1Gbps with pauses in between'\n"
              f"firewall per-flow ceiling: "
              f"{firewall.per_flow_capacity.human()} "
              f"(aggregate {firewall.aggregate_capacity.human()}); "
              f"ACL alternative: line rate, zero loss\n")
    from repro.analysis import ascii_chart
    centers, trace_rate = run_burst_study.trace
    chart = ascii_chart(
        [("instantaneous rate", centers * 1e3, trace_rate)],
        title="the '200 Mbps' flow, 100 ms of wire time "
              "(0.5 ms bins): line-rate bursts and silence",
        xlabel="ms", ylabel="bps", height=10,
    )
    emit("firewall_burst",
         header + "\n" + table.render_text() + "\n\n" + chart)

    losses_closed = [closed[b] for b in BUFFER_SWEEP_KB]
    losses_sim = [simulated[b] for b in BUFFER_SWEEP_KB]
    record = ExperimentRecord(
        "§5 firewall/burst analysis",
        "average-rate flows are line-rate bursts; small firewall input "
        "buffers drop burst tails; big buffers (or ACLs) do not",
        f"peak {peak / 1e9:.2f} Gbps, idle {idle_fraction:.0%}; loss "
        f"{losses_closed[0]:.1%} at {BUFFER_SWEEP_KB[0]} KB -> "
        f"{losses_closed[-1]:.1%} at {BUFFER_SWEEP_KB[-1]} KB",
    )
    record.add_check("bursts reach >= 80% of the 1G line rate",
                     lambda: peak >= 0.8e9)
    record.add_check("the flow is idle the majority of the time "
                     "(duty cycle ~20%)",
                     lambda: idle_fraction > 0.5)
    record.add_check("shallow buffers lose > 10% of burst packets",
                     lambda: losses_closed[0] > 0.10
                     and losses_sim[0] > 0.10)
    record.add_check("loss decreases monotonically with buffer depth "
                     "(closed form)",
                     lambda: all(a >= b for a, b in
                                 zip(losses_closed, losses_closed[1:])))
    record.add_check("deep buffers absorb the bursts entirely",
                     lambda: losses_closed[-1] == 0.0
                     and losses_sim[-1] < 0.01)
    record.add_check("closed form tracks the packet simulation within "
                     "10 percentage points",
                     lambda: all(abs(c - s) < 0.10 for c, s in
                                 zip(losses_closed, losses_sim)))
    assert_record(record)

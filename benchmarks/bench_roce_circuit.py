"""§7.1: virtual circuits and RoCE.

Paper claims (citing Kissel et al.):

* OSCARS-style circuits give DTNs guaranteed bandwidth;
* RoCE over a guaranteed circuit achieves "the same performance as TCP
  (39.5Gbps for a single flow on a 40GE host), but with 50 times less
  CPU utilization";
* RoCE works "only on a guaranteed bandwidth virtual circuit with
  minimal competing traffic" — on a lossy shared path it collapses.
"""

from __future__ import annotations


from repro.analysis import ResultTable
from repro.analysis.report import ExperimentRecord
from repro.circuits import OscarsService, ReservationRequest, RoceTransfer
from repro.netsim import Link, Topology
from repro.netsim.node import Router
from repro.tcp import HTcp, TcpConnection
from repro.units import Gbps, MB, TB, bytes_, hours, ms, seconds, us

from _common import assert_record, emit


def build_40ge_path():
    topo = Topology("roce")
    topo.add_host("dtn-a", nic_rate=Gbps(40))
    topo.add_host("dtn-b", nic_rate=Gbps(40))
    topo.add_node(Router(name="r1"))
    topo.add_node(Router(name="r2"))
    topo.connect("dtn-a", "r1", Link(rate=Gbps(40), delay=us(50),
                                     mtu=bytes_(9000)))
    topo.connect("r1", "r2", Link(rate=Gbps(100), delay=ms(20),
                                  mtu=bytes_(9000)))
    topo.connect("r2", "dtn-b", Link(rate=Gbps(40), delay=us(50),
                                     mtu=bytes_(9000)))
    return topo


def run_roce():
    topo = build_40ge_path()
    svc = OscarsService(topo, reservable_fraction=1.0)
    res = svc.reserve(ReservationRequest("dtn-a", "dtn-b", Gbps(40),
                                         seconds(0), hours(4),
                                         description="roce circuit"))
    circuit = svc.circuit_profile(res)

    roce = RoceTransfer(circuit).transfer(TB(1))
    # TCP on the same circuit (tuned hosts, H-TCP).
    from dataclasses import replace
    tcp_profile = replace(circuit,
                          flow=circuit.flow.with_(max_receive_window=MB(512)))
    tcp = TcpConnection(tcp_profile, algorithm=HTcp()).transfer(TB(1))
    tcp_cores = RoceTransfer.tcp_cpu_cores(tcp.mean_throughput)

    # The cautionary case: RoCE over a lossy shared path.
    topo.link_between("r1", "r2").degrade(loss_probability=1e-4)
    lossy = RoceTransfer(topo.profile_between("dtn-a", "dtn-b")).goodput()
    return roce, tcp, tcp_cores, lossy


def test_roce_circuit(benchmark):
    roce, tcp, tcp_cores, lossy = benchmark.pedantic(
        run_roce, rounds=1, iterations=1)
    cpu_ratio = tcp_cores / roce.cpu_cores_used

    table = ResultTable(
        "§7.1 — RoCE vs TCP on a 40GE OSCARS circuit (1 TB transfer)",
        ["quantity", "paper", "measured"],
    )
    table.add_row(["RoCE throughput", "39.5 Gbps",
                   roce.throughput.human()])
    table.add_row(["TCP throughput (same circuit)", "comparable",
                   tcp.mean_throughput.human()])
    table.add_row(["CPU ratio (TCP/RoCE)", "50x", f"{cpu_ratio:.0f}x"])
    table.add_row(["RoCE on lossy shared path", "unusable",
                   lossy.human()])
    emit("roce_circuit", table.render_text())

    record = ExperimentRecord(
        "§7.1 RoCE",
        "RoCE = TCP throughput (39.5 Gbps on 40GE) at 50x less CPU, but "
        "only on a guaranteed loss-free circuit",
        f"RoCE {roce.throughput.gbps:.1f} Gbps vs TCP "
        f"{tcp.mean_throughput.gbps:.1f} Gbps; CPU ratio {cpu_ratio:.0f}x; "
        f"lossy-path RoCE {lossy.gbps:.1f} Gbps",
    )
    record.add_check("RoCE hits 39.5 Gbps on the clean circuit",
                     lambda: abs(roce.throughput.gbps - 39.5) < 0.5)
    record.add_check("TCP achieves comparable throughput (within 15%)",
                     lambda: tcp.mean_throughput.gbps > 0.85 * 39.5)
    record.add_check("TCP burns ~50x the CPU",
                     lambda: 40 < cpu_ratio < 60)
    record.add_check("on a lossy shared path RoCE loses >= half its rate "
                     "(why the circuit is required)",
                     lambda: lossy.gbps < 0.5 * roce.throughput.gbps)
    assert_record(record)

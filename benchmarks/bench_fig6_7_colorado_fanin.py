"""Figures 6/7 + §6.1: the University of Colorado fan-in incident.

The story, reproduced step by step:

1. the CMS physics cluster (multiple 1G hosts, ~5 Gbps aggregate) feeds
   a single 10G uplink (Figure 7's "fan-out" / fan-in);
2. under load the aggregation switch silently flips from cut-through to
   store-and-forward, where it "was unable to provide loss-free service";
3. perfSONAR-style measurement shows the dropped packets and collapsed
   per-host throughput;
4. the vendor fix restores near line rate per host.

Both the closed-form fabric loss model and the packet-level simulator
are run; they must agree on the qualitative outcome.
"""

from __future__ import annotations

import numpy as np

from repro.analysis import ResultTable
from repro.analysis.report import ExperimentRecord
from repro.core import campus_with_rcnet
from repro.netsim.packetsim import BurstySource, simulate_fan_in
from repro.tcp import TcpConnection, algorithm_by_name
from repro.units import Gbps, KB, Mbps, seconds

from _common import assert_record, emit


def cms_sources(n=9):
    return [BurstySource(name=f"cms{i + 1}", line_rate=Gbps(1),
                         mean_rate=Mbps(600), burst_size=KB(256))
            for i in range(n)]


def per_host_rate(bundle, seed) -> float:
    profile = bundle.topology.profile_between(
        "cms1", bundle.remote_dtn, **bundle.science_policy)
    conn = TcpConnection(profile, algorithm=algorithm_by_name("htcp"),
                         rng=np.random.default_rng(seed))
    return conn.measure(seconds(20), max_rounds=120_000).mean_throughput.bps


def run_colorado():
    sources = cms_sources()
    rows = {}
    for label, bundle in (("buggy", campus_with_rcnet()),
                          ("fixed", campus_with_rcnet(fixed_fabric=True))):
        fabric = bundle.extras["fabric"]
        fabric.set_offered_load(sources)
        packet = simulate_fan_in(
            sources,
            egress_rate=fabric.effective_service_rate,
            buffer_size=fabric.effective_buffer,
            duration=seconds(1.0),
            rng=np.random.default_rng(9),
        )
        rows[label] = {
            "mode": fabric.effective_mode.value,
            "closed_form_loss": fabric.fan_in_loss(),
            "packet_loss": packet.loss_fraction,
            "host_bps": per_host_rate(bundle, 10),
        }
    return rows


def test_colorado_fanin(benchmark):
    rows = benchmark.pedantic(run_colorado, rounds=1, iterations=1)

    table = ResultTable(
        "Figures 6/7 (§6.1) — CU Boulder physics fan-in, 9 x 1G into 10G "
        "(~5.4 Gbps offered)",
        ["configuration", "fabric mode", "loss (closed form)",
         "loss (packet sim)", "per-host TCP rate"],
    )
    for label in ("buggy", "fixed"):
        r = rows[label]
        table.add_row([label, r["mode"],
                       f"{r['closed_form_loss']:.3%}",
                       f"{r['packet_loss']:.3%}",
                       f"{r['host_bps'] / 1e6:.0f} Mbps"])
    emit("fig6_7_colorado_fanin", table.render_text())

    buggy, fixed = rows["buggy"], rows["fixed"]
    record = ExperimentRecord(
        "Figures 6/7 + §6.1",
        "under load the switch flipped to store-and-forward and dropped "
        "packets; after the vendor fix performance returned to near line "
        "rate for each cluster member",
        f"buggy: {buggy['mode']}, loss {buggy['closed_form_loss']:.2%}, "
        f"{buggy['host_bps'] / 1e6:.0f} Mbps/host; fixed: {fixed['mode']}, "
        f"loss {fixed['closed_form_loss']:.3%}, "
        f"{fixed['host_bps'] / 1e6:.0f} Mbps/host",
    )
    record.add_check("buggy fabric flips to store-and-forward under load",
                     lambda: buggy["mode"] == "store-and-forward")
    record.add_check("buggy fabric drops packets (both models agree)",
                     lambda: buggy["closed_form_loss"] > 1e-3
                     and buggy["packet_loss"] > 1e-3)
    record.add_check("fixed fabric is loss-free (both models agree)",
                     lambda: fixed["closed_form_loss"] < 1e-6
                     and fixed["packet_loss"] < 1e-6)
    record.add_check("fixed per-host rate is near line rate (> 800 Mbps "
                     "of 1G)",
                     lambda: fixed["host_bps"] > 800e6)
    record.add_check("fix recovers >= 2x per-host throughput",
                     lambda: fixed["host_bps"] > 2 * buggy["host_bps"])
    assert_record(record)

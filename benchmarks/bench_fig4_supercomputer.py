"""Figure 4: the supercomputer center built as a Science DMZ.

The paper's Figure 4 design points, each checked behaviourally:

* DTNs front the parallel filesystem, so WAN data lands directly on
  storage the supercomputer mounts — *no double copy*;
* login nodes never handle WAN transfers and keep their stock configs;
* the whole data front-end is loss-free and firewall-free, while
  enterprise offices sit behind HA firewalls;
* multiple DTNs aggregate.
"""

from __future__ import annotations

import numpy as np

from repro.analysis import ResultTable
from repro.analysis.report import ExperimentRecord
from repro.core import supercomputer_center
from repro.dtn import Dataset, TransferPlan, tool_by_name
from repro.netsim import FlowSpec
from repro.tcp import MultiFlowSimulation
from repro.units import GB, TB, ms

from _common import assert_record, emit


def run_fig4():
    bundle = supercomputer_center(wan_rtt=ms(50))
    topo = bundle.topology
    audit = bundle.audit()
    ds = Dataset("fig4-campaign", TB(2), 500)

    # Ingest via a DTN (the design's intent).
    dtn_xfer = TransferPlan(topo, bundle.remote_dtn, "dtn1", ds,
                            tool_by_name("gridftp").with_streams(8),
                            policy=bundle.science_policy).execute()

    # The anti-pattern: ingest via a login node (untuned, local scratch),
    # followed by a second copy onto the parallel filesystem.
    rng = np.random.default_rng(5)
    login_xfer = TransferPlan(topo, bundle.remote_dtn, "login1", ds,
                              "scp").execute(rng)
    login_profile = topo.node("login1").meta["host_profile"]
    scratch_rate = login_profile.storage.read_rate(1)
    second_copy_s = ds.total_size.bits / scratch_rate.bps
    login_total_s = login_xfer.duration.s + second_copy_s

    # Aggregate: all four DTNs ingesting concurrently.
    specs = [FlowSpec(src=bundle.remote_dtn, dst=dtn, size=GB(200),
                      parallel_streams=4, policy=bundle.science_policy,
                      label=f"ingest-{dtn}")
             for dtn in bundle.dtns]
    sim = MultiFlowSimulation(topo, specs, algorithm="htcp")
    progress = sim.run()
    agg_wall = max(p.finish_time.s for p in progress.values())
    agg_bits = sum(p.delivered.bits for p in progress.values())
    return (bundle, audit, ds, dtn_xfer, login_xfer, second_copy_s,
            login_total_s, agg_bits, agg_wall)


def test_figure4_supercomputer(benchmark):
    (bundle, audit, ds, dtn_xfer, login_xfer, second_copy_s,
     login_total_s, agg_bits, agg_wall) = benchmark.pedantic(
        run_fig4, rounds=1, iterations=1)

    table = ResultTable(
        "Figure 4 — supercomputer center: DTN vs login-node ingest (2 TB)",
        ["ingest path", "network phase", "copy-to-PFS phase", "total",
         "copies"],
    )
    table.add_row(["DTN -> parallel FS (design)",
                   dtn_xfer.duration.human(), "none (direct mount)",
                   dtn_xfer.duration.human(), 1])
    table.add_row(["login node -> scratch -> PFS (anti-pattern)",
                   login_xfer.duration.human(),
                   f"{second_copy_s / 3600:.1f} h",
                   f"{login_total_s / 3600:.1f} h", 2])
    table.add_row(["4 DTNs concurrently (800 GB)",
                   f"{agg_wall:.0f} s at {agg_bits / agg_wall / 1e9:.1f} Gbps",
                   "none", f"{agg_wall:.0f} s", 1])
    emit("fig4_supercomputer", table.render_text() + "\n\n"
         + audit.render_text())

    record = ExperimentRecord(
        "Figure 4",
        "DTNs front the parallel filesystem (no double copy); login nodes "
        "keep stock configs; the data path is firewall-free; DTNs aggregate",
        f"DTN ingest {dtn_xfer.duration.human()} vs login-node "
        f"{login_total_s / 3600:.1f} h (incl. second copy); 4-DTN "
        f"aggregate {agg_bits / agg_wall / 1e9:.1f} Gbps",
    )
    record.add_check("audit passes", lambda: audit.passed)
    record.add_check("DTN storage is shared with compute (no double copy)",
                     lambda: bundle.extras["parallel_fs"].shared_with_compute)
    record.add_check("login-node ingest (with its forced second copy) is "
                     ">= 10x slower than the DTN path",
                     lambda: login_total_s >= 10 * dtn_xfer.duration.s)
    record.add_check("login node is not on the science path",
                     lambda: "login1" not in bundle.topology.path(
                         "dtn1", "wan",
                         **bundle.science_policy).node_names())
    record.add_check("4 concurrent DTN ingests aggregate above 20 Gbps",
                     lambda: agg_bits / agg_wall > 20e9)
    assert_record(record)

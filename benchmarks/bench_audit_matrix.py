"""The design-vs-pattern audit matrix.

Not a figure in the paper, but its central table in spirit: §3 defines
four sub-patterns, §4 presents designs built from them, and §2 describes
the general-purpose network that has none.  The bench renders the full
compliance matrix and asserts its shape: every paper design passes every
pattern; the baseline fails every pattern.
"""

from __future__ import annotations

from repro.analysis import ResultTable
from repro.analysis.report import ExperimentRecord
from repro.core import (
    ALL_PATTERNS,
    big_data_site,
    campus_with_rcnet,
    general_purpose_campus,
    simple_science_dmz,
    supercomputer_center,
)

from _common import assert_record, emit

BUILDERS = [
    ("general-purpose-campus (§2)", general_purpose_campus),
    ("simple-science-dmz (Fig 3)", simple_science_dmz),
    ("supercomputer-center (Fig 4)", supercomputer_center),
    ("big-data-site (Fig 5)", big_data_site),
    ("colorado-campus (Figs 6/7)", campus_with_rcnet),
]


def run_matrix():
    matrix = {}
    for label, builder in BUILDERS:
        report = builder().audit()
        matrix[label] = {
            pattern.name: report.pattern_passed(pattern.name)
            for pattern in ALL_PATTERNS
        }
    return matrix


def test_audit_matrix(benchmark):
    matrix = benchmark.pedantic(run_matrix, rounds=1, iterations=1)

    table = ResultTable(
        "Science DMZ pattern-compliance matrix (§3 patterns x §2/§4/§6 "
        "designs)",
        ["design"] + [p.name for p in ALL_PATTERNS],
    )
    for label, row in matrix.items():
        table.add_row([label] + ["pass" if row[p.name] else "FAIL"
                                 for p in ALL_PATTERNS])
    emit("audit_matrix", table.render_text())

    baseline = matrix["general-purpose-campus (§2)"]
    dmz_rows = [row for label, row in matrix.items()
                if not label.startswith("general-purpose")]

    record = ExperimentRecord(
        "Audit matrix",
        "the paper's designs embody all four patterns; the general-"
        "purpose baseline embodies none",
        f"{len(dmz_rows)} designs x {len(ALL_PATTERNS)} patterns all "
        "pass; baseline fails 4/4",
    )
    record.add_check("baseline fails every pattern",
                     lambda: not any(baseline.values()))
    record.add_check("every paper design passes every pattern",
                     lambda: all(all(row.values()) for row in dmz_rows))
    assert_record(record)

"""Shared helpers for the benchmark harness.

Every bench regenerates one of the paper's figures/tables/case-study
results.  Output discipline:

* each bench writes its rendered table/figure to
  ``benchmarks/results/<name>.txt`` (so results survive pytest's stdout
  capture and EXPERIMENTS.md can be assembled from them);
* each bench asserts its experiment's *shape checks* — who wins, by
  roughly what factor — via :class:`repro.analysis.report.ExperimentRecord`;
* the timed portion (the ``benchmark`` fixture) is the experiment's core
  computation, so ``--benchmark-only`` runs double as a performance
  regression harness for the simulator itself.
"""

from __future__ import annotations

import pathlib

from repro.analysis.report import ExperimentRecord

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def emit(name: str, text: str) -> pathlib.Path:
    """Write a bench's rendered output to benchmarks/results/<name>.txt.

    Returns the written path so callers can chain further processing
    (e.g. attach it to a report or diff it against a golden file).
    """
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(text.rstrip() + "\n")
    print(text)
    return path


def assert_record(record: ExperimentRecord) -> None:
    """Evaluate a record's shape checks; fail with the full report text."""
    ok = record.evaluate()
    assert ok, "shape checks failed:\n" + record.render_text()

"""Shared helpers for the benchmark harness.

Every bench regenerates one of the paper's figures/tables/case-study
results.  Output discipline:

* each bench writes its rendered table/figure to
  ``benchmarks/results/<name>.txt`` (so results survive pytest's stdout
  capture and EXPERIMENTS.md can be assembled from them);
* each bench asserts its experiment's *shape checks* — who wins, by
  roughly what factor — via :class:`repro.analysis.report.ExperimentRecord`;
* the timed portion (the ``benchmark`` fixture) is the experiment's core
  computation, so ``--benchmark-only`` runs double as a performance
  regression harness for the simulator itself.

Environment knobs (all read at call time, so tests can monkeypatch):

``REPRO_WORKERS``
    Process-pool size for benches that sweep grids through
    :func:`repro.analysis.sweep.sweep`; unset/empty means serial.
    Results are byte-identical either way (see ``docs/execution.md``).
``REPRO_CACHE``
    Enable the content-addressed result cache: ``1`` for the default
    ``.repro-cache/`` directory, any other value is used as the path.
``REPRO_BENCH_QUICK``
    Smoke mode: benches shrink their grids/durations via
    :func:`quick` and shape checks are rendered but not asserted
    (tiny grids aren't statistically meaningful).  Used by
    ``tests/test_benchmarks_smoke.py`` so a broken bench fails tier-1
    instead of rotting silently.
``REPRO_RESULTS_DIR``
    Redirect ``emit()`` output (the smoke tests point it at a temp
    dir so quick-mode tables never clobber the real results).
"""

from __future__ import annotations

import os
import pathlib
from typing import Dict, Optional, TypeVar

from repro.analysis.report import ExperimentRecord

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

T = TypeVar("T")


def quick_mode() -> bool:
    """True when the harness runs in smoke mode (tiny grids)."""
    return os.environ.get("REPRO_BENCH_QUICK", "") not in ("", "0")


def quick(full: T, tiny: T) -> T:
    """``tiny`` in smoke mode, ``full`` otherwise.

    Benches wrap their grid/duration constants in this so the smoke
    suite exercises the whole code path in a fraction of the time.
    """
    return tiny if quick_mode() else full


def sweep_workers() -> Optional[int]:
    """Pool size from ``$REPRO_WORKERS``; None means serial."""
    value = os.environ.get("REPRO_WORKERS", "")
    if not value:
        return None
    workers = int(value)
    return workers if workers > 1 else None


def sweep_cache():
    """A :class:`repro.exec.ResultCache` from ``$REPRO_CACHE``, or None."""
    value = os.environ.get("REPRO_CACHE", "")
    if not value or value == "0":
        return None
    from repro.exec import DEFAULT_CACHE_DIR, ResultCache
    return ResultCache(DEFAULT_CACHE_DIR if value == "1" else value)


def sweep_kwargs() -> Dict[str, object]:
    """Keyword arguments for ``sweep()`` honoring the env knobs."""
    kwargs: Dict[str, object] = {}
    workers = sweep_workers()
    if workers is not None:
        kwargs["workers"] = workers
    cache = sweep_cache()
    if cache is not None:
        kwargs["cache"] = cache
    return kwargs


def results_dir() -> pathlib.Path:
    override = os.environ.get("REPRO_RESULTS_DIR", "")
    return pathlib.Path(override) if override else RESULTS_DIR


def emit(name: str, text: str) -> pathlib.Path:
    """Write a bench's rendered output to benchmarks/results/<name>.txt.

    Returns the written path so callers can chain further processing
    (e.g. attach it to a report or diff it against a golden file).
    """
    out_dir = results_dir()
    out_dir.mkdir(parents=True, exist_ok=True)
    path = out_dir / f"{name}.txt"
    path.write_text(text.rstrip() + "\n")
    print(text)
    return path


def assert_record(record: ExperimentRecord) -> None:
    """Evaluate a record's shape checks; fail with the full report text.

    In ``REPRO_BENCH_QUICK`` smoke mode the checks still run (so they
    can't crash unnoticed) but their outcome is not asserted — shrunk
    grids legitimately change who-wins-by-how-much.
    """
    ok = record.evaluate()
    if quick_mode():
        return
    assert ok, "shape checks failed:\n" + record.render_text()

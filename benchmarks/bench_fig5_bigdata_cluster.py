"""Figure 5: the extreme-data cluster (LHC Tier-1 style).

Design points of the paper's Figure 5, each checked behaviourally:

* data transfer *clusters*, not single DTNs: aggregate throughput scales
  with cluster size;
* redundant connections to the backbone: losing one border keeps the
  site up;
* "the science data flows do not traverse these [firewall] devices";
  security for the data service lives in the routing plane (ACLs);
* the enterprise keeps its redundant firewalls without touching science.
"""

from __future__ import annotations


from repro.analysis import ResultTable
from repro.analysis.report import ExperimentRecord
from repro.core import big_data_site
from repro.netsim import FlowSpec
from repro.tcp import MultiFlowSimulation
from repro.units import GB, ms

from _common import assert_record, emit


def cluster_aggregate(dtn_count: int) -> float:
    """Aggregate Gbps with ``dtn_count`` DTNs pushing concurrently."""
    bundle = big_data_site(dtn_count=max(2, dtn_count), wan_rtt=ms(80))
    specs = [FlowSpec(src=dtn, dst=bundle.remote_dtn, size=GB(100),
                      parallel_streams=4, policy=bundle.science_policy,
                      label=f"push-{dtn}")
             for dtn in bundle.dtns[:dtn_count]]
    sim = MultiFlowSimulation(bundle.topology, specs, algorithm="htcp")
    progress = sim.run()
    wall = max(p.finish_time.s for p in progress.values())
    bits = sum(p.delivered.bits for p in progress.values())
    return bits / wall / 1e9


def run_fig5():
    bundle = big_data_site(dtn_count=8)
    audit = bundle.audit()
    topo = bundle.topology

    science = topo.path("cluster-dtn1", "wan", **bundle.science_policy)
    enterprise = topo.path("enterprise-host", "wan")

    scaling = {n: cluster_aggregate(n) for n in (2, 4, 8)}

    # Redundancy: drop border1's uplink, science service survives.
    topo.remove_link("border1", "wan")
    failover = topo.path("cluster-dtn1", "wan", **bundle.science_policy)
    return bundle, audit, science, enterprise, scaling, failover


def test_figure5_bigdata(benchmark):
    (bundle, audit, science, enterprise,
     scaling, failover) = benchmark.pedantic(run_fig5, rounds=1, iterations=1)

    table = ResultTable(
        "Figure 5 — extreme-data cluster: scaling and structure",
        ["aspect", "value"],
    )
    for n, gbps in scaling.items():
        table.add_row([f"aggregate with {n} DTNs", f"{gbps:.1f} Gbps"])
    table.add_row(["science path", " -> ".join(science.node_names())])
    table.add_row(["enterprise path", " -> ".join(enterprise.node_names())])
    table.add_row(["after border1 uplink failure",
                   " -> ".join(failover.node_names())])
    emit("fig5_bigdata_cluster", table.render_text() + "\n\n"
         + audit.render_text())

    record = ExperimentRecord(
        "Figure 5",
        "DTN clusters serve multi-petabyte stores; redundant borders; "
        "science flows never cross the enterprise firewalls; aggregate "
        "scales with cluster size",
        f"aggregate {scaling[2]:.1f}/{scaling[4]:.1f}/{scaling[8]:.1f} Gbps "
        f"at 2/4/8 DTNs; failover via "
        f"{failover.node_names()[-2]}",
    )
    record.add_check("audit passes", lambda: audit.passed)
    record.add_check("aggregate grows with cluster size (2 -> 4 -> 8 DTNs)",
                     lambda: scaling[2] < scaling[4] < scaling[8])
    record.add_check("8 DTNs exceed 3x the 2-DTN aggregate",
                     lambda: scaling[8] > 3 * scaling[2])
    record.add_check("science path avoids every firewall",
                     lambda: not science.traverses_kind("firewall"))
    record.add_check("enterprise path keeps its firewall",
                     lambda: enterprise.traverses_kind("firewall"))
    record.add_check("losing one border keeps the science service up "
                     "via the other",
                     lambda: "border2" in failover.node_names())
    assert_record(record)

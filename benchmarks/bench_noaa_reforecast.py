"""§6.3: the NOAA reforecast transfers.

Paper numbers: FTP behind the firewall trickled at 1-2 MB/s; the Science
DMZ DTN with Globus Online moved 273 files / 239.5 GB in just over
10 minutes (~395 MB/s) — "a throughput increase of nearly 200 times".
"""

from __future__ import annotations

import numpy as np

from repro.analysis import ResultTable
from repro.analysis.report import ExperimentRecord
from repro.core import general_purpose_campus, simple_science_dmz
from repro.dtn import RaidArray, TransferPlan, attach_profile, tool_by_name, tuned_dtn
from repro.units import MBps, ms
from repro.workloads import NOAA_GEFS_FULL_PULL, NOAA_GEFS_SAMPLE

from _common import assert_record, emit


def run_noaa():
    rng = np.random.default_rng(63)
    # NERSC <-> NOAA Boulder is ~25 ms over ESnet.
    before = general_purpose_campus(wan_rtt=ms(25))
    after = simple_science_dmz(wan_rtt=ms(25))
    # The NOAA DTN's local RAID wrote ~400 MB/s-class in 2011 — size the
    # destination storage accordingly so the measured rate is credible.
    attach_profile(after.topology.node("dtn1"),
                   tuned_dtn("dtn1", RaidArray(
                       name="noaa-raid", disks=8,
                       controller_limit=MBps(420))))

    ftp = TransferPlan(before.topology, before.remote_dtn, "lab-server1",
                       NOAA_GEFS_SAMPLE, "ftp").execute(rng)
    globus = TransferPlan(after.topology, after.remote_dtn, "dtn1",
                          NOAA_GEFS_SAMPLE,
                          tool_by_name("globus").with_streams(8),
                          policy=after.science_policy).execute()
    return ftp, globus


def test_noaa_reforecast(benchmark):
    ftp, globus = benchmark.pedantic(run_noaa, rounds=1, iterations=1)
    speedup = ftp.mean_throughput.bps and (
        globus.mean_throughput.bps / ftp.mean_throughput.bps)

    table = ResultTable(
        "§6.3 NOAA reforecast — 239.5 GB / 273 files, NERSC -> Boulder",
        ["quantity", "paper", "measured"],
    )
    table.add_row(["FTP behind firewall", "1-2 MB/s",
                   f"{ftp.mean_throughput.MBps:.1f} MB/s"])
    table.add_row(["DTN + Globus rate", "~395 MB/s",
                   f"{globus.mean_throughput.MBps:.0f} MB/s"])
    table.add_row(["DTN transfer time", "just over 10 min",
                   globus.duration.human()])
    table.add_row(["throughput increase", "nearly 200x",
                   f"{speedup:.0f}x"])
    table.add_row(["full 170 TB pull via DTN", "(goal)",
                   f"{NOAA_GEFS_FULL_PULL.total_size.bits / globus.mean_throughput.bps / 86400:.1f} days"])
    emit("noaa_reforecast", table.render_text())

    record = ExperimentRecord(
        "§6.3 NOAA",
        "1-2 MB/s via firewalled FTP; 239.5 GB in ~10 min (~395 MB/s) via "
        "the DTN; ~200x",
        f"{ftp.mean_throughput.MBps:.1f} MB/s vs "
        f"{globus.mean_throughput.MBps:.0f} MB/s in "
        f"{globus.duration.human()} = {speedup:.0f}x",
    )
    record.add_check("FTP lands in the paper's 1-2 MB/s band (0.5-5)",
                     lambda: 0.5 < ftp.mean_throughput.MBps < 5)
    record.add_check("DTN rate within 2x of the paper's 395 MB/s",
                     lambda: 200 < globus.mean_throughput.MBps < 800)
    record.add_check("239.5 GB completes within 5-25 minutes",
                     lambda: 5 < globus.duration.minutes < 25)
    record.add_check("speedup within 2x of the paper's ~200x",
                     lambda: 100 < speedup < 400)
    assert_record(record)

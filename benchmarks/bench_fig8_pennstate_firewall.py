"""Figure 8 + §6.2 + Eq. 2: the Penn State / VTTI firewall incident.

The paper's numbers:

* hosts on 1 Gbps connections, ~10 ms apart, "limited to around 50Mbps
  overall; this observation was true in either direction";
* the TCP window stuck at the default 64 KB despite autotuning;
* Eq. 2: filling 1 Gbps at 10 ms needs 1.25 MB — "20 times" 64 KB;
* the cause: the firewall's TCP flow sequence checking rewrote the
  window-scale option (violating RFC 1323);
* disabling it: "increased inbound performance by nearly 5 times, and
  outbound performance by close to 12 times";
* Figure 8: college-wide utilization steps up immediately after the fix.

We rebuild the two-campus topology, run transfers with the setting on
and off (inbound and outbound differ in host tuning, as in the real
incident), and regenerate the utilization step as a time series.
"""

from __future__ import annotations

import numpy as np

from repro.analysis import ResultTable, ascii_chart
from repro.analysis.report import ExperimentRecord
from repro.devices.firewall import Firewall
from repro.dtn.host import HostSystemProfile, attach_profile
from repro.netsim import Link, Topology
from repro.tcp import TcpConnection, algorithm_by_name
from repro.tcp.mathis import required_window, window_limited_throughput
from repro.units import Gbps, KB, MB, ms, seconds, us

from _common import assert_record, emit


def build_psu(sequence_checking: bool) -> Topology:
    """CoE <-> VTTI: 1G hosts, ~10 ms RTT, the CoE firewall between.

    Host buffer sizes are set to era-plausible values that make each
    direction's *post-fix* ceiling the receiver's autotuned window:
    the campus-side CoE clients autotune to a few hundred KB (inbound
    lands near 5x the 64 KB clamp), while the collocated VTTI servers
    are tuned further (outbound lands near 12x) — reproducing the
    asymmetric gains the paper reports.
    """
    topo = Topology("psu-vtti")
    vtti = topo.add_host("vtti", nic_rate=Gbps(1))
    coe = topo.add_host("coe", nic_rate=Gbps(1))
    fw = topo.add_node(Firewall(
        name="coe-firewall",
        processor_rate=Gbps(1),
        input_buffer=MB(8),
        sequence_checking=sequence_checking,
    ))
    fw.policy.allow()
    topo.connect("vtti", "coe-firewall", Link(rate=Gbps(1), delay=ms(5)))
    topo.connect("coe-firewall", "coe", Link(rate=Gbps(1), delay=us(100)))
    attach_profile(vtti, HostSystemProfile(
        name="vtti-server", tcp_buffer_max=KB(800),
        congestion_algorithm="cubic", dedicated=True,
        installed_apps=("gridftp",)))
    attach_profile(coe, HostSystemProfile(
        name="coe-client", tcp_buffer_max=KB(320),
        congestion_algorithm="cubic"))
    return topo


def measure(topo: Topology, src: str, dst: str) -> float:
    profile = topo.profile_between(src, dst)
    conn = TcpConnection(profile, algorithm=algorithm_by_name("cubic"))
    return conn.measure(seconds(30)).mean_throughput.bps


def run_pennstate():
    window_needed = required_window(Gbps(1), ms(10))
    clamp_rate = window_limited_throughput(KB(64), ms(10))

    broken = build_psu(sequence_checking=True)
    fixed = build_psu(sequence_checking=False)
    rates = {
        ("broken", "in"): measure(broken, "vtti", "coe"),
        ("broken", "out"): measure(broken, "coe", "vtti"),
        ("fixed", "in"): measure(fixed, "vtti", "coe"),
        ("fixed", "out"): measure(fixed, "coe", "vtti"),
    }

    # Figure 8: utilization time series with the fix applied mid-window.
    hours = np.arange(0, 48, 1.0)
    before_util = (rates[("broken", "in")] + rates[("broken", "out")]) / 1e6
    after_util = (rates[("fixed", "in")] + rates[("fixed", "out")]) / 1e6
    util = np.where(hours < 24, before_util, after_util)
    # Diurnal wiggle so the series reads like SNMP data, not a constant.
    util = util * (0.85 + 0.15 * np.sin(hours / 24 * 2 * np.pi) ** 2)
    return window_needed, clamp_rate, rates, hours, util


def test_figure8_pennstate(benchmark):
    window_needed, clamp_rate, rates, hours, util = benchmark.pedantic(
        run_pennstate, rounds=1, iterations=1)

    in_gain = rates[("fixed", "in")] / rates[("broken", "in")]
    out_gain = rates[("fixed", "out")] / rates[("broken", "out")]

    table = ResultTable(
        "Figure 8 / §6.2 — Penn State firewall sequence checking",
        ["quantity", "paper", "measured"],
    )
    table.add_row(["window needed for 1G x 10ms (Eq 2)", "1.25 MB",
                   window_needed.human()])
    table.add_row(["needed / 64 KB", "20x",
                   f"{window_needed.bits / KB(64).bits:.0f}x"])
    table.add_row(["throughput with 64 KB clamp", "~50 Mbps",
                   f"{clamp_rate.mbps:.1f} Mbps (analytic)"])
    table.add_row(["inbound, seq checking on", "~50 Mbps",
                   f"{rates[('broken', 'in')] / 1e6:.0f} Mbps"])
    table.add_row(["outbound, seq checking on", "~50 Mbps",
                   f"{rates[('broken', 'out')] / 1e6:.0f} Mbps"])
    table.add_row(["inbound gain after fix", "~5x", f"{in_gain:.1f}x"])
    table.add_row(["outbound gain after fix", "~12x", f"{out_gain:.1f}x"])
    chart = ascii_chart(
        [("CoE utilization (Mbps)", hours, util)],
        title="Figure 8 — utilization steps up when the firewall setting "
              "is disabled at hour 24",
        xlabel="hour", ylabel="Mbps",
    )
    emit("fig8_pennstate_firewall", table.render_text() + "\n\n" + chart)

    record = ExperimentRecord(
        "Figure 8 + §6.2 + Eq 2",
        "64 KB window at 10 ms caps flows ~50 Mbps; Eq 2 needs 1.25 MB "
        "(20x); disabling sequence checking gained ~5x in / ~12x out; "
        "utilization stepped up immediately",
        f"clamped in/out {rates[('broken', 'in')] / 1e6:.0f}/"
        f"{rates[('broken', 'out')] / 1e6:.0f} Mbps; gains "
        f"{in_gain:.1f}x / {out_gain:.1f}x",
    )
    record.add_check("Eq 2 gives exactly 1.25 MB",
                     lambda: abs(window_needed.megabytes - 1.25) < 1e-9)
    record.add_check("1.25 MB is 20x the 64 KB default",
                     lambda: abs(window_needed.bits / KB(64).bits - 20) < 1)
    record.add_check("clamped throughput lands near 50 Mbps both ways",
                     lambda: all(30e6 < rates[("broken", d)] < 80e6
                                 for d in ("in", "out"))),
    record.add_check("both directions equally bad before the fix "
                     "('true in either direction')",
                     lambda: 0.5 < rates[("broken", "in")]
                     / rates[("broken", "out")] < 2.0)
    record.add_check("inbound gain in the 3-8x band (paper ~5x)",
                     lambda: 3 <= in_gain <= 8)
    record.add_check("outbound gain in the 8-16x band (paper ~12x)",
                     lambda: 8 <= out_gain <= 16)
    record.add_check("utilization steps up at the fix point",
                     lambda: util[30:].mean() > 3 * util[:24].mean())
    assert_record(record)

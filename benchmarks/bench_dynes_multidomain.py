"""§7.1: DYNES-style multi-domain virtual circuits.

The paper: the inter-domain controller "can provision the local switch
and initiate multi-domain wide area virtual circuit connectivity to
provide guaranteed bandwidth between DTN's at multiple institutions",
with DYNES deploying this across "approximately 60 university campuses
and regional networks".

The bench builds a DYNES-like fabric — campuses hanging off regionals
hanging off a national backbone — and checks:

* end-to-end circuits provision across 5 domains with one IDC call;
* the guarantee holds: a TCP flow on the stitched circuit achieves the
  reserved bandwidth regardless of how many other circuits exist;
* admission control protects existing circuits (oversubscription is
  refused, atomically);
* the fabric scales: many concurrent campus-pair circuits coexist.
"""

from __future__ import annotations

from dataclasses import replace


from repro.analysis import ResultTable
from repro.analysis.report import ExperimentRecord
from repro.circuits import Domain, InterDomainController, OscarsService
from repro.errors import CapacityError
from repro.netsim import Link, Topology
from repro.netsim.node import Router
from repro.tcp import HTcp, TcpConnection
from repro.units import GB, Gbps, MB, bytes_, hours, ms, seconds

from _common import assert_record, emit

N_CAMPUSES_PER_REGION = 4
N_REGIONS = 2


def build_fabric():
    """campus[i] -- regional[r] -- backbone -- regional[r'] -- campus[j]."""
    domains = []
    peerings = []

    backbone_topo = Topology("backbone")
    for r in range(N_REGIONS):
        backbone_topo.add_node(Router(name=f"xp-backbone-{r}"))
    backbone_topo.add_node(Router(name="backbone-core"))
    for r in range(N_REGIONS):
        backbone_topo.connect(f"xp-backbone-{r}", "backbone-core",
                              Link(rate=Gbps(100), delay=ms(10),
                                   mtu=bytes_(9000)))
    domains.append(Domain("backbone", backbone_topo,
                          OscarsService(backbone_topo)))

    campuses = []
    for r in range(N_REGIONS):
        reg_topo = Topology(f"regional-{r}")
        reg_topo.add_node(Router(name=f"xp-backbone-{r}"))
        reg_topo.add_node(Router(name=f"regional-{r}-core"))
        reg_topo.connect(f"xp-backbone-{r}", f"regional-{r}-core",
                         Link(rate=Gbps(100), delay=ms(3),
                              mtu=bytes_(9000)))
        for c in range(N_CAMPUSES_PER_REGION):
            xp = f"xp-r{r}c{c}"
            reg_topo.add_node(Router(name=xp))
            reg_topo.connect(f"regional-{r}-core", xp,
                             Link(rate=Gbps(40), delay=ms(1),
                                  mtu=bytes_(9000)))
            campus_topo = Topology(f"campus-r{r}c{c}")
            dtn = f"dtn-r{r}c{c}"
            campus_topo.add_host(dtn, nic_rate=Gbps(10))
            campus_topo.add_node(Router(name=xp))
            campus_topo.connect(dtn, xp, Link(rate=Gbps(10), delay=ms(0.5),
                                              mtu=bytes_(9000)))
            campus = Domain(f"campus-r{r}c{c}", campus_topo,
                            OscarsService(campus_topo))
            domains.append(campus)
            peerings.append((f"campus-r{r}c{c}", f"regional-{r}", xp))
            campuses.append((f"campus-r{r}c{c}", dtn))
        domains.append(Domain(f"regional-{r}", reg_topo,
                              OscarsService(reg_topo)))
        peerings.append((f"regional-{r}", "backbone", f"xp-backbone-{r}"))
    return InterDomainController(domains, peerings), campuses


def circuit_tcp_rate(circuit) -> float:
    profile = replace(circuit.profile,
                      flow=circuit.profile.flow.with_(
                          max_receive_window=MB(256)))
    conn = TcpConnection(profile, algorithm=HTcp())
    return conn.transfer(GB(20)).mean_throughput.bps


def run_dynes():
    idc, campuses = build_fabric()
    # Cross-country circuit between the first campus of each region.
    c_west, dtn_west = campuses[0]
    c_east, dtn_east = campuses[N_CAMPUSES_PER_REGION]
    first = idc.reserve_end_to_end(dtn_west, dtn_east, Gbps(5),
                                   start=seconds(0), end=hours(4))
    rate_alone = circuit_tcp_rate(first)

    # Saturate the fabric with more cross-region circuits.
    extra = []
    for i in range(1, N_CAMPUSES_PER_REGION):
        src = campuses[i][1]
        dst = campuses[N_CAMPUSES_PER_REGION + i][1]
        extra.append(idc.reserve_end_to_end(src, dst, Gbps(5),
                                            start=seconds(0), end=hours(4)))
    rate_loaded = circuit_tcp_rate(first)

    # Admission control: the west campus access link is 10G x 0.8 = 8G;
    # 5G is reserved, so another 5G from the same DTN must be refused.
    refused = False
    try:
        idc.reserve_end_to_end(dtn_west, dtn_east, Gbps(5),
                               start=seconds(0), end=hours(4))
    except CapacityError:
        refused = True
    active_after = len(idc.active())
    return first, rate_alone, rate_loaded, extra, refused, active_after


def test_dynes_multidomain(benchmark):
    (first, rate_alone, rate_loaded, extra,
     refused, active_after) = benchmark.pedantic(run_dynes, rounds=1,
                                                 iterations=1)

    table = ResultTable(
        "§7.1 — DYNES-style multi-domain circuits "
        f"({N_REGIONS} regionals x {N_CAMPUSES_PER_REGION} campuses + "
        "backbone)",
        ["quantity", "value"],
    )
    table.add_row(["first circuit", first.describe()])
    table.add_row(["TCP on circuit, fabric idle",
                   f"{rate_alone / 1e9:.2f} Gbps"])
    table.add_row([f"TCP on circuit, {len(extra)} competing circuits",
                   f"{rate_loaded / 1e9:.2f} Gbps"])
    table.add_row(["oversubscription attempt", "refused (atomic)"
                   if refused else "ADMITTED?!"])
    table.add_row(["active circuits", active_after])
    emit("dynes_multidomain", table.render_text())

    record = ExperimentRecord(
        "§7.1 DYNES multi-domain circuits",
        "the IDC provisions multi-domain circuits giving guaranteed "
        "bandwidth between DTNs at multiple institutions",
        f"5-domain circuit at 5 Gbps; TCP {rate_alone / 1e9:.2f} Gbps idle "
        f"vs {rate_loaded / 1e9:.2f} Gbps under load; oversubscription "
        f"{'refused' if refused else 'ADMITTED'}",
    )
    record.add_check("circuit spans 5 domains",
                     lambda: first.domain_count == 5)
    record.add_check("TCP achieves >= 90% of the reservation, fabric idle",
                     lambda: rate_alone >= 0.9 * 5e9)
    record.add_check("the guarantee holds under competing circuits "
                     "(within 5% of the idle rate)",
                     lambda: abs(rate_loaded - rate_alone) < 0.05 * rate_alone)
    record.add_check("oversubscription is refused atomically",
                     lambda: refused)
    record.add_check("all planned circuits active",
                     lambda: active_after == 1 + len(extra))
    assert_record(record)

"""Load test: the experiment service under a thundering herd.

The Science DMZ is engineered for sustained load from many science
groups at once; ``repro.serve`` makes the same claim one layer up, and
this bench holds it to numbers.  A real asyncio server (own event-loop
thread, real HTTP over loopback) is hammered by many client threads
submitting a highly duplicated spec mix — the realistic shape of a
shared service, where everyone reruns the same handful of figures:

* **≥1000 submissions** (full mode) across 16 client threads, only 24
  unique specs — at least 90% of accepted submissions must be answered
  by dedupe (result memo or in-flight coalescing), not re-execution;
* **zero dropped jobs**: every admitted submission reaches ``done``
  (429s are retried by the client per the backpressure protocol and
  are not drops; a *failed or lost* job is);
* **digest parity**: every service answer carries the same manifest
  digest as an offline ``run_experiment`` of that unique spec;
* queue-latency **p50/p99** are reported in the emitted table (the
  paper's "engineered for load" stance, measured).

``REPRO_BENCH_QUICK`` shrinks the herd (60 submissions / 6 unique) so
tier-1 exercises the whole path in a couple of seconds.
"""

from __future__ import annotations

import asyncio
import json
import tempfile
import threading

from repro.analysis import ResultTable
from repro.analysis.report import ExperimentRecord
from repro.experiment import ExperimentSpec, RunContext, run_experiment
from repro.serve import ExperimentServer, ExperimentService, ServiceClient

from _common import assert_record, emit, quick

N_UNIQUE = quick(24, 6)
N_SUBMISSIONS = quick(1200, 60)
N_CLIENTS = quick(16, 4)
SERVICE_WORKERS = 4
#: Below the full run's 24 unique specs, so the herd's opening burst
#: meets real 429s and the client retry path is part of the benchmark.
QUEUE_CAPACITY = 16

PRIORITIES = ("interactive", "normal", "batch")


def unique_spec(i: int) -> dict:
    """The i-th unique workload: a small Mathis sweep, distinct grid."""
    return {
        "schema": 1, "kind": "sweep", "name": f"serve-load-{i:02d}",
        "seed": 100 + i, "target": "mathis", "value_label": "gbps",
        "grid": {"rtt_ms": [1.0 + i, 10.0 + i, 50.0 + i],
                 "loss": [4.5e-5], "mss_bytes": [9000]},
    }


class _LoopThread:
    """The server on its own event loop, like the deployment shape."""

    def __init__(self, service: ExperimentService) -> None:
        self.server = ExperimentServer(service, port=0)
        self.loop = asyncio.new_event_loop()
        started = threading.Event()

        def run() -> None:
            asyncio.set_event_loop(self.loop)
            self.loop.run_until_complete(self.server.start())
            started.set()
            self.loop.run_forever()

        self.thread = threading.Thread(target=run, daemon=True)
        self.thread.start()
        assert started.wait(10), "server failed to start"

    def stop(self) -> None:
        self.loop.call_soon_threadsafe(self.loop.stop)
        self.thread.join(timeout=10)
        self.loop.close()


def run_load() -> dict:
    tmp = tempfile.mkdtemp(prefix="serve-load-")
    service = ExperimentService(workers=SERVICE_WORKERS,
                                capacity=QUEUE_CAPACITY,
                                cache=f"{tmp}/cache")
    fixture = _LoopThread(service)
    address = fixture.server.address

    jobs_lock = threading.Lock()
    submitted_jobs: list = []
    errors: list = []

    def client_worker(worker: int) -> None:
        client = ServiceClient(address, max_retries=50)
        for k in range(worker, N_SUBMISSIONS, N_CLIENTS):
            spec = unique_spec(k % N_UNIQUE)
            try:
                job = client.submit(
                    spec,
                    tenant=f"tenant-{worker % 4}",
                    priority=PRIORITIES[k % len(PRIORITIES)])
                with jobs_lock:
                    submitted_jobs.append((k % N_UNIQUE, job["id"]))
            except Exception as exc:  # noqa: BLE001 - report, don't hang
                with jobs_lock:
                    errors.append(f"submit {k}: {exc}")

    threads = [threading.Thread(target=client_worker, args=(w,))
               for w in range(N_CLIENTS)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()

    # Every accepted job must finish; collect digests per unique spec.
    waiter = ServiceClient(address)
    digests: dict = {}
    done = failed = 0
    for unique_id, job_id in submitted_jobs:
        try:
            snapshot = waiter.result(job_id, timeout=300)
        except Exception as exc:  # noqa: BLE001 - count, don't hang
            failed += 1
            errors.append(f"result {job_id}: {exc}")
            continue
        done += 1
        digests.setdefault(unique_id, set()).add(
            snapshot["manifest"]["digest"])

    metrics = waiter.metrics()
    service.drain(timeout=30)
    fixture.stop()

    # Offline parity baseline, once per unique spec.
    parity_ok = all(
        digests.get(i) == {run_experiment(
            ExperimentSpec.from_dict(unique_spec(i)), RunContext(),
            persist=False).manifest.digest()}
        for i in sorted(digests))

    return {
        "errors": errors,
        "accepted": len(submitted_jobs),
        "done": done,
        "failed": failed,
        "unique": len(digests),
        "parity_ok": parity_ok,
        "metrics": metrics,
    }


def render(outcome: dict) -> str:
    jobs = outcome["metrics"]["jobs"]
    latency = outcome["metrics"]["queue_latency"]
    table = ResultTable(
        f"serve load: {N_SUBMISSIONS} submissions, {N_UNIQUE} unique "
        f"specs, {N_CLIENTS} clients, {SERVICE_WORKERS} workers, "
        f"queue capacity {QUEUE_CAPACITY}",
        ["metric", "value"])
    table.add_row(["accepted (client view)", outcome["accepted"]])
    table.add_row(["completed", outcome["done"]])
    table.add_row(["failed", outcome["failed"]])
    table.add_row(["admitted (executed)", jobs["admitted"]])
    table.add_row(["deduped: memo", jobs["deduped_memo"]])
    table.add_row(["deduped: in-flight", jobs["deduped_inflight"]])
    table.add_row(["429 rejections (retried)", jobs["rejected"]])
    table.add_row(["dedupe ratio",
                   f"{outcome['metrics']['dedupe_ratio']:.3f}"])
    table.add_row(["queue latency p50",
                   f"{latency['p50_s'] * 1000:.2f} ms"])
    table.add_row(["queue latency p99",
                   f"{latency['p99_s'] * 1000:.2f} ms"])
    table.add_row(["digest parity vs offline run",
                   "ok" if outcome["parity_ok"] else "MISMATCH"])
    return table.render_text()


def test_serve_load(benchmark):
    outcome = benchmark.pedantic(run_load, rounds=1, iterations=1)

    text = render(outcome)
    record = ExperimentRecord(
        experiment_id="repro.serve load test",
        paper_claim="§1/§5: the DMZ model exists to sustain many "
                    "groups' data-intensive load on shared "
                    "infrastructure without degradation",
        measured=f"{outcome['accepted']} accepted submissions, "
                 f"dedupe ratio "
                 f"{outcome['metrics']['dedupe_ratio']:.3f}, "
                 f"p99 queue latency "
                 f"{outcome['metrics']['queue_latency']['p99_s']:.4f}s",
    )
    record.add_check(
        "no client submission errored after retries",
        lambda: not outcome["errors"])
    record.add_check(
        f"all {outcome['accepted']} accepted jobs completed "
        "(zero dropped)",
        lambda: outcome["done"] == outcome["accepted"]
        and outcome["failed"] == 0)
    record.add_check(
        ">=90% of accepted submissions answered by dedupe",
        lambda: outcome["metrics"]["dedupe_ratio"] >= 0.90)
    record.add_check(
        "every unique spec saw exactly one digest, equal to the "
        "offline run_experiment digest",
        lambda: outcome["parity_ok"]
        and outcome["unique"] == N_UNIQUE)
    record.add_check(
        "queue latency quantiles reported",
        lambda: outcome["metrics"]["queue_latency"]["p99_s"]
        is not None)

    # Unlike figure benches, these checks are scale-independent —
    # assert them even in quick mode.
    ok = record.evaluate()
    emit("serve_load", text + "\n\n" + record.render_text())
    assert ok, (
        "load-test checks failed:\n" + record.render_text()
        + "\nerrors: " + "; ".join(outcome["errors"][:5]))
    assert_record(record)

"""Performance regression benchmarks for the simulator itself.

These are the only benches that use pytest-benchmark's repeated-rounds
mode: they time the hot paths (fluid TCP rounds, packet sweeps, path
profiling, mesh measurement) so a slowdown in the substrate shows up as
a benchmark regression rather than as mysteriously slow experiments.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import simple_science_dmz
from repro.netsim import Link, Topology
from repro.netsim.packetsim import BurstySource, simulate_fan_in
from repro.tcp import Reno, TcpConnection
from repro.units import GB, Gbps, KB, MB, Mbps, bytes_, ms, seconds


@pytest.fixture(scope="module")
def lossy_profile():
    topo = Topology("perf")
    topo.add_host("a", nic_rate=Gbps(10))
    topo.add_host("b", nic_rate=Gbps(10))
    topo.connect("a", "b", Link(rate=Gbps(10), delay=ms(10),
                                mtu=bytes_(9000),
                                loss_probability=1e-4))
    profile = topo.profile_between("a", "b")
    from dataclasses import replace
    return replace(profile,
                   flow=profile.flow.with_(max_receive_window=MB(64)))


def test_perf_fluid_tcp_10k_rounds(benchmark, lossy_profile):
    """~10k fluid TCP rounds with stochastic loss (the workhorse loop)."""
    def run():
        conn = TcpConnection(lossy_profile, algorithm=Reno(),
                             rng=np.random.default_rng(1))
        return conn.measure(seconds(200), max_rounds=20_000).rounds

    rounds = benchmark(run)
    assert rounds >= 9_000


def test_perf_packet_sweep_100k(benchmark):
    """~100k packets through the fan-in sweep (vectorized generation +
    python drain loop)."""
    sources = [BurstySource(name=f"s{i}", line_rate=Gbps(1),
                            mean_rate=Mbps(500), burst_size=KB(128))
               for i in range(4)]

    def run():
        return simulate_fan_in(sources, egress_rate=Gbps(1.5),
                               buffer_size=KB(512),
                               duration=seconds(1.0),
                               rng=np.random.default_rng(2)).total_offered

    offered = benchmark(run)
    assert offered > 80_000


def test_perf_path_profile(benchmark):
    """Profile folding on a realistic design (done per probe/transfer)."""
    bundle = simple_science_dmz()

    def run():
        return bundle.topology.profile_between(
            "remote-dtn", "dtn1", **bundle.science_policy).capacity.bps

    assert benchmark(run) > 0


def test_perf_loss_free_fast_forward(benchmark):
    """A 1 TB loss-free transfer must be effectively O(1) thanks to the
    steady-state fast-forward."""
    topo = Topology("ff")
    topo.add_host("a", nic_rate=Gbps(10))
    topo.add_host("b", nic_rate=Gbps(10))
    topo.connect("a", "b", Link(rate=Gbps(10), delay=ms(40),
                                mtu=bytes_(9000)))
    profile = topo.profile_between("a", "b")
    from dataclasses import replace
    profile = replace(profile,
                      flow=profile.flow.with_(max_receive_window=MB(512)))

    def run():
        return TcpConnection(profile).transfer(GB(1000)).duration.s

    duration = benchmark(run)
    assert duration > 700  # ~13.6 min of simulated time...
    # ...computed in well under a millisecond of wall time (benchmark
    # stats assert nothing here; regressions show in the timing report).

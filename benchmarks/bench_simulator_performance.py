"""Performance regression benchmarks for the simulator itself.

These are the only benches that use pytest-benchmark's repeated-rounds
mode: they time the hot paths (fluid TCP rounds, packet sweeps, path
profiling, mesh measurement) so a slowdown in the substrate shows up as
a benchmark regression rather than as mysteriously slow experiments.

This file also feeds the committed performance baseline: running it
outside quick mode writes ``BENCH_simulator.json`` (the suite timings,
uploaded as a CI artifact and gated by ``repro bench --compare``), and
with ``REPRO_WRITE_BASELINE=1`` it refreshes ``benchmarks/baseline.json``.
"""

from __future__ import annotations

import os
import pathlib

import numpy as np
import pytest

from _common import emit, quick, quick_mode, results_dir
from repro import bench as perf
from repro.core import simple_science_dmz
from repro.netsim import Link, Topology
from repro.netsim.packetsim import BurstySource, simulate_fan_in
from repro.tcp import Reno, TcpConnection
from repro.units import GB, Gbps, KB, MB, Mbps, bytes_, ms, seconds

BASELINE_PATH = pathlib.Path(__file__).parent / "baseline.json"


@pytest.fixture(scope="module")
def lossy_profile():
    topo = Topology("perf")
    topo.add_host("a", nic_rate=Gbps(10))
    topo.add_host("b", nic_rate=Gbps(10))
    topo.connect("a", "b", Link(rate=Gbps(10), delay=ms(10),
                                mtu=bytes_(9000),
                                loss_probability=1e-4))
    profile = topo.profile_between("a", "b")
    from dataclasses import replace
    return replace(profile,
                   flow=profile.flow.with_(max_receive_window=MB(64)))


def test_perf_fluid_tcp_10k_rounds(benchmark, lossy_profile):
    """~10k fluid TCP rounds with stochastic loss (the workhorse loop)."""
    def run():
        conn = TcpConnection(lossy_profile, algorithm=Reno(),
                             rng=np.random.default_rng(1))
        return conn.measure(seconds(200), max_rounds=20_000).rounds

    rounds = benchmark(run)
    assert rounds >= 9_000


def test_perf_packet_sweep_100k(benchmark):
    """~100k packets through the fan-in sweep (vectorized generation +
    python drain loop)."""
    sources = [BurstySource(name=f"s{i}", line_rate=Gbps(1),
                            mean_rate=Mbps(500), burst_size=KB(128))
               for i in range(4)]

    def run():
        return simulate_fan_in(sources, egress_rate=Gbps(1.5),
                               buffer_size=KB(512),
                               duration=seconds(1.0),
                               rng=np.random.default_rng(2)).total_offered

    offered = benchmark(run)
    assert offered > 80_000


def test_perf_path_profile(benchmark):
    """Profile folding on a realistic design (done per probe/transfer)."""
    bundle = simple_science_dmz()

    def run():
        return bundle.topology.profile_between(
            "remote-dtn", "dtn1", **bundle.science_policy).capacity.bps

    assert benchmark(run) > 0


def test_perf_loss_free_fast_forward(benchmark):
    """A 1 TB loss-free transfer must be effectively O(1) thanks to the
    steady-state fast-forward."""
    topo = Topology("ff")
    topo.add_host("a", nic_rate=Gbps(10))
    topo.add_host("b", nic_rate=Gbps(10))
    topo.connect("a", "b", Link(rate=Gbps(10), delay=ms(40),
                                mtu=bytes_(9000)))
    profile = topo.profile_between("a", "b")
    from dataclasses import replace
    profile = replace(profile,
                      flow=profile.flow.with_(max_receive_window=MB(512)))

    def run():
        return TcpConnection(profile).transfer(GB(1000)).duration.s

    duration = benchmark(run)
    assert duration > 700  # ~13.6 min of simulated time...
    # ...computed in well under a millisecond of wall time (benchmark
    # stats assert nothing here; regressions show in the timing report).


def test_perf_multiflow_64x4(benchmark):
    """64 flows x 4 streams over a shared 30-link lossy chain (the
    headline many-flow workload for the vectorized fluid loop)."""
    is_quick = quick_mode()

    def run():
        sim, horizon = perf._chain_simulation("numpy", is_quick)
        return sim.run(until=horizon)

    progress = benchmark(run)
    delivered = sum(p.delivered.bits for p in progress.values())
    assert delivered > 0


def test_perf_vectorized_backends_agree():
    """The scalar and vectorized backends must return byte-identical
    results on the many-flow chain scenario (quick-sized here; the full
    randomized battery lives in tests/test_vectorized_equivalence.py)."""
    outs = {}
    for backend in ("numpy", "python"):
        sim, horizon = perf._chain_simulation(backend, True)
        outs[backend] = sim.run(until=horizon)
    a, b = outs["numpy"], outs["python"]
    assert set(a) == set(b)
    for label in a:
        assert a[label].delivered.bits == b[label].delivered.bits
        assert a[label].loss_events == b[label].loss_events
        assert a[label].time_series == b[label].time_series


def test_perf_vectorized_speedups():
    """The vectorized kernels must beat the scalar references: >=5x on
    the 64-flow chain, >=3x on the fan-in sweep (asserted only in full
    mode; quick-mode workloads are too small to be meaningful)."""
    is_quick = quick_mode()
    repeats = quick(3, 1)
    times = {
        name: perf.run_scenario(name, repeats=repeats,
                                quick=is_quick)["seconds"]
        for name in ("multiflow.numpy", "multiflow.python",
                     "fanin.numpy", "fanin.python")
    }
    multiflow = times["multiflow.python"] / times["multiflow.numpy"]
    fanin = times["fanin.python"] / times["fanin.numpy"]
    emit("BENCH_speedups",
         "vectorized kernel speedups vs scalar reference\n"
         f"  multiflow 64x4: {multiflow:.2f}x "
         f"({times['multiflow.python'] * 1e3:.0f}ms -> "
         f"{times['multiflow.numpy'] * 1e3:.0f}ms)\n"
         f"  fan-in sweep:   {fanin:.2f}x "
         f"({times['fanin.python'] * 1e3:.0f}ms -> "
         f"{times['fanin.numpy'] * 1e3:.0f}ms)")
    if not is_quick:
        assert multiflow >= 5.0, f"multiflow speedup {multiflow:.2f}x < 5x"
        assert fanin >= 3.0, f"fan-in speedup {fanin:.2f}x < 3x"


def test_perf_suite_artifact():
    """Run the regression suite and write BENCH_simulator.json (the CI
    artifact that ``repro bench --compare`` gates against the committed
    ``benchmarks/baseline.json``).

    With ``REPRO_WRITE_BASELINE=1`` (full mode only) the run also
    refreshes the committed baseline.
    """
    is_quick = quick_mode()
    payload = perf.run_suite(repeats=quick(3, 1), quick=is_quick)
    out_dir = results_dir()
    out_dir.mkdir(parents=True, exist_ok=True)
    path = perf.write_json(payload, str(out_dir / "BENCH_simulator.json"))
    print(f"wrote suite timings to {path}")
    if not is_quick and os.environ.get("REPRO_WRITE_BASELINE", "") == "1":
        perf.write_json(payload, str(BASELINE_PATH))
        print(f"refreshed baseline at {BASELINE_PATH}")

"""§7.3: OpenFlow dynamic firewall bypass with IDS verification.

The paper sketches using OpenFlow "to dynamically modify the security
policy for large flows between trusted sites": send connection-setup
traffic to the IDS, and once verified, install a rule that bypasses the
firewall (and the IDS) for the data flow.

The bench measures the payoff and checks the policy logic:

* a trusted, clean flow gets a bypass rule and a firewall-free path whose
  TCP throughput is an order of magnitude above the inspected path;
* a flow matching an IDS signature stays on the inspected path;
* an untrusted site never gets a bypass;
* revocation restores the inspected path.
"""

from __future__ import annotations


from repro.analysis import ResultTable
from repro.analysis.report import ExperimentRecord
from repro.circuits import OpenFlowController
from repro.devices.firewall import Firewall
from repro.devices.ids import IntrusionDetectionSystem
from repro.dtn.host import attach_profile, tuned_dtn
from repro.netsim import Link, Topology
from repro.netsim.node import Router
from repro.tcp import HTcp, TcpConnection
from repro.units import Gbps, bytes_, ms, seconds, us

from _common import assert_record, emit


def build_sdn_site():
    topo = Topology("sdn-site")
    a = topo.add_host("site-a", nic_rate=Gbps(10))
    b = topo.add_host("site-b", nic_rate=Gbps(10))
    attach_profile(a, tuned_dtn("site-a"))
    attach_profile(b, tuned_dtn("site-b"))
    topo.add_node(Router(name="edge"))
    fw = topo.add_node(Firewall(name="fw"))
    fw.policy.allow()
    topo.add_node(Router(name="inner"))
    topo.connect("site-a", "edge", Link(rate=Gbps(10), delay=ms(10),
                                        mtu=bytes_(9000)))
    topo.connect("edge", "fw", Link(rate=Gbps(10), delay=us(10)))
    topo.connect("fw", "inner", Link(rate=Gbps(10), delay=us(10)))
    topo.connect("edge", "inner", Link(rate=Gbps(10), delay=ms(2),
                                       mtu=bytes_(9000), tags={"science"}))
    topo.connect("inner", "site-b", Link(rate=Gbps(10), delay=ms(10),
                                         mtu=bytes_(9000)))
    return topo


def throughput_on(topo, path) -> float:
    profile = topo.profile(path)
    conn = TcpConnection(profile, algorithm=HTcp())
    return conn.measure(seconds(20)).mean_throughput.bps


def run_sdn():
    topo = build_sdn_site()
    ids = IntrusionDetectionSystem()
    ids.add_signature("ssh-probe", lambda s, d, p: p == 22)
    controller = OpenFlowController(topo, ids,
                                    trusted_sites={"site-a", "site-b"})

    inspected_path = controller.path_for("site-a", "site-b", 50000)
    inspected_bps = throughput_on(topo, inspected_path)

    decision = controller.request_flow("site-a", "site-b", 50000)
    bypass_path = controller.path_for("site-a", "site-b", 50000)
    bypass_bps = throughput_on(topo, bypass_path)

    flagged = controller.request_flow("site-a", "site-b", 22)
    untrusted_controller = OpenFlowController(topo, ids,
                                              trusted_sites={"site-b"})
    untrusted = untrusted_controller.request_flow("site-a", "site-b", 50000)

    controller.revoke("site-a", "site-b", 50000)
    revoked_path = controller.path_for("site-a", "site-b", 50000)
    return (decision, inspected_bps, bypass_bps, flagged, untrusted,
            inspected_path, bypass_path, revoked_path)


def test_sdn_bypass(benchmark):
    (decision, inspected_bps, bypass_bps, flagged, untrusted,
     inspected_path, bypass_path, revoked_path) = benchmark.pedantic(
        run_sdn, rounds=1, iterations=1)

    gain = bypass_bps / inspected_bps
    table = ResultTable(
        "§7.3 — OpenFlow inspect-then-bypass",
        ["flow", "decision", "path", "TCP rate"],
    )
    table.add_row(["trusted, clean (port 50000)",
                   "bypass installed",
                   " -> ".join(bypass_path.node_names()),
                   f"{bypass_bps / 1e9:.2f} Gbps"])
    table.add_row(["same flow before bypass", "inspect",
                   " -> ".join(inspected_path.node_names()),
                   f"{inspected_bps / 1e9:.2f} Gbps"])
    table.add_row(["IDS-flagged (port 22)",
                   "no bypass" if not flagged.bypass_installed else "BYPASS?!",
                   "firewalled", "-"])
    table.add_row(["untrusted site",
                   "no bypass" if not untrusted.bypass_installed else "BYPASS?!",
                   "firewalled", "-"])
    emit("sdn_bypass",
         table.render_text() + f"\n\nbypass gain: {gain:.1f}x")

    record = ExperimentRecord(
        "§7.3 SDN bypass",
        "verified flows between trusted sites dynamically bypass the "
        "firewall (and IDS); suspicious or untrusted flows stay inspected",
        f"bypass gain {gain:.1f}x; flagged and untrusted flows kept on "
        "the firewalled path; revocation restores inspection",
    )
    record.add_check("clean trusted flow gets the bypass",
                     lambda: decision.bypass_installed)
    record.add_check("bypass path avoids the firewall",
                     lambda: not bypass_path.traverses_kind("firewall"))
    record.add_check("bypass gains >= 5x TCP throughput",
                     lambda: gain >= 5)
    record.add_check("IDS-flagged flow denied the bypass",
                     lambda: not flagged.bypass_installed
                     and len(flagged.alerts) > 0)
    record.add_check("untrusted site denied the bypass",
                     lambda: not untrusted.bypass_installed)
    record.add_check("revocation puts the flow back through the firewall",
                     lambda: revoked_path.traverses_kind("firewall"))
    assert_record(record)

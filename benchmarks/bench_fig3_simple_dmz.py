"""Figure 3: the simple Science DMZ.

The paper's Figure 3 is an architecture diagram: border router, Science
DMZ switch with per-service ACL control points, a DTN with high-speed
storage, a perfSONAR host, a clean high-bandwidth WAN path, and the
campus reaching DMZ resources through its own (firewalled) path.

The bench regenerates the figure as structure + behaviour:

* the audit passes all four patterns;
* the science path is the short clean one and the campus path still
  crosses the firewall;
* a transfer over the science path vastly outperforms the same transfer
  terminating behind the firewall;
* campus users reach DMZ resources with "reasonable performance"
  (§3.4: low local latency lets TCP recover from firewall loss).
"""

from __future__ import annotations

import numpy as np

from repro.analysis import ResultTable
from repro.analysis.report import ExperimentRecord
from repro.core import simple_science_dmz
from repro.dtn import Dataset, TransferPlan
from repro.tcp import TcpConnection, algorithm_by_name
from repro.units import GB, seconds

from _common import assert_record, emit


def run_fig3():
    bundle = simple_science_dmz()
    topo = bundle.topology
    audit = bundle.audit()

    science = topo.path("dtn1", "wan", **bundle.science_policy)
    campus = topo.path("lab-server1", "wan")

    ds = Dataset("fig3-sample", GB(50), 50)
    rng = np.random.default_rng(3)
    dmz_xfer = TransferPlan(topo, bundle.remote_dtn, "dtn1", ds, "gridftp",
                            policy=bundle.science_policy).execute()
    campus_xfer = TransferPlan(topo, bundle.remote_dtn, "lab-server1",
                               ds, "scp").execute(rng)

    # Local campus access to the DMZ DTN crosses the firewall but at LAN
    # latency, so TCP recovers quickly (§3.4).
    local_profile = topo.profile_between("lab-server1", "dtn1")
    local = TcpConnection(local_profile,
                          algorithm=algorithm_by_name("reno"),
                          rng=np.random.default_rng(4)).measure(seconds(10))
    return bundle, audit, science, campus, dmz_xfer, campus_xfer, local


def test_figure3_simple_dmz(benchmark):
    (bundle, audit, science, campus,
     dmz_xfer, campus_xfer, local) = benchmark.pedantic(
        run_fig3, rounds=1, iterations=1)

    table = ResultTable(
        "Figure 3 — simple Science DMZ: structure and behaviour",
        ["aspect", "value"],
    )
    table.add_row(["audit", "PASS" if audit.passed else "FAIL"])
    table.add_row(["science path", " -> ".join(science.node_names())])
    table.add_row(["campus path", " -> ".join(campus.node_names())])
    table.add_row(["50 GB to DTN (science path)",
                   f"{dmz_xfer.mean_throughput.human()} "
                   f"in {dmz_xfer.duration.human()}"])
    table.add_row(["50 GB to lab server (via firewall)",
                   f"{campus_xfer.mean_throughput.human()} "
                   f"in {campus_xfer.duration.human()}"])
    table.add_row(["campus user -> local DTN access",
                   local.mean_throughput.human()])
    emit("fig3_simple_dmz",
         table.render_text() + "\n\n" + audit.render_text())

    speedup = campus_xfer.duration.s / dmz_xfer.duration.s
    record = ExperimentRecord(
        "Figure 3",
        "DTN on a border-attached DMZ switch with ACL security and "
        "perfSONAR; clean WAN path for science, firewalled path for the "
        "campus; local users still get reasonable performance",
        f"audit {'PASS' if audit.passed else 'FAIL'}; science path "
        f"{science.hop_count} hops firewall-free; DMZ transfer "
        f"{speedup:.0f}x faster; local access "
        f"{local.mean_throughput.human()}",
    )
    record.add_check("audit passes all four patterns", lambda: audit.passed)
    record.add_check("science path is <= 3 hops and firewall-free",
                     lambda: science.hop_count <= 3
                     and not science.traverses_kind("firewall"))
    record.add_check("campus path still crosses the firewall",
                     lambda: campus.traverses_kind("firewall"))
    record.add_check("science transfer >= 20x faster than firewalled",
                     lambda: speedup >= 20)
    record.add_check("local campus access to the DTN exceeds 100 Mbps "
                     "(usable despite the firewall, thanks to low RTT)",
                     lambda: local.mean_throughput.mbps > 100)
    assert_record(record)

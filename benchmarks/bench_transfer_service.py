"""Ablation: managed-transfer concurrency on a DTN endpoint.

§3.2/§6.3's operational layer: science groups submit many transfer tasks
to a Globus-style service, which limits concurrent sessions per DTN.
This bench sweeps the concurrency limit for a queue of dataset pulls and
reports makespan and queue wait — the knob real deployments tune to
balance storage pressure against queue latency.
"""

from __future__ import annotations

import numpy as np

from repro.analysis import ResultTable
from repro.analysis.report import ExperimentRecord
from repro.core import supercomputer_center
from repro.dtn import Dataset, TransferPlan, TransferService, tool_by_name
from repro.units import GB

from _common import assert_record, emit

N_JOBS = 8
CONCURRENCIES = (1, 2, 4)


def run_service(concurrency: int):
    bundle = supercomputer_center()
    svc = TransferService(concurrency_per_source=concurrency)
    tool = tool_by_name("gridftp").with_streams(4)
    for i in range(N_JOBS):
        plan = TransferPlan(bundle.topology, bundle.remote_dtn,
                            bundle.dtns[i % len(bundle.dtns)],
                            Dataset(f"pull-{i}", GB(100), 100), tool,
                            policy=bundle.science_policy)
        svc.submit(plan)
    svc.run()
    waits = [j.queue_wait.s for j in svc.completed()]
    return {
        "makespan_s": svc.makespan().s,
        "mean_wait_s": float(np.mean(waits)),
        "max_wait_s": float(np.max(waits)),
        "moved_gb": svc.total_moved().gigabytes,
        "agg_gbps": svc.aggregate_throughput().gbps,
    }


def run_sweep():
    return {c: run_service(c) for c in CONCURRENCIES}


def test_transfer_service(benchmark):
    results = benchmark.pedantic(run_sweep, rounds=1, iterations=1)

    table = ResultTable(
        f"Ablation — transfer-service concurrency ({N_JOBS} x 100 GB "
        "pulls into the center's DTNs)",
        ["concurrency/source", "makespan", "mean queue wait",
         "max queue wait", "aggregate"],
    )
    for c in CONCURRENCIES:
        r = results[c]
        table.add_row([c, f"{r['makespan_s'] / 60:.1f} min",
                       f"{r['mean_wait_s']:.0f} s",
                       f"{r['max_wait_s']:.0f} s",
                       f"{r['agg_gbps']:.1f} Gbps"])
    emit("transfer_service", table.render_text())

    record = ExperimentRecord(
        "Ablation: managed-transfer concurrency",
        "a task-queue service (Globus Online style) trades queue wait "
        "against concurrent endpoint pressure",
        ", ".join(f"c={c}: {results[c]['makespan_s'] / 60:.1f} min"
                  for c in CONCURRENCIES),
    )
    record.add_check("all jobs complete at every concurrency",
                     lambda: all(r["moved_gb"] == 100 * N_JOBS
                                 for r in results.values()))
    record.add_check("makespan shrinks as concurrency grows",
                     lambda: results[1]["makespan_s"]
                     > results[2]["makespan_s"]
                     > results[4]["makespan_s"] * 0.999)
    record.add_check("queue waits shrink as concurrency grows",
                     lambda: results[1]["mean_wait_s"]
                     >= results[2]["mean_wait_s"]
                     >= results[4]["mean_wait_s"])
    assert_record(record)

"""Ablation: DTN tuning factor decomposition (§3.2 + ESnet tuning guide).

Starting from a stock general-purpose host and ending at the reference
DTN, apply one tuning factor at a time on a clean 10 Gbps / 80 ms path
and measure a 100 GB transfer:

1. stock host, single-stream scp       (the "before" of every use case)
2. + HPN-SSH (remove the app window cap and cipher bottleneck)
3. + kernel TCP buffers sized to the BDP
4. + jumbo frames (9000 MTU)
5. + H-TCP congestion control
6. + parallel streams (GridFTP x8)     (the reference DTN)

Each factor must help (or at least not hurt); buffers and parallelism
dominate on a clean path.
"""

from __future__ import annotations

import numpy as np

from repro.analysis import ResultTable
from repro.analysis.report import ExperimentRecord
from repro.dtn.host import HostSystemProfile, attach_profile
from repro.dtn.storage import ParallelFilesystem
from repro.dtn.tools import tool_by_name
from repro.dtn.transfer import Dataset, TransferPlan
from repro.netsim import Link, Topology
from repro.units import GB, Gbps, MB, bytes_, ms

from _common import assert_record, emit, quick

# Smoke mode moves a smaller sample so the ablation stays O(seconds).
DATASET_GB = quick(100, 10)

STEPS = [
    "1 stock host + scp",
    "2 + hpn-ssh",
    "3 + tcp buffers",
    "4 + jumbo frames",
    "5 + htcp",
    "6 + parallel streams (gridftp x8)",
]


def build_pair(profile: HostSystemProfile, loss: float = 0.0):
    topo = Topology("tuning")
    src = topo.add_host("src", nic_rate=Gbps(10))
    dst = topo.add_host("dst", nic_rate=Gbps(10))
    topo.connect("src", "dst", Link(rate=Gbps(10), delay=ms(40),
                                    mtu=bytes_(9000),
                                    loss_probability=loss))
    pfs = ParallelFilesystem(name="fast-enough")
    attach_profile(src, profile.with_(name="src", storage=pfs))
    attach_profile(dst, profile.with_(name="dst", storage=pfs))
    return topo


def run_ablation(loss: float = 0.0):
    stock = HostSystemProfile(
        name="stock", tcp_buffer_max=MB(4), mtu=bytes_(1500),
        congestion_algorithm="reno", dedicated=False)
    stages = [
        (STEPS[0], stock, "scp"),
        (STEPS[1], stock, "hpn-scp"),
        (STEPS[2], stock.with_(tcp_buffer_max=MB(256)), "hpn-scp"),
        (STEPS[3], stock.with_(tcp_buffer_max=MB(256), mtu=bytes_(9000)),
         "hpn-scp"),
        (STEPS[4], stock.with_(tcp_buffer_max=MB(256), mtu=bytes_(9000),
                               congestion_algorithm="htcp"), "hpn-scp"),
        (STEPS[5], stock.with_(tcp_buffer_max=MB(256), mtu=bytes_(9000),
                               congestion_algorithm="htcp"),
         tool_by_name("gridftp").with_streams(8)),
    ]
    ds = Dataset("tuning-sample", GB(DATASET_GB), 100)
    results = {}
    rng = np.random.default_rng(21) if loss > 0 else None
    for label, profile, tool in stages:
        topo = build_pair(profile, loss)
        report = TransferPlan(topo, "src", "dst", ds, tool).execute(rng)
        results[label] = report
    return results


def test_dtn_tuning_ablation(benchmark):
    results = benchmark.pedantic(run_ablation, rounds=1, iterations=1)

    base = results[STEPS[0]].mean_throughput.bps
    table = ResultTable(
        "Ablation — DTN tuning factors, 100 GB over 10 Gbps / 80 ms RTT",
        ["stage", "rate", "elapsed", "cumulative speedup"],
    )
    for label in STEPS:
        r = results[label]
        table.add_row([label, r.mean_throughput.human(),
                       r.duration.human(),
                       f"{r.mean_throughput.bps / base:.1f}x"])
    emit("dtn_tuning_ablation", table.render_text())

    rates = [results[label].mean_throughput.bps for label in STEPS]
    record = ExperimentRecord(
        "Ablation: DTN tuning (§3.2)",
        "every tuning-guide factor contributes; together they turn a "
        "stock host into a pipe-filling DTN",
        "cumulative speedups: " + ", ".join(
            f"{r / base:.1f}x" for r in rates),
    )
    record.add_check("no stage loses throughput",
                     lambda: all(b >= a * 0.99
                                 for a, b in zip(rates, rates[1:])))
    record.add_check("buffers give the single biggest jump on this path",
                     lambda: rates[2] / rates[1] == max(
                         b / a for a, b in zip(rates, rates[1:])))
    record.add_check("fully tuned DTN fills >= 60% of the 10G pipe",
                     lambda: rates[-1] > 6e9)
    record.add_check("end-to-end tuning gains >= 30x over the stock host",
                     lambda: rates[-1] / rates[0] >= 30)
    assert_record(record)


def test_dtn_tuning_ablation_residual_loss(benchmark):
    """The same ladder on a path with residual loss (1e-5): here jumbo
    frames and H-TCP earn their keep — MSS multiplies the Mathis ceiling
    and H-TCP recovers faster."""
    results = benchmark.pedantic(run_ablation, rounds=1, iterations=1,
                                 kwargs={"loss": 1e-5})
    base = results[STEPS[0]].mean_throughput.bps
    table = ResultTable(
        "Ablation (lossy variant) — same ladder with 1e-5 residual loss",
        ["stage", "rate", "cumulative speedup"],
    )
    for label in STEPS:
        r = results[label]
        table.add_row([label, r.mean_throughput.human(),
                       f"{r.mean_throughput.bps / base:.1f}x"])
    emit("dtn_tuning_ablation_lossy", table.render_text())

    rates = [results[label].mean_throughput.bps for label in STEPS]
    record = ExperimentRecord(
        "Ablation: DTN tuning under residual loss",
        "jumbo frames (6x MSS) and modern congestion control only pay "
        "off once buffers stop being the limit — and under loss they "
        "matter a lot",
        "cumulative speedups: " + ", ".join(
            f"{r / base:.1f}x" for r in rates),
    )
    record.add_check("jumbo frames help under loss (>= 1.5x step)",
                     lambda: rates[3] >= 1.5 * rates[2])
    record.add_check("htcp helps under loss (> 1.1x step)",
                     lambda: rates[4] > 1.1 * rates[3])
    record.add_check("full ladder still reaches >= 10x the stock host",
                     lambda: rates[-1] / rates[0] >= 10)
    assert_record(record)

"""Ablation: security placement — firewall appliance vs router ACL vs none.

§3.4/§5's design choice isolated: the *same* IP/port policy enforced
three ways on an otherwise identical 10 Gbps, 40 ms path:

* no enforcement (upper bound);
* router/switch ACL (the Science DMZ pattern);
* stateful firewall appliance (per-flow processor + shallow buffers),
  with and without TCP sequence checking.

The claim under test: ACLs cost nothing measurable; the firewall costs
almost everything; sequence checking makes it worse.
"""

from __future__ import annotations


from repro.analysis import ResultTable
from repro.analysis.report import ExperimentRecord
from repro.devices.acl import AccessControlList, AclEngine
from repro.devices.firewall import Firewall
from repro.dtn.host import attach_profile, tuned_dtn
from repro.netsim import Link, Topology
from repro.netsim.node import Router
from repro.tcp import HTcp, TcpConnection
from repro.units import Gbps, bytes_, ms, seconds, us

from _common import assert_record, emit


def build(security: str) -> Topology:
    topo = Topology(f"security-{security}")
    src = topo.add_host("remote", nic_rate=Gbps(10))
    dst = topo.add_host("dtn", nic_rate=Gbps(10))
    attach_profile(src, tuned_dtn("remote"))
    attach_profile(dst, tuned_dtn("dtn"))
    mid = topo.add_node(Router(name="mid"))
    topo.connect("remote", "mid", Link(rate=Gbps(10), delay=ms(20),
                                       mtu=bytes_(9000)))
    if security.startswith("firewall"):
        fw = topo.add_node(Firewall(
            name="fw",
            sequence_checking=security.endswith("seqcheck"),
        ))
        fw.policy.allow(dst="dtn", port=50000)
        topo.connect("mid", "fw", Link(rate=Gbps(10), delay=us(10),
                                       mtu=bytes_(9000)))
        topo.connect("fw", "dtn", Link(rate=Gbps(10), delay=us(10),
                                       mtu=bytes_(9000)))
    else:
        if security == "acl":
            acl = AccessControlList(name="dmz-acl")
            acl.permit(dst="dtn", port=50000)
            mid.attach(AclEngine(acl=acl))
        topo.connect("mid", "dtn", Link(rate=Gbps(10), delay=us(10),
                                        mtu=bytes_(9000)))
    return topo


def measure(security: str) -> float:
    topo = build(security)
    profile = topo.profile_between("remote", "dtn")
    conn = TcpConnection(profile, algorithm=HTcp())
    return conn.measure(seconds(30)).mean_throughput.bps


def run_ablation():
    return {s: measure(s) for s in
            ("none", "acl", "firewall", "firewall-seqcheck")}


def test_security_ablation(benchmark):
    rates = benchmark.pedantic(run_ablation, rounds=1, iterations=1)

    table = ResultTable(
        "Ablation — same policy, three enforcement mechanisms "
        "(10 Gbps path, 40 ms RTT, tuned hosts)",
        ["enforcement", "TCP throughput", "cost vs none"],
    )
    for s in ("none", "acl", "firewall", "firewall-seqcheck"):
        table.add_row([s, f"{rates[s] / 1e9:.3f} Gbps",
                       f"{(1 - rates[s] / rates['none']):.1%}"])
    emit("security_ablation", table.render_text())

    record = ExperimentRecord(
        "Ablation: security placement (§3.4/§5)",
        "ACLs enforce the same policy at line rate; firewalls impose "
        "per-flow processor limits and buffer loss; sequence checking "
        "adds the window clamp",
        f"none {rates['none'] / 1e9:.2f} / acl {rates['acl'] / 1e9:.2f} / "
        f"firewall {rates['firewall'] / 1e9:.2f} / +seqcheck "
        f"{rates['firewall-seqcheck'] / 1e9:.3f} Gbps",
    )
    record.add_check("ACL within 1% of no enforcement",
                     lambda: rates["acl"] > 0.99 * rates["none"])
    record.add_check("firewall costs >= 80% of the throughput",
                     lambda: rates["firewall"] < 0.2 * rates["none"])
    record.add_check("sequence checking makes the firewall strictly worse",
                     lambda: rates["firewall-seqcheck"] < rates["firewall"])
    record.add_check("ordering: none >= acl > firewall > firewall+seqcheck",
                     lambda: rates["none"] >= rates["acl"]
                     > rates["firewall"] > rates["firewall-seqcheck"])
    assert_record(record)

"""Ablation: fluid vs packet-level model cross-validation.

The library uses two traffic models: a per-RTT fluid TCP simulation for
end-to-end experiments and a per-packet queue sweep for device studies.
This bench checks them against each other and against closed-form theory
on scenarios where all should agree:

1. burst loss into a shallow queue: closed form vs packet sweep;
2. fan-in overload: delivered rate must match min(offered, egress)
   within a small tolerance in the packet model;
3. window-limited TCP: fluid simulation vs window/RTT arithmetic;
4. loss-limited TCP: fluid simulation vs the Mathis bound's RTT scaling.
"""

from __future__ import annotations

import numpy as np

from repro.analysis import ResultTable
from repro.analysis.report import ExperimentRecord
from repro.netsim import Link, Topology
from repro.netsim.buffers import DropTailQueue
from repro.netsim.packetsim import BurstySource, simulate_fan_in
from repro.tcp import Reno, TcpConnection
from repro.units import GB, Gbps, KB, MB, Mbps, bytes_, ms, seconds

from _common import assert_record, emit, quick

# Smoke-mode knobs: shorter packet/fluid horizons, one seed.
FANIN_SECONDS = quick(10.0, 1.0)
MEASURE_SECONDS = quick(60, 10)
SEEDS = quick((1, 2, 3), (1,))


def burst_agreement():
    """(closed_form, packet) loss for one bursty flow into a small queue."""
    src = BurstySource(name="s", line_rate=Gbps(1), mean_rate=Mbps(200),
                       burst_size=KB(512))
    queue = DropTailQueue(capacity=KB(96), service_rate=Mbps(650))
    closed = queue.burst_loss_fraction(src.burst_size, src.line_rate)
    packet = simulate_fan_in([src], egress_rate=Mbps(650),
                             buffer_size=KB(96), duration=seconds(2.0),
                             rng=np.random.default_rng(1)).loss_fraction
    return closed, packet


def fanin_conservation():
    """Delivered rate == min(offered, egress) when deeply buffered."""
    sources = [BurstySource(name=f"s{i}", line_rate=Gbps(1),
                            mean_rate=Mbps(700), burst_size=KB(256))
               for i in range(8)]  # 5.6 Gbps offered
    # Long run so the (bounded) standing backlog is an ignorable share of
    # "delivered" — accepted-into-queue converges on drained-at-egress.
    result = simulate_fan_in(sources, egress_rate=Gbps(4),
                             buffer_size=MB(64), duration=seconds(FANIN_SECONDS),
                             rng=np.random.default_rng(2))
    return result.offered_rate.bps, result.delivered_rate.bps


def window_limited_agreement():
    """Fluid TCP vs window/RTT arithmetic on a clamped path."""
    topo = Topology("wl")
    topo.add_host("a", nic_rate=Gbps(10))
    topo.add_host("b", nic_rate=Gbps(10))
    topo.connect("a", "b", Link(rate=Gbps(10), delay=ms(25),
                                mtu=bytes_(9000)))
    profile = topo.profile_between("a", "b")
    from dataclasses import replace
    profile = replace(profile,
                      flow=profile.flow.with_(max_receive_window=MB(8)))
    simulated = TcpConnection(profile).transfer(GB(10)).mean_throughput.bps
    analytic = MB(8).bits / profile.base_rtt.s
    return simulated, analytic


def mathis_rtt_scaling():
    """Fluid lossy TCP throughput should fall ~linearly in 1/RTT."""
    def rate_at(rtt_ms, seed):
        topo = Topology("ms")
        topo.add_host("a", nic_rate=Gbps(10))
        topo.add_host("b", nic_rate=Gbps(10))
        topo.connect("a", "b", Link(rate=Gbps(10), delay=ms(rtt_ms / 2),
                                    mtu=bytes_(9000),
                                    loss_probability=1e-4))
        profile = topo.profile_between("a", "b")
        from dataclasses import replace
        profile = replace(profile,
                          flow=profile.flow.with_(max_receive_window=MB(512)))
        conn = TcpConnection(profile, algorithm=Reno(),
                             rng=np.random.default_rng(seed))
        return conn.measure(seconds(MEASURE_SECONDS),
                            max_rounds=200_000).mean_throughput.bps

    r20 = np.mean([rate_at(20, s) for s in SEEDS])
    r80 = np.mean([rate_at(80, s) for s in SEEDS])
    return r20, r80


def run_crossval():
    return (burst_agreement(), fanin_conservation(),
            window_limited_agreement(), mathis_rtt_scaling())


def test_model_crossval(benchmark):
    ((closed, packet), (offered, delivered),
     (sim_wl, analytic_wl), (r20, r80)) = benchmark.pedantic(
        run_crossval, rounds=1, iterations=1)

    table = ResultTable(
        "Ablation — model cross-validation",
        ["scenario", "model A", "model B", "agreement"],
    )
    table.add_row(["burst loss (closed vs packet)",
                   f"{closed:.2%}", f"{packet:.2%}",
                   f"{abs(closed - packet):.2%} abs diff"])
    table.add_row(["fan-in conservation (offered vs delivered at 4G cap)",
                   f"{offered / 1e9:.2f} Gbps offered",
                   f"{delivered / 1e9:.2f} Gbps delivered",
                   f"cap 4.00 Gbps"])
    table.add_row(["window-limited TCP (fluid vs window/RTT)",
                   f"{sim_wl / 1e9:.3f} Gbps", f"{analytic_wl / 1e9:.3f} Gbps",
                   f"{abs(sim_wl - analytic_wl) / analytic_wl:.1%} rel"])
    table.add_row(["Mathis RTT scaling (rate@20ms / rate@80ms ~ 4)",
                   f"{r20 / 1e6:.0f} Mbps", f"{r80 / 1e6:.0f} Mbps",
                   f"ratio {r20 / r80:.2f}"])
    emit("model_crossval", table.render_text())

    record = ExperimentRecord(
        "Ablation: fluid vs packet model",
        "the two traffic models and closed-form theory agree on the "
        "scenarios they share",
        f"burst diff {abs(closed - packet):.2%}; window-limited diff "
        f"{abs(sim_wl - analytic_wl) / analytic_wl:.1%}; RTT ratio "
        f"{r20 / r80:.2f}",
    )
    record.add_check("burst-loss models within 5 percentage points",
                     lambda: abs(closed - packet) < 0.05)
    record.add_check("packet model conserves: delivered <= offered and "
                     "delivered ~= egress cap under overload",
                     lambda: delivered <= offered
                     and abs(delivered - 4e9) / 4e9 < 0.05)
    record.add_check("fluid window-limited rate within 10% of window/RTT",
                     lambda: abs(sim_wl - analytic_wl) / analytic_wl < 0.10)
    record.add_check("lossy-rate RTT ratio in [2.5, 6] (Mathis predicts 4)",
                     lambda: 2.5 < r20 / r80 < 6)
    assert_record(record)

"""§6.4: NERSC <-> OLCF DTN deployment.

Paper numbers: before DTNs, a single 33 GB carbon-14 input file took
"more than an entire workday" (one of 20 such files); after, the
collaboration ran at 200 MB/s and moved "all 40 TB of data between NERSC
and OLCF in less than three days"; WAN transfers between the centers
increased "by at least a factor of 20 for many collaborations".
"""

from __future__ import annotations

import numpy as np

from repro.analysis import ResultTable
from repro.analysis.report import ExperimentRecord
from repro.core import general_purpose_campus, supercomputer_center
from repro.dtn import Dataset, TransferPlan, tool_by_name
from repro.units import GB, TB, ms

from _common import assert_record, emit

#: NERSC (Oakland) <-> OLCF (Oak Ridge) is ~60 ms RTT.
WAN_RTT = ms(60)


def run_nersc_olcf():
    rng = np.random.default_rng(17)
    one_file = Dataset("c14-single-file", GB(33), 1)
    campaign = Dataset("c14-campaign-40tb", TB(40), 1200)

    # Before: scp into a login-node-class host through the border firewall.
    before = general_purpose_campus(wan_rtt=WAN_RTT)
    before_file = TransferPlan(before.topology, before.remote_dtn,
                               "lab-server1", one_file, "scp").execute(rng)
    before_campaign = TransferPlan(before.topology, before.remote_dtn,
                                   "lab-server1", campaign,
                                   "scp").execute(rng)

    # After: center DTNs on both ends (Figure 4 design), GridFTP.  The
    # destination filesystem is sized to the 2009-era HPSS-backed scratch
    # the paper's 200 MB/s reflects, not a modern Lustre.
    from repro.dtn import ParallelFilesystem, attach_profile, tuned_dtn
    from repro.units import MBps
    after = supercomputer_center(wan_rtt=WAN_RTT)
    era_fs = ParallelFilesystem(name="hpss-scratch-2009",
                                per_client_limit=MBps(260))
    attach_profile(after.topology.node("dtn1"), tuned_dtn("dtn1", era_fs))
    tool = tool_by_name("gridftp").with_streams(8)
    after_file = TransferPlan(after.topology, after.remote_dtn, "dtn1",
                              one_file, tool,
                              policy=after.science_policy).execute()
    after_campaign = TransferPlan(after.topology, after.remote_dtn, "dtn1",
                                  campaign, tool,
                                  policy=after.science_policy).execute()
    return before_file, before_campaign, after_file, after_campaign


def test_nersc_olcf(benchmark):
    (before_file, before_campaign,
     after_file, after_campaign) = benchmark.pedantic(
        run_nersc_olcf, rounds=1, iterations=1)

    improvement = before_campaign.duration.s / after_campaign.duration.s
    table = ResultTable(
        "§6.4 NERSC <-> OLCF — carbon-14 collaboration",
        ["quantity", "paper", "measured"],
    )
    table.add_row(["33 GB file, before", "> a workday",
                   before_file.duration.human()])
    table.add_row(["33 GB file, after", "(minutes at 200 MB/s)",
                   after_file.duration.human()])
    table.add_row(["sustained rate, after", "200 MB/s",
                   f"{after_campaign.mean_throughput.MBps:.0f} MB/s"])
    table.add_row(["40 TB campaign, after", "< 3 days",
                   after_campaign.duration.human()])
    table.add_row(["improvement", ">= 20x", f"{improvement:.0f}x"])
    emit("nersc_olcf", table.render_text())

    record = ExperimentRecord(
        "§6.4 NERSC/OLCF",
        "33 GB file took > a workday before; 200 MB/s after; 40 TB in "
        "< 3 days; >= 20x for many collaborations",
        f"before {before_file.duration.human()}/file; after "
        f"{after_campaign.mean_throughput.MBps:.0f} MB/s, 40 TB in "
        f"{after_campaign.duration.human()}; {improvement:.0f}x",
    )
    record.add_check("a 33 GB file took more than an 8-hour workday before",
                     lambda: before_file.duration.hours > 8)
    record.add_check("after: sustained rate at least 200 MB/s",
                     lambda: after_campaign.mean_throughput.MBps >= 200)
    record.add_check("after: 40 TB inside three days",
                     lambda: after_campaign.duration.days < 3)
    record.add_check("overall improvement at least 20x",
                     lambda: improvement >= 20)
    assert_record(record)

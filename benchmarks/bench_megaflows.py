"""Megaflows: the mean-field engine at ESnet traffic-matrix scale.

The Science DMZ paper's designs are sized for a handful of named
transfers; the Snowmass-era traffic question is a *matrix* — every site
pair exchanging bulk data continuously, 10k–1M concurrent demands.
The per-flow kernels (even vectorized) carry state per stream and top
out around thousands of flows; the :mod:`repro.fluid` engine collapses
same-path, same-congestion-control flows into a few hundred flow
classes and advances population aggregates instead.

Two results, both regenerated from real runs:

* ``megaflows_end_to_end.txt`` — a 100k-flow gravity matrix over the
  12-site WAN backbone, run to completion on the fluid engine;
* ``megaflows_speedup.txt`` — the matched-horizon comparison against
  the vectorized per-flow kernel: wall-time speedup (floor 20x in full
  mode) and the delivered-bytes ratio (the engine's accuracy contract:
  within 1% at this scale).

Quick mode shrinks to 5k flows but keeps *both* assertions live (at a
relaxed floor/tolerance) so the CI smoke gates the same contract.
"""

from __future__ import annotations

import time

import numpy as np

from repro.tcp.simulate import MultiFlowSimulation
from repro.units import MB, seconds
from repro.workloads import traffic_matrix, wan_backbone

from _common import emit, quick

N_SITES = 12
SITES = [f"site{i}" for i in range(N_SITES)]

#: Matched-horizon comparison size: full mode is the headline 100k
#: flows (400k streams); quick keeps 5k flows — still far above the
#: hybrid switchover threshold, small enough for the per-flow side.
N_FLOWS = quick(100_000, 5_000)
HORIZON = quick(seconds(2), seconds(1))
SPEEDUP_FLOOR = quick(20.0, 2.0)
RATIO_TOL = quick(0.01, 0.05)

#: End-to-end run: modest per-transfer sizes so 100k flows *finish*
#: within a bench-sized wall budget (the matrix's aggregate is what
#: stresses the engine, not any single transfer).
E2E_FLOWS = quick(100_000, 5_000)
E2E_MEAN_SIZE = quick(MB(16), MB(8))
E2E_WINDOW = quick(seconds(30), seconds(5))


def _build_sim(backend: str, *, n_flows: int, mean_size=None,
               arrival_window=None):
    topo = wan_backbone(N_SITES)
    kwargs = {}
    if mean_size is not None:
        kwargs["mean_size"] = mean_size
    if arrival_window is not None:
        kwargs["arrival_window"] = arrival_window
    workload = traffic_matrix(SITES, n_flows=n_flows,
                              rng=np.random.default_rng(42), **kwargs)
    return MultiFlowSimulation(topo, workload.specs(), backend=backend)


def _delivered_bits(progress) -> float:
    return float(sum(p.delivered.bits for p in progress.values()))


def test_megaflows_end_to_end():
    """100k concurrent flows, fluid engine, run to completion."""
    sim = _build_sim("fluid", n_flows=E2E_FLOWS, mean_size=E2E_MEAN_SIZE,
                     arrival_window=E2E_WINDOW)
    requested = sum(p.spec.size.bits for p in sim.progress.values())
    t0 = time.perf_counter()
    progress = sim.run()
    wall = time.perf_counter() - t0

    finished = sum(1 for p in progress.values()
                   if p.finish_time is not None)
    delivered = _delivered_bits(progress)
    result = sim.fluid_result
    emit("megaflows_end_to_end",
         f"gravity traffic matrix, {E2E_FLOWS} concurrent flows "
         "(fluid engine, end to end)\n"
         f"  finished:        {finished}/{E2E_FLOWS}\n"
         f"  delivered:       {delivered / 8e9:.1f} GB "
         f"of {requested / 8e9:.1f} GB\n"
         f"  simulated time:  {sim.finished_at.s:.1f}s\n"
         f"  wall time:       {wall:.2f}s\n"
         f"  flow classes:    {result.n_classes} "
         f"({result.classes_retired} retired)\n"
         f"  ticks:           {result.ticks}")

    assert finished == E2E_FLOWS, f"only {finished}/{E2E_FLOWS} finished"
    # Conservation: every flow ran to completion, so delivered bytes
    # must equal requested bytes exactly (deaths clamp at size).
    np.testing.assert_allclose(delivered, requested, rtol=1e-9)


def test_megaflows_matched_horizon_speedup():
    """Fluid vs vectorized per-flow at the same horizon: the >=20x
    speedup claim and the 1% delivered-bytes accuracy contract."""
    sim_np = _build_sim("numpy", n_flows=N_FLOWS)
    t0 = time.perf_counter()
    numpy_progress = sim_np.run(until=HORIZON)
    numpy_wall = time.perf_counter() - t0

    sim_fl = _build_sim("fluid", n_flows=N_FLOWS)
    t0 = time.perf_counter()
    fluid_progress = sim_fl.run(until=HORIZON)
    fluid_wall = time.perf_counter() - t0

    numpy_bits = _delivered_bits(numpy_progress)
    fluid_bits = _delivered_bits(fluid_progress)
    ratio = fluid_bits / numpy_bits
    speedup = numpy_wall / fluid_wall

    emit("megaflows_speedup",
         f"matched-horizon backend comparison, {N_FLOWS} flows over "
         f"{HORIZON.s:.1f}s simulated\n"
         f"  numpy (per-flow):   {numpy_wall:.2f}s wall\n"
         f"  fluid (mean-field): {fluid_wall:.2f}s wall\n"
         f"  speedup:            {speedup:.1f}x "
         f"(floor {SPEEDUP_FLOOR:.1f}x)\n"
         f"  delivered ratio:    {ratio:.4f} (fluid/numpy, "
         f"tolerance {RATIO_TOL:.0%})")

    # Both gates stay asserted in quick mode (relaxed constants above):
    # this is the CI smoke for the engine's performance *and* accuracy.
    assert speedup >= SPEEDUP_FLOOR, (
        f"fluid speedup {speedup:.1f}x below floor {SPEEDUP_FLOOR:.1f}x")
    assert abs(ratio - 1.0) <= RATIO_TOL, (
        f"delivered-bytes ratio {ratio:.4f} outside "
        f"{RATIO_TOL:.0%} of per-flow at matched horizon")


def test_megaflows_hybrid_dispatch():
    """The hybrid dispatcher sends this matrix to the fluid engine
    (population far above the switchover) and a trimmed version of the
    same matrix to the exact per-flow kernels."""
    big = _build_sim("hybrid", n_flows=N_FLOWS)
    assert big.backend == "fluid"
    small = _build_sim("hybrid", n_flows=64)
    assert small.backend == "numpy"

"""Ablation: monitoring cadence vs soft-failure detection time (§3.3).

"Soft failures often go undetected for many months" without active
testing.  This bench quantifies the monitoring pattern's payoff: inject
the §2 failing line card into a Science DMZ and measure time-to-first-
alert as a function of the OWAMP probing cadence, plus the no-monitoring
baseline (never detected by counters at all).
"""

from __future__ import annotations

import numpy as np

from repro.analysis import ResultTable
from repro.analysis.report import ExperimentRecord
from repro.core import simple_science_dmz
from repro.devices.faults import FailingLineCard, FaultInjector
from repro.netsim import Simulator
from repro.perfsonar import (
    AlertRule,
    MeasurementArchive,
    MeshConfig,
    MeshSchedule,
    ThresholdAlerter,
)
from repro.units import minutes

from _common import assert_record, emit

#: OWAMP cadences swept (probe interval in minutes).
CADENCES_MIN = (1, 5, 15, 60)
ONSET = minutes(60)
HORIZON = minutes(60 * 12)


def detection_delay(cadence_min: float, seed: int) -> float:
    """Minutes from fault onset to first alert at the given cadence."""
    bundle = simple_science_dmz()
    topo = bundle.topology
    sim = Simulator(seed=seed)
    archive = MeasurementArchive()
    mesh = MeshSchedule(
        topo, ["dmz-perfsonar", "remote-dtn"], sim, archive,
        config=MeshConfig(owamp_interval=minutes(cadence_min),
                          bwctl_interval=minutes(24 * 60),  # owamp only
                          owamp_packets=20_000),
        policy=bundle.science_policy)
    mesh.start()
    injector = FaultInjector(sim)
    injector.inject_at(ONSET, topo.node("border"), FailingLineCard())
    sim.run_until(HORIZON.s)
    alerter = ThresholdAlerter(archive, AlertRule(loss_rate_threshold=1e-5))
    alerts = [a for a in alerter.scan() if a.time >= ONSET.s]
    if not alerts:
        return float("inf")
    return (min(a.time for a in alerts) - ONSET.s) / 60.0


def run_sweep():
    delays = {}
    for cadence in CADENCES_MIN:
        trials = [detection_delay(cadence, seed) for seed in (1, 2, 3)]
        delays[cadence] = float(np.mean(trials))
    return delays


def test_monitoring_detection(benchmark):
    delays = benchmark.pedantic(run_sweep, rounds=1, iterations=1)

    table = ResultTable(
        "Ablation — OWAMP cadence vs time-to-detect the §2 line card "
        "(mean of 3 seeds)",
        ["probe interval", "mean detection delay"],
    )
    for cadence in CADENCES_MIN:
        d = delays[cadence]
        table.add_row([f"{cadence} min",
                       "never within 12 h" if np.isinf(d)
                       else f"{d:.0f} min"])
    table.add_row(["no monitoring (counters only)",
                   "never (fault invisible to counters)"])
    emit("monitoring_detection", table.render_text())

    record = ExperimentRecord(
        "Ablation: monitoring cadence (§3.3)",
        "regular active testing converts months-undetected soft failures "
        "into prompt alerts; detection time scales with probe cadence",
        ", ".join(f"{c}min->{delays[c]:.0f}min" for c in CADENCES_MIN
                  if not np.isinf(delays[c])),
    )
    record.add_check("1-minute probing detects within 30 minutes",
                     lambda: delays[1] <= 30)
    record.add_check("every swept cadence detects within the 12 h window",
                     lambda: all(not np.isinf(delays[c])
                                 for c in CADENCES_MIN))
    record.add_check("detection delay grows with probe interval",
                     lambda: delays[1] <= delays[15] <= delays[60])
    assert_record(record)

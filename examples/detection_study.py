#!/usr/bin/env python
"""Detection-latency study through the serializable experiment layer.

How fast does a Science DMZ's monitoring catch a §2-style soft failure,
as a function of how aggressively it probes?  The whole study is one
:class:`repro.experiment.SweepSpec` over the registered
``detection_delay`` target — each grid point builds a
:class:`repro.scenario.Scenario` (simple Science DMZ, 1/22000 line card
at T+30 min, 8-hour watch) and reports minutes-to-first-alert.  Because
it is a spec, the identical study also runs from JSON::

    python - <<'PY'
    from examples.detection_study import study_spec
    study_spec().save("detection_study.json")
    PY
    python -m repro.cli run detection_study.json --cache

Run:  python examples/detection_study.py
"""

from repro.experiment import RunContext, SweepSpec, run_experiment

CADENCES_MIN = (1, 5, 15)
PROBE_COUNTS = (600, 6000, 20000)
REPS = (1, 2)


def study_spec() -> SweepSpec:
    """The probe-cadence × probe-volume grid, two seeds per point."""
    return SweepSpec.from_grid(
        {"cadence_min": list(CADENCES_MIN),
         "probes": list(PROBE_COUNTS),
         "rep": list(REPS)},
        name="detection-study", target="detection_delay",
        value_label="detect_delay_min",
        description="minutes to detect the §2 line card vs OWAMP "
                    "cadence and probe volume (fault at T+30min, "
                    "8h watch)")


def main() -> None:
    result = run_experiment(study_spec(), RunContext.from_env(),
                            persist=False).value

    # Collapse the rep axis: best (minimum) detection delay per point;
    # a None value means that seed's mesh never saw the loss.
    best_delay = {}
    for record in result.records:
        key = (record.params["cadence_min"], record.params["probes"])
        seen = best_delay.get(key)
        if record.value is not None and (seen is None
                                         or record.value < seen):
            best_delay[key] = record.value

    from repro.analysis import ResultTable
    table = ResultTable(
        "minutes to detect a 1/22000-loss line card "
        f"(min of {len(REPS)} seeds, fault at T+30min, 8h watch)",
        ["cadence_min", "probes", "detect_delay_min"])
    for cadence in CADENCES_MIN:
        for probes in PROBE_COUNTS:
            delay = best_delay.get((cadence, probes))
            table.add_row([cadence, probes,
                           "missed" if delay is None else delay])
    print(table.render_text())

    detected = {k: v for k, v in best_delay.items() if v is not None}
    fastest = min(detected, key=detected.get)
    print(f"\nfastest configuration: cadence_min={fastest[0]}, "
          f"probes={fastest[1]} -> {detected[fastest]} min")
    print("takeaway: probe volume matters as much as cadence at loss "
          "rates this low — single sessions usually see zero lost packets.")


if __name__ == "__main__":
    main()

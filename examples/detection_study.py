#!/usr/bin/env python
"""Detection-latency study with the scenario runner and sweep helper.

How fast does a Science DMZ's monitoring catch a §2-style soft failure,
as a function of how aggressively it probes?  This composes two of the
library's orchestration tools:

* :class:`repro.scenario.Scenario` — declarative fault/mesh timelines;
* :func:`repro.analysis.sweep` — parameter grids with table output.

Run:  python examples/detection_study.py
"""

from repro.analysis import sweep
from repro.core import simple_science_dmz
from repro.devices.faults import FailingLineCard
from repro.perfsonar import MeshConfig
from repro.scenario import Scenario
from repro.units import minutes


def detection_delay_minutes(cadence_min: float, probes: int,
                            seed: int) -> float:
    """Minutes to detect the §2 line card at the given probe settings."""
    bundle = simple_science_dmz()
    scenario = (
        Scenario(bundle, seed=seed)
        .with_mesh(
            ["dmz-perfsonar", "remote-dtn"],
            config=MeshConfig(owamp_interval=minutes(cadence_min),
                              bwctl_interval=minutes(60),
                              owamp_packets=probes))
        .inject("border", FailingLineCard(), at=minutes(30))
    )
    outcome = scenario.run(until=minutes(30 + 8 * 60))
    delay = outcome.detection_delays[0]
    return float("inf") if delay is None else delay / 60.0


def main() -> None:
    result = sweep(
        lambda cadence_min, probes: round(
            min(detection_delay_minutes(cadence_min, probes, seed)
                for seed in (1, 2)), 1),
        {
            "cadence_min": [1, 5, 15],
            "probes": [600, 6000, 20000],
        },
        value_label="detect_delay_min",
    )
    print(result.table(
        "minutes to detect a 1/22000-loss line card "
        "(min of 2 seeds, fault at T+30min, 8h watch)").render_text())

    best = result.best(key=lambda v: -v if v != float("inf") else -1e9)
    print(f"\nfastest configuration: {best.params} "
          f"-> {best.value} min")
    print("takeaway: probe volume matters as much as cadence at loss "
          "rates this low — single sessions usually see zero lost packets.")


if __name__ == "__main__":
    main()

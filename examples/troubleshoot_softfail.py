#!/usr/bin/env python
"""Soft-failure troubleshooting with perfSONAR (paper §2 + §3.3).

Re-enacts the ESnet failing-line-card incident end to end:

1. a Science DMZ runs regular OWAMP/BWCTL tests against a remote peer;
2. at T+30 min a line card on the border router starts dropping
   1 in 22,000 packets — invisible to the router's error counters;
3. device-level arithmetic shows why nobody notices (~450 Kbps of loss
   on a 10G card) while TCP collapses (Mathis);
4. the monitoring mesh alerts, and per-segment localization names the
   culprit element;
5. the repair restores the dashboard to green.

Run:  python examples/troubleshoot_softfail.py
"""

import numpy as np

from repro.core import simple_science_dmz
from repro.devices.faults import FailingLineCard, FaultInjector
from repro.netsim import Simulator
from repro.perfsonar import (
    AlertRule,
    Dashboard,
    MeasurementArchive,
    MeshConfig,
    MeshSchedule,
    ThresholdAlerter,
    localize_loss,
)
from repro.tcp.mathis import (
    mathis_throughput,
    packets_lost_per_second,
    packets_per_second,
)
from repro.units import Gbps, bytes_, minutes


def main() -> None:
    bundle = simple_science_dmz()
    topo = bundle.topology
    sim = Simulator(seed=20)
    archive = MeasurementArchive()
    hosts = ["dmz-perfsonar", "remote-dtn"]
    mesh = MeshSchedule(topo, hosts, sim, archive,
                        config=MeshConfig(owamp_interval=minutes(1),
                                          bwctl_interval=minutes(10),
                                          owamp_packets=20_000),
                        policy=bundle.science_policy)
    mesh.start()

    # --- the §2 arithmetic -------------------------------------------------
    fps = packets_per_second(Gbps(10), bytes_(1538))
    lost = packets_lost_per_second(Gbps(10), bytes_(1538), 1 / 22000)
    device_kbps = lost * 1538 * 8 / 1e3
    profile = topo.profile_between("dtn1", bundle.remote_dtn,
                                   **bundle.science_policy)
    tcp_after = mathis_throughput(profile.flow.mss, profile.base_rtt,
                                  1 / 22000)
    print("the failing-line-card arithmetic (paper §2):")
    print(f"  line card at peak: {fps:,.0f} frames/s")
    print(f"  1/22000 loss     : {lost:.0f} packets/s "
          f"= only {device_kbps:.0f} Kbps on the device")
    print(f"  but end-to-end TCP ceiling (Mathis, {profile.base_rtt.human()} "
          f"RTT): {tcp_after.human()} on a 10 Gbps path\n")

    # --- run the incident ----------------------------------------------------
    injector = FaultInjector(sim)
    border = topo.node("border")
    injector.inject_at(minutes(30), border, FailingLineCard())
    sim.run_until(minutes(70).s)

    fault = injector.history[0]
    print(f"T+30min: fault injected on {fault.node_name!r} "
          f"(visible to counters: "
          f"{getattr(fault.fault, 'visible_to_counters', True)})")

    alerter = ThresholdAlerter(archive, AlertRule(loss_rate_threshold=1e-5))
    alerts = [a for a in alerter.scan() if a.time >= minutes(30).s]
    first = min(alerts, key=lambda a: a.time)
    delay = (first.time - minutes(30).s) / 60
    print(f"T+{first.time / 60:.0f}min: first alert "
          f"({delay:.0f} min after onset): {first.message}\n")

    # --- localization -----------------------------------------------------------
    path = topo.path("dmz-perfsonar", bundle.remote_dtn,
                     **bundle.science_policy)
    culprits = localize_loss(topo, path)
    print("per-segment localization of the science path:")
    for name, p in culprits:
        print(f"  {name}: loss {p:.5%}   <-- culprit")
    print()

    # --- dashboard before/after repair ------------------------------------------
    dash = Dashboard(archive, hosts, expected_rate=Gbps(2.5))
    print("dashboard during the incident:")
    print(dash.render_text())

    injector.clear(fault, border)
    mesh.run_bwctl_round()
    mesh.run_owamp_round()
    print("dashboard after the repair:")
    print(dash.render_text())


if __name__ == "__main__":
    main()

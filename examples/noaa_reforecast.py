#!/usr/bin/env python
"""The NOAA reforecast case study (paper §6.3).

In 2010 NOAA's Earth System Research Lab computed decades of historical
GEFS forecasts at NERSC (800 TB on HPSS) and needed ~170 TB back in
Boulder.  Through the lab's legacy FTP server behind the firewall, data
"trickled in at about 1-2MB/s".  Rebuilt as a Science DMZ DTN with Globus
Online, the team moved 273 files / 239.5 GB in just over 10 minutes
(~395 MB/s) — "a throughput increase of nearly 200 times".

This example reconstructs both configurations and reports:
  * the measured rate of each path,
  * the 239.5 GB sample transfer time,
  * the speedup,
  * the projected time for the full 170 TB campaign both ways.

Run:  python examples/noaa_reforecast.py
"""

import numpy as np

from repro.analysis import ResultTable
from repro.core import general_purpose_campus, simple_science_dmz
from repro.dtn import Dataset, TransferPlan, tool_by_name
from repro.units import ms
from repro.workloads import NOAA_GEFS_FULL_PULL, NOAA_GEFS_SAMPLE


def main() -> None:
    rng = np.random.default_rng(63)
    # NERSC (Oakland) <-> NOAA Boulder: ~25 ms RTT on ESnet.
    before = general_purpose_campus(wan_rtt=ms(25))
    after = simple_science_dmz(wan_rtt=ms(25))

    print(NOAA_GEFS_SAMPLE.describe())
    print()

    # Before: legacy FTP server behind the NOAA firewall.
    ftp = TransferPlan(before.topology, before.remote_dtn, "lab-server1",
                       NOAA_GEFS_SAMPLE, "ftp").execute(rng)

    # After: dedicated DTN on the Science DMZ, driven by Globus Online.
    globus = TransferPlan(after.topology, after.remote_dtn, "dtn1",
                          NOAA_GEFS_SAMPLE,
                          tool_by_name("globus").with_streams(8),
                          policy=after.science_policy).execute()

    table = ResultTable(
        "NOAA GEFS sample pull (239.5 GB, 273 files) — paper §6.3",
        ["configuration", "rate (MB/s)", "elapsed", "limited by"],
    )
    table.add_row(["FTP behind firewall (before)",
                   f"{ftp.mean_throughput.MBps:.1f}",
                   ftp.duration.human(), ftp.limiting_factor])
    table.add_row(["Science DMZ DTN + Globus (after)",
                   f"{globus.mean_throughput.MBps:.1f}",
                   globus.duration.human(), globus.limiting_factor])
    print(table.render_text())

    speedup = ftp.duration.s / globus.duration.s
    print(f"\nspeedup: {speedup:.0f}x   "
          f"(paper: 'nearly 200 times', 1-2 MB/s -> ~395 MB/s)")

    # Project the full 170 TB campaign both ways.
    full_ftp_days = (NOAA_GEFS_FULL_PULL.total_size.bits
                     / ftp.mean_throughput.bps) / 86400
    full_dtn_days = (NOAA_GEFS_FULL_PULL.total_size.bits
                     / globus.mean_throughput.bps) / 86400
    print(f"\nprojected 170 TB campaign: "
          f"{full_ftp_days:.0f} days via FTP vs "
          f"{full_dtn_days:.1f} days via the DTN")


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""A CC-NIE-style campus upgrade with the planner (paper §2).

NSF's CC-NIE program funded roughly 20 Science DMZ deployments by 2013.
This example performs one: start from a general-purpose campus whose
science servers live behind the firewall, let the planner derive the
actions, apply them, and measure what the scientists gained.

Run:  python examples/upgrade_campus.py
"""

import numpy as np

from repro.analysis import ResultTable
from repro.core import apply_upgrade, general_purpose_campus, plan_upgrade
from repro.dtn import Dataset, TransferPlan
from repro.dtn.storage import ParallelFilesystem
from repro.units import GB


def main() -> None:
    bundle = general_purpose_campus()
    topo = bundle.topology
    dataset = Dataset("weekly-results", GB(500), 400)
    rng = np.random.default_rng(99)

    # --- before ---------------------------------------------------------------
    print("BEFORE — the audit that motivates the grant proposal:")
    print(bundle.audit().render_text())
    before = TransferPlan(topo, bundle.remote_dtn, "lab-server1",
                          dataset, "scp").execute(rng)
    print(f"\nweekly 500 GB pull today: {before.summary()}\n")

    # --- plan -------------------------------------------------------------------
    plan = plan_upgrade(topo, science_hosts=bundle.dtns,
                        border=bundle.border, wan=bundle.wan)
    print(plan.render_text())
    print()

    # --- apply -------------------------------------------------------------------
    result = apply_upgrade(
        topo, science_hosts=bundle.dtns,
        border=bundle.border, wan=bundle.wan,
        allowed_peers=[bundle.remote_dtn],
        storage_factory=lambda h: ParallelFilesystem(name=f"{h}-pfs"))
    print("AFTER — the post-deployment audit:")
    print(result.after.render_text())

    # --- measure the payoff ----------------------------------------------------------
    dtn = result.dtn_map["lab-server1"]
    after = TransferPlan(topo, bundle.remote_dtn, dtn, dataset, "globus",
                         policy={"forbid_node_kinds": ("firewall",)}
                         ).execute()

    table = ResultTable("the scientist's view: weekly 500 GB pull",
                        ["configuration", "rate", "elapsed"])
    table.add_row(["before (scp to lab server)",
                   before.mean_throughput.human(), before.duration.human()])
    table.add_row([f"after (globus to {dtn})",
                   after.mean_throughput.human(), after.duration.human()])
    print()
    print(table.render_text())
    print(f"\nspeedup: {before.duration.s / after.duration.s:.0f}x; "
          "the enterprise network and its firewall were not touched.")


if __name__ == "__main__":
    main()

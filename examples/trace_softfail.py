#!/usr/bin/env python
"""Tracing a soft failure end to end (paper §6.4 + repro.telemetry).

The §6.4 story: a failing line card drops 1 in 22,000 packets,
invisible to device counters, and only continuous measurement makes it
diagnosable.  This example re-runs that incident with the simulator's
own observability turned on:

1. a traced :class:`~repro.scenario.Scenario` injects a failing line
   card on the border router of the simple Science DMZ and repairs it
   an hour later;
2. every subsystem (engine, mesh probes, fault injector) emits
   structured events through one tracer;
3. the flight-recorder tail and the fault-lane timeline pinpoint the
   culprit line card without grepping any logs;
4. the full event log exports to Chrome ``trace_event`` JSON for
   chrome://tracing / ui.perfetto.dev, and to deterministic JSONL.

Run:  python examples/trace_softfail.py
"""

import tempfile
from pathlib import Path

from repro.devices.faults import FailingLineCard
from repro.scenario import Scenario
from repro.core import simple_science_dmz
from repro.telemetry import to_jsonl, write_chrome_trace, write_jsonl
from repro.units import minutes


def main() -> None:
    bundle = simple_science_dmz()
    scenario = (Scenario(bundle, seed=20)
                .with_mesh(["dmz-perfsonar", "remote-dtn"])
                .inject("border", FailingLineCard(), at=minutes(30))
                .repair_at(minutes(90)))
    outcome = scenario.run(until=minutes(120), trace=True)
    tracer = outcome.trace

    print(outcome.summary())
    print()

    # --- the fault lane pinpoints the culprit ------------------------------
    fault_events = [e for e in tracer.events() if e.category == "fault"]
    print("fault lane (every fault/* event in the trace):")
    for event in fault_events:
        print(f"  {event.describe()}")
    activate = next(e for e in fault_events if e.name == "activate")
    print(f"-> the trace names the culprit: node={activate.attrs['node']!r}, "
          f"fault={activate.attrs['fault']!r}")
    print()

    # --- the flight-recorder tail: what just happened ----------------------
    print(tracer.recorder.render_tail(8))
    print()

    # --- aggregated metrics ------------------------------------------------
    print("per-component metrics:")
    print(tracer.metrics.render_text())
    print()

    # --- exports -----------------------------------------------------------
    out_dir = Path(tempfile.mkdtemp(prefix="repro-trace-"))
    chrome = write_chrome_trace(tracer.events(),
                                out_dir / "softfail.trace.json",
                                metrics=tracer.metrics)
    jsonl = write_jsonl(tracer.events(), out_dir / "softfail.jsonl")
    print(f"wrote {len(tracer.events())} events:")
    print(f"  {chrome}  (open in chrome://tracing or ui.perfetto.dev)")
    print(f"  {jsonl}  (one JSON object per line)")

    # The JSONL log is deterministic: a second run with the same seed is
    # byte-identical, so traces diff cleanly across code changes.
    rerun = (Scenario(simple_science_dmz(), seed=20)
             .with_mesh(["dmz-perfsonar", "remote-dtn"])
             .inject("border", FailingLineCard(), at=minutes(30))
             .repair_at(minutes(90)))
    second = rerun.run(until=minutes(120), trace=True)
    identical = to_jsonl(second.trace.events()) == jsonl.read_text()
    print(f"same-seed rerun byte-identical: {identical}")


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""An extreme-data site serving LHC-style workloads (paper §4.3, Fig 5).

Builds the big-data-site design — redundant borders, a data-service
switch plane, a cluster of DTNs, security in the routing plane — and runs
a day-in-the-life workload: many remote Tier-2 sites pulling datasets
from the cluster concurrently, while enterprise traffic rides its own
firewalled path.

Demonstrates:
  * multi-flow fluid simulation with shared-bottleneck fairness;
  * DTN-cluster aggregate scaling;
  * that the enterprise firewall never touches the science flows.

Run:  python examples/lhc_tier1.py
"""

import numpy as np

from repro.analysis import ResultTable
from repro.core import big_data_site
from repro.netsim import FlowSpec
from repro.tcp import MultiFlowSimulation
from repro.units import GB, seconds


def main() -> None:
    bundle = big_data_site(dtn_count=8)
    topo = bundle.topology
    print(bundle.description)
    print(topo)
    print()

    # The science plane never crosses the enterprise firewall.
    science = topo.path("cluster-dtn1", "wan", **bundle.science_policy)
    enterprise = topo.path("enterprise-host", "wan")
    print(f"science path   : {' -> '.join(science.node_names())}")
    print(f"enterprise path: {' -> '.join(enterprise.node_names())}")
    assert not science.traverses_kind("firewall")
    assert enterprise.traverses_kind("firewall")
    print()

    # A replication wave: the remote Tier-2 pulls one dataset from each
    # cluster DTN simultaneously (8 x 200 GB).
    specs = [
        FlowSpec(src=dtn, dst=bundle.remote_dtn, size=GB(200),
                 parallel_streams=4, policy=bundle.science_policy,
                 label=f"replicate-{dtn}")
        for dtn in bundle.dtns
    ]
    sim = MultiFlowSimulation(topo, specs, algorithm="htcp")
    progress = sim.run()

    table = ResultTable(
        "Tier-1 replication wave: 8 x 200 GB to the remote site",
        ["flow", "delivered", "elapsed", "mean rate"],
    )
    for label, prog in sorted(progress.items()):
        table.add_row([
            label,
            prog.delivered.human(),
            prog.finish_time.human(),
            prog.mean_throughput(sim.finished_at).human(),
        ])
    print(table.render_text())

    total = sim.aggregate_delivered()
    wall = max(p.finish_time.s for p in progress.values())
    agg_rate = total.bits / wall / 1e9
    print(f"\naggregate: {total.human()} in {wall:.0f} s "
          f"= {agg_rate:.1f} Gbps across the cluster")
    print("(the 100G WAN span is the shared bottleneck; "
          "the 8 DTN access links at 10G add to 80G)")


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Quickstart: build a Science DMZ, audit it, move data through it.

Walks the library's main workflow in five steps:

1. build the paper's Figure 3 design (simple Science DMZ);
2. audit it against the four design patterns (§3);
3. move a dataset to the DTN over the clean science path;
4. move the same dataset to a campus host through the firewall;
5. compare.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.analysis import ResultTable
from repro.core import general_purpose_campus, simple_science_dmz
from repro.dtn import Dataset, TransferPlan
from repro.units import GB


def main() -> None:
    # 1. Build the Figure 3 design.  The bundle also contains a general-
    #    purpose campus (lab-server1 behind the firewall) and a remote
    #    peer DTN across a 40 ms WAN.
    bundle = simple_science_dmz()
    print(f"built {bundle.topology.name!r}: "
          f"{bundle.topology.node_count} nodes, "
          f"{bundle.topology.link_count} links")
    print(f"  {bundle.description}\n")

    # 2. Audit it.
    report = bundle.audit()
    print(report.render_text())
    print()

    # 3. Science-path transfer to the DTN.
    dataset = Dataset("quickstart-sample", GB(100), file_count=100)
    dmz_report = TransferPlan(
        bundle.topology, bundle.remote_dtn, "dtn1", dataset, "globus",
        policy=bundle.science_policy,
    ).execute()

    # 4. The same dataset to a campus host through the firewall, with the
    #    legacy tooling that lives there.
    rng = np.random.default_rng(7)
    campus_report = TransferPlan(
        bundle.topology, bundle.remote_dtn, "lab-server1", dataset, "scp",
    ).execute(rng)

    # 5. Compare.
    table = ResultTable(
        "quickstart: 100 GB across a 40 ms WAN",
        ["path", "tool", "rate", "elapsed", "limited by"],
    )
    table.add_row(["Science DMZ -> dtn1", "globus x4",
                   dmz_report.mean_throughput.human(),
                   dmz_report.duration.human(), dmz_report.limiting_factor])
    table.add_row(["firewalled campus -> lab-server1", "scp",
                   campus_report.mean_throughput.human(),
                   campus_report.duration.human(),
                   campus_report.limiting_factor])
    print(table.render_text())
    speedup = campus_report.duration.s / dmz_report.duration.s
    print(f"\nScience DMZ speedup: {speedup:.0f}x")

    # Show what the baseline (no DMZ at all) audit looks like, for contrast.
    print("\nFor contrast, the general-purpose campus baseline audit:")
    print(general_purpose_campus().audit().render_text())


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""A campus Science DMZ upgrade, start to finish (paper §2 and §6.1).

One campus story in two acts:

1. **Plan and apply** (§2, CC-NIE style): start from a general-purpose
   campus whose science servers live behind the firewall, let the
   planner derive the upgrade actions, apply them, and measure what the
   scientists gained on their weekly 500 GB pull.
2. **Debug the fabric** (§6.1, CU-Boulder): the physics (CMS) cluster
   pushes ~5 Gbps aggregate through a 10G uplink whose aggregation
   switch hides a cut-through -> store-and-forward flip bug; perfSONAR
   shows the loss, the vendor fix lands, per-host throughput returns to
   near line rate.  The before/after measurement runs as a serializable
   :class:`repro.experiment.SweepSpec` over the registered
   ``cu_host_throughput`` target, so the same experiment replays from a
   JSON file via ``repro run``.

Run:  python examples/campus_upgrade.py
"""

import numpy as np

from repro.analysis import ResultTable
from repro.core import apply_upgrade, campus_with_rcnet, general_purpose_campus, \
    plan_upgrade
from repro.dtn import Dataset, TransferPlan
from repro.dtn.storage import ParallelFilesystem
from repro.experiment import RunContext, SweepSpec, run_experiment
from repro.netsim.packetsim import BurstySource, simulate_fan_in
from repro.units import GB, Gbps, KB, Mbps, seconds


def plan_and_apply() -> None:
    """Act 1 — the §2 upgrade: audit, plan, apply, measure the payoff."""
    bundle = general_purpose_campus()
    topo = bundle.topology
    dataset = Dataset("weekly-results", GB(500), 400)
    rng = np.random.default_rng(99)

    print("BEFORE — the audit that motivates the grant proposal:")
    print(bundle.audit().render_text())
    before = TransferPlan(topo, bundle.remote_dtn, "lab-server1",
                          dataset, "scp").execute(rng)
    print(f"\nweekly 500 GB pull today: {before.summary()}\n")

    plan = plan_upgrade(topo, science_hosts=bundle.dtns,
                        border=bundle.border, wan=bundle.wan)
    print(plan.render_text())
    print()

    result = apply_upgrade(
        topo, science_hosts=bundle.dtns,
        border=bundle.border, wan=bundle.wan,
        allowed_peers=[bundle.remote_dtn],
        storage_factory=lambda h: ParallelFilesystem(name=f"{h}-pfs"))
    print("AFTER — the post-deployment audit:")
    print(result.after.render_text())

    dtn = result.dtn_map["lab-server1"]
    after = TransferPlan(topo, bundle.remote_dtn, dtn, dataset, "globus",
                         policy={"forbid_node_kinds": ("firewall",)}
                         ).execute()

    table = ResultTable("the scientist's view: weekly 500 GB pull",
                        ["configuration", "rate", "elapsed"])
    table.add_row(["before (scp to lab server)",
                   before.mean_throughput.human(), before.duration.human()])
    table.add_row([f"after (globus to {dtn})",
                   after.mean_throughput.human(), after.duration.human()])
    print()
    print(table.render_text())
    print(f"\nspeedup: {before.duration.s / after.duration.s:.0f}x; "
          "the enterprise network and its firewall were not touched.")


def cms_sources(n=9):
    """The physics cluster: n hosts at 1G, ~600 Mbps each under load."""
    return [BurstySource(name=f"cms{i + 1}", line_rate=Gbps(1),
                         mean_rate=Mbps(600), burst_size=KB(256))
            for i in range(n)]


def fabric_spec() -> SweepSpec:
    """§6.1 before/after as data: one grid axis, the vendor fix."""
    return SweepSpec.from_grid(
        {"fixed_fabric": [False, True], "rep": [1]},
        name="cu-fabric-fix", target="cu_host_throughput",
        value_label="bps",
        description="CU-Boulder §6.1: per-host H-TCP throughput through "
                    "the fan-in fabric, before and after the vendor fix")


def debug_the_fabric() -> None:
    """Act 2 — the §6.1 fan-in bug, measured through the spec layer."""
    sources = cms_sources()
    offered = sum(s.mean_rate.bps for s in sources) / 1e9
    print(f"CMS cluster offered load: {offered:.1f} Gbps aggregate "
          f"from {len(sources)} hosts at 1G\n")

    spec = fabric_spec()
    result = run_experiment(spec, RunContext.from_env(), persist=False)
    rate_by_mode = {r.params["fixed_fabric"]: r.value
                    for r in result.value.records}

    table = ResultTable(
        "CU Boulder physics fan-in — paper §6.1 "
        f"(spec {spec.name!r}, digest {spec.digest()[:12]})",
        ["configuration", "fabric mode", "fan-in loss",
         "per-host TCP rate"],
    )
    bundles = {}
    for fixed, label in ((False, "before (flip bug)"),
                         (True, "after (vendor fix)")):
        bundle = bundles[fixed] = campus_with_rcnet(fixed_fabric=fixed)
        fabric = bundle.extras["fabric"]
        fabric.set_offered_load(sources)
        rate_bps = rate_by_mode[fixed]
        rate = (f"{rate_bps / 1e9:.2f} Gbps" if rate_bps >= 1e9
                else f"{rate_bps / 1e6:.1f} Mbps")
        table.add_row([label, fabric.effective_mode.value,
                       f"{fabric.fan_in_loss():.3%}", rate])
        if not fixed:
            # Packet-level cross-check of the closed-form loss estimate.
            packet_check = simulate_fan_in(
                sources,
                egress_rate=fabric.effective_service_rate,
                buffer_size=fabric.effective_buffer,
                duration=seconds(1.0),
                rng=np.random.default_rng(2),
            )
            print(f"packet-level cross-check (buggy fabric): "
                  f"loss {packet_check.loss_fraction:.3%} vs closed-form "
                  f"{fabric.fan_in_loss():.3%}\n")

    print(table.render_text())
    print("\npaper: 'performance returned to near line rate for each "
          "member of the physics computation cluster'")

    # The audit view of the finished campus.
    print()
    print(bundles[True].audit().render_text())


def main() -> None:
    plan_and_apply()
    print()
    print("=" * 72)
    print()
    debug_the_fabric()


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""A campus Science DMZ upgrade, CU-Boulder style (paper §6.1, Figs 6/7).

Walks the University of Colorado story:

1. the physics (CMS) cluster pushes ~5 Gbps aggregate through a 10G
   uplink whose aggregation switch hides a cut-through -> store-and-
   forward flip bug with shallow buffers;
2. perfSONAR monitoring shows the loss and the throughput collapse;
3. the vendor fix (plus architecture changes) is applied;
4. per-host throughput returns to near line rate.

Run:  python examples/campus_upgrade.py
"""

import numpy as np

from repro.analysis import ResultTable
from repro.core import campus_with_rcnet
from repro.netsim.packetsim import BurstySource, simulate_fan_in
from repro.tcp import TcpConnection, algorithm_by_name
from repro.units import Gbps, KB, Mbps, seconds


def cms_sources(n=9):
    """The physics cluster: n hosts at 1G, ~600 Mbps each under load."""
    return [BurstySource(name=f"cms{i + 1}", line_rate=Gbps(1),
                         mean_rate=Mbps(600), burst_size=KB(256))
            for i in range(n)]


def host_throughput(bundle, rng_seed):
    """Measured TCP throughput from one cluster host to the remote site."""
    profile = bundle.topology.profile_between(
        "cms1", bundle.remote_dtn, **bundle.science_policy)
    conn = TcpConnection(profile, algorithm=algorithm_by_name("htcp"),
                         rng=np.random.default_rng(rng_seed))
    return conn.measure(seconds(20), max_rounds=100_000).mean_throughput


def main() -> None:
    sources = cms_sources()
    offered = sum(s.mean_rate.bps for s in sources) / 1e9
    print(f"CMS cluster offered load: {offered:.1f} Gbps aggregate "
          f"from {len(sources)} hosts at 1G\n")

    table = ResultTable(
        "CU Boulder physics fan-in — paper §6.1",
        ["configuration", "fabric mode", "fan-in loss",
         "per-host TCP rate"],
    )

    # Before: the buggy fabric flips under load.
    before = campus_with_rcnet()
    fabric = before.extras["fabric"]
    fabric.set_offered_load(sources)
    table.add_row([
        "before (flip bug)", fabric.effective_mode.value,
        f"{fabric.fan_in_loss():.3%}",
        host_throughput(before, 1).human(),
    ])

    # Packet-level cross-check of the closed-form loss estimate.
    packet_check = simulate_fan_in(
        sources,
        egress_rate=fabric.effective_service_rate,
        buffer_size=fabric.effective_buffer,
        duration=seconds(1.0),
        rng=np.random.default_rng(2),
    )
    print(f"packet-level cross-check (buggy fabric): "
          f"loss {packet_check.loss_fraction:.3%} vs closed-form "
          f"{fabric.fan_in_loss():.3%}\n")

    # After: vendor fix applied.
    after = campus_with_rcnet(fixed_fabric=True)
    fixed_fabric = after.extras["fabric"]
    fixed_fabric.set_offered_load(sources)
    table.add_row([
        "after (vendor fix)", fixed_fabric.effective_mode.value,
        f"{fixed_fabric.fan_in_loss():.3%}",
        host_throughput(after, 1).human(),
    ])

    print(table.render_text())
    print("\npaper: 'performance returned to near line rate for each "
          "member of the physics computation cluster'")

    # The audit view of the finished campus.
    print()
    print(after.audit().render_text())


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Future technologies on the Science DMZ (paper §7).

The Science DMZ "makes it easier to experiment and integrate with
tomorrow's technologies" because everything new lands at the perimeter
instead of deep in the campus.  This example walks all three of §7's
directions on one fabric:

1. **Virtual circuits** (§7.1): an inter-domain controller provisions a
   guaranteed 5 Gbps circuit across campus -> regional -> campus.
2. **RoCE** (§7.1): RDMA over the circuit matches TCP's throughput at a
   fraction of the CPU — and collapses without the circuit.
3. **SDN** (§7.3): an OpenFlow controller inspects connection setup with
   the IDS, then installs a firewall-bypass rule for the verified flow.

Run:  python examples/future_tech.py
"""

from dataclasses import replace

from repro.analysis import ResultTable
from repro.circuits import (
    Domain,
    InterDomainController,
    OpenFlowController,
    OscarsService,
    RoceTransfer,
)
from repro.devices.firewall import Firewall
from repro.devices.ids import IntrusionDetectionSystem
from repro.netsim import Link, Topology
from repro.netsim.node import Router
from repro.tcp import HTcp, TcpConnection
from repro.units import GB, Gbps, MB, TB, bytes_, hours, ms, seconds, us


def make_campus(name: str, dtn: str, exchange: str) -> Domain:
    topo = Topology(name)
    topo.add_host(dtn, nic_rate=Gbps(40))
    topo.add_node(Router(name=exchange))
    topo.connect(dtn, exchange, Link(rate=Gbps(40), delay=ms(1),
                                     mtu=bytes_(9000)))
    return Domain(name, topo, OscarsService(topo))


def main() -> None:
    # --- 1. multi-domain virtual circuit -----------------------------------
    west = make_campus("campus-west", "dtn-west", "xp-west")
    east = make_campus("campus-east", "dtn-east", "xp-east")
    reg_topo = Topology("regional")
    reg_topo.add_node(Router(name="xp-west"))
    reg_topo.add_node(Router(name="xp-east"))
    reg_topo.connect("xp-west", "xp-east", Link(rate=Gbps(100), delay=ms(18),
                                                mtu=bytes_(9000)))
    regional = Domain("regional", reg_topo, OscarsService(reg_topo))

    idc = InterDomainController(
        [west, regional, east],
        [("campus-west", "regional", "xp-west"),
         ("regional", "campus-east", "xp-east")],
    )
    circuit = idc.reserve_end_to_end("dtn-west", "dtn-east", Gbps(30),
                                     start=seconds(0), end=hours(8))
    print("1. virtual circuit provisioned:")
    print(f"   {circuit.describe()}\n")

    # --- 2. RoCE vs TCP on the circuit ----------------------------------------
    roce = RoceTransfer(circuit.profile).transfer(TB(1))
    tcp_profile = replace(circuit.profile,
                          flow=circuit.profile.flow.with_(
                              max_receive_window=MB(512)))
    tcp = TcpConnection(tcp_profile, algorithm=HTcp()).transfer(TB(1))
    table = ResultTable("2. moving 1 TB over the 30 Gbps circuit",
                        ["protocol", "rate", "elapsed", "CPU cores"])
    table.add_row(["RoCE", roce.throughput.human(), roce.duration.human(),
                   f"{roce.cpu_cores_used:.3f}"])
    table.add_row(["TCP (H-TCP)", tcp.mean_throughput.human(),
                   tcp.duration.human(),
                   f"{RoceTransfer.tcp_cpu_cores(tcp.mean_throughput):.3f}"])
    print(table.render_text())
    ratio = (RoceTransfer.tcp_cpu_cores(tcp.mean_throughput)
             / roce.cpu_cores_used)
    print(f"   CPU ratio TCP/RoCE: {ratio:.0f}x "
          "(paper: '50 times less CPU utilization')\n")

    # --- 3. SDN inspect-then-bypass ----------------------------------------------
    topo = Topology("sdn-campus")
    topo.add_host("site-a", nic_rate=Gbps(10))
    topo.add_host("site-b", nic_rate=Gbps(10))
    topo.add_node(Router(name="edge"))
    fw = topo.add_node(Firewall(name="fw"))
    fw.policy.allow()
    topo.add_node(Router(name="inner"))
    topo.connect("site-a", "edge", Link(rate=Gbps(10), delay=ms(5),
                                        mtu=bytes_(9000)))
    topo.connect("edge", "fw", Link(rate=Gbps(10), delay=us(10)))
    topo.connect("fw", "inner", Link(rate=Gbps(10), delay=us(10)))
    topo.connect("edge", "inner", Link(rate=Gbps(10), delay=ms(1),
                                       mtu=bytes_(9000), tags={"science"}))
    topo.connect("inner", "site-b", Link(rate=Gbps(10), delay=ms(5),
                                         mtu=bytes_(9000)))

    ids = IntrusionDetectionSystem()
    ids.add_signature("ssh-probe", lambda s, d, p: p == 22)
    controller = OpenFlowController(topo, ids,
                                    trusted_sites={"site-a", "site-b"})
    print("3. SDN inspect-then-bypass:")
    for port in (50000, 22):
        decision = controller.request_flow("site-a", "site-b", port)
        print(f"   port {port}: {decision.describe()}")
    bypassed = controller.path_for("site-a", "site-b", 50000)
    inspected = controller.path_for("site-a", "site-b", 22)
    print(f"   data flow path : {' -> '.join(bypassed.node_names())}")
    print(f"   flagged flow   : {' -> '.join(inspected.node_names())}")


if __name__ == "__main__":
    main()

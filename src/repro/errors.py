"""Exception hierarchy for the Science DMZ reproduction library.

Every error raised by :mod:`repro` derives from :class:`ReproError` so callers
can catch library failures without catching unrelated bugs.  Subsystems define
narrower classes here rather than locally so cross-module code (the audit
engine, the benchmark harness) can reason about failure categories without
importing every subsystem.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class UnitError(ReproError, ValueError):
    """A quantity was constructed or combined with incompatible units."""


class ConfigurationError(ReproError, ValueError):
    """A component was configured with invalid or inconsistent parameters."""


class TopologyError(ReproError):
    """The network topology is malformed for the requested operation."""


class RoutingError(TopologyError):
    """No usable route exists between the requested endpoints."""


class SimulationError(ReproError):
    """The simulation engine reached an inconsistent state."""


class CapacityError(ReproError):
    """A reservation or admission request exceeds available capacity."""


class SecurityPolicyError(ReproError):
    """Traffic was rejected by a security policy (ACL, firewall rule, IDS)."""


class TransferError(ReproError):
    """A data transfer failed (tool error, storage error, path down)."""


class MeasurementError(ReproError):
    """A perfSONAR measurement could not be scheduled or executed."""


class AuditError(ReproError):
    """Raised when a strict design audit fails."""


class TelemetryError(ReproError):
    """Tracing, metrics or trace-export misuse (bad phase, bad capacity)."""


class ExecError(ReproError):
    """Parallel execution / result-cache failure (lost point, bad entry,
    or a cached failure replayed outside ``on_error='record'``)."""


class ServeError(ReproError):
    """Experiment-service failure (unreachable server, failed job,
    protocol violation).  Operational — maps to CLI exit code 1,
    unlike :class:`ConfigurationError` (bad input, exit code 2)."""


class AdmissionError(ServeError):
    """The service's job queue is full; retry after ``retry_after_s``."""

    def __init__(self, message: str, *, retry_after_s: float = 1.0) -> None:
        super().__init__(message)
        self.retry_after_s = float(retry_after_s)


class DrainingError(ServeError):
    """The service is draining and no longer accepts submissions."""

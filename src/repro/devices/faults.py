"""Soft-failure library and fault injection.

"Soft failures ... do not cause a complete failure ... but cause poor
performance", often invisible to device error counters and undetected for
months (§3.3).  The paper's motivating example (§2) is an ESnet 10 Gbps
line card dropping 1 in 22,000 packets: only 450 Kbps of loss at the
device, catastrophic end-to-end TCP throughput — found not by SNMP error
counters but by OWAMP active probing.

Each fault here is a :class:`~repro.netsim.node.PathElement` that can be
attached to a node (or the equivalent span loss set on a
:class:`~repro.netsim.link.Link`).  Faults carry a ``visible_to_counters``
flag: the perfSONAR detection experiments use it to show that passive
counter polling misses what active measurement finds.

:class:`FaultInjector` schedules faults on/off against a
:class:`~repro.netsim.engine.Simulator` and keeps the ground-truth record
that detection experiments score against.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from ..errors import ConfigurationError
from ..netsim.engine import Simulator
from ..netsim.node import Node
from ..telemetry.tracer import NULL_TRACER
from ..units import DataRate, DataSize, Mbps, TimeDelta, bytes_, ms

__all__ = [
    "FailingLineCard",
    "DirtyOptics",
    "ManagementCpuForwarding",
    "DuplexMismatch",
    "StorageStall",
    "CacheAccountingBug",
    "InjectedFault",
    "FaultInjector",
]

#: The paper's §2 loss rate: 1 packet in 22,000 (0.0046%).
ESNET_LINE_CARD_LOSS = 1.0 / 22_000.0


@dataclass
class FailingLineCard:
    """A router line card silently dropping a fixed fraction of packets.

    Matches the §2 ESnet incident: default loss 1/22000, *not* reported by
    the device's internal error monitoring.
    """

    loss_rate: float = ESNET_LINE_CARD_LOSS
    visible_to_counters: bool = False
    description: str = "failing line card"

    def __post_init__(self) -> None:
        if not 0.0 <= self.loss_rate <= 1.0:
            raise ConfigurationError("loss_rate must be in [0,1]")

    def element_latency(self) -> TimeDelta:
        return TimeDelta(0.0)

    def element_capacity(self) -> Optional[DataRate]:
        return None

    def element_loss_probability(self) -> float:
        return self.loss_rate

    def transform_flow(self, ctx):
        return ctx


@dataclass
class DirtyOptics:
    """Dirty/degraded fiber optics: a bit-error rate, so the per-packet
    loss probability grows with packet size (jumbo frames suffer more).
    """

    bit_error_rate: float = 1e-12
    packet_size: DataSize = field(default_factory=lambda: bytes_(9000))
    visible_to_counters: bool = True  # FCS errors do show in counters
    description: str = "dirty optics"

    def __post_init__(self) -> None:
        if not 0.0 <= self.bit_error_rate <= 1.0:
            raise ConfigurationError("bit_error_rate must be in [0,1]")

    def element_latency(self) -> TimeDelta:
        return TimeDelta(0.0)

    def element_capacity(self) -> Optional[DataRate]:
        return None

    def element_loss_probability(self) -> float:
        return 1.0 - (1.0 - self.bit_error_rate) ** self.packet_size.bits

    def transform_flow(self, ctx):
        return ctx


@dataclass
class ManagementCpuForwarding:
    """Router forwarding via the management CPU instead of hardware (§3.3).

    The slow path caps throughput at the CPU's forwarding rate and adds
    per-packet latency; counters look clean because packets are not
    errored, just slow.
    """

    cpu_rate: DataRate = field(default_factory=lambda: Mbps(300))
    added_latency: TimeDelta = field(default_factory=lambda: ms(2))
    visible_to_counters: bool = False
    description: str = "management-CPU (slow-path) forwarding"

    def __post_init__(self) -> None:
        if self.cpu_rate.bps <= 0:
            raise ConfigurationError("cpu_rate must be positive")

    def element_latency(self) -> TimeDelta:
        return self.added_latency

    def element_capacity(self) -> Optional[DataRate]:
        return self.cpu_rate

    def element_loss_probability(self) -> float:
        return 0.0

    def transform_flow(self, ctx):
        return ctx


@dataclass
class DuplexMismatch:
    """Ethernet duplex mismatch: heavy loss once utilization rises.

    Classic campus soft failure — a hard-coded full-duplex port facing an
    auto-negotiated half-duplex peer loses a few percent of packets under
    bidirectional load.
    """

    loss_rate: float = 0.02
    capacity: DataRate = field(default_factory=lambda: Mbps(100))
    visible_to_counters: bool = True  # late collisions / CRC errors
    description: str = "duplex mismatch"

    def __post_init__(self) -> None:
        if not 0.0 <= self.loss_rate <= 1.0:
            raise ConfigurationError("loss_rate must be in [0,1]")

    def element_latency(self) -> TimeDelta:
        return TimeDelta(0.0)

    def element_capacity(self) -> Optional[DataRate]:
        return self.capacity

    def element_loss_probability(self) -> float:
        return self.loss_rate

    def transform_flow(self, ctx):
        return ctx


@dataclass
class StorageStall:
    """A DTN's storage subsystem degrading mid-transfer.

    A RAID rebuild, a dying disk, or a filesystem pathology drops the
    host's effective I/O rate far below the network path; transfers
    crawl (or stop entirely at ``stall_rate`` zero-equivalent values)
    while every *network* counter looks clean — the end-to-end seam the
    "Reexamining Paradigms" critique warns about.  Modeled as a path
    element on the DTN node capping capacity at the stalled I/O rate
    and adding per-request service latency.
    """

    stall_rate: DataRate = field(default_factory=lambda: Mbps(50))
    added_latency: TimeDelta = field(default_factory=lambda: ms(10))
    visible_to_counters: bool = False  # iostat, not SNMP, sees it
    description: str = "DTN storage stall"

    def __post_init__(self) -> None:
        if self.stall_rate.bps <= 0:
            raise ConfigurationError("stall_rate must be positive")

    def element_latency(self) -> TimeDelta:
        return self.added_latency

    def element_capacity(self) -> Optional[DataRate]:
        return self.stall_rate

    def element_loss_probability(self) -> float:
        return 0.0

    def transform_flow(self, ctx):
        return ctx


@dataclass
class CacheAccountingBug:
    """An in-network cache that stops counting the bytes it serves.

    The federation's conservation argument (origin bytes + cache-served
    bytes == delivered bytes) only holds while every cache's ledger is
    honest.  This fault models the dishonest case: the cache keeps
    serving hits, but its ``bytes_served`` counter silently leaks —
    think a metrics-export bug after a cache software upgrade.  The
    data path is untouched (no loss, no latency), so nothing but the
    ``cache-bytes-conserved`` oracle can see it — the federation
    analogue of the paper's counter-invisible soft failures.

    The fault object itself is inert on the path; the chaos runner's
    cache-workload replay flips ``corrupt_accounting`` on the
    :class:`~repro.devices.cache.CacheDevice` living at the faulted
    node while the fault is active at the horizon.
    """

    visible_to_counters: bool = False
    description: str = "cache accounting bug"

    def element_latency(self) -> TimeDelta:
        return TimeDelta(0.0)

    def element_capacity(self) -> Optional[DataRate]:
        return None

    def element_loss_probability(self) -> float:
        return 0.0

    def transform_flow(self, ctx):
        return ctx


@dataclass
class InjectedFault:
    """Ground-truth record of one injected fault."""

    node_name: str
    fault: object
    injected_at: float
    cleared_at: Optional[float] = None

    @property
    def active(self) -> bool:
        return self.cleared_at is None


class FaultInjector:
    """Schedule soft failures onto topology nodes and keep ground truth.

    The monitoring-detection experiments compare perfSONAR alert times
    against this record to measure time-to-detection.
    """

    def __init__(self, simulator: Simulator, *, tracer=None) -> None:
        self._sim = simulator
        self._tracer = tracer
        self.history: List[InjectedFault] = []

    @property
    def tracer(self):
        """The explicit tracer, else whatever the simulator carries.

        Resolved lazily so a tracer attached to the simulator *after*
        this injector was built (``Scenario.run(trace=...)``) is seen.
        """
        if self._tracer is not None:
            return self._tracer
        sim_tracer = getattr(self._sim, "tracer", None)
        # Not `or NULL_TRACER`: an empty tracer is falsy (len 0).
        return sim_tracer if sim_tracer is not None else NULL_TRACER

    def inject_now(self, node: Node, fault) -> InjectedFault:
        """Attach ``fault`` to ``node`` immediately."""
        node.attach(fault)
        record = InjectedFault(node_name=node.name, fault=fault,
                               injected_at=self._sim.now)
        self.history.append(record)
        tracer = self.tracer
        if tracer.enabled:
            tracer.event(
                "fault", "activate", t=self._sim.now,
                node=node.name,
                fault=getattr(fault, "description", type(fault).__name__),
                visible_to_counters=getattr(fault, "visible_to_counters",
                                            True),
                loss_probability=fault.element_loss_probability(),
            )
            tracer.counter("injected", component="fault").inc()
        return record

    def inject_at(self, when: TimeDelta, node: Node, fault) -> None:
        """Attach ``fault`` to ``node`` at absolute sim time ``when``."""
        def _do() -> None:
            self.inject_now(node, fault)
        self._sim.schedule_at(when.s, _do)

    def clear(self, record: InjectedFault, node: Node) -> None:
        """Remove a fault (repair) and close its ground-truth record."""
        if not record.active:
            raise ConfigurationError("fault was already cleared")
        node.detach(record.fault)
        record.cleared_at = self._sim.now
        tracer = self.tracer
        if tracer.enabled:
            tracer.event(
                "fault", "clear", t=self._sim.now, node=node.name,
                fault=getattr(record.fault, "description",
                              type(record.fault).__name__),
                active_s=record.cleared_at - record.injected_at,
            )
            tracer.counter("cleared", component="fault").inc()

    def clear_at(self, when: TimeDelta, record: InjectedFault,
                 node: Node) -> None:
        def _do() -> None:
            self.clear(record, node)
        self._sim.schedule_at(when.s, _do)

    def active_faults(self) -> List[InjectedFault]:
        return [f for f in self.history if f.active]

    def invisible_faults(self) -> List[InjectedFault]:
        """Active faults that device counters would NOT reveal."""
        return [
            f for f in self.active_faults()
            if not getattr(f.fault, "visible_to_counters", True)
        ]

"""Router/switch access-control lists.

The Science DMZ's security-pattern answer to "but we need a firewall":
filtering on IP address and TCP port is exactly what a firewall
administrator configures for GridFTP anyway, and a modern router or switch
evaluates the same match in forwarding hardware at line rate — no internal
processor bottleneck, no shallow input buffer, no header rewriting (§5).

Accordingly :class:`AclEngine` implements the
:class:`~repro.netsim.node.PathElement` protocol as a *neutral* element
(zero loss, negligible latency, no capacity cap, no flow transform) that
still enforces a rule table.  The contrast with
:class:`repro.devices.firewall.Firewall` — same policy expressiveness,
none of the performance cost — is the point, and is measured directly by
``benchmarks/bench_security_ablation.py``.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional

from ..errors import ConfigurationError, SecurityPolicyError
from ..units import DataRate, TimeDelta, us

__all__ = ["AclAction", "AclRule", "AccessControlList", "AclEngine"]


class AclAction(enum.Enum):
    """Verdict of an ACL rule or table."""

    PERMIT = "permit"
    DENY = "deny"


@dataclass(frozen=True)
class AclRule:
    """A single ACL entry: 5-tuple-ish match, first match wins.

    Vendors name these differently — Juniper calls them "firewall
    filters" (§5 warns about exactly this) — but the semantics are the
    same hardware match.
    """

    action: AclAction
    src: str = "*"
    dst: str = "*"
    protocol: str = "*"  # 'tcp' | 'udp' | '*'
    port: object = "*"
    comment: str = ""

    def __post_init__(self) -> None:
        if not isinstance(self.action, AclAction):
            raise ConfigurationError("AclRule.action must be an AclAction")
        if self.protocol not in ("tcp", "udp", "*"):
            raise ConfigurationError(
                f"protocol must be 'tcp', 'udp' or '*', got {self.protocol!r}"
            )
        if self.port != "*" and not isinstance(self.port, int):
            raise ConfigurationError("port must be an int or '*'")

    def matches(self, src: str, dst: str, protocol: str, port: int) -> bool:
        return (
            (self.src == "*" or self.src == src)
            and (self.dst == "*" or self.dst == dst)
            and (self.protocol == "*" or self.protocol == protocol)
            and (self.port == "*" or self.port == port)
        )


@dataclass
class AccessControlList:
    """An ordered rule table with an implicit default action.

    Real router ACLs end in an implicit deny; Science DMZ practice is an
    explicit permit list for DTN traffic plus monitoring hosts, default
    deny everything else.
    """

    name: str = "acl"
    rules: List[AclRule] = field(default_factory=list)
    default_action: AclAction = AclAction.DENY

    def permit(self, src: str = "*", dst: str = "*", protocol: str = "*",
               port: object = "*", comment: str = "") -> "AccessControlList":
        self.rules.append(AclRule(AclAction.PERMIT, src, dst, protocol, port,
                                  comment))
        return self

    def deny(self, src: str = "*", dst: str = "*", protocol: str = "*",
             port: object = "*", comment: str = "") -> "AccessControlList":
        self.rules.append(AclRule(AclAction.DENY, src, dst, protocol, port,
                                  comment))
        return self

    def evaluate(self, src: str, dst: str, protocol: str = "tcp",
                 port: int = 0) -> AclAction:
        for rule in self.rules:
            if rule.matches(src, dst, protocol, port):
                return rule.action
        return self.default_action

    def permits(self, src: str, dst: str, protocol: str = "tcp",
                port: int = 0) -> bool:
        return self.evaluate(src, dst, protocol, port) is AclAction.PERMIT

    def __len__(self) -> int:
        return len(self.rules)


@dataclass
class AclEngine:
    """Line-rate ACL enforcement attached to a router/switch node.

    Implements :class:`~repro.netsim.node.PathElement`: traffic passing
    the rule table sees essentially nothing — sub-microsecond TCAM lookup,
    no loss, no capacity cap, no header rewriting.  Denied traffic never
    forms a connection at all (:meth:`check` raises).
    """

    acl: AccessControlList
    lookup_latency: TimeDelta = field(default_factory=lambda: us(1))

    # -- PathElement protocol ---------------------------------------------------
    def element_latency(self) -> TimeDelta:
        return self.lookup_latency

    def element_capacity(self) -> Optional[DataRate]:
        return None  # hardware filtering runs at line rate

    def element_loss_probability(self) -> float:
        return 0.0

    def transform_flow(self, ctx):
        return ctx  # no header meddling

    # -- enforcement ----------------------------------------------------------------
    def permits(self, src: str, dst: str, protocol: str = "tcp",
                port: int = 0) -> bool:
        return self.acl.permits(src, dst, protocol, port)

    def check(self, src: str, dst: str, protocol: str = "tcp",
              port: int = 0) -> None:
        if not self.permits(src, dst, protocol, port):
            raise SecurityPolicyError(
                f"ACL {self.acl.name!r} denies {src} -> {dst} {protocol}:{port}"
            )

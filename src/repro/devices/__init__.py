"""Middlebox and failure models.

Every pathology the paper attributes to network gear lives here:

* :mod:`repro.devices.firewall` — stateful firewall appliances: per-flow
  processor limits, shallow input buffers that drop TCP bursts, and the
  sequence-checking feature that strips RFC 1323 window scaling (§5, §6.2).
* :mod:`repro.devices.acl` — router/switch access-control lists, the
  Science DMZ's line-rate security mechanism (§3.4, §5).
* :mod:`repro.devices.ids` — intrusion-detection system models (§3.4, §7.3).
* :mod:`repro.devices.faults` — the soft-failure library: failing line
  cards, dirty optics, management-CPU forwarding, duplex mismatch (§2, §3.3).
* :mod:`repro.devices.switchfab` — LAN switch fabrics: shallow vs deep
  buffers, cut-through vs store-and-forward, and the CU-Boulder mode-flip
  bug (§5, §6.1).
* :mod:`repro.devices.cache` — in-network data caches for federated
  deployments: byte capacity, LRU/LFU eviction, hit/miss/byte-savings
  counters (the in-network caching literature's device).
"""

from .firewall import Firewall, FirewallRule, FirewallPolicy
from .acl import AclAction, AclRule, AccessControlList, AclEngine
from .ids import IntrusionDetectionSystem, IdsMode, IdsAlert
from .faults import (
    FailingLineCard,
    DirtyOptics,
    ManagementCpuForwarding,
    DuplexMismatch,
    StorageStall,
    CacheAccountingBug,
    FaultInjector,
    InjectedFault,
)
from .cache import CACHE_POLICIES, CacheDevice
from .switchfab import SwitchFabric, SwitchingMode

__all__ = [
    "Firewall",
    "FirewallRule",
    "FirewallPolicy",
    "AclAction",
    "AclRule",
    "AccessControlList",
    "AclEngine",
    "IntrusionDetectionSystem",
    "IdsMode",
    "IdsAlert",
    "FailingLineCard",
    "DirtyOptics",
    "ManagementCpuForwarding",
    "DuplexMismatch",
    "StorageStall",
    "CacheAccountingBug",
    "FaultInjector",
    "InjectedFault",
    "CACHE_POLICIES",
    "CacheDevice",
    "SwitchFabric",
    "SwitchingMode",
]

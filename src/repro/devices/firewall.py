"""Stateful firewall appliance model.

The paper's §5 dissects why firewalls wreck science flows even when the
spec sheet says "10 Gbps":

1. **Per-flow processor limit.** Firewalls aggregate many low-speed
   inspection processors to reach an aggregate throughput equal to their
   interface speed.  A single high-speed flow is pinned to one processor,
   so its ceiling is the *processor* rate, not the interface rate.
2. **Shallow input buffers.** TCP flows are bursts at the sender's line
   rate with pauses in between.  When bursts arrive faster than the
   processor drains them, the input buffer must absorb the difference;
   business-traffic-sized buffers overflow and the tail of every burst is
   dropped.
3. **Protocol meddling.** "Security" features that rewrite TCP headers —
   the Penn State case's *TCP flow sequence checking* — can strip the
   RFC 1323 window-scaling option, silently clamping every connection's
   receive window to 64 KB (§6.2).

All three are modelled here.  The firewall is a topology
:class:`~repro.netsim.node.Node` whose transit behaviour implements the
:class:`~repro.netsim.node.PathElement` protocol, so simply routing a path
through it degrades the resulting
:class:`~repro.netsim.topology.PathProfile` — and routing around it (the
Science DMZ location pattern) removes the degradation.  Rule evaluation
(:class:`FirewallPolicy`) exists so the security-pattern audit can compare
"what the firewall enforces" with "what ACLs would enforce" (§5 argues the
rule set is IP/port filtering either way).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from ..errors import ConfigurationError, SecurityPolicyError
from ..netsim.buffers import DropTailQueue
from ..netsim.node import FlowContext, Node
from ..units import (
    DataRate,
    DataSize,
    Gbps,
    KB,
    MB,
    TimeDelta,
    bytes_,
    seconds,
    us,
)

__all__ = ["FirewallRule", "FirewallPolicy", "Firewall"]


@dataclass(frozen=True)
class FirewallRule:
    """One allow/deny rule: match on endpoints and destination port.

    ``'*'`` wildcards any field.  Matching is first-match-wins in the
    containing policy, mirroring real firewall rule tables.
    """

    action: str  # 'allow' | 'deny'
    src: str = "*"
    dst: str = "*"
    port: object = "*"  # int or '*'
    comment: str = ""

    def __post_init__(self) -> None:
        if self.action not in ("allow", "deny"):
            raise ConfigurationError(
                f"rule action must be 'allow' or 'deny', got {self.action!r}"
            )
        if self.port != "*" and not isinstance(self.port, int):
            raise ConfigurationError("rule port must be an int or '*'")

    def matches(self, src: str, dst: str, port: int) -> bool:
        return (
            (self.src == "*" or self.src == src)
            and (self.dst == "*" or self.dst == dst)
            and (self.port == "*" or self.port == port)
        )


@dataclass
class FirewallPolicy:
    """An ordered rule table with a default action."""

    rules: List[FirewallRule] = field(default_factory=list)
    default_action: str = "deny"

    def __post_init__(self) -> None:
        if self.default_action not in ("allow", "deny"):
            raise ConfigurationError("default_action must be 'allow' or 'deny'")

    def permits(self, src: str, dst: str, port: int) -> bool:
        for rule in self.rules:
            if rule.matches(src, dst, port):
                return rule.action == "allow"
        return self.default_action == "allow"

    def add(self, rule: FirewallRule) -> "FirewallPolicy":
        self.rules.append(rule)
        return self

    def allow(self, src: str = "*", dst: str = "*", port: object = "*",
              comment: str = "") -> "FirewallPolicy":
        return self.add(FirewallRule("allow", src, dst, port, comment))

    def deny(self, src: str = "*", dst: str = "*", port: object = "*",
             comment: str = "") -> "FirewallPolicy":
        return self.add(FirewallRule("deny", src, dst, port, comment))


@dataclass(eq=False)
class Firewall(Node):
    """A perimeter firewall appliance (a topology node).

    Parameters
    ----------
    processors:
        Number of internal inspection processors.
    processor_rate:
        Per-processor throughput.  Aggregate capacity is
        ``processors * processor_rate`` (matching the interface speed on a
        well-specced box), but any single flow is limited to one processor.
    input_buffer:
        Input buffer absorbing line-rate bursts while a processor drains
        them.  Business-profile firewalls ship with shallow buffers.
    sequence_checking:
        When True, the firewall rewrites TCP headers and strips the
        window-scaling option — the Penn State pathology (§6.2).
    expected_burst / expected_line_rate:
        The burst profile used to *estimate* transit loss for the fluid
        model: science DTN senders emit roughly window-sized bursts at NIC
        line rate.  The packet-level bench
        (``benchmarks/bench_firewall_burst.py``) cross-validates this
        closed-form estimate against :mod:`repro.netsim.packetsim`.
    """

    kind: str = "firewall"
    processors: int = 16
    processor_rate: DataRate = field(default_factory=lambda: Gbps(0.65))
    input_buffer: DataSize = field(default_factory=lambda: KB(512))
    inspection_latency: TimeDelta = field(default_factory=lambda: us(300))
    sequence_checking: bool = False
    policy: FirewallPolicy = field(default_factory=FirewallPolicy)
    expected_burst: DataSize = field(default_factory=lambda: KB(256))
    expected_line_rate: DataRate = field(default_factory=lambda: Gbps(10))
    #: Optional telemetry tracer (set via
    #: :func:`repro.telemetry.instrument_topology`); None = untraced.
    tracer: object = field(default=None, repr=False)

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.processors < 1:
            raise ConfigurationError("firewall needs at least one processor")
        if self.processor_rate.bps <= 0:
            raise ConfigurationError("processor_rate must be positive")

    # -- capacity view --------------------------------------------------------
    @property
    def aggregate_capacity(self) -> DataRate:
        """Marketing number: all processors together."""
        return DataRate(self.processor_rate.bps * self.processors)

    @property
    def per_flow_capacity(self) -> DataRate:
        """What one flow actually gets: a single processor."""
        return self.processor_rate

    # -- PathElement protocol --------------------------------------------------
    def element_capacity(self) -> Optional[DataRate]:
        return self.per_flow_capacity

    def element_latency(self) -> TimeDelta:
        return self.inspection_latency

    def element_loss_probability(self) -> float:
        """Estimated per-packet burst-overflow loss for a science flow.

        Uses the closed-form drop-tail burst analysis: a burst of
        ``expected_burst`` arriving at ``expected_line_rate`` into the
        input buffer draining at one processor's rate.  Returns the lost
        fraction of the burst, which for the fluid model doubles as the
        per-packet loss probability.
        """
        queue = DropTailQueue(
            capacity=self.input_buffer, service_rate=self.processor_rate
        )
        loss = queue.burst_loss_fraction(
            self.expected_burst, self.expected_line_rate
        )
        tracer = self.tracer
        if tracer is not None and tracer.enabled and loss > 0:
            tracer.event(
                "firewall", "burst-drop", node=self.name,
                loss_fraction=loss,
                burst_bytes=self.expected_burst.bytes,
                buffer_bytes=self.input_buffer.bytes,
                processor_rate_bps=self.processor_rate.bps,
            )
            tracer.counter("burst_drop_estimates",
                           component="firewall").inc()
            tracer.gauge("buffer_bytes", component="firewall").set(
                self.input_buffer.bytes)
        return loss

    def element_buffer(self) -> DataSize:
        """The shallow input buffer is the queue available at this
        bottleneck — the TCP model's sawtooth is clamped by it."""
        return self.input_buffer

    def transform_flow(self, ctx: FlowContext) -> FlowContext:
        if self.sequence_checking:
            tracer = self.tracer
            if tracer is not None and tracer.enabled:
                tracer.event("firewall", "strip-window-scaling",
                             node=self.name)
                tracer.counter("window_scaling_strips",
                               component="firewall").inc()
            return ctx.with_(window_scaling=False)
        return ctx

    # -- policy ------------------------------------------------------------------
    def permits(self, src: str, dst: str, port: int) -> bool:
        return self.policy.permits(src, dst, port)

    def check(self, src: str, dst: str, port: int) -> None:
        """Raise :class:`SecurityPolicyError` if the policy denies traffic."""
        if not self.permits(src, dst, port):
            raise SecurityPolicyError(
                f"firewall {self.name!r} denies {src} -> {dst}:{port}"
            )

    # -- analysis helpers -----------------------------------------------------------
    def burst_loss_for(
        self, burst: DataSize, line_rate: DataRate
    ) -> float:
        """Burst-loss fraction for an arbitrary sender profile."""
        queue = DropTailQueue(
            capacity=self.input_buffer, service_rate=self.processor_rate
        )
        return queue.burst_loss_fraction(burst, line_rate)

    def describe(self) -> str:
        seq = "on" if self.sequence_checking else "off"
        return (
            f"firewall {self.name}: {self.processors} x "
            f"{self.processor_rate.human()} processors "
            f"(aggregate {self.aggregate_capacity.human()}), "
            f"{self.input_buffer.human()} input buffer, "
            f"sequence checking {seq}, "
            f"{len(self.policy.rules)} rules"
        )

"""In-network data caches for federated Science DMZ deployments.

"Analyzing scientific data sharing patterns" (PAPERS.md) measures what
regional in-network caches buy a federation: repeated transfers of the
same working set are absorbed close to the consumer, so the origin and
the WAN core carry only the *unique* bytes.  :class:`CacheDevice` is
that device: a byte-capacity store with LRU or LFU eviction, attachable
to a topology node like any other path element (it forwards traffic
unmodified — caching changes *where* bytes come from, not how the path
behaves), with hit/miss/byte counters exportable through
:mod:`repro.telemetry`.

The accounting identity every cache must preserve — and the one the
``cache-bytes-conserved`` chaos oracle enforces — is::

    origin_bytes + sum(cache.bytes_served) == delivered_bytes
    hits + misses == requests                        (per cache)
    occupancy == bytes_filled - bytes_evicted <= capacity

``corrupt_accounting`` exists for the chaos campaigns: a corrupted
cache still serves hits but silently drops them from ``bytes_served``,
exactly the kind of bookkeeping bug the oracle is there to catch.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Optional

from ..errors import ConfigurationError
from ..units import DataRate, DataSize, TimeDelta

__all__ = ["CACHE_POLICIES", "CacheDevice"]

#: Supported eviction policies.
CACHE_POLICIES = ("lru", "lfu")


class CacheDevice:
    """A byte-capacity object cache with LRU or LFU eviction.

    Parameters
    ----------
    name:
        Cache identity (also the telemetry component label).
    capacity:
        Total store size; objects larger than this bypass the cache
        (counted as misses, never admitted).
    policy:
        ``"lru"`` evicts the least-recently-*used* object, ``"lfu"``
        the least-frequently-used one (ties broken by insertion order,
        so eviction is deterministic).
    tier:
        Free-form placement label (``"site"``, ``"regional"``) carried
        into the ledger for per-tier analysis.
    """

    def __init__(self, name: str, capacity: DataSize, *,
                 policy: str = "lru", tier: str = "site") -> None:
        if not name:
            raise ConfigurationError("cache needs a name")
        if policy not in CACHE_POLICIES:
            known = ", ".join(CACHE_POLICIES)
            raise ConfigurationError(
                f"unknown cache policy {policy!r}; known policies: {known}")
        if capacity.bits < 0:
            raise ConfigurationError("cache capacity must be >= 0")
        self.name = name
        self.capacity = capacity
        self.policy = policy
        self.tier = tier
        self.description = f"{tier} cache {name}"
        #: Caching never perturbs the forwarding path.
        self.visible_to_counters = True
        #: Chaos hook: a corrupted cache serves hits but leaks them
        #: from ``bytes_served`` — the conservation oracle's target.
        self.corrupt_accounting = False

        self._store: "OrderedDict[str, int]" = OrderedDict()  # id -> bytes
        self._freq: Dict[str, int] = {}
        self._metrics = None

        self.requests = 0
        self.hits = 0
        self.misses = 0
        self.bytes_served = 0
        self.bytes_filled = 0
        self.bytes_evicted = 0
        self.occupancy_bytes = 0
        self.peak_occupancy_bytes = 0

    # -- path-element interface (a cache is attachable but transparent) -------
    def element_latency(self) -> TimeDelta:
        return TimeDelta(0.0)

    def element_capacity(self) -> Optional[DataRate]:
        return None

    def element_loss_probability(self) -> float:
        return 0.0

    def transform_flow(self, ctx):
        return ctx

    # -- telemetry -------------------------------------------------------------
    def bind_metrics(self, registry) -> None:
        """Export counters through a :class:`~repro.telemetry.MetricsRegistry`."""
        self._metrics = registry

    def _metric(self, name: str):
        return self._metrics.counter(name, component=self.name)

    # -- the cache -------------------------------------------------------------
    @property
    def capacity_bytes(self) -> int:
        return int(self.capacity.bits // 8)

    def __contains__(self, object_id: str) -> bool:
        return object_id in self._store

    def __len__(self) -> int:
        return len(self._store)

    def request(self, object_id: str, size_bytes: int) -> bool:
        """One object request; returns True on a hit.

        A hit serves ``size_bytes`` from the store (and refreshes the
        object's recency/frequency); a miss pulls the object through —
        it is admitted (evicting by policy until it fits) unless it is
        larger than the whole cache, in which case it bypasses.
        """
        size = int(size_bytes)
        if size < 0:
            raise ConfigurationError("request size must be >= 0")
        self.requests += 1
        self._freq[object_id] = self._freq.get(object_id, 0) + 1
        if object_id in self._store:
            self.hits += 1
            if not self.corrupt_accounting:
                self.bytes_served += size
            self._store.move_to_end(object_id)
            if self._metrics is not None:
                self._metric("cache.hits").inc()
                self._metric("cache.bytes_served").inc(size)
            return True
        self.misses += 1
        if self._metrics is not None:
            self._metric("cache.misses").inc()
        if size <= self.capacity_bytes:
            self._admit(object_id, size)
        return False

    def _admit(self, object_id: str, size: int) -> None:
        while self.occupancy_bytes + size > self.capacity_bytes:
            self._evict_one()
        self._store[object_id] = size
        self.occupancy_bytes += size
        self.bytes_filled += size
        self.peak_occupancy_bytes = max(self.peak_occupancy_bytes,
                                        self.occupancy_bytes)
        if self._metrics is not None:
            self._metric("cache.bytes_filled").inc(size)

    def _evict_one(self) -> None:
        if self.policy == "lru":
            victim = next(iter(self._store))
        else:  # lfu; OrderedDict iteration makes the tie-break stable
            victim = min(self._store, key=lambda k: self._freq.get(k, 0))
        size = self._store.pop(victim)
        self.occupancy_bytes -= size
        self.bytes_evicted += size
        if self._metrics is not None:
            self._metric("cache.bytes_evicted").inc(size)

    def reset(self) -> None:
        """Cold-start the cache: empty store, zeroed counters.

        The chaos replay resets before each schedule so a design
        bundle's caches never leak state between runs.
        """
        self._store.clear()
        self._freq.clear()
        self.corrupt_accounting = False
        self.requests = 0
        self.hits = 0
        self.misses = 0
        self.bytes_served = 0
        self.bytes_filled = 0
        self.bytes_evicted = 0
        self.occupancy_bytes = 0
        self.peak_occupancy_bytes = 0

    def hit_rate(self) -> float:
        return self.hits / self.requests if self.requests else 0.0

    def ledger(self) -> Dict[str, object]:
        """The cache's byte accounting as a plain-scalar record."""
        return {
            "name": self.name,
            "tier": self.tier,
            "policy": self.policy,
            "capacity_bytes": self.capacity_bytes,
            "requests": self.requests,
            "hits": self.hits,
            "misses": self.misses,
            "bytes_served": self.bytes_served,
            "bytes_filled": self.bytes_filled,
            "bytes_evicted": self.bytes_evicted,
            "occupancy_bytes": self.occupancy_bytes,
            "peak_occupancy_bytes": self.peak_occupancy_bytes,
        }

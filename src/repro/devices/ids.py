"""Intrusion detection system models.

§3.4 and §5 recommend IDS alongside (not instead of) ACLs; §7.3 sketches
the SDN future where connection-setup traffic is steered through the IDS
and verified flows then bypass both IDS and firewall.

Two deployment modes are modelled:

* **passive** — a tap/span-port deployment: zero effect on the data path;
  the IDS may *miss* traffic beyond its inspection capacity but never
  slows it down.  This is Science DMZ practice.
* **inline** — the IDS sits in the forwarding path: traffic beyond its
  inspection capacity is either dropped (fail-closed) or passes
  uninspected (fail-open), and every packet pays the inspection latency.

Signatures are simple (src, dst, port) predicates with labels; the tests
and the SDN bypass bench drive them with synthetic connection events.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

from ..errors import ConfigurationError
from ..units import DataRate, Gbps, TimeDelta, us

__all__ = ["IdsMode", "IdsAlert", "IntrusionDetectionSystem"]


class IdsMode(enum.Enum):
    """Deployment mode: passive tap or inline inspection."""

    PASSIVE = "passive"
    INLINE = "inline"


@dataclass(frozen=True)
class IdsAlert:
    """One alert raised by the IDS."""

    time: float
    signature: str
    src: str
    dst: str
    port: int


#: A signature: (label, predicate(src, dst, port) -> bool)
Signature = Tuple[str, Callable[[str, str, int], bool]]


@dataclass
class IntrusionDetectionSystem:
    """An IDS attachable to a node as a transit element.

    Parameters
    ----------
    mode:
        Passive tap (Science DMZ practice) or inline.
    inspection_capacity:
        Aggregate rate the IDS can actually inspect.
    fail_open:
        Inline only: traffic beyond capacity passes uninspected when True,
        is dropped when False.
    offered_load:
        Set by experiments to the current aggregate load so the element
        can report its inline loss / passive blind fraction.
    """

    name: str = "ids"
    mode: IdsMode = IdsMode.PASSIVE
    inspection_capacity: DataRate = field(default_factory=lambda: Gbps(1))
    inspection_latency: TimeDelta = field(default_factory=lambda: us(50))
    fail_open: bool = True
    offered_load: DataRate = field(default_factory=lambda: DataRate(0.0))
    signatures: List[Signature] = field(default_factory=list)
    alerts: List[IdsAlert] = field(default_factory=list)
    #: Optional telemetry tracer (set via
    #: :func:`repro.telemetry.instrument_topology`); None = untraced.
    tracer: object = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if self.inspection_capacity.bps <= 0:
            raise ConfigurationError("inspection_capacity must be positive")

    # -- signatures / alerting ------------------------------------------------------
    def add_signature(self, label: str,
                      predicate: Callable[[str, str, int], bool]) -> None:
        if not label:
            raise ConfigurationError("signature needs a label")
        self.signatures.append((label, predicate))

    def observe(self, src: str, dst: str, port: int, *,
                time: float = 0.0) -> List[IdsAlert]:
        """Inspect one connection event; returns (and records) any alerts."""
        raised = []
        tracer = self.tracer
        traced = tracer is not None and tracer.enabled
        if traced:
            tracer.counter("observed", component="ids").inc()
        for label, predicate in self.signatures:
            if predicate(src, dst, port):
                alert = IdsAlert(time=time, signature=label,
                                 src=src, dst=dst, port=port)
                self.alerts.append(alert)
                raised.append(alert)
                if traced:
                    tracer.event("ids", "alert", t=time, ids=self.name,
                                 signature=label, src=src, dst=dst,
                                 port=port)
                    tracer.counter("alerts", component="ids").inc()
        return raised

    @property
    def blind_fraction(self) -> float:
        """Fraction of offered traffic the IDS cannot inspect."""
        if self.offered_load.bps <= self.inspection_capacity.bps:
            return 0.0
        return 1.0 - self.inspection_capacity.bps / self.offered_load.bps

    # -- PathElement protocol --------------------------------------------------------
    def element_latency(self) -> TimeDelta:
        if self.mode is IdsMode.PASSIVE:
            return TimeDelta(0.0)
        return self.inspection_latency

    def element_capacity(self) -> Optional[DataRate]:
        if self.mode is IdsMode.PASSIVE:
            return None
        if self.fail_open:
            return None  # excess passes uninspected at line rate
        return self.inspection_capacity

    def element_loss_probability(self) -> float:
        if self.mode is IdsMode.PASSIVE or self.fail_open:
            return 0.0
        # Fail-closed inline: overload manifests as drops.
        return self.blind_fraction

    def transform_flow(self, ctx):
        return ctx

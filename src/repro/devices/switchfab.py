"""LAN switch fabric model: buffering, fan-in, and the CU-Boulder flip bug.

§5 explains fan-in: bursts from several ingress ports aimed at one egress
port must be buffered or dropped, and "since high-speed packet memory is
expensive, cheap switches often do not have enough buffer space to handle
anything except LAN traffic".

§6.1 adds a wrinkle from the University of Colorado deployment: under high
fan-in load the vendor's switch silently flipped from cut-through to
store-and-forward mode, "and the cut-through switch was unable to provide
loss-free service in store-and-forward mode" — a firmware/architecture bug
later fixed by the vendor.

:class:`SwitchFabric` is a transit element whose loss probability is
computed from the *currently configured offered load* (set by the
experiment via :meth:`set_offered_load`): a binomial model of coincident
source bursts swept through the shared egress buffer.  The packet-level
cross-check lives in :mod:`repro.netsim.packetsim` and the Colorado bench
compares both.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from ..errors import ConfigurationError
from ..netsim.buffers import DropTailQueue
from ..netsim.packetsim import BurstySource
from ..units import DataRate, DataSize, Gbps, KB, TimeDelta, us

__all__ = ["SwitchingMode", "SwitchFabric"]


class SwitchingMode(enum.Enum):
    """Forwarding mode of a switch fabric."""

    CUT_THROUGH = "cut-through"
    STORE_AND_FORWARD = "store-and-forward"


@dataclass
class SwitchFabric:
    """The buffer/fabric behaviour of a LAN switch egress port.

    Parameters
    ----------
    egress_rate:
        Line rate of the (shared) egress port — e.g. the 10G uplink the
        physics cluster's 1G hosts all feed (§6.1's "fan-out ... multiple
        1Gbps connections feeding a single 10Gbps connection").
    port_buffer:
        Packet memory available to that egress port.  Cheap switches:
        ~hundreds of KB.  Science-DMZ-grade: tens-hundreds of MB.
    mode:
        Nominal switching mode.
    flip_bug:
        When True, high offered load silently flips cut-through to
        store-and-forward *with a buffer penalty* (the usable buffer
        shrinks, reproducing the vendor bug).  ``apply_vendor_fix()``
        clears it.
    flip_threshold:
        Offered-load fraction of egress rate beyond which the flip occurs.
    flip_buffer_penalty:
        Fraction of the buffer usable after the flip.
    flip_service_penalty:
        Fraction of the egress line rate the fabric can sustain after the
        flip — §6.1: "the cut-through switch was unable to provide
        loss-free service in store-and-forward mode".
    """

    name: str = "fabric"
    egress_rate: DataRate = field(default_factory=lambda: Gbps(10))
    port_buffer: DataSize = field(default_factory=lambda: KB(384))
    mode: SwitchingMode = SwitchingMode.CUT_THROUGH
    flip_bug: bool = False
    flip_threshold: float = 0.4
    flip_buffer_penalty: float = 0.2
    flip_service_penalty: float = 0.45
    latency: TimeDelta = field(default_factory=lambda: us(5))
    _sources: List[BurstySource] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.egress_rate.bps <= 0:
            raise ConfigurationError("egress_rate must be positive")
        if not 0.0 < self.flip_threshold <= 1.0:
            raise ConfigurationError("flip_threshold must be in (0,1]")
        if not 0.0 < self.flip_buffer_penalty <= 1.0:
            raise ConfigurationError("flip_buffer_penalty must be in (0,1]")

    # -- experiment interface ----------------------------------------------------
    def set_offered_load(self, sources: Sequence[BurstySource]) -> None:
        """Configure the concurrent ingress sources feeding this egress."""
        self._sources = list(sources)

    def clear_offered_load(self) -> None:
        self._sources = []

    def apply_vendor_fix(self) -> None:
        """The §6.1 resolution: the vendor fix removes the flip bug."""
        self.flip_bug = False

    @property
    def offered_mean_rate(self) -> DataRate:
        return DataRate(sum(s.mean_rate.bps for s in self._sources))

    @property
    def effective_mode(self) -> SwitchingMode:
        """Mode after accounting for the flip bug under load."""
        if (
            self.flip_bug
            and self.mode is SwitchingMode.CUT_THROUGH
            and self.offered_mean_rate.bps
                > self.flip_threshold * self.egress_rate.bps
        ):
            return SwitchingMode.STORE_AND_FORWARD
        return self.mode

    @property
    def flipped(self) -> bool:
        """True when the flip bug has engaged under the current load."""
        return self.flip_bug and self.effective_mode is not self.mode

    @property
    def effective_buffer(self) -> DataSize:
        """Usable buffer; shrinks when the flip bug has engaged."""
        if self.flipped:
            return DataSize(self.port_buffer.bits * self.flip_buffer_penalty)
        return self.port_buffer

    @property
    def effective_service_rate(self) -> DataRate:
        """Sustainable forwarding rate; degrades when the bug has engaged."""
        if self.flipped:
            return DataRate(self.egress_rate.bps * self.flip_service_penalty)
        return self.egress_rate

    # -- loss model ---------------------------------------------------------------
    def fan_in_loss(self) -> float:
        """Expected per-packet loss from coincident ingress bursts.

        Each source bursts with probability equal to its duty cycle.  For
        every subset size k, arrivals sum to k x line_rate; the shared
        egress queue (drained at ``egress_rate``) loses the closed-form
        burst fraction.  The expectation over the binomial distribution of
        concurrent bursts, weighted by the packets each scenario offers,
        is the per-packet loss probability the fluid model uses.
        """
        if not self._sources:
            return 0.0
        n = len(self._sources)
        # Homogeneous approximation: use the mean source profile.
        duty = sum(s.duty_cycle for s in self._sources) / n
        line = DataRate(sum(s.line_rate.bps for s in self._sources) / n)
        burst = DataSize(sum(s.burst_size.bits for s in self._sources) / n)
        queue = DropTailQueue(capacity=self.effective_buffer,
                              service_rate=self.effective_service_rate)
        total_weight = 0.0
        total_loss = 0.0
        for k in range(1, n + 1):
            p_k = math.comb(n, k) * duty**k * (1.0 - duty) ** (n - k)
            if p_k < 1e-12:
                continue
            combined_burst = DataSize(burst.bits * k)
            combined_rate = DataRate(line.bps * k)
            frac = queue.burst_loss_fraction(combined_burst, combined_rate)
            weight = p_k * k  # k bursts' worth of packets in scenario k
            total_weight += weight
            total_loss += weight * frac
        return total_loss / total_weight if total_weight > 0 else 0.0

    # -- PathElement protocol ---------------------------------------------------------
    def element_latency(self) -> TimeDelta:
        if self.effective_mode is SwitchingMode.STORE_AND_FORWARD:
            # Store-and-forward pays one full-frame serialization per hop.
            frame_bits = 9000 * 8
            return TimeDelta(self.latency.s + frame_bits / self.egress_rate.bps)
        return self.latency

    def element_capacity(self) -> Optional[DataRate]:
        return self.effective_service_rate

    def element_buffer(self) -> DataSize:
        return self.effective_buffer

    def element_loss_probability(self) -> float:
        return self.fan_in_loss()

    def transform_flow(self, ctx):
        return ctx

    def describe(self) -> str:
        return (
            f"switch fabric {self.name}: egress {self.egress_rate.human()}, "
            f"buffer {self.port_buffer.human()} "
            f"(effective {self.effective_buffer.human()}), "
            f"mode {self.effective_mode.value}"
            f"{' [flip bug]' if self.flip_bug else ''}, "
            f"{len(self._sources)} offered sources"
        )

"""Path-hygiene linting: §5's hardware guidance as executable checks.

The audit (:mod:`repro.core.audit`) grades *architecture* — are the four
patterns present.  This module grades *engineering hygiene* along a
specific path, encoding §5's "Network Components" advice:

* **MTU consistency** — a jumbo-frame host sending into a 1500-byte
  segment wastes the 6x Mathis advantage (and in real life risks PMTUD
  black holes); perfSONAR hosts must match the data path's MTU or their
  tests lie.
* **NIC/uplink matching** — §3.2: a DTN NIC faster than the WAN uplink
  "can overwhelm the slower wide area link causing packet loss".
* **Buffer provisioning** — §5: the bottleneck device needs enough queue
  for the path's bandwidth-delay product; shallow buffers turn bursts
  into loss.
* **Residual loss** — any non-zero random loss on a science path is a
  finding (that is the whole point of the paper).

Each check yields a :class:`HygieneFinding` with a severity and the
numbers behind it, so the linter's output reads like a network
engineer's punch list.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Optional

from ..netsim.node import Host
from ..netsim.topology import Path, Topology
from ..units import DataRate

__all__ = ["HygieneLevel", "HygieneFinding", "lint_path"]


class HygieneLevel(enum.Enum):
    """Severity of a hygiene finding."""

    INFO = "info"
    WARNING = "warning"
    CRITICAL = "critical"


@dataclass(frozen=True)
class HygieneFinding:
    """One engineering-hygiene issue on a path."""

    level: HygieneLevel
    check: str
    message: str

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"[{self.level.value}] {self.check}: {self.message}"


def _check_mtu(topology: Topology, path: Path) -> List[HygieneFinding]:
    findings: List[HygieneFinding] = []
    mtus = [(link.name or f"{a.name}--{b.name}", link.mtu.bytes)
            for (a, b), link in zip(zip(path.nodes, path.nodes[1:]),
                                    path.links)]
    smallest = min(m for _, m in mtus)
    largest = max(m for _, m in mtus)
    if largest > smallest:
        small_names = [n for n, m in mtus if m == smallest]
        findings.append(HygieneFinding(
            HygieneLevel.WARNING, "mtu-consistency",
            f"mixed MTUs along the path: {smallest:.0f}B on "
            f"{', '.join(small_names)} vs {largest:.0f}B elsewhere — the "
            "whole path runs at the smaller segment size "
            "(and loses the jumbo-frame Mathis advantage)",
        ))
    for endpoint in (path.src, path.dst):
        profile = endpoint.meta.get("host_profile")
        if profile is not None and profile.mtu.bytes > smallest:
            findings.append(HygieneFinding(
                HygieneLevel.WARNING, "mtu-consistency",
                f"host {endpoint.name!r} is configured for "
                f"{profile.mtu.bytes:.0f}B frames but the path only "
                f"carries {smallest:.0f}B",
            ))
    return findings


def _check_nic_match(topology: Topology, path: Path) -> List[HygieneFinding]:
    findings: List[HygieneFinding] = []
    link_rates = [link.rate.bps for link in path.links]
    min_link = min(link_rates)
    for endpoint in (path.src, path.dst):
        if isinstance(endpoint, Host) and endpoint.nic_rate is not None:
            if endpoint.nic_rate.bps > 4 * min_link:
                findings.append(HygieneFinding(
                    HygieneLevel.WARNING, "nic-uplink-match",
                    f"host {endpoint.name!r} NIC "
                    f"({endpoint.nic_rate.human()}) is far faster than the "
                    f"path bottleneck ({DataRate(min_link).human()}) — "
                    "§3.2: its line-rate bursts can overwhelm the slower "
                    "segment unless deep buffers absorb them",
                ))
    return findings


def _check_buffers(topology: Topology, path: Path) -> List[HygieneFinding]:
    profile = topology.profile(path)
    if profile.bottleneck_buffer is None:
        return []  # modeled as well-provisioned
    bdp = profile.bdp()
    buffer = profile.bottleneck_buffer
    if buffer.bits < bdp.bits:
        level = (HygieneLevel.CRITICAL
                 if buffer.bits < bdp.bits / 10 else HygieneLevel.WARNING)
        return [HygieneFinding(
            level, "buffer-provisioning",
            f"bottleneck {profile.bottleneck_name!r} has "
            f"{buffer.human()} of queue for a {bdp.human()} BDP path — "
            "§5: inadequate burst capacity causes TCP loss",
        )]
    return []


def _check_loss(topology: Topology, path: Path) -> List[HygieneFinding]:
    profile = topology.profile(path)
    if profile.random_loss <= 0:
        return []
    worst = max(zip(profile.segment_loss, profile.element_names))
    return [HygieneFinding(
        HygieneLevel.CRITICAL, "residual-loss",
        f"path loses {profile.random_loss:.5%} of packets "
        f"(worst element: {worst[1]!r} at {worst[0]:.5%}) — TCP "
        "throughput is Mathis-bound until this is fixed",
    )]


def _check_middleboxes(topology: Topology, path: Path) -> List[HygieneFinding]:
    findings = []
    if path.traverses_kind("firewall"):
        findings.append(HygieneFinding(
            HygieneLevel.CRITICAL, "firewall-in-path",
            "a stateful firewall sits in this path; per-flow throughput "
            "is capped at one inspection processor and bursts hit its "
            "input buffer (§5)",
        ))
    profile = topology.profile(path)
    if not profile.flow.window_scaling:
        findings.append(HygieneFinding(
            HygieneLevel.CRITICAL, "window-scaling-stripped",
            "something on this path strips RFC 1323 window scaling — the "
            "receive window is clamped to 64 KB (the §6.2 pathology)",
        ))
    return findings


def lint_path(
    topology: Topology,
    src: str,
    dst: str,
    *,
    policy: Optional[dict] = None,
) -> List[HygieneFinding]:
    """Run all hygiene checks on the path ``src -> dst``.

    Returns findings sorted most-severe first (CRITICAL, WARNING, INFO);
    an empty list means the path is clean by every §5 criterion.
    """
    path = topology.path(src, dst, **(policy or {}))
    findings: List[HygieneFinding] = []
    findings += _check_loss(topology, path)
    findings += _check_middleboxes(topology, path)
    findings += _check_buffers(topology, path)
    findings += _check_mtu(topology, path)
    findings += _check_nic_match(topology, path)
    order = {HygieneLevel.CRITICAL: 0, HygieneLevel.WARNING: 1,
             HygieneLevel.INFO: 2}
    findings.sort(key=lambda f: order[f.level])
    return findings

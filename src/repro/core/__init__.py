"""The Science DMZ design pattern (the paper's contribution).

* :mod:`repro.core.patterns` — the four sub-patterns (§3): proper
  location, dedicated systems, performance monitoring, appropriate
  security — as first-class objects with metadata and topology checks.
* :mod:`repro.core.dmz` — the :class:`~repro.core.dmz.ScienceDMZ`
  builder: composes the patterns onto a topology.
* :mod:`repro.core.designs` — the paper's notional designs as
  constructible topologies: general-purpose campus (baseline), simple
  Science DMZ (Fig 3), supercomputer center (Fig 4), big-data site
  (Fig 5), campus+RCNet (Fig 6/7).
* :mod:`repro.core.audit` — pattern-compliance auditing of an arbitrary
  topology.
"""

from .patterns import (
    DesignPattern,
    LOCATION_PATTERN,
    DEDICATED_SYSTEMS_PATTERN,
    MONITORING_PATTERN,
    SECURITY_PATTERN,
    ALL_PATTERNS,
)
from .dmz import ScienceDMZ
from .designs import (
    DesignBundle,
    general_purpose_campus,
    simple_science_dmz,
    supercomputer_center,
    big_data_site,
    campus_with_rcnet,
)
from .audit import AuditFinding, AuditReport, Severity, audit_design
from .upgrade import (
    UpgradeAction,
    UpgradePlan,
    UpgradeResult,
    apply_upgrade,
    plan_upgrade,
)
from .hygiene import HygieneFinding, HygieneLevel, lint_path
from .wan import BackboneSite, SITES, national_backbone, site_names

__all__ = [
    "BackboneSite",
    "SITES",
    "national_backbone",
    "site_names",
    "HygieneFinding",
    "HygieneLevel",
    "lint_path",
    "UpgradeAction",
    "UpgradePlan",
    "UpgradeResult",
    "apply_upgrade",
    "plan_upgrade",
    "DesignPattern",
    "LOCATION_PATTERN",
    "DEDICATED_SYSTEMS_PATTERN",
    "MONITORING_PATTERN",
    "SECURITY_PATTERN",
    "ALL_PATTERNS",
    "ScienceDMZ",
    "DesignBundle",
    "general_purpose_campus",
    "simple_science_dmz",
    "supercomputer_center",
    "big_data_site",
    "campus_with_rcnet",
    "AuditFinding",
    "AuditReport",
    "Severity",
    "audit_design",
]

"""Upgrade planner: apply the Science DMZ patterns to a failing campus.

The NSF CC-NIE program (paper §2) funded exactly this operation at ~20
campuses: take a general-purpose network whose science hosts sit behind
the firewall, and deploy the design pattern.  This module mechanizes it:

* :func:`plan_upgrade` audits a topology and produces the ordered list
  of :class:`UpgradeAction` needed to make it pass;
* :func:`apply_upgrade` executes the plan — builds the DMZ enclave at
  the border, provisions a tuned DTN for each science service (the
  paper's migration: data service moves to the DMZ; the original host
  keeps its enterprise role), deploys perfSONAR, installs ACLs — and
  returns before/after audits.

The result is deliberately *additive*: nothing behind the firewall is
touched, matching §2's observation that general-purpose networks are
"difficult or impossible to change" and must be left to their mission.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from ..dtn.storage import RaidArray, StorageSystem
from ..errors import ConfigurationError
from ..netsim.topology import Topology
from ..units import DataRate, Gbps
from .audit import AuditReport, audit_design
from .dmz import ScienceDMZ

__all__ = ["UpgradeAction", "UpgradePlan", "UpgradeResult",
           "plan_upgrade", "apply_upgrade"]


@dataclass(frozen=True)
class UpgradeAction:
    """One step of the upgrade."""

    kind: str        # 'create-dmz' | 'provision-dtn' | 'deploy-perfsonar'
    #                | 'install-acl'
    detail: str

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"[{self.kind}] {self.detail}"


@dataclass
class UpgradePlan:
    """The ordered actions plus the audit that motivated them."""

    topology_name: str
    before: AuditReport
    actions: List[UpgradeAction] = field(default_factory=list)

    @property
    def needed(self) -> bool:
        return bool(self.actions)

    def render_text(self) -> str:
        lines = [f"upgrade plan for {self.topology_name!r} "
                 f"({len(self.actions)} actions):"]
        lines += [f"  {i + 1}. {a}" for i, a in enumerate(self.actions)]
        return "\n".join(lines)


@dataclass
class UpgradeResult:
    """Outcome of an executed upgrade."""

    plan: UpgradePlan
    dmz: ScienceDMZ
    after: AuditReport
    dtn_map: Dict[str, str]   # science host -> its new DTN

    @property
    def successful(self) -> bool:
        return self.after.passed

    def render_text(self) -> str:
        verdict = "PASSES" if self.successful else "still FAILS"
        mapped = ", ".join(f"{h}->{d}" for h, d in self.dtn_map.items())
        return (self.plan.render_text()
                + f"\nexecuted: audit now {verdict}; DTNs: {mapped}")


def plan_upgrade(
    topology: Topology,
    *,
    science_hosts: Sequence[str],
    border: str,
    wan: str,
) -> UpgradePlan:
    """Audit and derive the actions needed for a passing Science DMZ."""
    if not science_hosts:
        raise ConfigurationError("upgrade needs at least one science host")
    for host in science_hosts:
        if not topology.has_node(host):
            raise ConfigurationError(f"science host {host!r} not in topology")
    before = audit_design(topology, dtns=list(science_hosts), wan_node=wan)
    plan = UpgradePlan(topology_name=topology.name, before=before)
    if before.passed:
        return plan

    failing = {f.pattern for f in before.failures()}
    if {"location", "appropriate-security"} & failing:
        plan.actions.append(UpgradeAction(
            "create-dmz",
            f"attach a Science DMZ switch to border router {border!r} "
            "(perimeter location, separate science fabric)"))
    for host in science_hosts:
        plan.actions.append(UpgradeAction(
            "provision-dtn",
            f"deploy a tuned, dedicated DTN for {host!r}'s data service "
            "on the DMZ (the host keeps its enterprise role)"))
    if "performance-monitoring" in failing:
        plan.actions.append(UpgradeAction(
            "deploy-perfsonar",
            "add a perfSONAR host to the DMZ for regular OWAMP/BWCTL "
            "testing"))
    plan.actions.append(UpgradeAction(
        "install-acl",
        "enforce per-service security with ACLs on the DMZ switch "
        "(no firewall in the science path)"))
    return plan


def apply_upgrade(
    topology: Topology,
    *,
    science_hosts: Sequence[str],
    border: str,
    wan: str,
    uplink_rate: DataRate = Gbps(10),
    allowed_peers: Sequence[str] = ("*",),
    storage_factory=None,
) -> UpgradeResult:
    """Execute :func:`plan_upgrade`'s actions on the topology in place.

    ``storage_factory(host_name) -> StorageSystem`` customizes each new
    DTN's storage; the default provisions a RAID array per DTN.
    """
    plan = plan_upgrade(topology, science_hosts=science_hosts,
                        border=border, wan=wan)
    if not plan.needed:
        raise ConfigurationError(
            f"topology {topology.name!r} already passes the audit; "
            "nothing to upgrade"
        )
    if storage_factory is None:
        def storage_factory(host_name: str) -> StorageSystem:
            return RaidArray(name=f"{host_name}-dtn-raid")

    dmz = ScienceDMZ(topology, border=border, wan=wan,
                     uplink_rate=uplink_rate)
    dtn_map: Dict[str, str] = {}
    for host in science_hosts:
        dtn_name = f"{host}-dtn"
        dmz.add_dtn(dtn_name, nic_rate=uplink_rate,
                    storage=storage_factory(host))
        dtn_map[host] = dtn_name
    dmz.add_perfsonar(f"{topology.name}-perfsonar")
    dmz.install_acl(allowed_peers=allowed_peers)
    dmz.attach_ids()

    after = audit_design(topology, dtns=list(dtn_map.values()),
                         wan_node=wan)
    return UpgradeResult(plan=plan, dmz=dmz, after=after, dtn_map=dtn_map)

"""Design audit: grade a topology against the Science DMZ patterns.

:func:`audit_design` runs every sub-pattern evaluator over a topology and
produces an :class:`AuditReport` of severity-graded findings.  The benches
use it two ways: to show that the paper's notional designs (Figs 3-5)
pass, and that the general-purpose campus baseline fails for exactly the
reasons §2 describes.
"""

from __future__ import annotations

import enum
import io
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..errors import AuditError
from ..netsim.topology import Topology
from .patterns import ALL_PATTERNS, DesignPattern

__all__ = ["Severity", "AuditFinding", "AuditReport", "audit_design"]


class Severity(enum.Enum):
    """Grade of an audit finding."""

    PASS = "pass"
    FAIL = "fail"

    @property
    def mark(self) -> str:
        return {"pass": "ok", "fail": "FAIL"}[self.value]


@dataclass(frozen=True)
class AuditFinding:
    """One graded finding from one pattern."""

    pattern: str
    severity: Severity
    message: str

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"[{self.severity.mark}] {self.pattern}: {self.message}"


@dataclass
class AuditReport:
    """All findings for one topology."""

    topology_name: str
    findings: List[AuditFinding] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return all(f.severity is Severity.PASS for f in self.findings)

    def failures(self) -> List[AuditFinding]:
        return [f for f in self.findings if f.severity is Severity.FAIL]

    def by_pattern(self) -> Dict[str, List[AuditFinding]]:
        out: Dict[str, List[AuditFinding]] = {}
        for f in self.findings:
            out.setdefault(f.pattern, []).append(f)
        return out

    def pattern_passed(self, pattern_name: str) -> bool:
        relevant = [f for f in self.findings if f.pattern == pattern_name]
        if not relevant:
            raise AuditError(f"no findings for pattern {pattern_name!r}")
        return all(f.severity is Severity.PASS for f in relevant)

    def render_text(self) -> str:
        buf = io.StringIO()
        verdict = "PASSES" if self.passed else "FAILS"
        buf.write(
            f"Science DMZ audit of {self.topology_name!r}: {verdict} "
            f"({len(self.failures())} failing findings)\n"
        )
        for pattern, findings in self.by_pattern().items():
            status = ("ok" if all(f.severity is Severity.PASS
                                  for f in findings) else "FAIL")
            buf.write(f"  pattern {pattern} [{status}]\n")
            for f in findings:
                buf.write(f"    [{f.severity.mark}] {f.message}\n")
        return buf.getvalue().rstrip("\n")

    def require_pass(self) -> None:
        """Raise :class:`AuditError` with details unless everything passed."""
        if not self.passed:
            details = "; ".join(f.message for f in self.failures())
            raise AuditError(
                f"design {self.topology_name!r} fails the Science DMZ "
                f"audit: {details}"
            )


def audit_design(
    topology: Topology,
    *,
    dtns: Sequence[str],
    wan_node: str,
    patterns: Optional[Sequence[DesignPattern]] = None,
) -> AuditReport:
    """Evaluate the Science DMZ sub-patterns against a topology.

    Parameters
    ----------
    topology:
        The design under audit.
    dtns:
        Names of the hosts intended as data transfer nodes.
    wan_node:
        The node representing the wide-area attachment (border-facing).
    patterns:
        Subset of patterns to run (default: all four).
    """
    context = {"dtns": list(dtns), "wan_node": wan_node}
    report = AuditReport(topology_name=topology.name)
    for pattern in (patterns if patterns is not None else ALL_PATTERNS):
        for ok, message in pattern.check(topology, context):
            report.findings.append(AuditFinding(
                pattern=pattern.name,
                severity=Severity.PASS if ok else Severity.FAIL,
                message=message,
            ))
    return report

"""A reference national research backbone (ESnet-like).

The paper's context is ESnet: a national WAN connecting DOE labs with a
clean, jumbo-capable 100G backbone.  This module builds a realistic-
topology stand-in — eight sites with geographically plausible RTTs —
so multi-site experiments (mesh dashboards, inter-facility transfers,
DYNES-style overlays) have a common substrate.

The site list and span latencies approximate the 2013-era ESnet5
footprint (the actual fiber routes are longer than geodesics; the
figures below reflect typical measured RTTs between the labs).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from ..dtn.host import attach_profile, tuned_dtn
from ..dtn.storage import ParallelFilesystem
from ..errors import ConfigurationError
from ..netsim.link import JUMBO_MTU, Link
from ..netsim.node import Host, Router
from ..netsim.topology import Topology
from ..units import DataRate, Gbps, ms

__all__ = ["BackboneSite", "national_backbone", "SITES"]


@dataclass(frozen=True)
class BackboneSite:
    """One site on the reference backbone."""

    name: str
    hub: str           # backbone hub router the site homes to
    description: str


#: The eight reference sites (DOE-lab flavored, names genericized).
SITES: Tuple[BackboneSite, ...] = (
    BackboneSite("lbl", "hub-west", "Bay Area compute/light-source site"),
    BackboneSite("slac", "hub-west", "Bay Area accelerator site"),
    BackboneSite("pnnl", "hub-northwest", "Pacific Northwest site"),
    BackboneSite("anl", "hub-midwest", "Chicago-area leadership computing"),
    BackboneSite("fnal", "hub-midwest", "Chicago-area HEP Tier-1"),
    BackboneSite("ornl", "hub-south", "Tennessee leadership computing"),
    BackboneSite("bnl", "hub-east", "New York HEP Tier-1"),
    BackboneSite("jlab", "hub-east", "Virginia accelerator site"),
)

#: Backbone spans: (hub_a, hub_b, one-way ms).  Roughly fiber-route
#: latencies; the hub ring is deliberately redundant.
_SPANS: Tuple[Tuple[str, str, float], ...] = (
    ("hub-west", "hub-northwest", 9.0),
    ("hub-west", "hub-midwest", 25.0),
    ("hub-northwest", "hub-midwest", 22.0),
    ("hub-midwest", "hub-south", 8.0),
    ("hub-midwest", "hub-east", 11.0),
    ("hub-south", "hub-east", 8.0),
)


def national_backbone(
    *,
    backbone_rate: DataRate = Gbps(100),
    site_rate: DataRate = Gbps(10),
    with_dtns: bool = True,
) -> Topology:
    """Build the reference backbone.

    Each site gets a perfSONAR-tagged host (``<site>``); with
    ``with_dtns`` it is a tuned DTN backed by a parallel filesystem, so
    any pair of sites can run transfers and mesh tests immediately.

    >>> topo = national_backbone()
    >>> round(topo.profile_between('lbl', 'bnl').base_rtt.ms)
    76
    """
    if backbone_rate.bps < site_rate.bps:
        raise ConfigurationError(
            "backbone must be at least as fast as site access"
        )
    topo = Topology("national-backbone")
    hubs = {hub for _, hub, _ in ((s.name, s.hub, s.description)
                                  for s in SITES)}
    for hub in sorted(hubs):
        topo.add_node(Router(name=hub, tags={"backbone"}))
    for a, b, one_way_ms in _SPANS:
        topo.connect(a, b, Link(rate=backbone_rate, delay=ms(one_way_ms),
                                mtu=JUMBO_MTU, name=f"{a}--{b}",
                                tags={"backbone"}))
    for site in SITES:
        host = topo.add_node(Host(name=site.name, nic_rate=site_rate,
                                  tags={"perfsonar", "dtn"}))
        topo.connect(site.name, site.hub, Link(
            rate=site_rate, delay=ms(1.0), mtu=JUMBO_MTU,
            name=f"{site.name}-access",
        ))
        if with_dtns:
            attach_profile(host, tuned_dtn(
                site.name, ParallelFilesystem(name=f"{site.name}-pfs")))
    return topo


def site_names() -> List[str]:
    """Names of all reference sites (the mesh-host list)."""
    return [s.name for s in SITES]

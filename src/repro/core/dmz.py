"""The ScienceDMZ builder: compose the four patterns onto a topology.

Given an existing topology with a border router, :class:`ScienceDMZ`
constructs the Figure 3 structure step by step — a high-performance DMZ
switch off the border, DTNs and a perfSONAR host on it, ACL security on
the switch — tagging everything so routing policy and the audit can
recognize the science fabric.

Examples
--------
>>> from repro.units import Gbps, ms
>>> from repro.netsim import Topology, Link, Router
>>> topo = Topology("campus")
>>> border = topo.add_node(Router(name="border"))
>>> wan = topo.add_node(Router(name="wan"))
>>> _ = topo.connect(border, wan, Link(rate=Gbps(10), delay=ms(1)))
>>> dmz = ScienceDMZ(topo, border="border", wan="wan")
>>> dtn = dmz.add_dtn("dtn1")
>>> ps = dmz.add_perfsonar()
>>> dmz.install_acl(allowed_peers=["remote-dtn"])
>>> topo.path("dtn1", "wan").hop_count
3
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

from ..devices.acl import AccessControlList, AclEngine
from ..devices.ids import IdsMode, IntrusionDetectionSystem
from ..dtn.host import HostSystemProfile, attach_profile, tuned_dtn
from ..dtn.storage import StorageSystem
from ..errors import ConfigurationError
from ..netsim.link import JUMBO_MTU, Link
from ..netsim.node import Host, Switch
from ..netsim.topology import Topology
from ..units import DataRate, Gbps, us

__all__ = ["ScienceDMZ"]

#: GridFTP's standard data-channel port range.
GRIDFTP_PORTS = list(range(50000, 50006))
#: perfSONAR test ports (OWAMP, BWCTL control).
PERFSONAR_PORTS = [861, 4823, 5001]


class ScienceDMZ:
    """Build a Science DMZ enclave on an existing topology.

    Parameters
    ----------
    topology:
        Target topology; must already contain the border router.
    border:
        Name of the border router the DMZ attaches to (§3.1: "close to or
        directly connected to the border router").
    wan:
        Name of the node representing the wide-area side (used for audit
        and policy conveniences).
    switch_name / uplink_rate:
        The DMZ switch and its border uplink.
    """

    def __init__(
        self,
        topology: Topology,
        *,
        border: str,
        wan: str,
        switch_name: str = "dmz-switch",
        uplink_rate: DataRate = Gbps(10),
    ) -> None:
        self.topology = topology
        self.border = topology.node(border)
        self.wan_name = wan
        if not topology.has_node(wan):
            raise ConfigurationError(f"WAN node {wan!r} not in topology")
        self.switch = topology.add_node(Switch(
            name=switch_name, tags={"science-dmz"},
        ))
        topology.connect(self.border, self.switch, Link(
            rate=uplink_rate, delay=us(5), mtu=JUMBO_MTU,
            tags={"science"}, name=f"{border}--{switch_name}",
        ))
        self.dtns: List[Host] = []
        self.perfsonar_hosts: List[Host] = []
        self.acl_engine: Optional[AclEngine] = None
        self.ids: Optional[IntrusionDetectionSystem] = None

    # -- dedicated systems ---------------------------------------------------------
    def add_dtn(
        self,
        name: str,
        *,
        nic_rate: DataRate = Gbps(10),
        profile: Optional[HostSystemProfile] = None,
        storage: Optional[StorageSystem] = None,
    ) -> Host:
        """Attach a tuned DTN to the DMZ switch."""
        host = self.topology.add_node(Host(
            name=name, nic_rate=nic_rate, tags={"science-dmz", "dtn"},
        ))
        self.topology.connect(self.switch, host, Link(
            rate=nic_rate, delay=us(5), mtu=JUMBO_MTU,
            tags={"science"}, name=f"{self.switch.name}--{name}",
        ))
        attach_profile(host, profile or tuned_dtn(name, storage))
        self.dtns.append(host)
        return host

    # -- monitoring -------------------------------------------------------------------
    def add_perfsonar(self, name: str = "perfsonar",
                      *, nic_rate: DataRate = Gbps(10)) -> Host:
        """Attach a perfSONAR measurement host to the DMZ switch."""
        host = self.topology.add_node(Host(
            name=name, nic_rate=nic_rate, tags={"science-dmz", "perfsonar"},
        ))
        self.topology.connect(self.switch, host, Link(
            rate=nic_rate, delay=us(5), mtu=JUMBO_MTU,
            tags={"science"}, name=f"{self.switch.name}--{name}",
        ))
        attach_profile(host, tuned_dtn(name))
        self.perfsonar_hosts.append(host)
        return host

    # -- security ------------------------------------------------------------------------
    def install_acl(
        self,
        *,
        allowed_peers: Iterable[str] = ("*",),
        data_ports: Sequence[int] = tuple(GRIDFTP_PORTS),
        name: str = "dmz-acl",
    ) -> AclEngine:
        """Install per-service ACLs on the DMZ switch (§3.4, §4.1).

        Permits the data-transfer ports from the allowed peers to each
        DTN, the perfSONAR test ports to the measurement hosts, and
        denies everything else — the "per-service security policy control
        points" of Figure 3.
        """
        acl = AccessControlList(name=name)
        for peer in allowed_peers:
            for dtn in self.dtns:
                for port in data_ports:
                    acl.permit(src=peer, dst=dtn.name, protocol="tcp",
                               port=port, comment="science data channel")
            for ps in self.perfsonar_hosts:
                for port in PERFSONAR_PORTS:
                    acl.permit(src=peer, dst=ps.name, protocol="tcp",
                               port=port, comment="perfSONAR testing")
        engine = AclEngine(acl=acl)
        if self.acl_engine is not None:
            self.switch.detach(self.acl_engine)
        self.switch.attach(engine)
        self.acl_engine = engine
        return engine

    def attach_ids(self, ids: Optional[IntrusionDetectionSystem] = None
                   ) -> IntrusionDetectionSystem:
        """Attach a passive IDS tap to the DMZ switch (recommended even
        with ACLs, §5)."""
        if ids is None:
            ids = IntrusionDetectionSystem(name=f"{self.switch.name}-ids",
                                           mode=IdsMode.PASSIVE)
        self.switch.attach(ids)
        self.ids = ids
        return ids

    # -- conveniences ----------------------------------------------------------------------
    def science_policy(self) -> dict:
        """Routing-policy kwargs that pin traffic to the DMZ fabric."""
        return {"forbid_node_kinds": ("firewall",)}

    def dtn_names(self) -> List[str]:
        return [h.name for h in self.dtns]

    def audit(self):
        """Run the design audit on the containing topology."""
        from .audit import audit_design
        return audit_design(self.topology, dtns=self.dtn_names(),
                            wan_node=self.wan_name)

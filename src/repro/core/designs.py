"""The paper's notional designs as constructible topologies.

Five builders, each returning a :class:`DesignBundle`:

* :func:`general_purpose_campus` — the §2 baseline: every byte, science
  or not, crosses the perimeter firewall and a shallow-buffered campus
  fabric.  This design *should fail* the audit.
* :func:`simple_science_dmz` — Figure 3: DMZ switch on the border router,
  one DTN, a perfSONAR host, ACL security; campus LAN unchanged behind
  the firewall.
* :func:`supercomputer_center` — Figure 4: DTN cluster fronting a shared
  parallel filesystem, login nodes that never handle WAN transfers,
  enterprise offices behind HA firewalls off to the side.
* :func:`big_data_site` — Figure 5: redundant borders, a data-service
  switch plane, a DTN cluster, security in the routing plane.
* :func:`campus_with_rcnet` — Figures 6/7: the University of Colorado
  layout with RCNet at the perimeter, the physics cluster's 1G hosts
  fanning into a 10G uplink, and perfSONAR at both 1G and 10G.

Every bundle embeds a remote peer (``remote-dtn``) across a configurable-
RTT WAN so transfer experiments run out of the box.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from ..devices.firewall import Firewall
from ..devices.switchfab import SwitchFabric, SwitchingMode
from ..dtn.host import attach_profile, tuned_dtn, untuned_host
from ..dtn.storage import (
    ParallelFilesystem,
    RaidArray,
    SingleDisk,
    StorageAreaNetwork,
)
from ..errors import ConfigurationError
from ..netsim.link import JUMBO_MTU, Link
from ..netsim.node import Host, Router, Switch
from ..netsim.topology import Topology
from ..units import DataRate, Gbps, KB, TimeDelta, ms, us
from .dmz import ScienceDMZ

__all__ = [
    "DesignBundle",
    "general_purpose_campus",
    "simple_science_dmz",
    "supercomputer_center",
    "big_data_site",
    "campus_with_rcnet",
]


@dataclass
class DesignBundle:
    """A built design plus the role map experiments need."""

    topology: Topology
    wan: str                      # WAN cloud node name
    border: str                   # border router name
    remote_dtn: str               # the far-end peer host
    dtns: List[str] = field(default_factory=list)
    perfsonar: List[str] = field(default_factory=list)
    enterprise_hosts: List[str] = field(default_factory=list)
    science_policy: Dict[str, object] = field(default_factory=dict)
    extras: Dict[str, object] = field(default_factory=dict)
    description: str = ""

    def audit(self):
        """Run the Science DMZ audit with this bundle's role map."""
        from .audit import audit_design
        return audit_design(self.topology, dtns=self.dtns, wan_node=self.wan)


def _wan_and_remote(topo: Topology, *, wan_rtt: TimeDelta,
                    wan_rate: DataRate) -> None:
    """Add the WAN cloud and a tuned remote peer DTN."""
    wan = topo.add_node(Router(name="wan", tags={"wan"}))
    remote = topo.add_node(Host(name="remote-dtn", nic_rate=wan_rate,
                                tags={"dtn"}))
    # The WAN span carries the whole end-to-end latency budget; the paper
    # assumes "the wide area network is doing its job" (§3.1), so it is
    # clean and jumbo-capable.
    topo.connect(remote, wan, Link(
        rate=wan_rate, delay=TimeDelta(wan_rtt.s / 2.0), mtu=JUMBO_MTU,
        name="wan-span",
    ))
    attach_profile(remote, tuned_dtn("remote-dtn", ParallelFilesystem()))


def _campus_core(topo: Topology, *, border_rate: DataRate) -> Firewall:
    """Border + firewall + campus core shared by the campus designs."""
    border = topo.add_node(Router(name="border"))
    topo.connect("border", "wan", Link(
        rate=border_rate, delay=us(50), mtu=JUMBO_MTU, name="border-uplink",
    ))
    firewall = topo.add_node(Firewall(
        name="campus-firewall",
        sequence_checking=True,   # the §6.2 default-on "security feature"
    ))
    firewall.policy.allow(comment="campus egress/ingress after inspection")
    topo.connect("border", "campus-firewall", Link(
        rate=border_rate, delay=us(20),
    ))
    core = topo.add_node(Switch(name="campus-core", tags={"enterprise"}))
    topo.connect("campus-firewall", "campus-core", Link(
        rate=border_rate, delay=us(20),
    ))
    return firewall


def general_purpose_campus(
    *,
    wan_rtt: TimeDelta = ms(40),
    wan_rate: DataRate = Gbps(10),
    lab_hosts: int = 2,
) -> DesignBundle:
    """The §2 baseline: science rides the business network.

    Science servers sit behind the perimeter firewall on a shallow-
    buffered departmental switch, with stock host tuning and legacy
    tools.  The audit fails on all four patterns.
    """
    if lab_hosts < 1:
        raise ConfigurationError("need at least one lab host")
    topo = Topology("general-purpose-campus")
    _wan_and_remote(topo, wan_rtt=wan_rtt, wan_rate=wan_rate)
    _campus_core(topo, border_rate=wan_rate)

    dept = topo.add_node(Switch(name="dept-switch", tags={"enterprise"}))
    dept.attach(SwitchFabric(
        name="dept-fabric", egress_rate=Gbps(1), port_buffer=KB(256),
        mode=SwitchingMode.STORE_AND_FORWARD,
    ))
    topo.connect("campus-core", "dept-switch", Link(
        rate=Gbps(1), delay=us(20),
    ))
    hosts = []
    for i in range(lab_hosts):
        name = f"lab-server{i + 1}"
        host = topo.add_node(Host(name=name, nic_rate=Gbps(1)))
        topo.connect("dept-switch", name, Link(rate=Gbps(1), delay=us(10)))
        attach_profile(host, untuned_host(name, SingleDisk()))
        hosts.append(name)

    return DesignBundle(
        topology=topo,
        wan="wan",
        border="border",
        remote_dtn="remote-dtn",
        dtns=hosts,        # the "DTNs" here are ordinary lab servers
        perfsonar=[],
        enterprise_hosts=hosts,
        science_policy={},  # no separate science path exists
        description=("General-purpose campus baseline: firewall + shallow "
                     "switches in every path, untuned hosts, no monitoring"),
    )


def simple_science_dmz(
    *,
    wan_rtt: TimeDelta = ms(40),
    wan_rate: DataRate = Gbps(10),
) -> DesignBundle:
    """Figure 3: the minimal complete Science DMZ.

    Keeps the general-purpose campus (firewall and all) for business
    traffic and adds the perimeter DMZ: border -> DMZ switch -> {DTN,
    perfSONAR}, secured with ACLs.
    """
    bundle = general_purpose_campus(wan_rtt=wan_rtt, wan_rate=wan_rate,
                                    lab_hosts=1)
    topo = bundle.topology
    topo.name = "simple-science-dmz"
    dmz = ScienceDMZ(topo, border="border", wan="wan",
                     uplink_rate=wan_rate)
    dtn = dmz.add_dtn("dtn1", nic_rate=wan_rate,
                      storage=RaidArray(name="dtn1-raid"))
    ps = dmz.add_perfsonar("dmz-perfsonar")
    dmz.install_acl(allowed_peers=["remote-dtn"])
    dmz.attach_ids()

    return DesignBundle(
        topology=topo,
        wan="wan",
        border="border",
        remote_dtn="remote-dtn",
        dtns=[dtn.name],
        perfsonar=[ps.name],
        enterprise_hosts=bundle.enterprise_hosts,
        science_policy=dmz.science_policy(),
        extras={"dmz": dmz},
        description=("Figure 3: simple Science DMZ — border-attached DMZ "
                     "switch, one DTN, perfSONAR, ACL security"),
    )


def supercomputer_center(
    *,
    wan_rtt: TimeDelta = ms(40),
    wan_rate: DataRate = Gbps(100),
    dtn_count: int = 4,
    login_nodes: int = 2,
) -> DesignBundle:
    """Figure 4: a supercomputer center built as a Science DMZ.

    The whole front-end is the DMZ: no firewall in the data path, DTNs
    mount the parallel filesystem directly (no double copy), and login
    nodes never handle WAN transfers.  Enterprise offices hang off HA
    firewalls to the side.
    """
    if dtn_count < 1 or login_nodes < 1:
        raise ConfigurationError("need at least one DTN and one login node")
    topo = Topology("supercomputer-center")
    _wan_and_remote(topo, wan_rtt=wan_rtt, wan_rate=wan_rate)
    border = topo.add_node(Router(name="border"))
    topo.connect("border", "wan", Link(
        rate=wan_rate, delay=us(50), mtu=JUMBO_MTU, name="border-uplink",
    ))
    core = topo.add_node(Router(name="core", tags={"science-dmz"}))
    topo.connect("border", "core", Link(
        rate=wan_rate, delay=us(20), mtu=JUMBO_MTU, tags={"science"},
    ))

    pfs = ParallelFilesystem(name="center-pfs", ost_count=64)
    dtns = []
    for i in range(dtn_count):
        name = f"dtn{i + 1}"
        host = topo.add_node(Host(name=name, nic_rate=Gbps(10),
                                  tags={"science-dmz", "dtn"}))
        topo.connect("core", name, Link(
            rate=Gbps(10), delay=us(10), mtu=JUMBO_MTU, tags={"science"},
        ))
        attach_profile(host, tuned_dtn(name, pfs))
        dtns.append(name)

    ps = topo.add_node(Host(name="center-perfsonar", nic_rate=Gbps(10),
                            tags={"science-dmz", "perfsonar"}))
    topo.connect("core", "center-perfsonar", Link(
        rate=Gbps(10), delay=us(10), mtu=JUMBO_MTU, tags={"science"},
    ))
    attach_profile(ps, tuned_dtn("center-perfsonar"))

    # ACL security in the routing plane (no firewall on the data path).
    from ..devices.acl import AccessControlList, AclEngine
    acl = AccessControlList(name="center-acl")
    for name in dtns:
        for port in range(50000, 50006):
            acl.permit(src="*", dst=name, protocol="tcp", port=port)
    for port in (861, 4823, 5001):
        acl.permit(src="*", dst="center-perfsonar", protocol="tcp", port=port)
    topo.node("core").attach(AclEngine(acl=acl))

    # Login nodes: reachable, but never part of the WAN data path.
    logins = []
    for i in range(login_nodes):
        name = f"login{i + 1}"
        host = topo.add_node(Host(name=name, nic_rate=Gbps(10)))
        topo.connect("core", name, Link(rate=Gbps(10), delay=us(10)))
        attach_profile(host, untuned_host(name, SingleDisk(name=f"{name}-scratch")))
        logins.append(name)

    # Enterprise offices behind HA firewalls off the core.
    fw = topo.add_node(Firewall(name="office-firewall"))
    fw.policy.allow()
    topo.connect("core", "office-firewall", Link(rate=Gbps(10), delay=us(20)))
    offices = topo.add_node(Switch(name="office-switch", tags={"enterprise"}))
    topo.connect("office-firewall", "office-switch", Link(
        rate=Gbps(1), delay=us(20),
    ))
    desk = topo.add_node(Host(name="office-host", nic_rate=Gbps(1)))
    topo.connect("office-switch", "office-host", Link(rate=Gbps(1), delay=us(10)))
    attach_profile(desk, untuned_host("office-host"))

    return DesignBundle(
        topology=topo,
        wan="wan",
        border="border",
        remote_dtn="remote-dtn",
        dtns=dtns,
        perfsonar=["center-perfsonar"],
        enterprise_hosts=["office-host"],
        science_policy={"forbid_node_kinds": ("firewall",)},
        extras={"parallel_fs": pfs, "login_nodes": logins},
        description=("Figure 4: supercomputer center — DTN cluster fronts "
                     "the parallel filesystem; login nodes untouched; "
                     "offices behind HA firewalls"),
    )


def big_data_site(
    *,
    wan_rtt: TimeDelta = ms(80),
    wan_rate: DataRate = Gbps(100),
    dtn_count: int = 8,
) -> DesignBundle:
    """Figure 5: an extreme-data cluster (LHC Tier-1 style).

    Redundant border routers, a data-service switch plane serving a DTN
    cluster from multi-petabyte storage, enterprise riding the same
    redundant infrastructure but behind its own firewalls.  "The science
    data flows do not traverse these devices."
    """
    if dtn_count < 2:
        raise ConfigurationError("a data transfer cluster needs >= 2 DTNs")
    topo = Topology("big-data-site")
    _wan_and_remote(topo, wan_rtt=wan_rtt, wan_rate=wan_rate)

    # Redundant borders: wan -> border1/border2 via a provider-edge split.
    border1 = topo.add_node(Router(name="border1"))
    border2 = topo.add_node(Router(name="border2"))
    topo.connect("border1", "wan", Link(
        rate=wan_rate, delay=us(50), mtu=JUMBO_MTU, name="uplink-1",
    ))
    topo.connect("border2", "wan", Link(
        rate=wan_rate, delay=us(60), mtu=JUMBO_MTU, name="uplink-2",
    ))
    plane = topo.add_node(Switch(name="data-plane", tags={"science-dmz"}))
    topo.connect("border1", "data-plane", Link(
        rate=wan_rate, delay=us(10), mtu=JUMBO_MTU, tags={"science"},
    ))
    topo.connect("border2", "data-plane", Link(
        rate=wan_rate, delay=us(10), mtu=JUMBO_MTU, tags={"science"},
    ))

    store = StorageAreaNetwork(name="tape-frontend",
                               fabric_rate=Gbps(40),
                               array_rate=Gbps(100))
    dtns = []
    for i in range(dtn_count):
        name = f"cluster-dtn{i + 1}"
        host = topo.add_node(Host(name=name, nic_rate=Gbps(10),
                                  tags={"science-dmz", "dtn"}))
        topo.connect("data-plane", name, Link(
            rate=Gbps(10), delay=us(10), mtu=JUMBO_MTU, tags={"science"},
        ))
        attach_profile(host, tuned_dtn(
            name, ParallelFilesystem(name="tier1-store", ost_count=128)))
        dtns.append(name)

    ps = topo.add_node(Host(name="site-perfsonar", nic_rate=Gbps(10),
                            tags={"science-dmz", "perfsonar"}))
    topo.connect("data-plane", "site-perfsonar", Link(
        rate=Gbps(10), delay=us(10), mtu=JUMBO_MTU, tags={"science"},
    ))
    attach_profile(ps, tuned_dtn("site-perfsonar"))

    from ..devices.acl import AccessControlList, AclEngine
    acl = AccessControlList(name="routing-plane-acl")
    for name in dtns:
        for port in range(50000, 50006):
            acl.permit(src="*", dst=name, protocol="tcp", port=port)
    for port in (861, 4823, 5001):
        acl.permit(src="*", dst="site-perfsonar", protocol="tcp", port=port)
    topo.node("data-plane").attach(AclEngine(acl=acl))

    # Enterprise: redundant firewalls off border2 (structurally present;
    # the science plane never crosses them).
    fw = topo.add_node(Firewall(name="enterprise-firewall"))
    fw.policy.allow()
    topo.connect("border2", "enterprise-firewall", Link(
        rate=Gbps(10), delay=us(20),
    ))
    ent = topo.add_node(Switch(name="enterprise-switch", tags={"enterprise"}))
    topo.connect("enterprise-firewall", "enterprise-switch", Link(
        rate=Gbps(10), delay=us(20),
    ))
    desk = topo.add_node(Host(name="enterprise-host", nic_rate=Gbps(1)))
    topo.connect("enterprise-switch", "enterprise-host", Link(
        rate=Gbps(1), delay=us(10),
    ))
    attach_profile(desk, untuned_host("enterprise-host"))

    return DesignBundle(
        topology=topo,
        wan="wan",
        border="border1",
        remote_dtn="remote-dtn",
        dtns=dtns,
        perfsonar=["site-perfsonar"],
        enterprise_hosts=["enterprise-host"],
        science_policy={"forbid_node_kinds": ("firewall",)},
        extras={"storage": store},
        description=("Figure 5: extreme-data cluster — redundant borders, "
                     "data-service switch plane, DTN cluster, security in "
                     "the routing plane"),
    )


def campus_with_rcnet(
    *,
    wan_rtt: TimeDelta = ms(40),
    wan_rate: DataRate = Gbps(10),
    physics_hosts: int = 9,
    fixed_fabric: bool = False,
) -> DesignBundle:
    """Figures 6/7: the University of Colorado layout.

    The campus splits at the border: protected campus behind the
    firewall, RCNet delivering unprotected research connectivity at the
    perimeter.  The physics (CMS) cluster's 1G hosts fan into a 10G
    uplink through a fabric that, before the vendor fix, flips to a
    degraded store-and-forward mode under load (§6.1).

    ``fixed_fabric=True`` builds the post-fix network.
    """
    if physics_hosts < 1:
        raise ConfigurationError("need at least one physics host")
    topo = Topology("colorado-campus" + ("-fixed" if fixed_fabric else ""))
    _wan_and_remote(topo, wan_rtt=wan_rtt, wan_rate=wan_rate)
    _campus_core(topo, border_rate=wan_rate)

    # perf1g: the campus-side perfSONAR host at 1G (Figure 6).
    perf1g = topo.add_node(Host(name="perf1g", nic_rate=Gbps(1),
                                tags={"perfsonar"}))
    topo.connect("campus-core", "perf1g", Link(rate=Gbps(1), delay=us(10)))
    attach_profile(perf1g, tuned_dtn("perf1g"))

    # RCNet: research network at the perimeter.
    rcnet = topo.add_node(Router(name="rcnet", tags={"science-dmz"}))
    topo.connect("border", "rcnet", Link(
        rate=wan_rate, delay=us(20), mtu=JUMBO_MTU, tags={"science"},
    ))
    perf10g = topo.add_node(Host(name="perf10g", nic_rate=Gbps(10),
                                 tags={"science-dmz", "perfsonar"}))
    topo.connect("rcnet", "perf10g", Link(
        rate=Gbps(10), delay=us(10), mtu=JUMBO_MTU, tags={"science"},
    ))
    attach_profile(perf10g, tuned_dtn("perf10g"))

    # The physics aggregation switch with the (buggy) fabric.
    fabric = SwitchFabric(
        name="physics-fabric",
        egress_rate=Gbps(10),
        port_buffer=KB(384),
        mode=SwitchingMode.CUT_THROUGH,
        flip_bug=not fixed_fabric,
    )
    physics_switch = topo.add_node(Switch(name="physics-switch",
                                          tags={"science-dmz"}))
    physics_switch.attach(fabric)
    topo.connect("rcnet", "physics-switch", Link(
        rate=Gbps(10), delay=us(10), mtu=JUMBO_MTU, tags={"science"},
    ))

    hosts = []
    for i in range(physics_hosts):
        name = f"cms{i + 1}"
        host = topo.add_node(Host(name=name, nic_rate=Gbps(1),
                                  tags={"science-dmz", "dtn"}))
        topo.connect("physics-switch", name, Link(
            rate=Gbps(1), delay=us(10), tags={"science"},
        ))
        attach_profile(host, tuned_dtn(name, SingleDisk(name=f"{name}-disk")))
        hosts.append(name)

    from ..devices.acl import AccessControlList, AclEngine
    acl = AccessControlList(name="rcnet-acl")
    for name in hosts:
        for port in range(50000, 50006):
            acl.permit(src="*", dst=name, protocol="tcp", port=port)
    for host_name in ("perf10g",):
        for port in (861, 4823, 5001):
            acl.permit(src="*", dst=host_name, protocol="tcp", port=port)
    topo.node("rcnet").attach(AclEngine(acl=acl))

    return DesignBundle(
        topology=topo,
        wan="wan",
        border="border",
        remote_dtn="remote-dtn",
        dtns=hosts,
        perfsonar=["perf1g", "perf10g"],
        enterprise_hosts=[],
        science_policy={"forbid_node_kinds": ("firewall",)},
        extras={"fabric": fabric},
        description=("Figures 6/7: CU Boulder — RCNet at the perimeter, "
                     "physics cluster fan-in through a "
                     + ("fixed" if fixed_fabric else "buggy")
                     + " aggregation fabric"),
    )

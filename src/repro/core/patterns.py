"""The four Science DMZ sub-patterns (§3).

A design pattern here is metadata plus an evaluation function: given a
topology and the roles of its nodes (which hosts are DTNs, which node
faces the WAN), the pattern reports whether it is correctly applied.  The
evaluators return plain finding tuples; :mod:`repro.core.audit` wraps them
in severity-graded reports.

The four sub-patterns, quoting §3's areas of concern:

1. **Location** — "proper location (in network terms) of devices and
   connections": the science path is short, near the perimeter, and
   separated from general-purpose infrastructure.
2. **Dedicated systems** — the DTN: purpose-built, data-transfer-only
   hosts.
3. **Performance monitoring** — perfSONAR on the DMZ, testing regularly.
4. **Appropriate security** — policy enforced with line-rate mechanisms
   (ACLs, IDS) instead of stateful firewall appliances in the data path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Sequence, Tuple

from ..dtn.host import HostSystemProfile
from ..errors import ConfigurationError, RoutingError
from ..netsim.topology import Topology

__all__ = [
    "PatternResult",
    "DesignPattern",
    "LOCATION_PATTERN",
    "DEDICATED_SYSTEMS_PATTERN",
    "MONITORING_PATTERN",
    "SECURITY_PATTERN",
    "ALL_PATTERNS",
]

#: (ok, message) pairs produced by pattern evaluators.
PatternResult = Tuple[bool, str]

#: Maximum hops a DTN should sit from the WAN-facing node for the
#: location pattern ("as close to the network perimeter as possible",
#: §3.1): DTN -> DMZ switch -> border -> WAN is 3; a perimeter research
#: network (RCNet) adds one aggregation layer, still acceptable.
MAX_SCIENCE_PATH_HOPS = 4


@dataclass(frozen=True)
class DesignPattern:
    """One sub-pattern: metadata + an evaluator."""

    name: str
    section: str
    intent: str
    evaluate: Callable[[Topology, dict], List[PatternResult]]

    def check(self, topology: Topology, context: dict) -> List[PatternResult]:
        """Run the evaluator; context keys are documented per pattern."""
        return self.evaluate(topology, context)


def _require(context: dict, key: str) -> object:
    if key not in context:
        raise ConfigurationError(
            f"pattern evaluation requires context key {key!r}"
        )
    return context[key]


# ---------------------------------------------------------------------------
# 1. Location pattern (§3.1)
# ---------------------------------------------------------------------------

def _evaluate_location(topology: Topology, context: dict) -> List[PatternResult]:
    """Context: 'dtns' (host names), 'wan_node' (name)."""
    dtns: Sequence[str] = _require(context, "dtns")
    wan: str = str(_require(context, "wan_node"))
    results: List[PatternResult] = []
    if not dtns:
        return [(False, "no DTNs designated — nothing to locate")]
    for dtn in dtns:
        try:
            path = topology.path(dtn, wan)
        except RoutingError:
            results.append((False, f"{dtn}: no route to the WAN at all"))
            continue
        if path.traverses_kind("firewall"):
            results.append((
                False,
                f"{dtn}: science path to WAN traverses a firewall "
                f"({' -> '.join(path.node_names())})",
            ))
        elif path.hop_count > MAX_SCIENCE_PATH_HOPS:
            results.append((
                False,
                f"{dtn}: {path.hop_count} hops to the WAN "
                f"(> {MAX_SCIENCE_PATH_HOPS}); DMZ should sit at the perimeter",
            ))
        else:
            results.append((
                True,
                f"{dtn}: clean {path.hop_count}-hop perimeter path to WAN",
            ))
    return results


# ---------------------------------------------------------------------------
# 2. Dedicated systems pattern (§3.2)
# ---------------------------------------------------------------------------

def _evaluate_dedicated(topology: Topology, context: dict) -> List[PatternResult]:
    """Context: 'dtns' (host names)."""
    dtns: Sequence[str] = _require(context, "dtns")
    results: List[PatternResult] = []
    if not dtns:
        return [(False, "no DTNs designated — dedicated-systems pattern absent")]
    for dtn in dtns:
        node = topology.node(dtn)
        profile = node.meta.get("host_profile")
        if not isinstance(profile, HostSystemProfile):
            results.append((False, f"{dtn}: no host system profile attached"))
            continue
        if not profile.dedicated:
            results.append((False, f"{dtn}: host is not dedicated to data transfer"))
        elif profile.runs_general_purpose_apps():
            results.append((
                False,
                f"{dtn}: general-purpose applications installed "
                "(§3.2 forbids user-agent software on DTNs)",
            ))
        else:
            results.append((True, f"{dtn}: dedicated DTN, data-transfer apps only"))
    return results


# ---------------------------------------------------------------------------
# 3. Performance monitoring pattern (§3.3)
# ---------------------------------------------------------------------------

def _evaluate_monitoring(topology: Topology, context: dict) -> List[PatternResult]:
    """Context: 'dtns', 'wan_node'. perfSONAR hosts carry tag 'perfsonar'."""
    dtns: Sequence[str] = _require(context, "dtns")
    wan: str = str(_require(context, "wan_node"))
    ps_hosts = topology.nodes(tag="perfsonar")
    if not ps_hosts:
        return [(False, "no perfSONAR host in the topology")]
    results: List[PatternResult] = [
        (True, f"perfSONAR hosts present: "
               f"{', '.join(sorted(n.name for n in ps_hosts))}")
    ]
    # The perfSONAR host must share the science path so its tests measure
    # what the data experiences.
    for dtn in dtns:
        try:
            science = topology.path(dtn, wan,
                                    forbid_node_kinds=("firewall",))
        except RoutingError:
            continue
        science_nodes = set(science.node_names())
        # Coverage criterion: some perfSONAR host reaches the WAN without a
        # firewall, sharing at least one node with the science path (other
        # than the WAN itself) — its tests then exercise the science fabric.
        covered = False
        for ps in ps_hosts:
            try:
                ps_path = topology.path(ps.name, wan,
                                        forbid_node_kinds=("firewall",))
            except RoutingError:
                continue
            shared = set(ps_path.node_names()) & science_nodes - {wan}
            if shared:
                covered = True
                break
        if covered:
            results.append((True, f"{dtn}: science path is covered by "
                                  "perfSONAR testing"))
        else:
            results.append((False, f"{dtn}: no perfSONAR host shares the "
                                   "science path — soft failures will hide"))
    return results


# ---------------------------------------------------------------------------
# 4. Appropriate security pattern (§3.4)
# ---------------------------------------------------------------------------

def _evaluate_security(topology: Topology, context: dict) -> List[PatternResult]:
    """Context: 'dtns', 'wan_node'."""
    from ..devices.acl import AclEngine  # local import to avoid cycles

    dtns: Sequence[str] = _require(context, "dtns")
    wan: str = str(_require(context, "wan_node"))
    results: List[PatternResult] = []
    for dtn in dtns:
        try:
            path = topology.path(dtn, wan)
        except RoutingError:
            continue
        if path.traverses_kind("firewall"):
            results.append((
                False,
                f"{dtn}: stateful firewall in the science data path "
                "(§5: ACLs on the DMZ switch/router instead)",
            ))
            continue
        # Some node on the path must enforce an ACL protecting the DTN.
        acl_nodes = [
            node.name
            for node in path.nodes
            if any(isinstance(el, AclEngine) for el in node.elements)
        ]
        if acl_nodes:
            results.append((
                True,
                f"{dtn}: ACL enforcement at {', '.join(acl_nodes)}; "
                "no firewall in path",
            ))
        else:
            results.append((
                False,
                f"{dtn}: no ACL enforcement anywhere on the science path — "
                "security policy is absent, not 'appropriate'",
            ))
    return results or [(False, "no science paths to evaluate")]


LOCATION_PATTERN = DesignPattern(
    name="location",
    section="3.1",
    intent=("Deploy the Science DMZ at or near the network perimeter; "
            "separate science traffic from general-purpose infrastructure "
            "and keep the device count in the data path small."),
    evaluate=_evaluate_location,
)

DEDICATED_SYSTEMS_PATTERN = DesignPattern(
    name="dedicated-systems",
    section="3.2",
    intent=("Use purpose-built, dedicated Data Transfer Nodes running only "
            "data-transfer applications."),
    evaluate=_evaluate_dedicated,
)

MONITORING_PATTERN = DesignPattern(
    name="performance-monitoring",
    section="3.3",
    intent=("Deploy perfSONAR on the Science DMZ for regular active testing "
            "so soft failures are detected and localized quickly."),
    evaluate=_evaluate_monitoring,
)

SECURITY_PATTERN = DesignPattern(
    name="appropriate-security",
    section="3.4",
    intent=("Enforce security policy with mechanisms that scale to the data "
            "rate — router/switch ACLs and IDS — rather than stateful "
            "firewall appliances in the data path."),
    evaluate=_evaluate_security,
)

ALL_PATTERNS: Tuple[DesignPattern, ...] = (
    LOCATION_PATTERN,
    DEDICATED_SYSTEMS_PATTERN,
    MONITORING_PATTERN,
    SECURITY_PATTERN,
)

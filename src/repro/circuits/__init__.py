"""Future-technology extensions (paper §7).

* :mod:`repro.circuits.oscars` — OSCARS-style virtual-circuit reservation:
  guaranteed-bandwidth layer-2 paths with calendar admission control (§7.1).
* :mod:`repro.circuits.sdn` — OpenFlow-style flow tables and the dynamic
  firewall-bypass / IDS-inspect-then-bypass workflows (§7.3).
* :mod:`repro.circuits.roce` — RDMA over Converged Ethernet transfer
  model: TCP-equal throughput at a fraction of the CPU, but only on a
  loss-free guaranteed circuit (§7.1, Kissel et al.).
"""

from .oscars import OscarsService, Reservation, ReservationRequest
from .sdn import FlowTable, FlowRule, OpenFlowController, BypassDecision
from .roce import RoceTransfer, RoceResult, TCP_CPU_PER_GBPS, ROCE_CPU_PER_GBPS
from .multidomain import Domain, EndToEndCircuit, InterDomainController

__all__ = [
    "OscarsService",
    "Reservation",
    "ReservationRequest",
    "Domain",
    "EndToEndCircuit",
    "InterDomainController",
    "FlowTable",
    "FlowRule",
    "OpenFlowController",
    "BypassDecision",
    "RoceTransfer",
    "RoceResult",
    "TCP_CPU_PER_GBPS",
    "ROCE_CPU_PER_GBPS",
]

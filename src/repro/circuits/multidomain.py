"""Multi-domain virtual circuits: the DYNES / inter-domain controller story.

§7.1: "The campus or lab 'inter-domain' controller (IDC) can provision
the local switch and initiate multi-domain wide area virtual circuit
connectivity to provide guaranteed bandwidth between DTN's at multiple
institutions.  An example of this configuration is the NSF-funded
DYNES project that is supporting a deployment of approximately 60
university campuses and regional networks across the US."

Model: each administrative **domain** owns a topology and an
:class:`~repro.circuits.oscars.OscarsService`; domains peer at named
**exchange points** (a node present in both domains, e.g. the campus
border as seen by campus and by the regional).  The
:class:`InterDomainController` computes a domain-level route, reserves
the intra-domain segment in every domain along it (all-or-nothing: any
admission failure rolls back the segments already reserved), and returns
an :class:`EndToEndCircuit` whose stitched profile concatenates the
segment profiles at the reserved bandwidth.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import networkx as nx

from ..errors import CapacityError, ConfigurationError, RoutingError
from ..netsim.node import FlowContext
from ..netsim.topology import PathProfile, Topology
from ..units import DataRate, DataSize, TimeDelta
from .oscars import OscarsService, Reservation, ReservationRequest

__all__ = ["Domain", "EndToEndCircuit", "InterDomainController"]


@dataclass
class Domain:
    """One administrative domain: a topology plus its circuit service."""

    name: str
    topology: Topology
    oscars: OscarsService

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("domain needs a name")
        if self.oscars.topology is not self.topology:
            raise ConfigurationError(
                f"domain {self.name!r}: OscarsService must be bound to the "
                "domain's own topology"
            )

    def has_host(self, name: str) -> bool:
        return self.topology.has_node(name)


@dataclass(frozen=True)
class EndToEndCircuit:
    """A stitched multi-domain circuit."""

    circuit_id: str
    bandwidth: DataRate
    segments: Tuple[Reservation, ...]      # one per domain, in path order
    domain_names: Tuple[str, ...]
    profile: PathProfile

    @property
    def domain_count(self) -> int:
        return len(self.domain_names)

    def describe(self) -> str:
        return (f"circuit {self.circuit_id}: {self.bandwidth.human()} "
                f"across {' -> '.join(self.domain_names)} "
                f"({self.profile.base_rtt.human()} RTT)")


class InterDomainController:
    """Provision guaranteed-bandwidth circuits across domains (§7.1).

    Parameters
    ----------
    domains:
        The participating domains.
    peerings:
        ``(domain_a, domain_b, exchange_node)`` triples.  The exchange
        node must exist in both domains' topologies (the shared
        demarcation — a border router or exchange-point switch).
    """

    def __init__(
        self,
        domains: Sequence[Domain],
        peerings: Sequence[Tuple[str, str, str]],
    ) -> None:
        if not domains:
            raise ConfigurationError("need at least one domain")
        self._domains: Dict[str, Domain] = {}
        for d in domains:
            if d.name in self._domains:
                raise ConfigurationError(f"duplicate domain {d.name!r}")
            self._domains[d.name] = d
        self._graph = nx.Graph()
        self._graph.add_nodes_from(self._domains)
        for a, b, exchange in peerings:
            for name in (a, b):
                if name not in self._domains:
                    raise ConfigurationError(f"unknown domain {name!r}")
            for name in (a, b):
                if not self._domains[name].has_host(exchange):
                    raise ConfigurationError(
                        f"exchange node {exchange!r} missing from domain "
                        f"{name!r}; peerings need a shared demarcation node"
                    )
            self._graph.add_edge(a, b, exchange=exchange)
        self._counter = 0
        self._active: List[EndToEndCircuit] = []

    # -- lookup ----------------------------------------------------------------
    def domain_of(self, host: str) -> Domain:
        """The unique domain containing ``host`` (exchange nodes excluded)."""
        owners = [
            d for d in self._domains.values()
            if d.has_host(host) and not self._is_exchange(host)
        ]
        if not owners:
            raise ConfigurationError(f"no domain contains host {host!r}")
        if len(owners) > 1:
            raise ConfigurationError(
                f"host {host!r} is ambiguous across domains "
                f"{[d.name for d in owners]}"
            )
        return owners[0]

    def _is_exchange(self, node: str) -> bool:
        return any(data["exchange"] == node
                   for _, _, data in self._graph.edges(data=True))

    def domain_route(self, src_domain: str, dst_domain: str) -> List[str]:
        try:
            return nx.shortest_path(self._graph, src_domain, dst_domain)
        except (nx.NetworkXNoPath, nx.NodeNotFound):
            raise RoutingError(
                f"no peering route from domain {src_domain!r} to "
                f"{dst_domain!r}"
            ) from None

    def active(self) -> List[EndToEndCircuit]:
        return list(self._active)

    # -- provisioning ------------------------------------------------------------
    def reserve_end_to_end(
        self,
        src_host: str,
        dst_host: str,
        bandwidth: DataRate,
        *,
        start: TimeDelta,
        end: TimeDelta,
        description: str = "",
    ) -> EndToEndCircuit:
        """All-or-nothing reservation along the domain route.

        Each domain reserves its segment (ingress exchange -> egress
        exchange, or host -> exchange at the ends).  Any admission
        failure releases the segments already placed and re-raises.
        """
        src_dom = self.domain_of(src_host)
        dst_dom = self.domain_of(dst_host)
        route = self.domain_route(src_dom.name, dst_dom.name)

        # Per-domain (entry, exit) endpoints along the route.
        endpoints: List[Tuple[str, str, str]] = []  # (domain, seg_src, seg_dst)
        entry = src_host
        for i, domain_name in enumerate(route):
            if i < len(route) - 1:
                exchange = self._graph[domain_name][route[i + 1]]["exchange"]
                endpoints.append((domain_name, entry, exchange))
                entry = exchange
            else:
                endpoints.append((domain_name, entry, dst_host))

        placed: List[Tuple[Domain, Reservation]] = []
        try:
            for domain_name, seg_src, seg_dst in endpoints:
                domain = self._domains[domain_name]
                if seg_src == seg_dst:
                    continue  # degenerate hairpin at an exchange
                request = ReservationRequest(
                    src=seg_src, dst=seg_dst, bandwidth=bandwidth,
                    start=start, end=end,
                    description=description or
                    f"segment of {src_host}->{dst_host}",
                )
                placed.append((domain, domain.oscars.reserve(request)))
        except (CapacityError, RoutingError):
            for domain, reservation in placed:
                domain.oscars.release(reservation)
            raise

        self._counter += 1
        circuit = EndToEndCircuit(
            circuit_id=f"idc-{self._counter}",
            bandwidth=bandwidth,
            segments=tuple(r for _, r in placed),
            domain_names=tuple(route),
            profile=self._stitch([(d, r) for d, r in placed], bandwidth),
        )
        self._active.append(circuit)
        return circuit

    def release(self, circuit: EndToEndCircuit) -> None:
        if circuit not in self._active:
            raise ConfigurationError(
                f"circuit {circuit.circuit_id} is not active"
            )
        # domain_names may outnumber segments when a hairpin segment was
        # skipped, so match each reservation to its owning service directly.
        for reservation in circuit.segments:
            for domain in self._domains.values():
                if reservation in domain.oscars.active():
                    domain.oscars.release(reservation)
                    break
        self._active.remove(circuit)

    # -- profile stitching ---------------------------------------------------------
    @staticmethod
    def _stitch(placed: List[Tuple[Domain, Reservation]],
                bandwidth: DataRate) -> PathProfile:
        """Concatenate segment profiles into one end-to-end profile."""
        if not placed:
            raise ConfigurationError("cannot stitch an empty circuit")
        capacity = float("inf")
        latency = 0.0
        survive = 1.0
        mtu_bits = float("inf")
        names: List[str] = []
        losses: List[float] = []
        ctx: Optional[FlowContext] = None
        for domain, reservation in placed:
            profile = domain.oscars.circuit_profile(reservation)
            capacity = min(capacity, profile.capacity.bps)
            latency += profile.one_way_latency.s
            survive *= (1.0 - profile.random_loss)
            mtu_bits = min(mtu_bits, profile.mtu.bits)
            names.extend(f"{domain.name}:{n}" for n in profile.element_names)
            losses.extend(profile.segment_loss)
            ctx = profile.flow if ctx is None else ctx
        capacity = min(capacity, bandwidth.bps)
        return PathProfile(
            capacity=DataRate(capacity),
            one_way_latency=TimeDelta(latency),
            random_loss=1.0 - survive,
            mtu=DataSize(mtu_bits),
            flow=ctx,
            element_names=tuple(names),
            segment_loss=tuple(losses),
            bottleneck_index=0,
            bottleneck_buffer=None,
        )

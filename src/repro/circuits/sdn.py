"""OpenFlow-style SDN: flow tables and dynamic firewall bypass.

§7.3 describes two promising uses of OpenFlow in a Science DMZ:

1. plumbing an OSCARS circuit all the way to the end host automatically
   (instead of "by hand");
2. "a mechanism to dynamically modify the security policy for large flows
   between trusted sites" — send connection-setup traffic through the
   IDS/firewall, and once the connection is verified, install a flow rule
   that bypasses both.

:class:`FlowTable` is a priority-matched rule table (the OpenFlow
pipeline, reduced to the match fields this library uses);
:class:`OpenFlowController` implements the inspect-then-bypass workflow
against a topology containing a firewall node and an IDS.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..devices.ids import IntrusionDetectionSystem
from ..errors import ConfigurationError, SecurityPolicyError
from ..netsim.topology import Path, Topology

__all__ = ["FlowRule", "FlowTable", "BypassDecision", "OpenFlowController"]


@dataclass(frozen=True)
class FlowRule:
    """One flow-table entry: match (src, dst, port) -> action.

    Higher ``priority`` wins; ties break toward the more specific match
    (fewer wildcards), then insertion order.
    """

    src: str = "*"
    dst: str = "*"
    port: object = "*"
    action: str = "forward"  # 'forward' | 'bypass' | 'inspect' | 'drop'
    priority: int = 0
    cookie: str = ""

    def __post_init__(self) -> None:
        if self.action not in ("forward", "bypass", "inspect", "drop"):
            raise ConfigurationError(f"unknown action {self.action!r}")
        if self.port != "*" and not isinstance(self.port, int):
            raise ConfigurationError("port must be an int or '*'")

    def matches(self, src: str, dst: str, port: int) -> bool:
        return ((self.src == "*" or self.src == src)
                and (self.dst == "*" or self.dst == dst)
                and (self.port == "*" or self.port == port))

    @property
    def specificity(self) -> int:
        return sum(f != "*" for f in (self.src, self.dst, self.port))


class FlowTable:
    """A priority-ordered OpenFlow-style table."""

    def __init__(self, default_action: str = "inspect") -> None:
        if default_action not in ("forward", "bypass", "inspect", "drop"):
            raise ConfigurationError(f"unknown action {default_action!r}")
        self._rules: List[Tuple[int, FlowRule]] = []  # (insertion seq, rule)
        self._seq = 0
        self.default_action = default_action

    def install(self, rule: FlowRule) -> None:
        self._rules.append((self._seq, rule))
        self._seq += 1

    def remove_cookie(self, cookie: str) -> int:
        """Remove all rules with the cookie; returns how many."""
        before = len(self._rules)
        self._rules = [(s, r) for s, r in self._rules if r.cookie != cookie]
        return before - len(self._rules)

    def lookup(self, src: str, dst: str, port: int) -> str:
        """Resolve the action for a packet's 3-tuple."""
        best: Optional[Tuple[int, int, int, FlowRule]] = None
        for seq, rule in self._rules:
            if not rule.matches(src, dst, port):
                continue
            key = (rule.priority, rule.specificity, -seq, rule)
            if best is None or key[:3] > best[:3]:
                best = key
        return best[3].action if best else self.default_action

    def __len__(self) -> int:
        return len(self._rules)


@dataclass
class BypassDecision:
    """Outcome of the inspect-then-bypass workflow for one flow."""

    src: str
    dst: str
    port: int
    verified: bool
    bypass_installed: bool
    alerts: list
    path: Optional[Path] = None

    def describe(self) -> str:
        if self.bypass_installed:
            return (f"{self.src}->{self.dst}:{self.port} verified; "
                    f"bypass rule installed (firewall/IDS out of path)")
        return (f"{self.src}->{self.dst}:{self.port} NOT bypassed "
                f"({len(self.alerts)} IDS alerts)")


class OpenFlowController:
    """The §7.3 inspect-then-bypass controller.

    Parameters
    ----------
    topology:
        Network with both a firewalled path and a bypass (science) path
        between the relevant hosts.
    ids:
        IDS that inspects connection-setup traffic.
    trusted_sites:
        Host names whose flows are eligible for bypass once verified.
    """

    def __init__(
        self,
        topology: Topology,
        ids: IntrusionDetectionSystem,
        *,
        trusted_sites: Optional[set] = None,
    ) -> None:
        self.topology = topology
        self.ids = ids
        self.trusted_sites = set(trusted_sites or ())
        self.table = FlowTable(default_action="inspect")

    def request_flow(self, src: str, dst: str, port: int,
                     *, time: float = 0.0) -> BypassDecision:
        """Run connection setup through the IDS; install bypass if clean.

        Returns the decision; when bypass is installed, ``path`` is the
        firewall-free route the flow will take.
        """
        alerts = self.ids.observe(src, dst, port, time=time)
        trusted = (src in self.trusted_sites and dst in self.trusted_sites)
        verified = trusted and not alerts
        decision = BypassDecision(src=src, dst=dst, port=port,
                                  verified=verified,
                                  bypass_installed=False, alerts=alerts)
        if not verified:
            self.table.install(FlowRule(src=src, dst=dst, port=port,
                                        action="inspect", priority=10,
                                        cookie=f"inspect:{src}:{dst}:{port}"))
            return decision
        self.table.install(FlowRule(src=src, dst=dst, port=port,
                                    action="bypass", priority=100,
                                    cookie=f"bypass:{src}:{dst}:{port}"))
        decision.bypass_installed = True
        decision.path = self.topology.path(
            src, dst, forbid_node_kinds=("firewall",)
        )
        return decision

    def path_for(self, src: str, dst: str, port: int) -> Path:
        """Route a flow according to the current flow table."""
        action = self.table.lookup(src, dst, port)
        if action == "drop":
            raise SecurityPolicyError(
                f"flow {src}->{dst}:{port} dropped by SDN policy"
            )
        if action == "bypass":
            return self.topology.path(src, dst,
                                      forbid_node_kinds=("firewall",))
        # 'forward'/'inspect': take whatever the default (firewalled) path is.
        return self.topology.path(src, dst)

    def revoke(self, src: str, dst: str, port: int) -> int:
        """Tear down a previously installed bypass (returns rules removed)."""
        return self.table.remove_cookie(f"bypass:{src}:{dst}:{port}")

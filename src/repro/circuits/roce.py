"""RDMA over Converged Ethernet (RoCE) transfer model.

§7.1, citing Kissel et al.: "RoCE has been demonstrated to work well over
a wide area network, but only on a guaranteed bandwidth virtual circuit
with minimal competing traffic ... RoCE can achieve the same performance
as TCP (39.5 Gbps for a single flow on a 40GE host), but with 50 times
less CPU utilization."

The model has two parts:

* throughput: RoCE fills the circuit (39.5/40 = ~99% protocol efficiency)
  **iff** the path is loss-free; RoCE's go-back-N style recovery collapses
  under even tiny loss far more steeply than TCP (we model the classic
  go-back-N efficiency ``(1-p) / (1 + p * W)`` with window ``W`` sized to
  the BDP).
* CPU: cores consumed per Gbps moved, with TCP at ~50x RoCE (NIC offload
  does the work).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigurationError
from ..netsim.topology import PathProfile
from ..units import DataRate, DataSize, TimeDelta, bits, seconds

__all__ = ["RoceResult", "RoceTransfer", "TCP_CPU_PER_GBPS",
           "ROCE_CPU_PER_GBPS", "ROCE_EFFICIENCY"]

#: Fraction of line rate a single RoCE flow achieves on a clean circuit
#: (Kissel et al.: 39.5 Gbps on 40GE).
ROCE_EFFICIENCY = 39.5 / 40.0

#: CPU cost models (fraction of one core per Gbps moved).  Absolute values
#: are representative of the 2012-era measurements; the *ratio* (50x) is
#: the paper's claim and is what the bench checks.
TCP_CPU_PER_GBPS = 0.050
ROCE_CPU_PER_GBPS = 0.001


@dataclass(frozen=True)
class RoceResult:
    """Outcome of a RoCE transfer attempt."""

    throughput: DataRate
    duration: TimeDelta
    cpu_cores_used: float
    loss_limited: bool

    def summary(self) -> str:
        tail = " (collapsed by path loss)" if self.loss_limited else ""
        return (f"RoCE: {self.throughput.human()}, "
                f"{self.cpu_cores_used:.3f} cores{tail}")


class RoceTransfer:
    """An RDMA transfer over a path profile.

    Use with :meth:`repro.circuits.oscars.OscarsService.circuit_profile`
    to model the intended deployment; handing it a lossy shared path shows
    why the circuit is a *requirement*, not an optimization.
    """

    def __init__(self, profile: PathProfile) -> None:
        self.profile = profile

    def goodput(self) -> DataRate:
        """Achievable RoCE goodput on this path."""
        line = self.profile.capacity.bps * ROCE_EFFICIENCY
        p = self.profile.random_loss
        if p <= 0:
            return DataRate(line)
        # Go-back-N efficiency with a BDP-sized window: every lost frame
        # forces retransmission of the whole outstanding window.
        mss_bits = self.profile.flow.mss.bits
        window_frames = max(
            1.0,
            self.profile.capacity.bps * self.profile.base_rtt.s / mss_bits,
        )
        efficiency = (1.0 - p) / (1.0 + p * window_frames)
        return DataRate(line * efficiency)

    def transfer(self, size: DataSize) -> RoceResult:
        if size.bits <= 0:
            raise ConfigurationError("transfer size must be positive")
        rate = self.goodput()
        if rate.bps <= 0:
            raise ConfigurationError("RoCE path has zero goodput")
        duration = seconds(size.bits / rate.bps)
        return RoceResult(
            throughput=rate,
            duration=duration,
            cpu_cores_used=ROCE_CPU_PER_GBPS * rate.gbps,
            loss_limited=self.profile.random_loss > 0,
        )

    @staticmethod
    def tcp_cpu_cores(throughput: DataRate) -> float:
        """CPU cost of moving the same traffic with TCP (for comparison)."""
        return TCP_CPU_PER_GBPS * throughput.gbps

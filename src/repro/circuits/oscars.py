"""OSCARS-style virtual-circuit reservation service.

§7.1: "Virtual circuit services, such as the ESnet-developed On-demand
Secure Circuits and Reservation System, or OSCARS platform, can be used to
connect wide area layer-2 circuits directly to DTNs, allowing the DTNs to
receive the benefits of the bandwidth reservation, quality of service
guarantees, and traffic engineering capabilities."

The model: a reservation calendar per link.  A request names endpoints, a
bandwidth, and a time window; admission control walks a candidate path and
accepts only if every link has the headroom for the whole window.  An
active reservation yields a dedicated :class:`~repro.netsim.topology.Path`
whose profile the caller can treat as loss-free guaranteed capacity — the
precondition RoCE needs (§7.1: "only on a guaranteed bandwidth virtual
circuit with minimal competing traffic").
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import List, Optional

from ..errors import CapacityError, ConfigurationError
from ..netsim.link import Link
from ..netsim.topology import Path, Topology
from ..units import DataRate, TimeDelta, seconds

__all__ = ["ReservationRequest", "Reservation", "OscarsService"]


@dataclass(frozen=True)
class ReservationRequest:
    """A virtual-circuit request."""

    src: str
    dst: str
    bandwidth: DataRate
    start: TimeDelta
    end: TimeDelta
    description: str = ""

    def __post_init__(self) -> None:
        if self.bandwidth.bps <= 0:
            raise ConfigurationError("reservation bandwidth must be positive")
        if self.end.s <= self.start.s:
            raise ConfigurationError("reservation end must be after start")

    @property
    def duration(self) -> TimeDelta:
        return seconds(self.end.s - self.start.s)


@dataclass(frozen=True)
class Reservation:
    """An admitted circuit."""

    circuit_id: int
    request: ReservationRequest
    path: Path

    def overlaps(self, other: "ReservationRequest") -> bool:
        return not (other.end.s <= self.request.start.s
                    or other.start.s >= self.request.end.s)


class OscarsService:
    """Bandwidth-calendar admission control over a topology.

    Parameters
    ----------
    topology:
        The network circuits are provisioned on.
    reservable_fraction:
        Fraction of each link's rate available to circuits (operators
        keep headroom for routed IP traffic).
    policy:
        Routing-policy kwargs used for circuit path computation.
    """

    def __init__(
        self,
        topology: Topology,
        *,
        reservable_fraction: float = 0.8,
        policy: Optional[dict] = None,
    ) -> None:
        if not 0.0 < reservable_fraction <= 1.0:
            raise ConfigurationError("reservable_fraction must be in (0,1]")
        self.topology = topology
        self.reservable_fraction = reservable_fraction
        self.policy = dict(policy or {})
        self._reservations: List[Reservation] = []
        self._ids = itertools.count(1)

    # -- queries -------------------------------------------------------------------
    def active(self) -> List[Reservation]:
        return list(self._reservations)

    def committed_on_link(self, link: Link, window: ReservationRequest) -> float:
        """Bandwidth (bps) already committed on ``link`` overlapping the window."""
        committed = 0.0
        for res in self._reservations:
            if not res.overlaps(window):
                continue
            if any(l is link for l in res.path.links):
                committed += res.request.bandwidth.bps
        return committed

    def available_on_path(self, path: Path, window: ReservationRequest) -> DataRate:
        """Largest admissible bandwidth on ``path`` for the window."""
        available = float("inf")
        for link in path.links:
            ceiling = link.rate.bps * self.reservable_fraction
            headroom = ceiling - self.committed_on_link(link, window)
            available = min(available, headroom)
        return DataRate(max(0.0, available))

    # -- admission -----------------------------------------------------------------
    def reserve(self, request: ReservationRequest) -> Reservation:
        """Admit a circuit or raise :class:`CapacityError`."""
        path = self.topology.path(request.src, request.dst, **self.policy)
        available = self.available_on_path(path, request)
        if request.bandwidth.bps > available.bps + 1e-9:
            raise CapacityError(
                f"cannot reserve {request.bandwidth.human()} "
                f"{request.src}->{request.dst}: only {available.human()} "
                f"available in the window"
            )
        reservation = Reservation(
            circuit_id=next(self._ids), request=request, path=path
        )
        self._reservations.append(reservation)
        return reservation

    def release(self, reservation: Reservation) -> None:
        try:
            self._reservations.remove(reservation)
        except ValueError:
            raise ConfigurationError(
                f"circuit {reservation.circuit_id} is not active"
            ) from None

    # -- circuit view ------------------------------------------------------------------
    def circuit_profile(self, reservation: Reservation):
        """Path profile of the circuit with capacity clamped to the
        reservation — the guaranteed, loss-free view the DTN sees."""
        from dataclasses import replace as _replace
        profile = self.topology.profile(reservation.path)
        capacity = DataRate(min(profile.capacity.bps,
                                reservation.request.bandwidth.bps))
        return _replace(profile, capacity=capacity)

"""Execution engine: parallel sweeps with a content-addressed cache.

The analysis layer's grids (``analysis.sweep``) and all 21 benchmark
scripts were serial; this package makes "regenerate every figure" run
as fast as the hardware allows while staying **bit-for-bit
reproducible**:

- :mod:`repro.exec.seeding` — canonical JSON encoding and
  scheduling-independent per-point seed derivation;
- :mod:`repro.exec.cache` — :class:`ResultCache`, a content-addressed
  on-disk store (``sha256(fn + params + seed + code version)`` →
  JSON entry under ``.repro-cache/``) with telemetry counters;
- :mod:`repro.exec.runner` — :class:`ParallelRunner`, the process-pool
  fan-out with grid-order restoration and deterministic error
  propagation.

Most callers never touch this package directly — they pass
``workers=``/``cache=``/``base_seed=`` to
:func:`repro.analysis.sweep.sweep`, set ``REPRO_WORKERS`` /
``REPRO_CACHE`` for the benchmark harness, or run
``python -m repro.cli sweep``.  See ``docs/execution.md``.
"""

from .cache import (
    DEFAULT_CACHE_DIR,
    ResultCache,
    cache_key,
    code_version_tag,
    function_fingerprint,
)
from .runner import ParallelRunner, PointOutcome
from .seeding import canonical_json, derive_seed

__all__ = [
    "ParallelRunner",
    "PointOutcome",
    "ResultCache",
    "cache_key",
    "code_version_tag",
    "function_fingerprint",
    "canonical_json",
    "derive_seed",
    "DEFAULT_CACHE_DIR",
]

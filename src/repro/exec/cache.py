"""Content-addressed on-disk cache for sweep/benchmark grid points.

Regenerating a paper figure sweeps the same grid over and over while
only the analysis around it changes; the cache turns every repeat into
a disk read.  It follows the in-network-caching observation of
*Analyzing scientific data sharing patterns* (PAPERS.md): scientific
workloads re-request the same objects heavily, so even a simple
content-addressed store removes most of the recomputation.

Keys and layout
---------------
A cache key is ``sha256(canonical_json({fn, params, seed, version}))``
where ``fn`` is the swept function's ``module.qualname``, ``params``
the grid point, ``seed`` the derived per-point seed (or null), and
``version`` a *code version tag* — by default a hash of the function's
source (:func:`code_version_tag`), so editing the function invalidates
its entries without touching anyone else's.  Entries live under::

    .repro-cache/<key[:2]>/<key>.json

one JSON document per grid point, with the stored value, the error (for
sweeps run with ``on_error='record'``), and enough metadata to audit an
entry by hand.

Only values that survive a *strict* JSON round-trip (type-preserving,
so tuples and numpy scalars don't silently become something else) are
stored; everything else counts as ``uncacheable`` and is simply
recomputed each run.  This is what makes cached sweeps byte-identical
to serial ones — the cache never stores a value it cannot reproduce
exactly.

Telemetry
---------
Hit/miss/store/uncacheable/corrupt counters are
:class:`repro.telemetry.Counter` instruments in a
:class:`~repro.telemetry.metrics.MetricsRegistry` under the
``exec.cache`` component, so ``registry.render_text()`` and
``as_dict()`` export them like every other subsystem's metrics.

Concurrency
-----------
The store is safe under concurrent writers — worker pools, the
multi-tenant experiment service (:mod:`repro.serve`), or several
independent processes sharing one cache directory:

* writes go to a private temp file and land via an atomic
  ``os.replace``, so a reader can never observe a torn entry and the
  last concurrent writer of a key simply wins (both wrote the same
  deterministic bytes anyway);
* reads tolerate everything a crashed or racing writer could leave
  behind — missing files, non-UTF-8 garbage, truncated JSON — and
  count it as ``corrupt`` + ``miss`` instead of raising;
* counter updates take a lock, so hit/miss accounting stays exact when
  one cache object is shared across scheduler threads.
"""

from __future__ import annotations

import hashlib
import inspect
import json
import os
import pathlib
import tempfile
import threading
from typing import Callable, Dict, Mapping, Optional, Tuple

from ..errors import ExecError
from ..telemetry import MetricsRegistry
from .seeding import canonical_json

__all__ = ["ResultCache", "cache_key", "code_version_tag",
           "function_fingerprint", "DEFAULT_CACHE_DIR"]

#: Default on-disk location, relative to the current working directory.
DEFAULT_CACHE_DIR = ".repro-cache"

#: Bumped when the entry layout changes; part of every key, so layout
#: changes can never resurface stale payloads.
LAYOUT_VERSION = 1


def code_version_tag(fn: Callable[..., object]) -> str:
    """A short tag that changes when ``fn``'s source changes.

    Hashes the function's source text (falling back to just its
    identity for builtins/callables without source).  Used as the
    default ``version`` component of cache keys: edit the function and
    its old entries silently become misses.
    """
    ident = f"{getattr(fn, '__module__', '?')}.{getattr(fn, '__qualname__', repr(fn))}"
    try:
        source = inspect.getsource(fn)
    except (OSError, TypeError):
        source = ""
    digest = hashlib.sha256(f"{ident}\n{source}".encode("utf-8"))
    return digest.hexdigest()[:16]


def function_fingerprint(fn: Callable[..., object]) -> Tuple[str, str]:
    """``(identity, version_tag)`` for a swept function."""
    ident = f"{getattr(fn, '__module__', '?')}.{getattr(fn, '__qualname__', repr(fn))}"
    return ident, code_version_tag(fn)


def cache_key(fn_id: str, params: Mapping[str, object],
              seed: Optional[int], version: str) -> str:
    """The sha256 hex key for one grid point.

    Pure function of its arguments via :func:`canonical_json` — no
    ``hash()`` anywhere, so keys are identical across processes,
    platforms and ``PYTHONHASHSEED`` values.
    """
    material = canonical_json({
        "layout": LAYOUT_VERSION,
        "fn": fn_id,
        "params": dict(params),
        "seed": seed,
        "version": version,
    })
    return hashlib.sha256(material.encode("utf-8")).hexdigest()


def _strictly_roundtrips(value: object, decoded: object) -> bool:
    """True iff ``decoded`` (from JSON) reproduces ``value`` exactly.

    Stricter than ``==``: booleans must stay booleans, ints ints,
    lists lists.  Tuples, numpy scalars, sets etc. all fail here and
    make the value uncacheable rather than subtly different on reload.
    """
    if value is None or value is True or value is False:
        return decoded is value
    vtype = type(value)
    if vtype is int:
        return type(decoded) is int and decoded == value
    if vtype is float:
        return type(decoded) is float and repr(decoded) == repr(value)
    if vtype is str:
        return type(decoded) is str and decoded == value
    if vtype is list:
        return (type(decoded) is list and len(decoded) == len(value)
                and all(_strictly_roundtrips(v, d)
                        for v, d in zip(value, decoded)))
    if vtype is dict:
        return (type(decoded) is dict
                and set(decoded) == {k for k in value}
                and all(type(k) is str for k in value)
                and all(_strictly_roundtrips(value[k], decoded[k])
                        for k in value))
    return False


class ResultCache:
    """Content-addressed store of grid-point outcomes.

    Parameters
    ----------
    root:
        Directory for the entry files (created lazily on first store).
    metrics:
        Optional shared :class:`MetricsRegistry`; by default the cache
        owns a fresh one.  Counters live under component
        ``exec.cache``.
    """

    COMPONENT = "exec.cache"

    def __init__(self, root: os.PathLike | str = DEFAULT_CACHE_DIR, *,
                 metrics: Optional[MetricsRegistry] = None) -> None:
        self.root = pathlib.Path(root)
        # File operations are lock-free (atomic rename); only the
        # counter read-modify-writes need serializing across threads.
        self._lock = threading.Lock()
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._hits = self.metrics.counter("hits", component=self.COMPONENT)
        self._misses = self.metrics.counter("misses",
                                            component=self.COMPONENT)
        self._stores = self.metrics.counter("stores",
                                            component=self.COMPONENT)
        self._uncacheable = self.metrics.counter(
            "uncacheable", component=self.COMPONENT)
        self._corrupt = self.metrics.counter("corrupt",
                                             component=self.COMPONENT)

    # -- keys -----------------------------------------------------------------
    def key(self, fn_id: str, params: Mapping[str, object],
            seed: Optional[int] = None, version: str = "") -> str:
        return cache_key(fn_id, params, seed, version)

    def key_for(self, fn: Callable[..., object],
                params: Mapping[str, object],
                seed: Optional[int] = None,
                version: Optional[str] = None) -> str:
        """Key for a live function; derives the version tag if needed."""
        fn_id, derived = function_fingerprint(fn)
        return cache_key(fn_id, params, seed,
                         derived if version is None else version)

    def _path(self, key: str) -> pathlib.Path:
        return self.root / key[:2] / f"{key}.json"

    # -- read/write -----------------------------------------------------------
    def load(self, key: str) -> Optional[Dict[str, object]]:
        """The stored entry for ``key``, or None (counted as a miss).

        Corrupt or unreadable entries — truncated JSON, non-UTF-8
        bytes, the wrong shape — count separately and behave as
        misses; the next store overwrites them.  A concurrent writer
        can never produce one (writes are atomic), but a crashed tool
        or a stray file in the cache directory can.
        """
        path = self._path(key)
        try:
            text = path.read_text(encoding="utf-8")
        except (FileNotFoundError, OSError):
            with self._lock:
                self._misses.inc()
            return None
        except ValueError:
            # UnicodeDecodeError: partially-written or foreign bytes.
            with self._lock:
                self._corrupt.inc()
                self._misses.inc()
            return None
        try:
            entry = json.loads(text)
            if not isinstance(entry, dict) or "ok" not in entry:
                raise ValueError("not a cache entry")
        except ValueError:
            with self._lock:
                self._corrupt.inc()
                self._misses.inc()
            return None
        with self._lock:
            self._hits.inc()
        return entry

    def store(self, key: str, *, fn_id: str,
              params: Mapping[str, object], seed: Optional[int],
              version: str, value: object,
              error: Optional[str] = None) -> bool:
        """Persist one outcome; False if the value is uncacheable.

        Error outcomes (``error is not None``) are always cacheable —
        the simulator is deterministic, so a failure at a grid point is
        as much a result as a number.  Writes are atomic (temp file +
        ``os.replace``), so a crashed run never leaves a torn entry and
        concurrent writers of the same key race harmlessly (last
        replace wins; both wrote identical bytes).
        """
        if error is None:
            try:
                encoded = json.dumps(value, allow_nan=False)
            except (TypeError, ValueError):
                with self._lock:
                    self._uncacheable.inc()
                return False
            if not _strictly_roundtrips(value, json.loads(encoded)):
                with self._lock:
                    self._uncacheable.inc()
                return False
        entry = {
            "key": key,
            "fn": fn_id,
            "params": _portable(params),
            "seed": seed,
            "version": version,
            "layout": LAYOUT_VERSION,
            "ok": error is None,
            "value": value if error is None else None,
            "error": error,
        }
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(entry, handle, sort_keys=True)
            os.replace(tmp, path)
        except (TypeError, ValueError, OSError):
            try:
                os.unlink(tmp)
            except OSError:
                pass
            with self._lock:
                self._uncacheable.inc()
            return False
        with self._lock:
            self._stores.inc()
        return True

    def clear(self) -> int:
        """Delete every entry; returns how many were removed.

        Tolerates concurrent writers and clearers: an entry another
        process removed first simply doesn't count toward the total.
        """
        removed = 0
        if not self.root.exists():
            return removed
        for path in self.root.glob("*/*.json"):
            try:
                path.unlink()
                removed += 1
            except FileNotFoundError:
                continue
            except OSError as exc:
                raise ExecError(f"cannot clear cache entry {path}: {exc}")
        return removed

    def __len__(self) -> int:
        if not self.root.exists():
            return 0
        return sum(1 for _ in self.root.glob("*/*.json"))

    # -- telemetry ------------------------------------------------------------
    @property
    def hits(self) -> int:
        return int(self._hits.value)

    @property
    def misses(self) -> int:
        return int(self._misses.value)

    @property
    def stores(self) -> int:
        return int(self._stores.value)

    @property
    def uncacheable(self) -> int:
        return int(self._uncacheable.value)

    def stats(self) -> Dict[str, int]:
        """Counter snapshot, e.g. for a CI artifact."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "uncacheable": self.uncacheable,
            "corrupt": int(self._corrupt.value),
            "entries": len(self),
        }


def _portable(params: Mapping[str, object]) -> Dict[str, object]:
    """Params as stored in the entry file — display metadata only.

    The authoritative params stay with the caller; these exist so an
    entry can be audited by hand (``cat`` the JSON and see the point).
    """
    return {str(k): v if isinstance(v, (bool, int, float, str, type(None)))
            else repr(v)
            for k, v in params.items()}

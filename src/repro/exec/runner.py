"""Fan grid points out over a process pool, deterministically.

:class:`ParallelRunner` is the execution engine behind
``analysis.sweep.sweep(..., workers=, cache=, base_seed=)``.  The
contract that everything here serves: **a parallel or cached run
returns byte-identical results to the serial run** —

* results come back in grid order no matter which worker finished
  first (outcomes are slotted by index, never by completion);
* per-point RNG seeds are derived from the point itself
  (:func:`~repro.exec.seeding.derive_seed`), not from shared stream
  state, so scheduling cannot perturb stochastic sweeps;
* under ``on_error='raise'`` the *earliest failing grid point's*
  exception propagates, exactly as the serial loop would raise it,
  even if a later point failed first on the wall clock;
* cache hits short-circuit evaluation entirely, and only values that
  round-trip exactly are ever cached (see :mod:`repro.exec.cache`).

Worker functions must be picklable (defined at module top level) when
``workers > 1``; the runner checks up front and raises a
:class:`~repro.errors.ConfigurationError` naming the offender instead
of letting the pool die with an opaque ``PicklingError``.
"""

from __future__ import annotations

import os
import pickle
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from ..errors import ConfigurationError, ExecError
from ..telemetry import MetricsRegistry
from .cache import ResultCache, function_fingerprint
from .seeding import derive_seed

__all__ = ["ParallelRunner", "PointOutcome"]


@dataclass(frozen=True)
class PointOutcome:
    """What happened at one grid point."""

    index: int
    params: Dict[str, object]
    value: object
    error: Optional[str] = None
    seed: Optional[int] = None
    cached: bool = False

    @property
    def ok(self) -> bool:
        return self.error is None


def _call_point(fn: Callable[..., object], params: Mapping[str, object],
                seed: Optional[int], seed_param: str) -> object:
    kwargs = dict(params)
    if seed is not None:
        kwargs[seed_param] = seed
    return fn(**kwargs)


def _pool_task(payload: Tuple) -> Tuple:
    """Worker-side wrapper; must stay at module level for pickling.

    Exceptions are captured rather than raised so the parent can pick
    the *grid-earliest* failure deterministically.  The exception
    object rides along when it pickles; otherwise only its string
    survives the trip home.
    """
    fn, index, params, seed, seed_param = payload
    try:
        return index, _call_point(fn, params, seed, seed_param), None, None
    except Exception as exc:  # noqa: BLE001 - transported to the parent
        transportable: Optional[BaseException] = exc
        try:
            pickle.dumps(exc)
        except Exception:  # noqa: BLE001 - fall back to the string
            transportable = None
        return index, None, str(exc), transportable


def _ensure_picklable(fn: Callable[..., object]) -> None:
    try:
        pickle.dumps(fn)
    except Exception as exc:  # noqa: BLE001 - any pickle failure mode
        name = getattr(fn, "__qualname__", repr(fn))
        raise ConfigurationError(
            f"swept function {name!r} is not picklable ({exc}); "
            "workers>1 needs a function defined at module top level "
            "(no lambdas, closures or locally-defined functions)")


class ParallelRunner:
    """Evaluate parameter points serially or across a process pool.

    Parameters
    ----------
    workers:
        Pool size; ``None``/``0``/``1`` evaluates inline, serially.
    cache:
        Optional :class:`ResultCache` (a str/PathLike is wrapped in
        one); hits skip evaluation, misses are stored after evaluation
        (in the parent — workers never touch the cache directory).
    base_seed:
        When given, each point's call receives
        ``seed_param=derive_seed(base_seed, params)``.
    code_version:
        Override for the cache's code-version tag (default: a hash of
        the function's source via
        :func:`~repro.exec.cache.code_version_tag`).
    mp_context:
        Optional :mod:`multiprocessing` context for the pool.
    metrics:
        Shared registry for the runner's counters (component
        ``exec.runner``); defaults to the cache's registry, else a
        fresh one.
    on_outcome:
        Optional observer called with each :class:`PointOutcome` as it
        lands (cache hits at discovery, evaluated points on
        completion).  Called in the parent process, in *completion*
        order — an observability hook (progress streaming, live
        dashboards), never part of result identity: ``map`` still
        returns grid order regardless.
    """

    COMPONENT = "exec.runner"

    def __init__(self, workers: Optional[int] = None, *,
                 cache: Optional[ResultCache] = None,
                 base_seed: Optional[int] = None,
                 seed_param: str = "seed",
                 code_version: Optional[str] = None,
                 mp_context=None,
                 metrics: Optional[MetricsRegistry] = None,
                 on_outcome: Optional[
                     Callable[[PointOutcome], None]] = None) -> None:
        self.workers = max(1, int(workers or 1))
        if isinstance(cache, (str, os.PathLike)):
            cache = ResultCache(cache, metrics=metrics)
        self.cache = cache
        self.base_seed = base_seed
        self.seed_param = seed_param
        self.code_version = code_version
        self.mp_context = mp_context
        if metrics is not None:
            self.metrics = metrics
        elif cache is not None:
            self.metrics = cache.metrics
        else:
            self.metrics = MetricsRegistry()
        self.on_outcome = on_outcome
        self._points = self.metrics.counter("points",
                                            component=self.COMPONENT)
        self._evaluated = self.metrics.counter("evaluated",
                                               component=self.COMPONENT)
        self._failures = self.metrics.counter("failures",
                                              component=self.COMPONENT)

    # -- public API -----------------------------------------------------------
    def map(self, fn: Callable[..., object],
            points: Sequence[Mapping[str, object]], *,
            catch_errors: bool = False) -> List[PointOutcome]:
        """Outcomes for every point, in input order."""
        jobs = [dict(p) for p in points]
        self._pool_errors: Dict[int, BaseException] = {}
        self._stats_base = self._snapshot()
        self._points.inc(len(jobs))
        seeds: List[Optional[int]] = [
            derive_seed(self.base_seed, p) if self.base_seed is not None
            else None
            for p in jobs
        ]
        fn_id, derived_version = function_fingerprint(fn)
        version = (self.code_version if self.code_version is not None
                   else derived_version)

        outcomes: List[Optional[PointOutcome]] = [None] * len(jobs)
        pending: List[int] = []
        keys: List[Optional[str]] = [None] * len(jobs)
        for i, (params, seed) in enumerate(zip(jobs, seeds)):
            if self.cache is not None:
                keys[i] = self.cache.key(fn_id, params, seed, version)
                entry = self.cache.load(keys[i])
                if entry is not None:
                    outcomes[i] = PointOutcome(
                        index=i, params=params,
                        value=entry.get("value"),
                        error=entry.get("error"),
                        seed=seed, cached=True)
                    self._observe(outcomes[i])
                    continue
            pending.append(i)

        if self.workers > 1 and len(pending) > 1:
            evaluated = self._run_pool(fn, jobs, seeds, pending)
        else:
            evaluated = self._run_serial(fn, jobs, seeds, pending,
                                         catch_errors)
        for i, outcome in evaluated.items():
            outcomes[i] = outcome
            # Error entries are only cached under on_error='record':
            # a raise-mode run must re-raise the original exception
            # type, which a replayed entry cannot reconstruct.
            if (self.cache is not None and keys[i] is not None
                    and (outcome.ok or catch_errors)):
                self.cache.store(keys[i], fn_id=fn_id,
                                 params=outcome.params, seed=outcome.seed,
                                 version=version, value=outcome.value,
                                 error=outcome.error)

        result = [o for o in outcomes if o is not None]
        if len(result) != len(jobs):  # pragma: no cover - invariant guard
            raise ExecError("runner lost grid points; this is a bug")
        for outcome in result:
            if not outcome.ok:
                self._failures.inc()
        if not catch_errors:
            self._raise_earliest(result)
        return result

    def _observe(self, outcome: PointOutcome) -> None:
        if self.on_outcome is not None:
            self.on_outcome(outcome)

    def _snapshot(self) -> Dict[str, int]:
        out = {
            "points": int(self._points.value),
            "evaluated": int(self._evaluated.value),
            "failures": int(self._failures.value),
        }
        if self.cache is not None:
            out.update({f"cache_{k}": v
                        for k, v in self.cache.stats().items()
                        if k != "entries"})
        return out

    def stats(self) -> Dict[str, int]:
        """Counters for the most recent :meth:`map` call.

        The underlying telemetry registry keeps cumulative totals (the
        cache may be shared across many sweeps); this reports the
        delta since the call started, plus the pool size.
        """
        base = getattr(self, "_stats_base", {})
        out = {k: v - base.get(k, 0) for k, v in self._snapshot().items()}
        out["workers"] = self.workers
        if self.cache is not None:
            out["cache_entries"] = len(self.cache)
        return out

    # -- execution strategies -------------------------------------------------
    def _run_serial(self, fn, jobs, seeds, pending,
                    catch_errors: bool) -> Dict[int, PointOutcome]:
        evaluated: Dict[int, PointOutcome] = {}
        for i in pending:
            self._evaluated.inc()
            try:
                value = _call_point(fn, jobs[i], seeds[i], self.seed_param)
                evaluated[i] = PointOutcome(index=i, params=jobs[i],
                                            value=value, seed=seeds[i])
            except Exception as exc:  # noqa: BLE001 - recorded or re-raised
                if not catch_errors:
                    raise
                evaluated[i] = PointOutcome(index=i, params=jobs[i],
                                            value=None, error=str(exc),
                                            seed=seeds[i])
            self._observe(evaluated[i])
        return evaluated

    def _run_pool(self, fn, jobs, seeds,
                  pending) -> Dict[int, PointOutcome]:
        _ensure_picklable(fn)
        evaluated: Dict[int, PointOutcome] = {}
        errors: Dict[int, BaseException] = {}
        workers = min(self.workers, len(pending))
        with ProcessPoolExecutor(max_workers=workers,
                                 mp_context=self.mp_context) as pool:
            futures = {
                pool.submit(_pool_task,
                            (fn, i, jobs[i], seeds[i], self.seed_param))
                for i in pending
            }
            remaining = set(futures)
            while remaining:
                done, remaining = wait(remaining,
                                       return_when=FIRST_COMPLETED)
                for future in done:
                    self._evaluated.inc()
                    i, value, error, exc = future.result()
                    evaluated[i] = PointOutcome(index=i, params=jobs[i],
                                                value=value, error=error,
                                                seed=seeds[i])
                    self._observe(evaluated[i])
                    if exc is not None:
                        errors[i] = exc
        self._pool_errors = errors
        return evaluated

    def _raise_earliest(self, outcomes: List[PointOutcome]) -> None:
        """Re-raise the first (grid-order) failure, serial-style."""
        for outcome in outcomes:
            if outcome.ok:
                continue
            exc = getattr(self, "_pool_errors", {}).get(outcome.index)
            if exc is not None:
                raise exc
            raise ExecError(
                f"grid point {outcome.params} failed: {outcome.error}")

"""Deterministic per-point seed derivation for parallel sweeps.

A parallel sweep must produce the same numbers no matter how grid
points land on workers, so a point's RNG seed can depend only on the
point itself — never on submission order, worker id, or wall clock.
:func:`derive_seed` hashes the *canonical JSON* of the parameter dict
together with the sweep's base seed through SHA-256, which makes seeds

* **stable** — the same ``(base_seed, params)`` yields the same seed in
  every process, on every platform, under every ``PYTHONHASHSEED``
  (``hash()`` randomization never enters the pipeline);
* **independent** — distinct points get (for all practical purposes)
  unrelated 64-bit seeds, unlike ``base_seed + index`` schemes whose
  streams can overlap under numpy's legacy seeding.

:func:`canonical_json` is the single source of truth for "the bytes of
a parameter dict"; the result cache keys reuse it so a cache entry and
a derived seed can never disagree about what a point *is*.
"""

from __future__ import annotations

import hashlib
import json
from typing import Mapping

__all__ = ["canonical_json", "derive_seed"]

#: Upper bound (exclusive) of derived seeds: they are unsigned 64-bit.
SEED_BITS = 64


def _jsonable(value: object) -> object:
    """Map ``value`` onto the JSON type system, deterministically.

    Scalars pass through, sequences become lists, mappings keep their
    (string) keys.  Anything else — objects, classes, functions — falls
    back to ``type:repr``, which is stable for the enum/unit types the
    sweeps actually put in grids.
    """
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, Mapping):
        return {str(k): _jsonable(v) for k, v in value.items()}
    return f"{type(value).__qualname__}:{value!r}"


def canonical_json(obj: object) -> str:
    """A stable, whitespace-free JSON encoding with sorted keys.

    Two parameter dicts that compare equal key-for-key encode to the
    same string regardless of insertion order; the encoding never calls
    ``hash()``, so it is immune to hash randomization.
    """
    return json.dumps(_jsonable(obj), sort_keys=True,
                      separators=(",", ":"), allow_nan=True)


def derive_seed(base_seed: int, params: Mapping[str, object]) -> int:
    """The unsigned 64-bit seed for grid point ``params``.

    Pure function of ``(base_seed, params)``: safe to recompute in any
    worker, any run, any host.
    """
    material = f"{int(base_seed)}|{canonical_json(params)}"
    digest = hashlib.sha256(material.encode("utf-8")).digest()
    return int.from_bytes(digest[:SEED_BITS // 8], "big")

"""Declarative experiment scenarios.

The monitoring experiments all share a shape: build a design, start a
measurement mesh, schedule some faults and repairs on a timeline, run,
then interrogate the archive.  :class:`Scenario` packages that shape:

>>> from repro.core import simple_science_dmz
>>> from repro.devices.faults import FailingLineCard
>>> from repro.units import minutes
>>> bundle = simple_science_dmz()
>>> scenario = (Scenario(bundle, seed=7)
...             .with_mesh(["dmz-perfsonar", "remote-dtn"])
...             .inject("border", FailingLineCard(), at=minutes(30))
...             .repair_at(minutes(90)))
>>> outcome = scenario.run(until=minutes(120))
>>> bool(outcome.alerts)
True

The outcome bundles the archive, alert list, fault ground truth, and the
detection-latency summary the benches report.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from .core.designs import DesignBundle
from .devices.faults import FaultInjector, InjectedFault
from .errors import ConfigurationError
from .netsim.engine import Simulator
from .perfsonar.alerts import Alert, AlertRule, ThresholdAlerter
from .perfsonar.archive import MeasurementArchive
from .perfsonar.mesh import MeshConfig, MeshSchedule
from .telemetry import Tracer, ensure_tracer, instrument_topology
from .units import TimeDelta, minutes

__all__ = ["Scenario", "ScenarioOutcome"]


@dataclass
class ScenarioOutcome:
    """Everything a scenario run produced."""

    archive: MeasurementArchive
    alerts: List[Alert]
    faults: List[InjectedFault]
    duration: TimeDelta
    detection_delays: Dict[int, Optional[float]] = field(default_factory=dict)
    # fault index -> seconds from injection to first alert (None = missed)
    #: The tracer the run emitted through (None when tracing was off).
    #: ``trace.events()`` / ``trace.metrics`` / exporters apply directly.
    trace: Optional[Tracer] = None

    def first_alert(self) -> Optional[Alert]:
        return self.alerts[0] if self.alerts else None

    def detected(self, fault_index: int = 0) -> bool:
        return self.detection_delays.get(fault_index) is not None

    def summary(self) -> str:
        lines = [
            f"scenario ran {self.duration.human()}: "
            f"{self.archive.count()} measurements, "
            f"{len(self.alerts)} alerts, {len(self.faults)} faults",
        ]
        for idx, delay in sorted(self.detection_delays.items()):
            fault = self.faults[idx]
            what = getattr(fault.fault, "description",
                           type(fault.fault).__name__)
            if delay is None:
                lines.append(f"  fault #{idx} ({what}): NOT detected")
            else:
                lines.append(
                    f"  fault #{idx} ({what}) on {fault.node_name}: "
                    f"detected {delay / 60:.1f} min after onset")
        return "\n".join(lines)


class Scenario:
    """A timeline of monitoring, faults and repairs over a design bundle.

    Parameters
    ----------
    bundle:
        A built design (from :mod:`repro.core.designs` or your own
        :class:`~repro.core.designs.DesignBundle`).
    seed:
        Root seed for the run's random streams.
    alert_rule:
        Thresholds used when evaluating the outcome; None means the
        default ``AlertRule(loss_rate_threshold=1e-5)``.  (A ``None``
        sentinel, not a default instance: a default constructed in the
        signature would be one shared object mutated across every
        scenario in the process.)
    """

    def __init__(
        self,
        bundle: DesignBundle,
        *,
        seed: int = 0,
        alert_rule: Optional[AlertRule] = None,
    ) -> None:
        self.bundle = bundle
        self.sim = Simulator(seed=seed)
        self.archive = MeasurementArchive()
        self.injector = FaultInjector(self.sim)
        self.alert_rule = (alert_rule if alert_rule is not None
                           else AlertRule(loss_rate_threshold=1e-5))
        self._mesh: Optional[MeshSchedule] = None
        self._pending_faults: List[Tuple[TimeDelta, str, object]] = []
        self._repairs: List[TimeDelta] = []
        self._ran = False

    # -- construction from specs --------------------------------------------------
    @classmethod
    def from_spec(cls, spec, *, bundle: Optional[DesignBundle] = None
                  ) -> "Scenario":
        """Build a scenario from a serializable
        :class:`~repro.experiment.spec.ScenarioSpec`.

        The spec carries only names and scalars; designs and faults are
        resolved through :mod:`repro.experiment.registry`.  Pass
        ``bundle`` to reuse an already-built design (the default builds
        ``spec.design`` fresh).  Run the result with
        ``scenario.run(until=seconds(spec.until_s))`` — or, better, run
        the spec through :func:`repro.experiment.run_experiment`, which
        adds caching and a provenance manifest.
        """
        # Imported lazily: repro.experiment imports this module.
        from .experiment.registry import build_design, build_fault
        from .units import seconds

        if bundle is None:
            bundle = build_design(spec.design)
        rule = AlertRule(
            loss_rate_threshold=spec.alert_rule.loss_rate_threshold,
            throughput_drop_fraction=(
                spec.alert_rule.throughput_drop_fraction),
            latency_rise_fraction=spec.alert_rule.latency_rise_fraction,
            baseline_samples=spec.alert_rule.baseline_samples,
        )
        scenario = cls(bundle, seed=spec.seed, alert_rule=rule)
        hosts = list(spec.mesh.hosts)
        if not hosts:
            # Same derivation as `repro trace`: the design's perfSONAR
            # hosts (or first DTN) meshed against the remote peer.
            hosts = list(bundle.perfsonar) or bundle.dtns[:1]
            hosts = [h for h in hosts if h != bundle.remote_dtn]
            hosts.append(bundle.remote_dtn)
        if len(hosts) < 2:
            raise ConfigurationError(
                f"design {spec.design!r} yields no host pair to mesh; "
                "list mesh hosts explicitly in the spec")
        scenario.with_mesh(hosts, config=MeshConfig(
            owamp_interval=seconds(spec.mesh.owamp_interval_s),
            bwctl_interval=seconds(spec.mesh.bwctl_interval_s),
            bwctl_duration=seconds(spec.mesh.bwctl_duration_s),
            owamp_packets=spec.mesh.owamp_packets,
            algorithm=spec.mesh.algorithm,
        ))
        for fault_spec in spec.faults:
            node = fault_spec.node or bundle.border
            scenario.inject(node,
                            build_fault(fault_spec.kind,
                                        fault_spec.param_mapping()),
                            at=seconds(fault_spec.at_s))
        for repair_s in spec.repairs_s:
            scenario.repair_at(seconds(repair_s))
        for cut in spec.link_cuts:
            scenario.cut_link(cut.a, cut.b, at=seconds(cut.at_s))
        return scenario

    @property
    def mesh(self) -> Optional[MeshSchedule]:
        """The attached measurement mesh (None before ``with_mesh``).

        Exposed so post-run consumers — the chaos invariant oracles in
        particular — can read mesh-side ground truth such as
        :attr:`~repro.perfsonar.mesh.MeshSchedule.packet_ledger` and
        ``unreachable_events``.
        """
        return self._mesh

    # -- builder API -------------------------------------------------------------
    def with_mesh(
        self,
        hosts: Sequence[str],
        *,
        config: Optional[MeshConfig] = None,
    ) -> "Scenario":
        """Attach a regular perfSONAR mesh over ``hosts``."""
        if self._mesh is not None:
            raise ConfigurationError("scenario already has a mesh")
        self._mesh = MeshSchedule(
            self.bundle.topology, list(hosts), self.sim, self.archive,
            config=config or MeshConfig(owamp_interval=minutes(1),
                                        bwctl_interval=minutes(10),
                                        owamp_packets=20_000),
            policy=self.bundle.science_policy,
        )
        return self

    def inject(self, node_name: str, fault, *, at: TimeDelta) -> "Scenario":
        """Schedule a fault on a node at scenario time ``at``."""
        if not self.bundle.topology.has_node(node_name):
            raise ConfigurationError(f"no node {node_name!r} in the design")
        self._pending_faults.append((at, node_name, fault))
        return self

    def repair_at(self, when: TimeDelta) -> "Scenario":
        """Schedule a repair of every then-active fault at ``when``."""
        self._repairs.append(when)
        return self

    def cut_link(self, a: str, b: str, *, at: TimeDelta) -> "Scenario":
        """Schedule a *hard* failure: the link between ``a`` and ``b``
        goes down at ``at`` (a fiber cut, §3.3's contrast to soft
        failures).  The mesh records the outage as 100% loss."""
        topo = self.bundle.topology
        # Validate now so misconfiguration fails at build time.
        topo.link_between(a, b)

        def cut() -> None:
            topo.remove_link(a, b)
            if self.sim.tracer.enabled:
                self.sim.tracer.event("fault", "link-cut", a=a, b=b)
        self.sim.schedule_at(at.s, cut)
        return self

    # -- execution ------------------------------------------------------------------
    def run(self, *, until: TimeDelta, trace=None) -> ScenarioOutcome:
        """Execute the timeline and evaluate the outcome.

        Parameters
        ----------
        until:
            Scenario horizon.
        trace:
            ``True`` for a fresh :class:`~repro.telemetry.Tracer`, or an
            existing tracer (e.g. one with a bounded flight recorder).
            The tracer is attached to the simulator, to every traceable
            device in the design, and rides along on the outcome as
            ``outcome.trace`` for export.
        """
        if self._ran:
            raise ConfigurationError("a Scenario can only run once")
        self._ran = True
        tracer = ensure_tracer(trace)
        if tracer.enabled:
            self.sim.set_tracer(tracer)
            instrument_topology(self.bundle.topology, tracer)
            tracer.event("scenario", "start", t=self.sim.now,
                         design=self.bundle.description,
                         seed=self.sim.seed, until_s=until.s,
                         faults=len(self._pending_faults),
                         repairs=len(self._repairs))
        if self._mesh is None:
            raise ConfigurationError(
                "scenario has no measurement mesh; call with_mesh() — "
                "without measurement there is nothing to observe"
            )
        self._mesh.start()
        topo = self.bundle.topology
        for at, node_name, fault in sorted(self._pending_faults,
                                           key=lambda item: item[0].s):
            self.injector.inject_at(at, topo.node(node_name), fault)
        for when in self._repairs:
            def repair_all() -> None:
                for record in list(self.injector.active_faults()):
                    self.injector.clear(record, topo.node(record.node_name))
            self.sim.schedule_at(when.s, repair_all)

        self.sim.run_until(until.s)

        alerter = ThresholdAlerter(self.archive, self.alert_rule)
        alerts = alerter.scan()
        delays: Dict[int, Optional[float]] = {}
        for idx, fault in enumerate(self.injector.history):
            onset = fault.injected_at
            horizon = fault.cleared_at if fault.cleared_at is not None \
                else until.s
            hits = [a.time for a in alerts if onset <= a.time <= horizon]
            delays[idx] = (min(hits) - onset) if hits else None
        if tracer.enabled:
            for alert in alerts:
                tracer.event("scenario", "alert", t=alert.time,
                             message=alert.message)
            tracer.counter("alerts", component="scenario").inc(len(alerts))
            tracer.event("scenario", "end", t=until.s,
                         measurements=self.archive.count(),
                         alerts=len(alerts),
                         faults=len(self.injector.history),
                         detected=sum(1 for d in delays.values()
                                      if d is not None))
        return ScenarioOutcome(
            archive=self.archive,
            alerts=alerts,
            faults=list(self.injector.history),
            duration=until,
            detection_delays=delays,
            trace=tracer if tracer.enabled else None,
        )

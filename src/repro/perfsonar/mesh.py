"""Full-mesh regular testing among perfSONAR hosts.

"By deploying a perfSONAR host as part of the Science DMZ architecture,
regular active network testing can be used to alert network administrators
when packet loss rates increase, or throughput rates decrease" (§3.3).
Figure 2 is the dashboard view of exactly such a mesh on ESnet.

:class:`MeshSchedule` registers every ordered pair of the given hosts for
periodic OWAMP sessions and (less frequent) BWCTL throughput tests against
a shared :class:`~repro.netsim.engine.Simulator`, recording everything in
a :class:`~repro.perfsonar.archive.MeasurementArchive`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import MeasurementError
from ..netsim.engine import Simulator
from ..netsim.topology import Topology
from ..units import TimeDelta, minutes, seconds
from .archive import MeasurementArchive, Metric
from .bwctl import BwctlTest
from .owamp import OwampProbe

__all__ = ["MeshConfig", "MeshSchedule"]


@dataclass(frozen=True)
class MeshConfig:
    """Cadence and parameters of the regular test mesh."""

    owamp_interval: TimeDelta = minutes(1)
    bwctl_interval: TimeDelta = minutes(30)
    bwctl_duration: TimeDelta = seconds(10)
    owamp_packets: int = 600
    algorithm: str = "htcp"

    def __post_init__(self) -> None:
        if self.owamp_interval.s <= 0 or self.bwctl_interval.s <= 0:
            raise MeasurementError("mesh intervals must be positive")


class MeshSchedule:
    """Periodic full-mesh measurement over a topology.

    Parameters
    ----------
    topology:
        The network under test.
    hosts:
        perfSONAR host node names (>= 2).
    simulator:
        Shared event engine; tests self-reschedule on it.
    archive:
        Destination for all measurements.
    config:
        Cadence configuration; None means the default
        :class:`MeshConfig`.  (A ``None`` sentinel, not a default
        instance: a default constructed in the signature would be one
        object shared by every mesh in the process.)
    policy:
        Routing-policy kwargs so tests follow the science path.
    tracer:
        Optional explicit tracer; by default the mesh emits through
        whatever tracer the shared simulator carries (resolved per
        probe, so attaching one later — e.g. from
        ``Scenario.run(trace=...)`` — is picked up).
    """

    def __init__(
        self,
        topology: Topology,
        hosts: Sequence[str],
        simulator: Simulator,
        archive: MeasurementArchive,
        *,
        config: Optional[MeshConfig] = None,
        policy: Optional[dict] = None,
        tracer=None,
    ) -> None:
        config = config if config is not None else MeshConfig()
        self._tracer = tracer
        hosts = list(hosts)
        if len(hosts) < 2:
            raise MeasurementError("a mesh needs at least two hosts")
        if len(set(hosts)) != len(hosts):
            raise MeasurementError("mesh host names must be unique")
        for h in hosts:
            if not topology.has_node(h):
                raise MeasurementError(f"mesh host {h!r} not in topology")
        self.topology = topology
        self.hosts = hosts
        self.sim = simulator
        self.archive = archive
        self.config = config
        self.policy = dict(policy or {})

        #: (time, pair) records of tests that found no route at all —
        #: hard failures, as opposed to the soft failures in the archive.
        self.unreachable_events: List[Tuple[float, Tuple[str, str]]] = []
        #: Raw OWAMP accounting: ``(time, src, dst, packets_sent,
        #: packets_lost)`` per completed session, in firing order.  The
        #: archive stores only the derived loss *rate*; invariant oracles
        #: (repro.chaos) recompute rates from these exact counts to check
        #: packet conservation end to end.
        self.packet_ledger: List[Tuple[float, str, str, int, int]] = []
        self._owamp: Dict[Tuple[str, str], OwampProbe] = {}
        self._bwctl: Dict[Tuple[str, str], BwctlTest] = {}
        for src in hosts:
            for dst in hosts:
                if src == dst:
                    continue
                self._owamp[(src, dst)] = OwampProbe(
                    topology, src, dst, policy=self.policy,
                    packets_per_session=config.owamp_packets,
                )
                self._bwctl[(src, dst)] = BwctlTest(
                    topology, src, dst, duration=config.bwctl_duration,
                    algorithm=config.algorithm, policy=self.policy,
                )
        self._started = False

    # -- scheduling --------------------------------------------------------------
    def start(self) -> None:
        """Register the periodic test events on the simulator."""
        if self._started:
            raise MeasurementError("mesh already started")
        self._started = True
        # Stagger pair start times so tests do not all fire at once —
        # matching real BWCTL's mutual-exclusion scheduling.
        pairs = sorted(self._owamp.keys())
        for i, pair in enumerate(pairs):
            owamp_offset = (i / max(len(pairs), 1)) * self.config.owamp_interval.s
            self.sim.schedule_periodic(
                self.config.owamp_interval.s,
                self._owamp_runner(pair),
                start=owamp_offset,
            )
            bwctl_offset = (i / max(len(pairs), 1)) * self.config.bwctl_interval.s
            self.sim.schedule_periodic(
                self.config.bwctl_interval.s,
                self._bwctl_runner(pair),
                start=bwctl_offset,
            )

    def tracer(self):
        """The tracer probes emit through (explicit, else the sim's)."""
        return self._tracer if self._tracer is not None else self.sim.tracer

    def _owamp_runner(self, pair: Tuple[str, str]):
        from ..errors import RoutingError
        probe = self._owamp[pair]
        rng = self.sim.rng(f"owamp:{pair[0]}->{pair[1]}")

        def run() -> None:
            now = self.sim.now
            tracer = self.tracer()
            try:
                result = probe.run(rng)
            except RoutingError:
                # Hard failure: the path is gone.  Real OWAMP reports
                # 100% loss; record that so the outage is visible in the
                # archive rather than crashing the scheduler.
                self.unreachable_events.append((now, pair))
                self.archive.record_value(now, pair[0], pair[1],
                                          Metric.LOSS_RATE, 1.0)
                if tracer.enabled:
                    tracer.event("perfsonar", "unreachable", t=now,
                                 probe="owamp", src=pair[0], dst=pair[1])
                    tracer.counter("unreachable",
                                   component="perfsonar").inc()
                return
            self.packet_ledger.append((now, result.src, result.dst,
                                       result.packets_sent,
                                       result.packets_lost))
            self.archive.record_value(now, result.src, result.dst,
                                      Metric.LOSS_RATE, result.loss_rate)
            self.archive.record_value(now, result.src, result.dst,
                                      Metric.ONE_WAY_LATENCY_S,
                                      result.one_way_latency.s)
            if tracer.enabled:
                tracer.event("perfsonar", "owamp", t=now,
                             src=result.src, dst=result.dst,
                             loss_rate=result.loss_rate,
                             latency_s=result.one_way_latency.s)
                tracer.counter("owamp_sessions",
                               component="perfsonar").inc()
                tracer.histogram("owamp_loss_rate",
                                 component="perfsonar").observe(
                    result.loss_rate)
        return run

    def _bwctl_runner(self, pair: Tuple[str, str]):
        from ..errors import RoutingError
        test = self._bwctl[pair]
        rng = self.sim.rng(f"bwctl:{pair[0]}->{pair[1]}")

        def run() -> None:
            now = self.sim.now
            tracer = self.tracer()
            try:
                result = test.run(rng)
            except RoutingError:
                self.unreachable_events.append((now, pair))
                self.archive.record_value(now, pair[0], pair[1],
                                          Metric.THROUGHPUT_BPS, 0.0)
                if tracer.enabled:
                    tracer.event("perfsonar", "unreachable", t=now,
                                 probe="bwctl", src=pair[0], dst=pair[1])
                    tracer.counter("unreachable",
                                   component="perfsonar").inc()
                return
            self.archive.record_value(now, result.src, result.dst,
                                      Metric.THROUGHPUT_BPS,
                                      result.throughput.bps)
            if tracer.enabled:
                tracer.event("perfsonar", "bwctl", t=now,
                             src=result.src, dst=result.dst,
                             throughput_bps=result.throughput.bps)
                tracer.counter("bwctl_tests",
                               component="perfsonar").inc()
        return run

    # -- one-shot conveniences ----------------------------------------------------
    def run_bwctl_round(self) -> None:
        """Immediately run one BWCTL test for every pair (no scheduling)."""
        for pair, test in sorted(self._bwctl.items()):
            rng = self.sim.rng(f"bwctl:{pair[0]}->{pair[1]}")
            result = test.run(rng)
            self.archive.record_value(self.sim.now, result.src, result.dst,
                                      Metric.THROUGHPUT_BPS,
                                      result.throughput.bps)

    def run_owamp_round(self) -> None:
        """Immediately run one OWAMP session for every pair."""
        for pair, probe in sorted(self._owamp.items()):
            rng = self.sim.rng(f"owamp:{pair[0]}->{pair[1]}")
            result = probe.run(rng)
            self.archive.record_value(self.sim.now, result.src, result.dst,
                                      Metric.LOSS_RATE, result.loss_rate)
            self.archive.record_value(self.sim.now, result.src, result.dst,
                                      Metric.ONE_WAY_LATENCY_S,
                                      result.one_way_latency.s)

    @property
    def pair_count(self) -> int:
        return len(self._owamp)

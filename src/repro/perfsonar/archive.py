"""Measurement archive: the store behind the dashboard and the alerter.

perfSONAR publishes measurements "in a standard format ... so it is
publicly accessible" (§3.3).  Our archive is an in-memory time-series
store keyed by (src, dst, metric) with windowed queries and summary
statistics — enough to drive dashboards, alerting, and the detection-time
experiments.
"""

from __future__ import annotations

import enum
from bisect import bisect_left, bisect_right
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import MeasurementError

__all__ = ["Metric", "Measurement", "SeriesStats", "MeasurementArchive"]


class Metric(enum.Enum):
    """Measurement types stored in the archive."""

    THROUGHPUT_BPS = "throughput"
    LOSS_RATE = "loss_rate"
    ONE_WAY_LATENCY_S = "owd"
    RTT_S = "rtt"


@dataclass(frozen=True)
class Measurement:
    """One archived data point."""

    time: float
    src: str
    dst: str
    metric: Metric
    value: float

    def __post_init__(self) -> None:
        if not isinstance(self.metric, Metric):
            raise MeasurementError("Measurement.metric must be a Metric")
        if self.value < 0:
            raise MeasurementError(
                f"measurement value must be non-negative, got {self.value}"
            )


@dataclass(frozen=True)
class SeriesStats:
    """Summary of a windowed series."""

    count: int
    mean: float
    minimum: float
    maximum: float
    latest: float
    std: float

    @classmethod
    def from_values(cls, values: Sequence[float]) -> "SeriesStats":
        arr = np.asarray(values, dtype=np.float64)
        if arr.size == 0:
            raise MeasurementError("cannot summarize an empty series")
        return cls(
            count=int(arr.size),
            mean=float(arr.mean()),
            minimum=float(arr.min()),
            maximum=float(arr.max()),
            latest=float(arr[-1]),
            std=float(arr.std()),
        )


class MeasurementArchive:
    """Time-series store keyed by (src, dst, metric).

    Appends must be in non-decreasing time order per key (the scheduler
    guarantees this); queries are binary-searched.
    """

    def __init__(self) -> None:
        self._series: Dict[Tuple[str, str, Metric],
                           Tuple[List[float], List[float]]] = {}

    # -- writes ---------------------------------------------------------------
    def record(self, m: Measurement) -> None:
        key = (m.src, m.dst, m.metric)
        times, values = self._series.setdefault(key, ([], []))
        if times and m.time < times[-1]:
            raise MeasurementError(
                f"out-of-order append for {key}: {m.time} < {times[-1]}"
            )
        times.append(m.time)
        values.append(m.value)

    def record_value(self, time: float, src: str, dst: str,
                     metric: Metric, value: float) -> None:
        self.record(Measurement(time, src, dst, metric, value))

    # -- reads ------------------------------------------------------------------
    def keys(self) -> List[Tuple[str, str, Metric]]:
        return list(self._series.keys())

    def pairs(self, metric: Metric) -> List[Tuple[str, str]]:
        return sorted({(s, d) for (s, d, m) in self._series if m is metric})

    def series(
        self,
        src: str,
        dst: str,
        metric: Metric,
        *,
        since: Optional[float] = None,
        until: Optional[float] = None,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """(times, values) arrays for one key, optionally windowed."""
        key = (src, dst, metric)
        if key not in self._series:
            return np.array([]), np.array([])
        times, values = self._series[key]
        lo = bisect_left(times, since) if since is not None else 0
        hi = bisect_right(times, until) if until is not None else len(times)
        return (np.asarray(times[lo:hi], dtype=np.float64),
                np.asarray(values[lo:hi], dtype=np.float64))

    def latest(self, src: str, dst: str, metric: Metric) -> Optional[Measurement]:
        key = (src, dst, metric)
        if key not in self._series or not self._series[key][0]:
            return None
        times, values = self._series[key]
        return Measurement(times[-1], src, dst, metric, values[-1])

    def stats(
        self,
        src: str,
        dst: str,
        metric: Metric,
        *,
        since: Optional[float] = None,
        until: Optional[float] = None,
    ) -> Optional[SeriesStats]:
        _, values = self.series(src, dst, metric, since=since, until=until)
        if values.size == 0:
            return None
        return SeriesStats.from_values(values)

    def count(self) -> int:
        return sum(len(t) for t, _ in self._series.values())

    def clear(self) -> None:
        self._series.clear()

"""The perfSONAR mesh dashboard (paper Figure 2).

Figure 2 shows a grid of sites where "the color scales denote the 'degree'
of throughput for the data path.  Each square is halved to show the traffic
rate in each direction between test hosts."  We reproduce that as a
structured grid of :class:`DashboardCell` values plus text and CSV
renderers — each cell carries both directions' latest measured throughput
and its colour band.
"""

from __future__ import annotations

import enum
import io
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..errors import MeasurementError
from ..units import DataRate, Gbps
from .archive import MeasurementArchive, Metric

__all__ = ["RateBand", "DashboardCell", "Dashboard"]


class RateBand(enum.Enum):
    """Colour bands of the dashboard, worst to best."""

    NO_DATA = "no-data"
    BAD = "bad"          # < 10% of expected
    DEGRADED = "degraded"  # 10-80% of expected
    GOOD = "good"        # >= 80% of expected

    @property
    def glyph(self) -> str:
        return {
            RateBand.NO_DATA: "?",
            RateBand.BAD: "X",
            RateBand.DEGRADED: "~",
            RateBand.GOOD: "#",
        }[self]


@dataclass(frozen=True)
class DashboardCell:
    """One site-pair square, halved by direction (forward = row->col)."""

    row: str
    col: str
    forward_bps: Optional[float]
    reverse_bps: Optional[float]
    forward_band: RateBand
    reverse_band: RateBand

    @property
    def glyphs(self) -> str:
        """Two characters: forward then reverse half of the square."""
        return self.forward_band.glyph + self.reverse_band.glyph


class Dashboard:
    """Render the latest mesh throughput as a Figure 2-style grid.

    Parameters
    ----------
    archive:
        Measurement source.
    hosts:
        Row/column ordering.
    expected_rate:
        The provisioned rate tests should approach; bands are fractions of
        this.
    good_fraction / bad_fraction:
        Band boundaries (defaults: good >= 80%, bad < 10%).
    """

    def __init__(
        self,
        archive: MeasurementArchive,
        hosts: Sequence[str],
        *,
        expected_rate: DataRate = Gbps(10),
        good_fraction: float = 0.8,
        bad_fraction: float = 0.1,
    ) -> None:
        hosts = list(hosts)
        if len(hosts) < 2:
            raise MeasurementError("dashboard needs at least two hosts")
        if not 0.0 < bad_fraction < good_fraction <= 1.0:
            raise MeasurementError(
                "band fractions must satisfy 0 < bad < good <= 1"
            )
        self.archive = archive
        self.hosts = hosts
        self.expected_rate = expected_rate
        self.good_fraction = good_fraction
        self.bad_fraction = bad_fraction

    # -- banding ---------------------------------------------------------------
    def band(self, bps: Optional[float]) -> RateBand:
        if bps is None:
            return RateBand.NO_DATA
        frac = bps / self.expected_rate.bps
        if frac >= self.good_fraction:
            return RateBand.GOOD
        if frac < self.bad_fraction:
            return RateBand.BAD
        return RateBand.DEGRADED

    # -- grid -----------------------------------------------------------------------
    def cell(self, row: str, col: str) -> DashboardCell:
        fwd = self.archive.latest(row, col, Metric.THROUGHPUT_BPS)
        rev = self.archive.latest(col, row, Metric.THROUGHPUT_BPS)
        fwd_bps = fwd.value if fwd else None
        rev_bps = rev.value if rev else None
        return DashboardCell(
            row=row,
            col=col,
            forward_bps=fwd_bps,
            reverse_bps=rev_bps,
            forward_band=self.band(fwd_bps),
            reverse_band=self.band(rev_bps),
        )

    def grid(self) -> List[List[Optional[DashboardCell]]]:
        """Matrix of cells; the diagonal is None."""
        out: List[List[Optional[DashboardCell]]] = []
        for row in self.hosts:
            cells: List[Optional[DashboardCell]] = []
            for col in self.hosts:
                cells.append(None if row == col else self.cell(row, col))
            out.append(cells)
        return out

    def problem_pairs(self) -> List[Tuple[str, str, RateBand]]:
        """Directed pairs currently below the good band."""
        problems = []
        for row in self.hosts:
            for col in self.hosts:
                if row == col:
                    continue
                cell = self.cell(row, col)
                if cell.forward_band in (RateBand.BAD, RateBand.DEGRADED):
                    problems.append((row, col, cell.forward_band))
        return problems

    # -- renderers -------------------------------------------------------------------
    def render_text(self) -> str:
        """ASCII dashboard: '#' good, '~' degraded, 'X' bad, '?' no data.

        Each cell shows two glyphs — forward (row->col) then reverse —
        mirroring Figure 2's halved squares.
        """
        width = max(len(h) for h in self.hosts)
        buf = io.StringIO()
        header = " " * (width + 1) + " ".join(
            f"{h[:6]:>6}" for h in self.hosts
        )
        buf.write(header + "\n")
        for row, cells in zip(self.hosts, self.grid()):
            parts = [f"{row:>{width}} "]
            for cell in cells:
                parts.append(f"{'  --  ' if cell is None else cell.glyphs:>6}")
            buf.write(" ".join(parts).rstrip() + "\n")
        buf.write(
            f"legend: {RateBand.GOOD.glyph}=good "
            f">={self.good_fraction:.0%} of {self.expected_rate.human()}, "
            f"{RateBand.DEGRADED.glyph}=degraded, "
            f"{RateBand.BAD.glyph}=bad <{self.bad_fraction:.0%}, "
            f"{RateBand.NO_DATA.glyph}=no data; "
            "cell = forward,reverse\n"
        )
        return buf.getvalue()

    def render_csv(self) -> str:
        """Machine-readable dump: src,dst,throughput_bps,band per direction."""
        buf = io.StringIO()
        buf.write("src,dst,throughput_bps,band\n")
        for row in self.hosts:
            for col in self.hosts:
                if row == col:
                    continue
                cell = self.cell(row, col)
                value = "" if cell.forward_bps is None else f"{cell.forward_bps:.0f}"
                buf.write(f"{row},{col},{value},{cell.forward_band.value}\n")
        return buf.getvalue()

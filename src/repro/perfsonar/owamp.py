"""OWAMP: one-way active measurement (latency and packet loss).

OWAMP streams small UDP probe packets and reports one-way delay and loss.
Its superpower, per the paper's §2 incident, is seeing loss that device
counters miss: the failing line card dropped 1/22,000 packets, "not being
reported by the router's internal error monitoring, and was only noticed
using the owamp active packet loss monitoring tool".

The probe profiles the path at send time (so injected faults are picked
up), draws the number of lost probes from a binomial with the path's
per-packet loss probability, and reports latency with small jitter.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..errors import MeasurementError
from ..netsim.topology import Topology
from ..units import TimeDelta, bytes_, seconds

__all__ = ["OwampResult", "OwampProbe"]

#: OWAMP default: small probe packets.
PROBE_PACKET = bytes_(40)


@dataclass(frozen=True)
class OwampResult:
    """Result of one OWAMP session."""

    src: str
    dst: str
    packets_sent: int
    packets_lost: int
    one_way_latency: TimeDelta
    jitter: TimeDelta

    @property
    def loss_rate(self) -> float:
        return self.packets_lost / self.packets_sent if self.packets_sent else 0.0

    def summary(self) -> str:
        return (
            f"owamp {self.src} -> {self.dst}: "
            f"{self.packets_lost}/{self.packets_sent} lost "
            f"({self.loss_rate:.4%}), "
            f"owd {self.one_way_latency.human()}"
        )


class OwampProbe:
    """A one-way latency/loss prober between two hosts.

    Parameters
    ----------
    topology:
        The network to measure.
    src, dst:
        Host names.
    policy:
        Routing-policy kwargs (probes follow the same path science data
        would — deploying perfSONAR *inside* the Science DMZ is exactly
        the point of the monitoring pattern).
    packets_per_session:
        Probes per measurement session (OWAMP default streams run
        continuously; we quantize into sessions).
    """

    def __init__(
        self,
        topology: Topology,
        src: str,
        dst: str,
        *,
        policy: Optional[dict] = None,
        packets_per_session: int = 600,
    ) -> None:
        if packets_per_session < 1:
            raise MeasurementError("packets_per_session must be >= 1")
        self.topology = topology
        self.src = src
        self.dst = dst
        self.policy = dict(policy or {})
        self.packets_per_session = packets_per_session

    def run(self, rng: np.random.Generator) -> OwampResult:
        """Execute one measurement session against the current network state."""
        profile = self.topology.profile_between(self.src, self.dst,
                                                **self.policy)
        n = self.packets_per_session
        p = profile.random_loss
        lost = int(rng.binomial(n, p)) if p > 0 else 0
        # Delay jitter: probes see queueing noise of a few percent of the
        # one-way delay plus a fixed floor for host timestamping noise.
        base = profile.one_way_latency.s
        jitter_scale = max(base * 0.01, 20e-6)
        jitter = float(abs(rng.normal(0.0, jitter_scale)))
        return OwampResult(
            src=self.src,
            dst=self.dst,
            packets_sent=n,
            packets_lost=lost,
            one_way_latency=seconds(base + jitter),
            jitter=seconds(jitter),
        )

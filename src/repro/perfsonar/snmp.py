"""Passive SNMP-style device counters.

Figure 8's utilization data was "collected passively from SNMP data", and
the §2 incident's defining feature is that the router's error counters
showed *nothing* while OWAMP saw the loss.  This module models that
passive view:

* :class:`InterfaceCounters` — per-link octet counters driven by the
  traffic an experiment declares (utilization polling);
* :func:`read_error_counters` — the device's self-reported errors for a
  node: only faults whose ``visible_to_counters`` flag is True appear,
  which is exactly why soft failures hide from NMS dashboards;
* :class:`SnmpPoller` — periodic polling of both into a measurement
  archive, alongside the active perfSONAR data.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..errors import MeasurementError
from ..netsim.engine import Simulator
from ..netsim.link import Link
from ..netsim.node import Node
from ..netsim.topology import Topology
from ..units import DataRate, TimeDelta, seconds
from .archive import MeasurementArchive, Metric

__all__ = ["InterfaceCounters", "ErrorCounterReading",
           "read_error_counters", "SnmpPoller", "UTILIZATION_METRIC"]

#: Stored in the archive with src=node-ish names; reuse THROUGHPUT units.
UTILIZATION_METRIC = Metric.THROUGHPUT_BPS


@dataclass
class InterfaceCounters:
    """Octet counters for one link direction, SNMP ifHCInOctets style."""

    name: str
    octets: float = 0.0
    last_poll_octets: float = 0.0
    last_poll_time: float = 0.0

    def account(self, rate: DataRate, duration: TimeDelta) -> None:
        """Accumulate traffic (bytes) for a period at the given rate."""
        if duration.s < 0:
            raise MeasurementError("cannot account a negative duration")
        self.octets += rate.bytes_per_second * duration.s

    def poll(self, now: float) -> DataRate:
        """Return the mean rate since the previous poll (SNMP delta math)."""
        if now < self.last_poll_time:
            raise MeasurementError("poll time went backwards")
        elapsed = now - self.last_poll_time
        delta = self.octets - self.last_poll_octets
        self.last_poll_octets = self.octets
        self.last_poll_time = now
        if elapsed <= 0:
            return DataRate(0.0)
        return DataRate(delta * 8.0 / elapsed)


@dataclass(frozen=True)
class ErrorCounterReading:
    """One node's self-reported error state."""

    node: str
    visible_errors: int          # faults the device reports
    hidden_faults: int           # active faults the counters miss
    details: tuple

    @property
    def looks_clean(self) -> bool:
        return self.visible_errors == 0


def read_error_counters(node: Node) -> ErrorCounterReading:
    """What an NMS would see when polling this device's error counters.

    Walks the node's attached transit elements; an element counts as an
    *error source* if it reports non-zero loss or has a
    ``visible_to_counters`` attribute.  Only visible ones appear in the
    reading — the §2 line card (``visible_to_counters=False``) leaves the
    counters clean while actively dropping packets.
    """
    visible = 0
    hidden = 0
    details: List[str] = []
    for element in node.elements:
        flagged = getattr(element, "visible_to_counters", None)
        lossy = element.element_loss_probability() > 0
        if flagged is None and not lossy:
            continue
        description = getattr(element, "description",
                              type(element).__name__)
        if flagged:
            visible += 1
            details.append(f"errors: {description}")
        elif lossy or flagged is False:
            hidden += 1
    return ErrorCounterReading(node=node.name, visible_errors=visible,
                               hidden_faults=hidden, details=tuple(details))


class SnmpPoller:
    """Periodic passive polling into a measurement archive.

    Parameters
    ----------
    topology:
        Network under management.
    simulator:
        Shared clock/event engine.
    archive:
        Destination; utilization is recorded under
        ``(link name, 'snmp', THROUGHPUT_BPS)`` keys.
    interval:
        Poll cadence (SNMP typically polls every 30-300 s).
    """

    def __init__(
        self,
        topology: Topology,
        simulator: Simulator,
        archive: MeasurementArchive,
        *,
        interval: TimeDelta = seconds(60),
    ) -> None:
        if interval.s <= 0:
            raise MeasurementError("poll interval must be positive")
        self.topology = topology
        self.sim = simulator
        self.archive = archive
        self.interval = interval
        self._counters: Dict[str, InterfaceCounters] = {}
        self._started = False

    def counters_for(self, link: Link, *, label: Optional[str] = None
                     ) -> InterfaceCounters:
        """Get (or create) the counter object for a link."""
        name = label or link.name or f"link-{id(link):x}"
        if name not in self._counters:
            self._counters[name] = InterfaceCounters(name=name)
        return self._counters[name]

    def start(self) -> None:
        if self._started:
            raise MeasurementError("poller already started")
        self._started = True

        def poll() -> None:
            now = self.sim.now
            for name, counters in sorted(self._counters.items()):
                rate = counters.poll(now)
                self.archive.record_value(now, name, "snmp",
                                          UTILIZATION_METRIC, rate.bps)
        self.sim.schedule_periodic(self.interval.s, poll)

    def error_sweep(self) -> List[ErrorCounterReading]:
        """Poll every node's error counters (the NMS dashboard view)."""
        return [read_error_counters(node) for node in self.topology.nodes()]

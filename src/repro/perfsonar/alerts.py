"""Threshold alerting and soft-failure localization.

"Timely alerts and effective troubleshooting tools significantly reduce
the time and effort required to isolate the problem and resolve it" (§3.3).

Two pieces:

* :class:`ThresholdAlerter` scans a measurement archive for loss-rate
  rises and throughput drops relative to a learned baseline, raising
  :class:`Alert` records stamped with the *measurement* time — the
  detection-latency experiments compare these against fault-injection
  ground truth.
* :func:`localize_loss` performs the divide-and-conquer path testing a
  network engineer does with per-segment perfSONAR hosts: given the path
  of a bad pair, probe progressively longer prefixes and attribute the
  loss to the first segment where it appears.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple


from ..errors import MeasurementError
from ..netsim.topology import Path, Topology
from ..units import DataRate
from .archive import MeasurementArchive, Metric

__all__ = ["Alert", "AlertRule", "ThresholdAlerter", "localize_loss"]


@dataclass(frozen=True)
class Alert:
    """One raised alert."""

    time: float
    src: str
    dst: str
    metric: Metric
    value: float
    threshold: float
    message: str


@dataclass(frozen=True)
class AlertRule:
    """Thresholds for the alerter.

    loss_rate_threshold:
        Alert when a session's loss rate exceeds this (absolute).
    throughput_drop_fraction:
        Alert when throughput falls below this fraction of the rolling
        baseline (mean of earlier samples).
    latency_rise_fraction:
        Alert when one-way latency rises above ``(1 + fraction)`` times
        the rolling baseline — catches soft failures that add delay
        without loss, like management-CPU (slow-path) forwarding (§3.3).
    baseline_samples:
        Minimum history needed before baseline-relative alerts can fire.
    """

    loss_rate_threshold: float = 1e-4
    throughput_drop_fraction: float = 0.5
    latency_rise_fraction: float = 0.5
    baseline_samples: int = 3

    def __post_init__(self) -> None:
        if not 0.0 < self.loss_rate_threshold < 1.0:
            raise MeasurementError("loss_rate_threshold must be in (0,1)")
        if not 0.0 < self.throughput_drop_fraction < 1.0:
            raise MeasurementError("throughput_drop_fraction must be in (0,1)")
        if self.latency_rise_fraction <= 0.0:
            raise MeasurementError("latency_rise_fraction must be positive")
        if self.baseline_samples < 1:
            raise MeasurementError("baseline_samples must be >= 1")


class ThresholdAlerter:
    """Scan an archive and raise alerts for loss rises / throughput drops.

    ``rule`` of None means a default :class:`AlertRule` — a ``None``
    sentinel rather than a default instance in the signature, which
    would be a single object shared by every alerter in the process (a
    latent aliasing bug if the rule ever grows mutable state).
    """

    def __init__(self, archive: MeasurementArchive,
                 rule: Optional[AlertRule] = None) -> None:
        self.archive = archive
        self.rule = rule if rule is not None else AlertRule()

    def scan(self, *, since: Optional[float] = None) -> List[Alert]:
        """Evaluate every archived pair; returns alerts sorted by time."""
        alerts: List[Alert] = []
        alerts.extend(self._scan_loss(since))
        alerts.extend(self._scan_throughput(since))
        alerts.extend(self._scan_latency(since))
        alerts.sort(key=lambda a: a.time)
        return alerts

    def first_detection(self, src: str, dst: str,
                        *, since: Optional[float] = None) -> Optional[Alert]:
        """Earliest alert for a directed pair (for time-to-detect studies)."""
        pair_alerts = [a for a in self.scan(since=since)
                       if a.src == src and a.dst == dst]
        return pair_alerts[0] if pair_alerts else None

    # -- internals ---------------------------------------------------------------
    def _scan_loss(self, since: Optional[float]) -> List[Alert]:
        alerts = []
        for src, dst in self.archive.pairs(Metric.LOSS_RATE):
            times, values = self.archive.series(src, dst, Metric.LOSS_RATE,
                                                since=since)
            over = values > self.rule.loss_rate_threshold
            for t, v in zip(times[over], values[over]):
                alerts.append(Alert(
                    time=float(t), src=src, dst=dst, metric=Metric.LOSS_RATE,
                    value=float(v), threshold=self.rule.loss_rate_threshold,
                    message=(f"loss rate {v:.4%} exceeds "
                             f"{self.rule.loss_rate_threshold:.4%} "
                             f"on {src}->{dst}"),
                ))
        return alerts

    def _scan_throughput(self, since: Optional[float]) -> List[Alert]:
        alerts = []
        n_base = self.rule.baseline_samples
        for src, dst in self.archive.pairs(Metric.THROUGHPUT_BPS):
            times, values = self.archive.series(src, dst,
                                                Metric.THROUGHPUT_BPS,
                                                since=since)
            if values.size <= n_base:
                continue
            for i in range(n_base, values.size):
                baseline = float(values[:i].mean())
                if baseline <= 0:
                    continue
                threshold = baseline * self.rule.throughput_drop_fraction
                if values[i] < threshold:
                    alerts.append(Alert(
                        time=float(times[i]), src=src, dst=dst,
                        metric=Metric.THROUGHPUT_BPS, value=float(values[i]),
                        threshold=threshold,
                        message=(f"throughput {DataRate(float(values[i])).human()} "
                                 f"below {self.rule.throughput_drop_fraction:.0%} "
                                 f"of baseline "
                                 f"{DataRate(baseline).human()} on {src}->{dst}"),
                    ))
        return alerts


    def _scan_latency(self, since: Optional[float]) -> List[Alert]:
        alerts = []
        n_base = self.rule.baseline_samples
        for src, dst in self.archive.pairs(Metric.ONE_WAY_LATENCY_S):
            times, values = self.archive.series(src, dst,
                                                Metric.ONE_WAY_LATENCY_S,
                                                since=since)
            if values.size <= n_base:
                continue
            for i in range(n_base, values.size):
                baseline = float(values[:i].mean())
                if baseline <= 0:
                    continue
                threshold = baseline * (1.0 + self.rule.latency_rise_fraction)
                if values[i] > threshold:
                    alerts.append(Alert(
                        time=float(times[i]), src=src, dst=dst,
                        metric=Metric.ONE_WAY_LATENCY_S,
                        value=float(values[i]), threshold=threshold,
                        message=(f"one-way latency {values[i] * 1e3:.2f} ms "
                                 f"rose above {threshold * 1e3:.2f} ms "
                                 f"baseline band on {src}->{dst}"),
                    ))
        return alerts


def localize_loss(
    topology: Topology,
    path: Path,
    *,
    loss_threshold: float = 1e-5,
) -> List[Tuple[str, float]]:
    """Attribute path loss to the specific elements causing it.

    Emulates segment-by-segment troubleshooting with distributed
    perfSONAR hosts: walk the path profile's per-segment loss vector and
    return ``(element_name, loss_probability)`` for every element whose
    contribution exceeds ``loss_threshold``.  Because the tools are
    *already deployed* on the Science DMZ, this is a query, not a truck
    roll — the paper's operational argument in one function.
    """
    profile = topology.profile(path)
    culprits = [
        (name, p)
        for name, p in zip(profile.element_names, profile.segment_loss)
        if p > loss_threshold
    ]
    culprits.sort(key=lambda item: item[1], reverse=True)
    return culprits

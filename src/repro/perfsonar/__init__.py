"""perfSONAR-style active measurement substrate.

§3.3: "Performance monitoring is critical to the discovery and elimination
of so-called 'soft failures'".  This package reproduces the toolkit's
behaviour against the simulated network:

* :mod:`repro.perfsonar.owamp` — one-way active latency/loss probing
  (what actually caught the §2 failing line card).
* :mod:`repro.perfsonar.bwctl` — scheduled throughput tests, run as real
  simulated TCP flows.
* :mod:`repro.perfsonar.archive` — the measurement archive: time-series
  storage with windowed statistics.
* :mod:`repro.perfsonar.mesh` — full-mesh regular testing among
  registered perfSONAR hosts.
* :mod:`repro.perfsonar.dashboard` — the Figure 2 grid: per-pair
  bidirectional throughput cells, colour-banded.
* :mod:`repro.perfsonar.alerts` — threshold alerting and soft-failure
  localization.
"""

from .archive import Measurement, MeasurementArchive, Metric
from .owamp import OwampProbe, OwampResult
from .bwctl import BwctlTest, BwctlResult
from .mesh import MeshSchedule, MeshConfig
from .dashboard import Dashboard, DashboardCell, RateBand
from .alerts import Alert, AlertRule, ThresholdAlerter, localize_loss
from .snmp import (
    ErrorCounterReading,
    InterfaceCounters,
    SnmpPoller,
    read_error_counters,
)

__all__ = [
    "ErrorCounterReading",
    "InterfaceCounters",
    "SnmpPoller",
    "read_error_counters",
    "Measurement",
    "MeasurementArchive",
    "Metric",
    "OwampProbe",
    "OwampResult",
    "BwctlTest",
    "BwctlResult",
    "MeshSchedule",
    "MeshConfig",
    "Dashboard",
    "DashboardCell",
    "RateBand",
    "Alert",
    "AlertRule",
    "ThresholdAlerter",
    "localize_loss",
]

"""BWCTL: scheduled end-to-end throughput tests.

A BWCTL test runs a real memory-to-memory TCP flow between two perfSONAR
hosts and reports the achieved rate.  Here the "real TCP flow" is a
:class:`repro.tcp.connection.TcpConnection` over the current path profile
— so a test run after a fault is injected measures degraded throughput for
exactly the reason the real network would show it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..errors import MeasurementError
from ..netsim.topology import Topology
from ..tcp.congestion import CongestionControl, algorithm_by_name
from ..tcp.connection import TcpConnection
from ..units import DataRate, TimeDelta, seconds

__all__ = ["BwctlResult", "BwctlTest"]


@dataclass(frozen=True)
class BwctlResult:
    """Result of one BWCTL throughput test."""

    src: str
    dst: str
    throughput: DataRate
    duration: TimeDelta
    loss_events: int
    algorithm: str

    def summary(self) -> str:
        return (
            f"bwctl {self.src} -> {self.dst}: {self.throughput.human()} "
            f"over {self.duration.human()} [{self.algorithm}, "
            f"{self.loss_events} loss events]"
        )


class BwctlTest:
    """A throughput tester between two hosts.

    Parameters
    ----------
    topology:
        Network under test.
    src, dst:
        Host names (the perfSONAR hosts).
    duration:
        Test length (BWCTL runs short tests; 10-30 s is typical).
    algorithm:
        Congestion control used by the test host's kernel.
    policy:
        Routing-policy kwargs, matching the science data path.
    """

    def __init__(
        self,
        topology: Topology,
        src: str,
        dst: str,
        *,
        duration: TimeDelta = seconds(10),
        algorithm: object = "htcp",
        policy: Optional[dict] = None,
    ) -> None:
        if duration.s <= 0:
            raise MeasurementError("test duration must be positive")
        self.topology = topology
        self.src = src
        self.dst = dst
        self.duration = duration
        if isinstance(algorithm, str):
            algorithm = algorithm_by_name(algorithm)
        if not isinstance(algorithm, CongestionControl):
            raise MeasurementError("algorithm must be a name or CongestionControl")
        self.algorithm = algorithm
        self.policy = dict(policy or {})

    def run(self, rng: np.random.Generator) -> BwctlResult:
        """Execute one test against the current network state."""
        profile = self.topology.profile_between(self.src, self.dst,
                                                **self.policy)
        conn = TcpConnection(profile, algorithm=self.algorithm, rng=rng)
        result = conn.measure(self.duration)
        return BwctlResult(
            src=self.src,
            dst=self.dst,
            throughput=result.mean_throughput,
            duration=result.duration,
            loss_events=result.loss_events,
            algorithm=self.algorithm.name,
        )

"""Shared plumbing for the dual-backend vectorized kernels.

The three hot paths (the multi-flow fluid tick loop, the fan-in Lindley
sweep, and max-min fair allocation) each ship a vectorized numpy kernel
and a scalar Python reference selected with ``backend="numpy"`` /
``backend="python"``.  The two implementations of each kernel are
bit-identical; this module holds the tiny pieces they share so the
contract is stated once.

Rules the kernels follow to stay bit-identical:

* per-group reductions use sequential-accumulation primitives
  (``np.cumsum`` / ``np.bincount``), which numpy evaluates in array
  order exactly like the scalar loop;
* random variates are drawn in the scalar loop's order — one
  ``Generator.random(n)`` call consumes the PCG64 stream identically to
  *n* scalar ``random()`` calls;
* transcendental arithmetic (``**``) is routed through numpy's array
  loops on *both* paths, because numpy's SIMD ``pow`` may differ from
  libm's scalar ``pow`` in the final bit (see :func:`pow_elementwise`).

Engine tiers
------------
:data:`SIM_BACKENDS` is the *bit-identical* tier: same numbers, different
implementation.  The multi-flow simulator additionally understands a
second, *approximate* tier (:data:`SIM_ENGINES` adds ``"fluid"`` and
``"hybrid"``): the :mod:`repro.fluid` mean-field engine trades
per-flow congestion state for flow-class population dynamics, so its
results carry an accuracy contract (delivered-bytes ratio within 1% at
matched horizon) rather than a bit-identity contract.  Kernels that only
exist in the exact tier (fan-in, max-min) map an engine-tier default to
``"numpy"`` via :func:`exact_backend` — selecting the fluid engine
process-wide must never change *their* numbers.
"""

from __future__ import annotations

import contextlib
import os
from typing import Iterator, Optional

import numpy as np

from .errors import ConfigurationError

__all__ = [
    "SIM_BACKENDS",
    "SIM_ENGINES",
    "check_backend",
    "check_engine",
    "default_backend",
    "exact_backend",
    "pow_elementwise",
    "resolve_backend",
    "resolve_engine",
    "set_default_backend",
    "use_backend",
]

#: Bit-identical kernel implementations (same results, different code).
SIM_BACKENDS = ("numpy", "python")

#: Everything a simulation ``backend=`` argument may name: the exact
#: tier plus the approximate mean-field tier ("fluid") and the
#: population-threshold dispatcher ("hybrid").
SIM_ENGINES = SIM_BACKENDS + ("fluid", "hybrid")

#: Process-wide default set by :func:`set_default_backend`; None means
#: "consult the REPRO_BACKEND environment variable, else numpy".
_DEFAULT_BACKEND: Optional[str] = None


def check_backend(backend: str) -> str:
    """Validate an exact-tier ``backend=`` argument, returning it unchanged."""
    if backend not in SIM_BACKENDS:
        known = ", ".join(SIM_BACKENDS)
        raise ConfigurationError(
            f"unknown simulation backend {backend!r}; known: {known}")
    return backend


def check_engine(backend: str) -> str:
    """Validate a ``backend=`` argument against the full engine tier."""
    if backend not in SIM_ENGINES:
        known = ", ".join(SIM_ENGINES)
        raise ConfigurationError(
            f"unknown simulation backend {backend!r}; known: {known}")
    return backend


def default_backend() -> str:
    """The backend used when a kernel is called with ``backend=None``.

    Resolution order: :func:`set_default_backend`, then the
    ``REPRO_BACKEND`` environment variable, then ``"numpy"``.  May name
    any :data:`SIM_ENGINES` member; exact-tier kernels downgrade an
    engine-tier default through :func:`exact_backend`.
    """
    if _DEFAULT_BACKEND is not None:
        return _DEFAULT_BACKEND
    env = os.environ.get("REPRO_BACKEND", "")
    return check_engine(env) if env else "numpy"


def set_default_backend(backend: Optional[str]) -> Optional[str]:
    """Set the process default (None restores env/numpy resolution).

    Returns the previous override so callers can restore it.
    """
    global _DEFAULT_BACKEND
    previous = _DEFAULT_BACKEND
    _DEFAULT_BACKEND = check_engine(backend) if backend is not None else None
    return previous


def exact_backend(backend: Optional[str]) -> str:
    """Collapse an engine name onto the bit-identical tier.

    ``"python"`` stays ``"python"``; everything else — ``"numpy"``,
    ``"fluid"``, ``"hybrid"``, or None (resolve the default first) —
    becomes ``"numpy"``.  Used by the exact-only kernels (fan-in,
    max-min) and by the hybrid dispatcher below its switchover
    threshold, where the scalar reference must stay selectable but an
    approximate engine name cannot leak through.
    """
    name = check_engine(backend) if backend is not None else default_backend()
    return name if name in SIM_BACKENDS else "numpy"


def resolve_backend(backend: Optional[str]) -> str:
    """A concrete *exact-tier* backend from an optional argument.

    An explicit argument must belong to the exact tier; a None default
    that resolves to an engine-tier name collapses to ``"numpy"``.
    """
    if backend is not None:
        return check_backend(backend)
    return exact_backend(None)


def resolve_engine(backend: Optional[str]) -> str:
    """A concrete engine name (any :data:`SIM_ENGINES` member)."""
    return check_engine(backend) if backend is not None \
        else default_backend()


@contextlib.contextmanager
def use_backend(backend: str) -> Iterator[str]:
    """Temporarily make ``backend`` the process default::

        with use_backend("python"):
            run_experiment(spec)       # every kernel takes the scalar path
    """
    previous = set_default_backend(backend)
    try:
        yield check_engine(backend)
    finally:
        set_default_backend(previous)


def pow_elementwise(base: float, exponent: float) -> float:
    """``base ** exponent`` evaluated through numpy's array power loop.

    numpy's vectorized ``**`` may differ from libm's scalar ``pow`` in
    the final bit; scalar reference backends route their powers through
    the same array loop as the vectorized kernels so the two stay
    bit-identical.
    """
    return float(np.power(np.array([base]), np.array([exponent]))[0])

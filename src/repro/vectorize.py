"""Shared plumbing for the dual-backend vectorized kernels.

The three hot paths (the multi-flow fluid tick loop, the fan-in Lindley
sweep, and max-min fair allocation) each ship a vectorized numpy kernel
and a scalar Python reference selected with ``backend="numpy"`` /
``backend="python"``.  The two implementations of each kernel are
bit-identical; this module holds the tiny pieces they share so the
contract is stated once.

Rules the kernels follow to stay bit-identical:

* per-group reductions use sequential-accumulation primitives
  (``np.cumsum`` / ``np.bincount``), which numpy evaluates in array
  order exactly like the scalar loop;
* random variates are drawn in the scalar loop's order — one
  ``Generator.random(n)`` call consumes the PCG64 stream identically to
  *n* scalar ``random()`` calls;
* transcendental arithmetic (``**``) is routed through numpy's array
  loops on *both* paths, because numpy's SIMD ``pow`` may differ from
  libm's scalar ``pow`` in the final bit (see :func:`pow_elementwise`).
"""

from __future__ import annotations

import contextlib
import os
from typing import Iterator, Optional

import numpy as np

from .errors import ConfigurationError

__all__ = [
    "SIM_BACKENDS",
    "check_backend",
    "default_backend",
    "pow_elementwise",
    "resolve_backend",
    "set_default_backend",
    "use_backend",
]

#: Supported kernel implementations.
SIM_BACKENDS = ("numpy", "python")

#: Process-wide default set by :func:`set_default_backend`; None means
#: "consult the REPRO_BACKEND environment variable, else numpy".
_DEFAULT_BACKEND: Optional[str] = None


def check_backend(backend: str) -> str:
    """Validate a ``backend=`` argument, returning it unchanged."""
    if backend not in SIM_BACKENDS:
        known = ", ".join(SIM_BACKENDS)
        raise ConfigurationError(
            f"unknown simulation backend {backend!r}; known: {known}")
    return backend


def default_backend() -> str:
    """The backend used when a kernel is called with ``backend=None``.

    Resolution order: :func:`set_default_backend`, then the
    ``REPRO_BACKEND`` environment variable, then ``"numpy"``.  Because
    both backends are bit-identical this only selects an implementation,
    never a result — which is exactly what the whole-experiment
    differential tests verify.
    """
    if _DEFAULT_BACKEND is not None:
        return _DEFAULT_BACKEND
    env = os.environ.get("REPRO_BACKEND", "")
    return check_backend(env) if env else "numpy"


def set_default_backend(backend: Optional[str]) -> Optional[str]:
    """Set the process default (None restores env/numpy resolution).

    Returns the previous override so callers can restore it.
    """
    global _DEFAULT_BACKEND
    previous = _DEFAULT_BACKEND
    _DEFAULT_BACKEND = check_backend(backend) if backend is not None else None
    return previous


def resolve_backend(backend: Optional[str]) -> str:
    """A concrete backend name from an optional ``backend=`` argument."""
    return check_backend(backend) if backend is not None \
        else default_backend()


@contextlib.contextmanager
def use_backend(backend: str) -> Iterator[str]:
    """Temporarily make ``backend`` the process default::

        with use_backend("python"):
            run_experiment(spec)       # every kernel takes the scalar path
    """
    previous = set_default_backend(backend)
    try:
        yield check_backend(backend)
    finally:
        set_default_backend(previous)


def pow_elementwise(base: float, exponent: float) -> float:
    """``base ** exponent`` evaluated through numpy's array power loop.

    numpy's vectorized ``**`` may differ from libm's scalar ``pow`` in
    the final bit; scalar reference backends route their powers through
    the same array loop as the vectorized kernels so the two stay
    bit-identical.
    """
    return float(np.power(np.array([base]), np.array([exponent]))[0])

"""Shared plumbing for the dual-backend vectorized kernels.

The three hot paths (the multi-flow fluid tick loop, the fan-in Lindley
sweep, and max-min fair allocation) each ship a vectorized numpy kernel
and a scalar Python reference selected with ``backend="numpy"`` /
``backend="python"``.  The two implementations of each kernel are
bit-identical; this module holds the tiny pieces they share so the
contract is stated once.

Rules the kernels follow to stay bit-identical:

* per-group reductions use sequential-accumulation primitives
  (``np.cumsum`` / ``np.bincount``), which numpy evaluates in array
  order exactly like the scalar loop;
* random variates are drawn in the scalar loop's order — one
  ``Generator.random(n)`` call consumes the PCG64 stream identically to
  *n* scalar ``random()`` calls;
* transcendental arithmetic (``**``) is routed through numpy's array
  loops on *both* paths, because numpy's SIMD ``pow`` may differ from
  libm's scalar ``pow`` in the final bit (see :func:`pow_elementwise`).
"""

from __future__ import annotations

import numpy as np

from .errors import ConfigurationError

__all__ = ["SIM_BACKENDS", "check_backend", "pow_elementwise"]

#: Supported kernel implementations.
SIM_BACKENDS = ("numpy", "python")


def check_backend(backend: str) -> str:
    """Validate a ``backend=`` argument, returning it unchanged."""
    if backend not in SIM_BACKENDS:
        known = ", ".join(SIM_BACKENDS)
        raise ConfigurationError(
            f"unknown simulation backend {backend!r}; known: {known}")
    return backend


def pow_elementwise(base: float, exponent: float) -> float:
    """``base ** exponent`` evaluated through numpy's array power loop.

    numpy's vectorized ``**`` may differ from libm's scalar ``pow`` in
    the final bit; scalar reference backends route their powers through
    the same array loop as the vectorized kernels so the two stay
    bit-identical.
    """
    return float(np.power(np.array([base]), np.array([exponent]))[0])

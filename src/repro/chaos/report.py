"""The campaign report: survival curves, violation table, repro index.

:func:`build_report` folds a finished campaign into one strict-JSON
record.  That record **is** the experiment payload: its sha256 over
canonical JSON is the campaign's result digest, gets compared by the
golden gate and the CI smoke job, and therefore must be a pure
function of ``(campaign spec, oracle verdicts)`` — no code version, no
timings, no worker counts, nothing that varies between a serial cold
run and a pooled warm one.

``survival`` is the paper-style headline: of the schedules that drew
*k* faults, what fraction came through with every invariant intact?
The §3.3 argument is precisely that a Science DMZ with deployed
test-and-measurement keeps these fractions high — soft failures get
detected, transfers terminate, the mesh never goes dark.
"""

from __future__ import annotations

import hashlib
from typing import Dict, List, Mapping, Sequence, Tuple

from ..analysis.tables import ResultTable
from ..exec.seeding import canonical_json

__all__ = ["build_report", "render_report"]


def _digest(core: Mapping[str, object]) -> str:
    return hashlib.sha256(
        canonical_json(core).encode("utf-8")).hexdigest()


def build_report(spec, records: Sequence,
                 oracle_items: Sequence[Tuple[str, Mapping[str, object]]]
                 ) -> Dict[str, object]:
    """The deterministic campaign report (also the run payload)."""
    from .runner import _schedule_fault_payload

    rows: List[Dict[str, object]] = []
    by_fault_count: Dict[int, Dict[str, int]] = {}
    by_oracle: Dict[str, Dict[str, int]] = {}
    for record in records:
        faults = _schedule_fault_payload(record.spec)
        rows.append({
            "index": record.index,
            "name": record.spec.name,
            "seed": record.spec.seed,
            "spec_digest": record.spec.digest(),
            "faults": faults,
            "summary": dict(record.summary),
            "violations": {name: list(msgs) for name, msgs
                           in sorted(record.violations.items())},
            "transfer_status": (record.transfer or {}).get("status"),
            "minimal": (None if record.minimal is None else {
                "name": record.minimal.name,
                "spec_digest": record.minimal.digest(),
                "faults": _schedule_fault_payload(record.minimal),
                "artifact": f"repro-{record.spec.name}.json",
            }),
        })
        bucket = by_fault_count.setdefault(
            len(faults), {"schedules": 0, "clean": 0})
        bucket["schedules"] += 1
        bucket["clean"] += int(record.ok)
        for name, msgs in record.violations.items():
            entry = by_oracle.setdefault(
                name, {"schedules": 0, "violations": 0})
            entry["schedules"] += 1
            entry["violations"] += len(msgs)

    survival = {
        str(n): {
            "schedules": bucket["schedules"],
            "clean": bucket["clean"],
            "survival": bucket["clean"] / bucket["schedules"],
        }
        for n, bucket in sorted(by_fault_count.items())
    }
    core: Dict[str, object] = {
        "campaign": spec.name,
        "spec_digest": spec.digest(),
        "seed": spec.seed,
        "design": spec.design,
        "schedules": len(records),
        "failed": sum(1 for r in records if not r.ok),
        "oracles": [{"name": name, "params": dict(params)}
                    for name, params in sorted(oracle_items,
                                               key=lambda i: i[0])],
        "survival": survival,
        "oracle_violations": {name: dict(counts) for name, counts
                              in sorted(by_oracle.items())},
        "runs": rows,
    }
    return {"digest": _digest(core), **core}


def render_report(report: Mapping[str, object]) -> str:
    """Human-readable rendering of a campaign report."""
    lines = [
        f"campaign {report['campaign']!r} over design "
        f"{report['design']!r}: {report['schedules']} schedules, "
        f"{report['failed']} failed "
        f"(report digest {str(report['digest'])[:12]})",
    ]
    survival = ResultTable(
        "survival by fault count",
        ["faults", "schedules", "clean", "survival"])
    for n, bucket in report["survival"].items():
        survival.add_row([n, bucket["schedules"], bucket["clean"],
                          f"{bucket['survival']:.0%}"])
    lines.append(survival.render_text())
    violations = report["oracle_violations"]
    if violations:
        table = ResultTable("oracle violations",
                            ["oracle", "schedules", "violations"])
        for name, counts in violations.items():
            table.add_row([name, counts["schedules"],
                           counts["violations"]])
        lines.append(table.render_text())
        for row in report["runs"]:
            if not row["violations"]:
                continue
            lines.append(f"-- {row['name']} (seed {row['seed']}):")
            for oracle, msgs in row["violations"].items():
                for msg in msgs[:3]:
                    lines.append(f"   {oracle}: {msg}")
                if len(msgs) > 3:
                    lines.append(f"   {oracle}: ... {len(msgs) - 3} more")
            if row["minimal"] is not None:
                lines.append(
                    f"   shrunk to {len(row['minimal']['faults'])} "
                    f"fault(s), replay: {row['minimal']['artifact']}")
    else:
        lines.append("every invariant held on every schedule")
    return "\n".join(lines)

"""Greedy delta-debugging of failing fault schedules.

When a schedule violates an oracle, the interesting artifact is not the
whole sampled timeline but the *minimal* fault set that still triggers
the violation — that is what a network engineer can actually act on,
and what the committed ``specs/``-style repro artifact should contain.

:func:`shrink_schedule` runs one-removal-at-a-time ddmin: propose every
schedule obtained by deleting a single fault, link cut, or repair;
evaluate the whole batch (the caller routes evaluation through the
exec engine, so candidates run in parallel and hit the result cache on
repeats); accept the first candidate that still violates at least one
of the *original* oracles; repeat to a fixpoint.  Intersecting on the
original oracle names keeps the search from wandering onto a different
failure than the one being minimized.

Determinism: candidates are proposed in a fixed order (faults by
position, then cuts, then repairs) and acceptance always takes the
lowest index, so the minimal schedule is a pure function of the
starting schedule and the oracle verdicts.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Callable, Dict, List, Sequence, Set

from ..experiment.spec import ScenarioSpec

__all__ = ["candidate_removals", "shrink_schedule"]

#: ``evaluate(candidates)`` -> one ``{oracle: [violations]}`` per candidate.
Evaluator = Callable[[Sequence[ScenarioSpec]], List[Dict[str, List[str]]]]


def candidate_removals(spec: ScenarioSpec) -> List[ScenarioSpec]:
    """Every schedule reachable by deleting one timeline element."""
    out: List[ScenarioSpec] = []
    for i in range(len(spec.faults)):
        out.append(replace(
            spec, faults=spec.faults[:i] + spec.faults[i + 1:]))
    for i in range(len(spec.link_cuts)):
        out.append(replace(
            spec, link_cuts=spec.link_cuts[:i] + spec.link_cuts[i + 1:]))
    for i in range(len(spec.repairs_s)):
        out.append(replace(
            spec, repairs_s=spec.repairs_s[:i] + spec.repairs_s[i + 1:]))
    return out


def shrink_schedule(spec: ScenarioSpec, violated: Set[str],
                    evaluate: Evaluator, *,
                    max_rounds: int = 64) -> ScenarioSpec:
    """The fixpoint of greedy single-removal shrinking.

    ``violated`` is the set of oracle names the full schedule tripped;
    a candidate is accepted only if it still trips at least one of
    them.  Returns ``spec`` unchanged when nothing can be removed.
    """
    current = spec
    for _ in range(max_rounds):
        candidates = candidate_removals(current)
        if not candidates:
            break
        verdicts = evaluate(candidates)
        accepted = None
        for candidate, verdict in zip(candidates, verdicts):
            if violated & set(verdict):
                accepted = candidate
                break
        if accepted is None:
            break
        current = accepted
    return current

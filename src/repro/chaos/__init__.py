"""repro.chaos — deterministic, seedable fault campaigns with oracles.

The paper argues a Science DMZ stays *operable under faults* because
test-and-measurement is built into the design (§3.3, §5).  This
package turns that claim into a checkable artifact: a frozen
:class:`CampaignSpec` describes a fault space over a base design; the
campaign runner samples N fault schedules from the seed tree, executes
each through the exec engine (parallel, cached, bit-reproducible), and
judges every run against registered invariant **oracles** — packets
conserved, event time monotonic, throughput below true capacity,
Mathis ceiling respected, lossy faults detected within bound, the mesh
never silent, transfers terminating with taxonomized errors.

Failing schedules shrink (greedy ddmin) to a minimal fault set and
emit a replayable spec artifact; the campaign report aggregates
survival curves and an oracle-violation table.

Importing this module registers the ``"campaign"`` spec kind and its
runner, so ``ExperimentSpec.from_dict``/``run_experiment`` resolve it
lazily without :mod:`repro.experiment` depending on this package.
"""

from .oracles import (
    ORACLES,
    Oracle,
    PathState,
    ProfileTimeline,
    RunObservation,
    check_bounded,
    check_monotonic,
    default_oracles,
    evaluate_oracles,
    get_oracle,
    register_oracle,
)
from .report import build_report, render_report
from .runner import CampaignResult, ScheduleRecord, run_campaign
from .sample import sample_schedule, sample_schedules, schedule_seed
from .shrink import candidate_removals, shrink_schedule
from .spec import CampaignSpec, FaultSpaceSpec, OracleSpec, TransferProbeSpec

__all__ = [
    "ORACLES",
    "CampaignResult",
    "CampaignSpec",
    "FaultSpaceSpec",
    "Oracle",
    "OracleSpec",
    "PathState",
    "ProfileTimeline",
    "RunObservation",
    "ScheduleRecord",
    "TransferProbeSpec",
    "build_report",
    "candidate_removals",
    "check_bounded",
    "check_monotonic",
    "default_oracles",
    "evaluate_oracles",
    "get_oracle",
    "register_oracle",
    "render_report",
    "run_campaign",
    "sample_schedule",
    "sample_schedules",
    "schedule_seed",
    "shrink_schedule",
]

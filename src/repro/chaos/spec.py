"""CampaignSpec: a randomized fault campaign as one JSON document.

The paper's robustness claims (§2's line card, §3.3's soft-failure
taxonomy, §5's security argument) are claims about *behavior under
faults* — so a campaign describes a whole fault **space**, not one
hand-placed timeline: which soft-failure kinds may strike which nodes,
when, whether links get cut, how many faults per schedule.  The
campaign runner then samples N concrete fault schedules from the seed
tree and checks every run against invariant oracles
(:mod:`repro.chaos.oracles`).

:class:`CampaignSpec` is a fourth :class:`~repro.experiment.spec.ExperimentSpec`
kind (``"campaign"``) with the same contract as the other three:
frozen, lossless JSON round-trip, canonical digest, runnable through
:func:`repro.experiment.run_experiment` (and so through ``repro run``
with golden gating) — plus the dedicated ``repro chaos`` CLI.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import ClassVar, Dict, Mapping, Optional, Tuple

from ..errors import ConfigurationError
from ..experiment.spec import (
    AlertRuleSpec,
    ExperimentSpec,
    MeshSpec,
    register_spec_kind,
)

__all__ = [
    "CampaignSpec",
    "FaultSpaceSpec",
    "OracleSpec",
    "TransferProbeSpec",
]


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise ConfigurationError(message)


@dataclass(frozen=True)
class FaultSpaceSpec:
    """The sampling space one campaign draws fault schedules from.

    ``kinds`` name entries in :data:`repro.experiment.registry.FAULTS`
    (membership is validated at campaign-run time, when the registry —
    including user additions — is authoritative).  ``nodes`` are the
    candidate injection sites for device faults (() = the design's
    border router); ``storage_nodes`` are the candidates for
    ``storage`` faults (() = the design's DTNs); ``cache_nodes`` are the
    candidates for ``cachebug`` faults (() = every cache node the
    design's bundle declares in ``extras["caches"]``).  Each sampled
    schedule
    draws between ``min_faults`` and ``max_faults`` faults with onsets
    uniform in ``[onset_min_s, onset_max_s]``; with probability
    ``repair_fraction`` the schedule repairs everything at a time drawn
    from ``(onset_max_s, horizon)``, and with probability
    ``cut_fraction`` it also severs one of the candidate ``cuts`` links.
    """

    kinds: Tuple[str, ...] = ("linecard", "optics", "cpu", "duplex")
    nodes: Tuple[str, ...] = ()
    storage_nodes: Tuple[str, ...] = ()
    cache_nodes: Tuple[str, ...] = ()
    min_faults: int = 1
    max_faults: int = 2
    onset_min_s: float = 300.0
    onset_max_s: float = 1800.0
    repair_fraction: float = 0.0
    cuts: Tuple[Tuple[str, str], ...] = ()
    cut_fraction: float = 0.0

    def __post_init__(self) -> None:
        _require(len(self.kinds) > 0, "fault space needs at least one kind")
        _require(1 <= self.min_faults <= self.max_faults,
                 "fault space needs 1 <= min_faults <= max_faults")
        _require(0 <= self.onset_min_s <= self.onset_max_s,
                 "fault space needs 0 <= onset_min_s <= onset_max_s")
        for frac, label in ((self.repair_fraction, "repair_fraction"),
                            (self.cut_fraction, "cut_fraction")):
            _require(0.0 <= frac <= 1.0, f"{label} must be in [0,1]")
        _require(not (self.cut_fraction > 0 and not self.cuts),
                 "cut_fraction > 0 needs at least one candidate in cuts")

    def to_dict(self) -> Dict[str, object]:
        return {
            "kinds": list(self.kinds),
            "nodes": list(self.nodes),
            "storage_nodes": list(self.storage_nodes),
            "cache_nodes": list(self.cache_nodes),
            "min_faults": self.min_faults,
            "max_faults": self.max_faults,
            "onset_min_s": self.onset_min_s,
            "onset_max_s": self.onset_max_s,
            "repair_fraction": self.repair_fraction,
            "cuts": [[a, b] for a, b in self.cuts],
            "cut_fraction": self.cut_fraction,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "FaultSpaceSpec":
        kinds = data.get("kinds")
        return cls(
            kinds=(tuple(str(k) for k in kinds) if kinds is not None
                   else ("linecard", "optics", "cpu", "duplex")),
            nodes=tuple(str(n) for n in data.get("nodes") or ()),
            storage_nodes=tuple(str(n)
                                for n in data.get("storage_nodes") or ()),
            cache_nodes=tuple(str(n)
                              for n in data.get("cache_nodes") or ()),
            min_faults=int(data.get("min_faults", 1)),
            max_faults=int(data.get("max_faults", 2)),
            onset_min_s=float(data.get("onset_min_s", 300.0)),
            onset_max_s=float(data.get("onset_max_s", 1800.0)),
            repair_fraction=float(data.get("repair_fraction", 0.0)),
            cuts=tuple((str(a), str(b)) for a, b in data.get("cuts") or ()),
            cut_fraction=float(data.get("cut_fraction", 0.0)),
        )


@dataclass(frozen=True)
class OracleSpec:
    """One invariant oracle to evaluate, with its parameters.

    ``name`` indexes :data:`repro.chaos.oracles.ORACLES`; ``params``
    override the oracle's keyword defaults (JSON scalars only, stored
    sorted like :class:`~repro.experiment.spec.FaultSpec` params).
    """

    name: str
    params: Tuple[Tuple[str, object], ...] = ()

    def __post_init__(self) -> None:
        _require(bool(self.name), "oracle name must be non-empty")

    def param_mapping(self) -> Dict[str, object]:
        return dict(self.params)

    def to_dict(self) -> Dict[str, object]:
        return {"name": self.name, "params": {k: v for k, v in self.params}}

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "OracleSpec":
        params = data.get("params") or {}
        return cls(name=str(data["name"]),
                   params=tuple(sorted(params.items())))


@dataclass(frozen=True)
class TransferProbeSpec:
    """An end-to-end DTN transfer run once per schedule, post-horizon.

    The transfer-termination oracle checks the probe either completes
    or raises a taxonomized :class:`~repro.errors.ReproError` — never
    hangs silently, never dies with an untyped exception.
    """

    size_gb: float = 10.0
    files: int = 10
    tool: str = "globus"
    max_duration_s: float = 86_400.0

    def __post_init__(self) -> None:
        _require(self.size_gb > 0, "transfer probe size_gb must be > 0")
        _require(self.files >= 1, "transfer probe files must be >= 1")
        _require(self.max_duration_s > 0,
                 "transfer probe max_duration_s must be > 0")

    def to_dict(self) -> Dict[str, object]:
        return {
            "size_gb": self.size_gb,
            "files": self.files,
            "tool": self.tool,
            "max_duration_s": self.max_duration_s,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "TransferProbeSpec":
        return cls(
            size_gb=float(data.get("size_gb", 10.0)),
            files=int(data.get("files", 10)),
            tool=str(data.get("tool", "globus")),
            max_duration_s=float(data.get("max_duration_s", 86_400.0)),
        )


@register_spec_kind
@dataclass(frozen=True)
class CampaignSpec(ExperimentSpec):
    """A deterministic, seedable fault campaign over a base design."""

    kind: ClassVar[str] = "campaign"

    design: str = "simple-science-dmz"
    until_s: float = 2700.0
    mesh: MeshSpec = field(default_factory=MeshSpec)
    alert_rule: AlertRuleSpec = field(default_factory=AlertRuleSpec)
    space: FaultSpaceSpec = field(default_factory=FaultSpaceSpec)
    schedules: int = 16
    #: () means "every registered oracle with default parameters".
    oracles: Tuple[OracleSpec, ...] = ()
    transfer: Optional[TransferProbeSpec] = None
    #: Shrink failing schedules to minimal fault sets (ddmin)?
    shrink: bool = True
    #: Cap on how many failing schedules get shrunk (earliest first).
    max_shrink: int = 4

    def __post_init__(self) -> None:
        super().__post_init__()
        _require(self.until_s > 0, "campaign horizon until_s must be > 0")
        _require(self.schedules >= 1, "a campaign needs schedules >= 1")
        _require(self.max_shrink >= 0, "max_shrink must be >= 0")
        _require(self.space.onset_max_s < self.until_s,
                 f"fault onsets up to t={self.space.onset_max_s}s must fall "
                 f"before the horizon {self.until_s}s")
        seen = set()
        for oracle in self.oracles:
            _require(oracle.name not in seen,
                     f"duplicate oracle {oracle.name!r} in campaign")
            seen.add(oracle.name)

    def _payload_dict(self) -> Dict[str, object]:
        return {
            "design": self.design,
            "until_s": self.until_s,
            "mesh": self.mesh.to_dict(),
            "alert_rule": self.alert_rule.to_dict(),
            "space": self.space.to_dict(),
            "schedules": self.schedules,
            "oracles": [o.to_dict() for o in self.oracles],
            "transfer": (self.transfer.to_dict()
                         if self.transfer is not None else None),
            "shrink": self.shrink,
            "max_shrink": self.max_shrink,
        }

    @classmethod
    def _from_payload(cls, data: Mapping[str, object]) -> "CampaignSpec":
        transfer = data.get("transfer")
        return cls(
            name=str(data["name"]),
            seed=int(data.get("seed", 0)),
            description=str(data.get("description", "")),
            design=str(data.get("design", "simple-science-dmz")),
            until_s=float(data.get("until_s", 2700.0)),
            mesh=MeshSpec.from_dict(data.get("mesh") or {}),
            alert_rule=AlertRuleSpec.from_dict(data.get("alert_rule") or {}),
            space=FaultSpaceSpec.from_dict(data.get("space") or {}),
            schedules=int(data.get("schedules", 16)),
            oracles=tuple(OracleSpec.from_dict(o)
                          for o in data.get("oracles") or ()),
            transfer=(TransferProbeSpec.from_dict(transfer)
                      if transfer else None),
            shrink=bool(data.get("shrink", True)),
            max_shrink=int(data.get("max_shrink", 4)),
        )

"""Deterministic fault-schedule sampling from the campaign seed tree.

Each of a campaign's N schedules is a full, self-contained
:class:`~repro.experiment.spec.ScenarioSpec` drawn from the campaign's
:class:`~repro.chaos.spec.FaultSpaceSpec`.  The draw for schedule *i*
uses an independent generator seeded with
``derive_seed(campaign.seed, {"campaign": name, "schedule": i})`` — the
same seed-tree discipline the sweep layer uses — so:

* schedules are reproducible from ``(campaign digest, i)`` alone;
* inserting or removing schedules never perturbs the others;
* a sampled schedule can be replayed (or shrunk) standalone, because
  it *is* an ordinary runnable spec.

Sampled times are quantized to 0.1 s so the JSON artifacts stay
readable and digests don't hinge on float formatting edge cases.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from ..errors import ConfigurationError
from ..exec.seeding import derive_seed
from ..experiment.registry import FAULTS, build_design
from ..experiment.spec import FaultSpec, LinkCutSpec, ScenarioSpec
from .spec import CampaignSpec

__all__ = ["sample_schedule", "sample_schedules", "schedule_seed"]

#: Fault kinds injected on storage (DTN) nodes rather than the border.
STORAGE_KINDS = frozenset({"storage"})

#: Fault kinds injected on cache nodes (federated designs only).
CACHE_KINDS = frozenset({"cachebug"})


def schedule_seed(spec: CampaignSpec, index: int) -> int:
    """The derived seed for campaign schedule ``index``."""
    return derive_seed(spec.seed,
                       {"campaign": spec.name, "schedule": index})


def _candidate_nodes(spec: CampaignSpec) -> Tuple[Tuple[str, ...],
                                                  Tuple[str, ...],
                                                  Tuple[str, ...]]:
    """Resolve (device_nodes, storage_nodes, cache_nodes) vs the design.

    Empty tuples in the space fall back to the design's border router
    (device faults), its DTNs (storage faults), and its declared cache
    nodes (cachebug faults), and every explicit name is validated
    against the topology so a typo fails at sampling time with the
    offending name, not mid-campaign.
    """
    bundle = build_design(spec.design)
    topo = bundle.topology
    nodes = spec.space.nodes or (bundle.border,)
    storage = spec.space.storage_nodes or tuple(bundle.dtns)
    caches = spec.space.cache_nodes or tuple(
        sorted(bundle.extras.get("caches", {})))
    for name in (*nodes, *storage, *caches):
        if not topo.has_node(name):
            raise ConfigurationError(
                f"fault space names node {name!r}, which design "
                f"{spec.design!r} does not contain")
    if any(k in STORAGE_KINDS for k in spec.space.kinds) and not storage:
        raise ConfigurationError(
            f"fault space includes a storage kind but design "
            f"{spec.design!r} has no DTNs and no storage_nodes were given")
    if any(k in CACHE_KINDS for k in spec.space.kinds) and not caches:
        raise ConfigurationError(
            f"fault space includes a cache kind but design "
            f"{spec.design!r} declares no caches and no cache_nodes "
            "were given")
    for a, b in spec.space.cuts:
        topo.link_between(a, b)  # raises RoutingError on a bad pair
    for kind in spec.space.kinds:
        if kind not in FAULTS:
            known = ", ".join(sorted(FAULTS))
            raise ConfigurationError(
                f"fault space kind {kind!r} is not registered; "
                f"known kinds: {known}")
    return tuple(nodes), tuple(storage), tuple(caches)


def sample_schedule(spec: CampaignSpec, index: int, *,
                    nodes: Optional[Tuple[str, ...]] = None,
                    storage_nodes: Optional[Tuple[str, ...]] = None,
                    cache_nodes: Optional[Tuple[str, ...]] = None
                    ) -> ScenarioSpec:
    """Draw schedule ``index`` of the campaign as a runnable spec.

    ``nodes``/``storage_nodes``/``cache_nodes`` are the resolved
    candidate sites; pass them when sampling many schedules to avoid
    rebuilding the design per draw (see :func:`sample_schedules`).
    """
    if nodes is None or storage_nodes is None or cache_nodes is None:
        nodes, storage_nodes, cache_nodes = _candidate_nodes(spec)
    space = spec.space
    rng = np.random.default_rng(schedule_seed(spec, index))

    n_faults = int(rng.integers(space.min_faults, space.max_faults + 1))
    faults: List[FaultSpec] = []
    for _ in range(n_faults):
        kind = space.kinds[int(rng.integers(len(space.kinds)))]
        if kind in STORAGE_KINDS:
            sites = storage_nodes
        elif kind in CACHE_KINDS:
            sites = cache_nodes
        else:
            sites = nodes
        node = sites[int(rng.integers(len(sites)))]
        onset = round(float(rng.uniform(space.onset_min_s,
                                        space.onset_max_s)), 1)
        faults.append(FaultSpec(kind=kind, at_s=onset, node=node))
    faults.sort(key=lambda f: (f.at_s, f.kind, f.node or ""))

    repairs: Tuple[float, ...] = ()
    if float(rng.random()) < space.repair_fraction:
        lo = space.onset_max_s
        hi = max(lo, spec.until_s - 0.1)
        repairs = (round(float(rng.uniform(lo, hi)), 1),)

    cuts: Tuple[LinkCutSpec, ...] = ()
    if space.cuts and float(rng.random()) < space.cut_fraction:
        a, b = space.cuts[int(rng.integers(len(space.cuts)))]
        cut_at = round(float(rng.uniform(space.onset_min_s,
                                         space.onset_max_s)), 1)
        cuts = (LinkCutSpec(a=a, b=b, at_s=cut_at),)

    return ScenarioSpec(
        name=f"{spec.name}-s{index:03d}",
        seed=schedule_seed(spec, index),
        description=f"schedule {index} of campaign {spec.name!r}",
        design=spec.design,
        until_s=spec.until_s,
        mesh=spec.mesh,
        faults=tuple(faults),
        repairs_s=repairs,
        link_cuts=cuts,
        alert_rule=spec.alert_rule,
    )


def sample_schedules(spec: CampaignSpec) -> List[ScenarioSpec]:
    """All N schedules of the campaign, in index order."""
    nodes, storage_nodes, cache_nodes = _candidate_nodes(spec)
    return [sample_schedule(spec, i, nodes=nodes,
                            storage_nodes=storage_nodes,
                            cache_nodes=cache_nodes)
            for i in range(spec.schedules)]

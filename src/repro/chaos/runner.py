"""Campaign execution: sample, fan out, check oracles, shrink, report.

:func:`run_campaign` is the ``"campaign"`` spec runner registered with
:func:`repro.experiment.runner.register_spec_runner` — running a
:class:`~repro.chaos.spec.CampaignSpec` through
:func:`~repro.experiment.run_experiment` (or ``repro chaos`` / ``repro
run``) lands here.  Each sampled schedule executes through the same
:class:`~repro.exec.runner.ParallelRunner` fan-out the sweeps use, so
campaigns inherit the whole exec contract for free: byte-identical
results serial vs. pooled, content-addressed caching, deterministic
error ordering.

The worker function :func:`_campaign_point` is the unit of caching: one
schedule in, one JSON record out — the scenario outcome summary, every
oracle violation, and the optional DTN transfer-probe record.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import ConfigurationError, ReproError
from ..exec.seeding import canonical_json, derive_seed
from ..experiment.runner import _outcome_payload, register_spec_runner
from ..experiment.spec import ExperimentSpec, ScenarioSpec
from .oracles import (
    ProfileTimeline,
    RunObservation,
    default_oracles,
    evaluate_oracles,
    get_oracle,
)
from .sample import sample_schedules
from .shrink import shrink_schedule
from .spec import CampaignSpec, OracleSpec, TransferProbeSpec

__all__ = ["CampaignResult", "ScheduleRecord", "run_campaign"]


@dataclass(frozen=True)
class ScheduleRecord:
    """One schedule's spec plus everything its run produced."""

    index: int
    spec: ScenarioSpec
    summary: Dict[str, object]
    violations: Dict[str, List[str]]
    transfer: Optional[Dict[str, object]]
    cached: bool = False
    #: ddmin result when the schedule failed and shrinking ran.
    minimal: Optional[ScenarioSpec] = None

    @property
    def ok(self) -> bool:
        return not self.violations


@dataclass
class CampaignResult:
    """In-process value of a campaign run (``RunResult.value``)."""

    spec: CampaignSpec
    report: Dict[str, object]
    records: List[ScheduleRecord] = field(default_factory=list)

    @property
    def failed(self) -> List[ScheduleRecord]:
        return [r for r in self.records if not r.ok]


def _oracle_items(spec: CampaignSpec) -> List[Tuple[str, Dict[str, object]]]:
    """The campaign's resolved oracle set, names validated up front."""
    if spec.oracles:
        items = [(o.name, o.param_mapping()) for o in spec.oracles]
    else:
        items = [(name, {}) for name in default_oracles()]
    for name, _ in items:
        get_oracle(name)  # raises ConfigurationError with known names
    return items


def _transfer_record(parsed: ScenarioSpec, probe: TransferProbeSpec,
                     scenario) -> Dict[str, object]:
    """Run the post-horizon DTN probe, taxonomizing every ending."""
    from ..dtn.transfer import Dataset, TransferPlan
    from ..units import GB

    bundle = scenario.bundle
    record: Dict[str, object] = {
        "max_duration_s": probe.max_duration_s,
        "tool": probe.tool,
    }
    try:
        if not bundle.dtns:
            raise ConfigurationError(
                f"design {parsed.design!r} has no DTN to probe from")
        plan = TransferPlan(
            bundle.topology, bundle.dtns[0], bundle.remote_dtn,
            Dataset("chaos-probe", GB(probe.size_gb),
                    file_count=probe.files),
            probe.tool, policy=bundle.science_policy)
        rng = np.random.default_rng(
            derive_seed(parsed.seed, {"probe": "transfer"}))
        report = plan.execute(rng)
    except ReproError as exc:
        record.update(status="failed", is_repro_error=True,
                      error_type=type(exc).__name__, error=str(exc))
    except Exception as exc:  # noqa: BLE001 - the oracle wants these too
        record.update(status="crashed", is_repro_error=False,
                      error_type=type(exc).__name__, error=str(exc))
    else:
        record.update(
            status="completed",
            duration_s=float(report.duration.s),
            effective_gbps=float(report.effective_rate.gbps),
            limiting_factor=report.limiting_factor,
        )
    return record


def _campaign_point(spec: str, oracles: str,
                    transfer: str) -> Dict[str, object]:
    """Run one sampled schedule and judge it against the oracles.

    All three parameters are JSON strings so the exec cache can key
    them canonically and a pool worker can receive them unpickled.
    Module-level by the same rule as every other swept function.
    """
    from ..scenario import Scenario
    from ..units import seconds

    parsed = ExperimentSpec.from_json(spec)
    oracle_items = [(name, params)
                    for name, params in json.loads(oracles)]
    probe_data = json.loads(transfer)

    scenario = Scenario.from_spec(parsed)
    timeline = ProfileTimeline.install(scenario, parsed)
    outcome = scenario.run(until=seconds(parsed.until_s))
    mesh = scenario.mesh
    transfer_record = None
    if probe_data is not None:
        transfer_record = _transfer_record(
            parsed, TransferProbeSpec.from_dict(probe_data), scenario)
    cache_ledger = None
    if "cache_workload" in scenario.bundle.extras:
        # Imported here, not at module top: chaos must not depend on the
        # federation package unless the design actually carries caches.
        from ..federation.sim import replay_design_workload
        cache_ledger = replay_design_workload(
            scenario.bundle, outcome, parsed.seed)
    obs = RunObservation(
        spec=parsed,
        outcome=outcome,
        timeline=timeline,
        packet_ledger=list(mesh.packet_ledger),
        unreachable=[(t, pair) for t, pair in mesh.unreachable_events],
        transfer=transfer_record,
        caches=cache_ledger,
    )
    violations = evaluate_oracles(obs, oracle_items)
    result: Dict[str, object] = {
        "summary": _outcome_payload(outcome),
        "violations": {name: list(msgs)
                       for name, msgs in sorted(violations.items())},
        "transfer": transfer_record,
    }
    if cache_ledger is not None:
        result["summary"]["cache"] = {
            "hit_rate": cache_ledger["hit_rate"],
            "delivered_bytes": cache_ledger["delivered_bytes"],
            "origin_bytes": cache_ledger["origin_bytes"],
            "cache_served_bytes": cache_ledger["cache_served_bytes"],
            "corrupted_nodes": list(cache_ledger["corrupted_nodes"]),
        }
    return result


def _schedule_fault_payload(spec: ScenarioSpec) -> List[Dict[str, object]]:
    return [
        {"kind": f.kind, "node": f.node, "at_s": f.at_s}
        for f in spec.faults
    ] + [
        {"kind": "link-cut", "node": f"{c.a}--{c.b}", "at_s": c.at_s}
        for c in spec.link_cuts
    ]


def run_campaign(spec: CampaignSpec, ctx, version: str):
    """Execute a campaign; the ``"campaign"`` spec-runner entry point.

    Returns ``(payload, summary, value, extra_artifacts)`` per the
    extension-runner contract.  The payload (= report core, =
    ``report.json`` minus nothing) deliberately contains no code
    version, timings, worker counts or cache stats, so its digest is
    identical across serial/pooled and cold/warm runs — that digest is
    what the CI smoke job and the golden gate compare.
    """
    from .report import build_report

    tracer = ctx.tracer
    oracle_items = _oracle_items(spec)
    oracles_json = canonical_json(
        [[name, params] for name, params in oracle_items])
    transfer_json = canonical_json(
        spec.transfer.to_dict() if spec.transfer is not None else None)

    schedules = sample_schedules(spec)
    if tracer.enabled:
        tracer.event("chaos", "campaign-start", name=spec.name,
                     schedules=len(schedules),
                     oracles=[name for name, _ in oracle_items])

    runner = ctx.runner(code_version=version)
    points = [{"spec": s.to_json(), "oracles": oracles_json,
               "transfer": transfer_json} for s in schedules]
    outcomes = runner.map(_campaign_point, points)

    records: List[ScheduleRecord] = []
    for i, (schedule, outcome) in enumerate(zip(schedules, outcomes)):
        result = outcome.value
        records.append(ScheduleRecord(
            index=i, spec=schedule,
            summary=dict(result["summary"]),
            violations={k: list(v)
                        for k, v in result["violations"].items()},
            transfer=result.get("transfer"),
            cached=outcome.cached,
        ))
        if tracer.enabled and records[-1].violations:
            tracer.event("chaos", "schedule-failed", schedule=schedule.name,
                         oracles=sorted(records[-1].violations))
    failing = [r for r in records if not r.ok]
    if tracer.enabled:
        tracer.counter("schedules", component="chaos").inc(len(records))
        tracer.counter("violations", component="chaos").inc(
            sum(len(msgs) for r in records
                for msgs in r.violations.values()))

    extra_artifacts: Dict[str, bytes] = {}
    if spec.shrink and failing:
        def evaluate(candidates: Sequence[ScenarioSpec]
                     ) -> List[Dict[str, List[str]]]:
            outs = runner.map(_campaign_point, [
                {"spec": c.to_json(), "oracles": oracles_json,
                 "transfer": transfer_json} for c in candidates])
            return [o.value["violations"] for o in outs]

        for record in failing[:spec.max_shrink]:
            minimal = shrink_schedule(record.spec,
                                      set(record.violations), evaluate)
            minimal = replace(minimal, name=f"{record.spec.name}-min",
                              description=(
                                  f"ddmin of {record.spec.name}: minimal "
                                  f"fault set still violating "
                                  f"{sorted(record.violations)}"))
            records[record.index] = replace(record, minimal=minimal)
            artifact = f"repro-{record.spec.name}.json"
            extra_artifacts[artifact] = (
                json.dumps(minimal.to_dict(), indent=2, sort_keys=True)
                + "\n").encode("utf-8")
            if tracer.enabled:
                tracer.event(
                    "chaos", "shrunk", schedule=record.spec.name,
                    from_faults=len(_schedule_fault_payload(record.spec)),
                    to_faults=len(_schedule_fault_payload(minimal)),
                    artifact=artifact)

    report = build_report(spec, records, oracle_items)
    extra_artifacts["report.json"] = (
        json.dumps(report, indent=2, sort_keys=True) + "\n").encode("utf-8")

    summary = {
        "schedules": len(records),
        "failed": len(failing),
        "violations": sum(len(msgs) for r in records
                          for msgs in r.violations.values()),
        "oracles": len(oracle_items),
        "shrunk": sum(1 for r in records if r.minimal is not None),
    }
    if tracer.enabled:
        tracer.event("chaos", "campaign-end", **summary)
    value = CampaignResult(spec=spec, report=report, records=records)
    return report, summary, value, extra_artifacts


register_spec_runner("campaign", run_campaign)

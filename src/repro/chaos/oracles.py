"""Invariant oracles: what must hold no matter which faults strike.

An oracle is a named predicate over one finished schedule run.  Each
receives a :class:`RunObservation` — the scenario spec and outcome plus
ground truth the ordinary outcome does not carry (the mesh's raw OWAMP
packet ledger, a timeline of true path profiles snapshotted around
every fault/repair/cut, the optional DTN transfer-probe record) — and
returns a list of human-readable violation strings (empty = invariant
held).

The registry ships these default invariants, each tied to a claim the
paper (or the federation's caching follow-on) makes:

* ``packets-conserved`` — archived loss *rates* must be exactly the
  ledger's ``lost/sent`` recomputation, with ``0 <= lost <= sent``
  (bytes/packets are conserved between the probe and the archive);
* ``event-time-monotonic`` — no measurement series, and no ledger, may
  ever step backwards in time or escape the run horizon;
* ``throughput-capacity`` — a BWCTL sample can never exceed the true
  path capacity at measurement time (conservation of bytes across
  links: you cannot measure more than the bottleneck forwards);
* ``mathis-ceiling`` — under heavy per-packet loss the measured rate
  must stay within ``slack`` of the Eq 1 Mathis bound.  The fluid model
  draws at most one loss event per RTT round, so at light loss its
  legitimate throughput sits far *above* the naive per-packet formula;
  the oracle therefore only binds where the bound is meaningful
  (``min_loss``, default 1e-3) with a generous default slack — wide
  enough never to false-positive on the model, tight enough to catch a
  loss process that silently stops suppressing throughput (which sits
  orders of magnitude higher);
* ``detection-within-bound`` — when a lossy fault sits on a measured
  path long enough that missing it is statistically implausible, a
  perfSONAR alert must fire within ``bound_s`` of onset (§3.3's
  "alert network administrators" promise, checked mechanically);
* ``mesh-cadence`` — every pair records the expected number of OWAMP
  sessions: the mesh must keep measuring *through* the degradation,
  outage included (an unreachable path records 100% loss, it does not
  go silent);
* ``transfer-terminates`` — the DTN transfer probe either completes in
  bounded time or fails with a *taxonomized* :class:`~repro.errors.ReproError`;
  silent hangs and untyped crashes are violations;
* ``cache-bytes-conserved`` — across a federation's cache tiers, origin
  bytes plus cache-served bytes must equal delivered bytes, and every
  cache's own ledger must balance (designs without caches pass
  vacuously).

Oracle helpers (:func:`check_monotonic`, :func:`check_bounded`) are
deliberately tiny pure functions so the hypothesis state machine in
``tests/test_chaos_stateful.py`` can reuse them as machine invariants.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from ..errors import ConfigurationError, RoutingError
from ..perfsonar.archive import Metric
from ..tcp.mathis import MATHIS_CONSTANT_PAPER

__all__ = [
    "ORACLES",
    "Oracle",
    "PathState",
    "ProfileTimeline",
    "RunObservation",
    "check_bounded",
    "check_monotonic",
    "default_oracles",
    "evaluate_oracles",
    "get_oracle",
    "register_oracle",
]

#: Ground-truth snapshots are taken this far *after* each timeline
#: event, so the profile reflects the event's effect.
SNAPSHOT_EPSILON = 1e-6

#: Window for matching a measurement to its surrounding snapshots; a
#: probe firing at exactly an event instant may legitimately see either
#: the before- or after-state, so bounds take the looser of the two.
STATE_EPSILON = 1e-5


# -- ground truth -------------------------------------------------------------

@dataclass(frozen=True)
class PathState:
    """True profile of one directed pair at one instant."""

    t: float
    reachable: bool
    capacity_bps: float = 0.0
    rtt_s: float = 0.0
    mss_bits: float = 0.0
    loss: float = 1.0
    path_nodes: Tuple[str, ...] = ()


class ProfileTimeline:
    """Per-pair ground-truth path profiles around every timeline event.

    Installed on a scenario *before* it runs: schedules a snapshot
    event at t=0 and just after every fault onset, repair, and link
    cut, capturing ``topology.profile_between`` for every mesh pair.
    Snapshots draw no randomness and touch no shared state, so they
    never perturb the run they observe.
    """

    def __init__(self, scenario, pairs: Sequence[Tuple[str, str]],
                 event_times_s: Sequence[float]) -> None:
        self._sim = scenario.sim
        self._topology = scenario.bundle.topology
        self._policy = dict(scenario.bundle.science_policy)
        self._pairs = list(pairs)
        self.states: Dict[Tuple[str, str], List[PathState]] = {
            pair: [] for pair in self._pairs}
        times = sorted({0.0} | {t + SNAPSHOT_EPSILON
                               for t in event_times_s if t >= 0})
        for when in times:
            scenario.sim.schedule_at(when, self._snapshot)

    @classmethod
    def install(cls, scenario, spec) -> "ProfileTimeline":
        """Wire a timeline to ``scenario`` built from ScenarioSpec ``spec``."""
        mesh = scenario.mesh
        if mesh is None:
            raise ConfigurationError(
                "ProfileTimeline.install needs a scenario with a mesh")
        pairs = [(a, b) for a in mesh.hosts for b in mesh.hosts if a != b]
        events = ([f.at_s for f in spec.faults]
                  + list(spec.repairs_s)
                  + [c.at_s for c in spec.link_cuts])
        return cls(scenario, pairs, events)

    def _snapshot(self) -> None:
        now = float(self._sim.now)
        for pair in self._pairs:
            try:
                profile = self._topology.profile_between(
                    pair[0], pair[1], **self._policy)
            except RoutingError:
                state = PathState(t=now, reachable=False)
            else:
                state = PathState(
                    t=now,
                    reachable=True,
                    capacity_bps=float(profile.capacity.bps),
                    rtt_s=float(profile.base_rtt.s),
                    mss_bits=float(profile.flow.mss.bits),
                    loss=float(profile.random_loss),
                    path_nodes=tuple(profile.element_names),
                )
            self.states[pair].append(state)

    # -- queries ---------------------------------------------------------------
    def states_around(self, pair: Tuple[str, str],
                      t: float) -> List[PathState]:
        """Candidate true states for a measurement at time ``t``.

        The last snapshot at or before ``t`` plus any snapshot within
        ``STATE_EPSILON`` after it — a probe firing at the exact instant
        of a fault/repair may see either side of the transition, so
        bound checks take the looser candidate.
        """
        series = self.states.get(pair, [])
        candidates: List[PathState] = []
        last_before: Optional[PathState] = None
        for state in series:
            if state.t <= t:
                last_before = state
            elif state.t <= t + STATE_EPSILON:
                candidates.append(state)
            else:
                break
        if last_before is not None:
            candidates.insert(0, last_before)
        return candidates


@dataclass
class RunObservation:
    """Everything one schedule run exposes to the oracles."""

    spec: object                    # the ScenarioSpec that ran
    outcome: object                 # the ScenarioOutcome it produced
    timeline: ProfileTimeline
    #: (time, src, dst, packets_sent, packets_lost) per OWAMP session.
    packet_ledger: List[Tuple[float, str, str, int, int]] = \
        field(default_factory=list)
    #: Mesh (time, pair) hard-failure records.
    unreachable: List[Tuple[float, Tuple[str, str]]] = \
        field(default_factory=list)
    #: DTN transfer-probe record (None when the campaign has no probe):
    #: ``{"status": "completed"|"failed"|"crashed", ...}``.
    transfer: Optional[Dict[str, object]] = None
    #: Cache-workload byte ledger (None when the design has no caches):
    #: the :func:`repro.federation.sim.simulate_requests` record.
    caches: Optional[Dict[str, object]] = None


# -- reusable assertion helpers ----------------------------------------------

def check_monotonic(values: Sequence[float], *,
                    label: str = "series",
                    strict: bool = False) -> List[str]:
    """Violations if ``values`` ever decrease (or repeat, if strict)."""
    out = []
    for i in range(1, len(values)):
        bad = (values[i] <= values[i - 1] if strict
               else values[i] < values[i - 1])
        if bad:
            op = "<=" if strict else "<"
            out.append(f"{label}[{i}]={values[i]!r} {op} "
                       f"{label}[{i - 1}]={values[i - 1]!r}")
    return out


def check_bounded(value: float, lo: float, hi: float, *,
                  label: str = "value") -> List[str]:
    """Violations if ``value`` escapes ``[lo, hi]`` (NaN always fails)."""
    if math.isnan(value) or not (lo <= value <= hi):
        return [f"{label}={value!r} outside [{lo!r}, {hi!r}]"]
    return []


# -- the registry -------------------------------------------------------------

@dataclass(frozen=True)
class Oracle:
    """One registered invariant."""

    name: str
    fn: Callable[..., List[str]]
    description: str = ""


ORACLES: Dict[str, Oracle] = {}


def register_oracle(name: str, fn: Callable[..., List[str]], *,
                    description: str = "") -> Oracle:
    """Register an invariant; ``fn(obs, **params) -> [violation, ...]``."""
    oracle = Oracle(name=name, fn=fn, description=description)
    ORACLES[name] = oracle
    return oracle


def get_oracle(name: str) -> Oracle:
    try:
        return ORACLES[name]
    except KeyError:
        known = ", ".join(sorted(ORACLES))
        raise ConfigurationError(
            f"unknown oracle {name!r}; known oracles: {known}")


def default_oracles() -> Tuple[str, ...]:
    """Every registered oracle name, sorted (the ``oracles: []`` set)."""
    return tuple(sorted(ORACLES))


def evaluate_oracles(
    obs: RunObservation,
    oracle_items: Sequence[Tuple[str, Mapping[str, object]]],
) -> Dict[str, List[str]]:
    """Run the named oracles over one observation.

    Returns ``{oracle_name: [violations...]}`` containing only oracles
    that found something, with names in sorted order (deterministic
    payload bytes).
    """
    out: Dict[str, List[str]] = {}
    for name, params in sorted(oracle_items, key=lambda item: item[0]):
        oracle = get_oracle(name)
        try:
            violations = oracle.fn(obs, **dict(params))
        except TypeError as exc:
            raise ConfigurationError(
                f"bad parameters for oracle {name!r}: {exc}")
        if violations:
            out[name] = list(violations)
    return out


# -- the default invariants ---------------------------------------------------

def oracle_packets_conserved(obs: RunObservation) -> List[str]:
    """Archived loss rates == exact ledger recomputation; counts sane."""
    out: List[str] = []
    expected_sent = obs.spec.mesh.owamp_packets
    per_pair: Dict[Tuple[str, str], List[Tuple[float, int, int]]] = {}
    for t, src, dst, sent, lost in obs.packet_ledger:
        if not 0 <= lost <= sent:
            out.append(f"ledger t={t}: {src}->{dst} lost {lost} of "
                       f"{sent} sent — impossible count")
        if sent != expected_sent:
            out.append(f"ledger t={t}: {src}->{dst} sent {sent} != "
                       f"configured {expected_sent}")
        per_pair.setdefault((src, dst), []).append((t, sent, lost))
    for pair in sorted(per_pair):
        entries = per_pair[pair]
        times, values = obs.outcome.archive.series(
            pair[0], pair[1], Metric.LOSS_RATE)
        cursor = 0
        for t, value in zip(times, values):
            if cursor < len(entries) and entries[cursor][0] == t:
                _, sent, lost = entries[cursor]
                cursor += 1
                want = lost / sent if sent else 0.0
                if float(value) != want:
                    out.append(
                        f"{pair[0]}->{pair[1]} t={t}: archived loss rate "
                        f"{float(value)!r} != ledger {lost}/{sent}")
            elif float(value) != 1.0:
                # No ledger entry: only an unreachable-path record
                # (exact 100% loss) may appear in the archive.
                out.append(
                    f"{pair[0]}->{pair[1]} t={t}: loss sample "
                    f"{float(value)!r} has no ledger entry and is not an "
                    "outage record")
        if cursor != len(entries):
            out.append(f"{pair[0]}->{pair[1]}: {len(entries) - cursor} "
                       "ledger entries missing from the archive")
    return out


def oracle_event_time_monotonic(obs: RunObservation) -> List[str]:
    """No series may step backwards in time or escape [0, horizon]."""
    out: List[str] = []
    horizon = float(obs.outcome.duration.s)
    archive = obs.outcome.archive
    for src, dst, metric in sorted(archive.keys(),
                                   key=lambda k: (k[0], k[1], k[2].value)):
        times, _ = archive.series(src, dst, metric)
        label = f"{src}->{dst}/{metric.value}"
        out.extend(check_monotonic(list(times), label=f"time({label})"))
        for t in (float(times[0]), float(times[-1])) if len(times) else ():
            out.extend(check_bounded(t, 0.0, horizon,
                                     label=f"time({label})"))
    out.extend(check_monotonic([t for t, *_ in obs.packet_ledger],
                               label="time(ledger)"))
    for alert in obs.outcome.alerts:
        out.extend(check_bounded(alert.time, 0.0, horizon,
                                 label="alert.time"))
    return out


def oracle_throughput_capacity(obs: RunObservation, *,
                               tolerance: float = 1e-9) -> List[str]:
    """No BWCTL sample may exceed the true path capacity at its time."""
    out: List[str] = []
    archive = obs.outcome.archive
    for pair in archive.pairs(Metric.THROUGHPUT_BPS):
        times, values = archive.series(pair[0], pair[1],
                                       Metric.THROUGHPUT_BPS)
        for t, v in zip(times, values):
            states = obs.timeline.states_around(pair, float(t))
            if not states:
                continue
            cap = max((s.capacity_bps for s in states if s.reachable),
                      default=0.0)
            if float(v) > cap * (1.0 + tolerance):
                out.append(
                    f"{pair[0]}->{pair[1]} t={float(t)}: measured "
                    f"{float(v):.3e} bps exceeds true path capacity "
                    f"{cap:.3e} bps")
    return out


def oracle_mathis_ceiling(obs: RunObservation, *,
                          min_loss: float = 1e-3,
                          slack: float = 4.0) -> List[str]:
    """Under heavy loss, throughput stays within ``slack`` of Eq 1.

    Only binds when every plausible true state shows per-packet loss
    >= ``min_loss``; below that the fluid model's per-round loss
    process legitimately beats the naive per-packet Mathis formula by
    large factors (see module docs), so the bound would be noise.
    """
    out: List[str] = []
    archive = obs.outcome.archive
    for pair in archive.pairs(Metric.THROUGHPUT_BPS):
        times, values = archive.series(pair[0], pair[1],
                                       Metric.THROUGHPUT_BPS)
        for t, v in zip(times, values):
            states = [s for s in obs.timeline.states_around(pair, float(t))
                      if s.reachable]
            if not states or any(s.loss < min_loss for s in states):
                continue
            # The loosest candidate bound (lowest loss, fastest RTT).
            bound = max(
                s.mss_bits / s.rtt_s * MATHIS_CONSTANT_PAPER
                / math.sqrt(s.loss)
                for s in states if s.rtt_s > 0 and s.loss > 0)
            if float(v) > bound * slack:
                out.append(
                    f"{pair[0]}->{pair[1]} t={float(t)}: measured "
                    f"{float(v):.3e} bps exceeds {slack:g}x Mathis bound "
                    f"{bound:.3e} bps at loss {min(s.loss for s in states):g}")
    return out


def _miss_probability(loss: float, packets: int, sessions: int,
                      threshold: float) -> float:
    """P(no session in the window shows loss above ``threshold``).

    A session alerts when ``lost/packets > threshold``, so the
    per-session miss chance is ``P(Binomial(packets, loss) <= k)`` with
    ``k = floor(threshold * packets)`` — computed exactly in log space
    (k is tiny for realistic thresholds: 1e-4 * 20000 = 2 terms).
    """
    if loss <= 0.0:
        return 1.0  # a lossless fault can never trip a loss alert
    if loss >= 1.0:
        return 0.0 if sessions > 0 else 1.0
    k = int(threshold * packets)
    log_terms = [
        (math.lgamma(packets + 1) - math.lgamma(j + 1)
         - math.lgamma(packets - j + 1)
         + j * math.log(loss) + (packets - j) * math.log1p(-loss))
        for j in range(k + 1)
    ]
    peak = max(log_terms)
    per_session = min(1.0, math.exp(peak) * sum(
        math.exp(t - peak) for t in log_terms))
    return per_session ** max(sessions, 0)


def oracle_detection_within_bound(obs: RunObservation, *,
                                  bound_s: float = 1800.0,
                                  max_miss_probability: float = 1e-9
                                  ) -> List[str]:
    """Lossy on-path faults must raise an alert within ``bound_s``.

    Enforced only when the fault is statistically impossible to miss:
    it injects per-packet loss, sits on a measured mesh path, stays
    active for the whole bound, and the chance that *every* OWAMP
    session in the window stays under the alert threshold is below
    ``max_miss_probability``.  Everything else is skipped, not passed —
    an oracle that guesses is worse than none.
    """
    out: List[str] = []
    spec = obs.spec
    horizon = float(obs.outcome.duration.s)
    interval = float(spec.mesh.owamp_interval_s)
    packets = int(spec.mesh.owamp_packets)
    threshold = float(spec.alert_rule.loss_rate_threshold)
    baseline = {pair: states[0] for pair, states
                in obs.timeline.states.items() if states}
    for idx, record in enumerate(obs.outcome.faults):
        loss = float(record.fault.element_loss_probability())
        if loss <= threshold:
            continue
        onset = float(record.injected_at)
        cleared = (float(record.cleared_at)
                   if record.cleared_at is not None else horizon)
        if min(cleared, horizon) - onset < bound_s:
            continue  # not active long enough to owe a detection
        on_paths = sum(
            1 for pair, state in sorted(baseline.items())
            if record.node_name in state.path_nodes)
        if not on_paths:
            continue  # probes never cross the faulted node
        sessions = int(bound_s // interval) * on_paths
        if _miss_probability(loss, packets, sessions,
                             threshold) > max_miss_probability:
            continue  # missing it is statistically plausible; skip
        delay = obs.outcome.detection_delays.get(idx)
        if delay is None:
            out.append(
                f"fault #{idx} ({record.fault.description} on "
                f"{record.node_name}, loss {loss:g}) was never detected "
                f"despite {sessions} sessions in the {bound_s:g}s bound")
        elif delay > bound_s:
            out.append(
                f"fault #{idx} ({record.fault.description} on "
                f"{record.node_name}) detected after {delay:.1f}s "
                f"> bound {bound_s:g}s")
    return out


def oracle_mesh_cadence(obs: RunObservation, *,
                        slack_sessions: int = 1) -> List[str]:
    """Every pair keeps measuring: expected OWAMP session count, +-slack.

    Outages must surface as 100%-loss records, never as silence; a
    short series means the mesh scheduler itself died mid-run.
    """
    out: List[str] = []
    spec = obs.spec
    horizon = float(obs.outcome.duration.s)
    interval = float(spec.mesh.owamp_interval_s)
    archive = obs.outcome.archive
    pairs = sorted(obs.timeline.states)
    for i, pair in enumerate(pairs):
        offset = (i / max(len(pairs), 1)) * interval
        expected = int((horizon - offset) // interval) + 1
        times, _ = archive.series(pair[0], pair[1], Metric.LOSS_RATE)
        if abs(len(times) - expected) > slack_sessions:
            out.append(
                f"{pair[0]}->{pair[1]}: {len(times)} loss samples over "
                f"{horizon:g}s, expected ~{expected} at {interval:g}s "
                "cadence — the mesh went silent")
    return out


def oracle_transfer_terminates(obs: RunObservation) -> List[str]:
    """The DTN probe completes in bounded time or fails taxonomized."""
    record = obs.transfer
    if record is None:
        return []
    out: List[str] = []
    status = record.get("status")
    if status == "completed":
        duration = record.get("duration_s")
        limit = record.get("max_duration_s")
        if not isinstance(duration, (int, float)) or \
                not math.isfinite(float(duration)) or float(duration) <= 0:
            out.append(f"transfer completed with bogus duration "
                       f"{duration!r}")
        elif limit is not None and float(duration) > float(limit):
            out.append(f"transfer took {float(duration):.0f}s, over the "
                       f"{float(limit):.0f}s bound — an effective hang")
    elif status == "failed":
        if not record.get("is_repro_error"):
            out.append(
                f"transfer failed with untyped {record.get('error_type')!r}"
                f": {record.get('error')!r} — errors must be taxonomized "
                "ReproError subclasses")
    else:
        out.append(f"transfer ended in unexpected status {status!r}: "
                   f"{record.get('error')!r}")
    return out


def oracle_cache_bytes_conserved(obs: RunObservation) -> List[str]:
    """Byte conservation across cache tiers (the federation invariant).

    Every delivered byte is served by exactly one tier — a cache or the
    origin — so ``origin_bytes + sum(bytes_served) == delivered_bytes``
    must hold over the exported ledgers, and each cache's own books
    must balance (``hits + misses == requests``, occupancy within
    capacity, ``occupancy == filled - evicted``).  A
    :class:`~repro.devices.faults.CacheAccountingBug` breaks the first
    identity without touching the data path, which is exactly what this
    oracle exists to catch.  Designs without a cache workload vacuously
    pass.
    """
    ledger = obs.caches
    if ledger is None:
        return []
    out: List[str] = []
    delivered = int(ledger["delivered_bytes"])
    origin = int(ledger["origin_bytes"])
    served = sum(int(c["bytes_served"]) for c in ledger["caches"])
    if origin + served != delivered:
        out.append(
            f"bytes not conserved across tiers: origin={origin} + "
            f"cache_served={served} != delivered={delivered} "
            f"(leak of {delivered - origin - served} bytes)")
    for cache in ledger["caches"]:
        name = cache["name"]
        if int(cache["hits"]) + int(cache["misses"]) != \
                int(cache["requests"]):
            out.append(
                f"{name}: hits={cache['hits']} + misses={cache['misses']}"
                f" != requests={cache['requests']}")
        capacity = int(cache["capacity_bytes"])
        for key in ("occupancy_bytes", "peak_occupancy_bytes"):
            if int(cache[key]) > capacity:
                out.append(f"{name}: {key}={cache[key]} exceeds "
                           f"capacity={capacity}")
        filled = int(cache["bytes_filled"])
        evicted = int(cache["bytes_evicted"])
        if evicted > filled:
            out.append(f"{name}: evicted {evicted} bytes but only "
                       f"filled {filled}")
        if int(cache["occupancy_bytes"]) != filled - evicted:
            out.append(
                f"{name}: occupancy={cache['occupancy_bytes']} != "
                f"filled-evicted={filled - evicted}")
    return out


register_oracle(
    "packets-conserved", oracle_packets_conserved,
    description="archived loss rates equal the OWAMP ledger exactly")
register_oracle(
    "event-time-monotonic", oracle_event_time_monotonic,
    description="no series steps backwards in time or escapes the horizon")
register_oracle(
    "throughput-capacity", oracle_throughput_capacity,
    description="no throughput sample exceeds true path capacity")
register_oracle(
    "mathis-ceiling", oracle_mathis_ceiling,
    description="heavy-loss throughput stays within slack of Eq 1")
register_oracle(
    "detection-within-bound", oracle_detection_within_bound,
    description="undeniable lossy faults alert within the bound")
register_oracle(
    "mesh-cadence", oracle_mesh_cadence,
    description="the mesh never goes silent, outages included")
register_oracle(
    "transfer-terminates", oracle_transfer_terminates,
    description="transfers complete or raise taxonomized errors")
register_oracle(
    "cache-bytes-conserved", oracle_cache_bytes_conserved,
    description="origin bytes + cache-served bytes equal delivered bytes")

"""repro — a reproduction of "The Science DMZ: A Network Design Pattern
for Data-Intensive Science" (Dart, Rotman, Tierney, Hester, Zurawski;
SC '13) as a simulatable network-design library.

The paper's contribution is an architecture: four composable design
patterns (proper location, dedicated data transfer nodes, performance
monitoring, appropriate security) that together give science traffic a
loss-free, measurable, secure path to the wide area.  Since the original
evidence lives on production WANs and campuses, this library rebuilds the
whole stack as a deterministic simulation substrate:

- :mod:`repro.netsim` — topologies, links, policy routing, packet/fluid
  simulation machinery;
- :mod:`repro.tcp` — Mathis-model analytics and fluid TCP dynamics
  (Reno, H-TCP, CUBIC);
- :mod:`repro.devices` — firewalls, ACLs, IDS, switch fabrics, and the
  soft-failure library;
- :mod:`repro.perfsonar` — OWAMP/BWCTL active measurement, archives,
  dashboards, alerting;
- :mod:`repro.dtn` — host tuning, storage systems, transfer tools, and
  the end-to-end transfer planner;
- :mod:`repro.circuits` — OSCARS virtual circuits, OpenFlow bypass, RoCE;
- :mod:`repro.workloads` — science and enterprise traffic generators;
- :mod:`repro.analysis` — result tables, ASCII figures, paper-vs-measured
  experiment records;
- :mod:`repro.exec` — parallel sweep execution with deterministic
  seeding and a content-addressed result cache;
- :mod:`repro.core` — the Science DMZ patterns, builder, notional designs
  (paper Figures 3-7) and the compliance audit.

Quick start::

    from repro.core import simple_science_dmz
    from repro.dtn import TransferPlan, Dataset
    from repro.units import GB

    bundle = simple_science_dmz()
    plan = TransferPlan(bundle.topology, "remote-dtn", "dtn1",
                        Dataset("sample", GB(100), 50), "globus",
                        policy=bundle.science_policy)
    print(plan.execute().summary())
"""

from . import units
from .errors import ReproError

__version__ = "1.0.0"

__all__ = ["units", "ReproError", "__version__"]

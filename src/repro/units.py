"""Unit-safe quantities for network simulation.

Networking literature mixes bits and bytes, SI and binary prefixes, and
per-second rates freely — the Science DMZ paper itself quotes ``Gbps``,
``MB/s``, ``KByte`` windows and ``ms`` latencies within single paragraphs.
Getting a factor of 8 (or 1024/1000) wrong silently corrupts every experiment
downstream, so this module provides three small frozen value types:

* :class:`DataSize` — an amount of data, stored in bits.
* :class:`DataRate` — data per unit time, stored in bits per second.
* :class:`TimeDelta` — a duration, stored in seconds.

The types support the arithmetic that is physically meaningful
(``size / rate -> time``, ``rate * time -> size``, scaling by plain numbers)
and raise :class:`~repro.errors.UnitError` for the rest.  Constructors exist
for every spelling used in the paper (``KB`` is binary 1024 to match TCP
window conventions; ``kb``/``Mb``/``Gb`` rates are SI decimal to match link
speeds, as is universal in networking).

Examples
--------
>>> from repro.units import Gbps, MB, ms
>>> window = MB(1.25)
>>> (window / ms(10)).gbps
1.048576
>>> Gbps(1).bdp(ms(10)).megabytes
1.25
"""

from __future__ import annotations

import math
import re
from dataclasses import dataclass
from typing import Union

from .errors import UnitError

__all__ = [
    "DataSize",
    "DataRate",
    "TimeDelta",
    "bits",
    "bytes_",
    "KB",
    "MB",
    "GB",
    "TB",
    "PB",
    "kB_dec",
    "MB_dec",
    "GB_dec",
    "TB_dec",
    "bps",
    "Kbps",
    "Mbps",
    "Gbps",
    "Tbps",
    "MBps",
    "GBps",
    "seconds",
    "ms",
    "us",
    "minutes",
    "hours",
    "days",
    "parse_size",
    "parse_rate",
    "parse_time",
]

Number = Union[int, float]

_SI = {"k": 1e3, "m": 1e6, "g": 1e9, "t": 1e12, "p": 1e15}
_BIN = {"k": 2**10, "m": 2**20, "g": 2**30, "t": 2**40, "p": 2**50}


def _check_number(value: object, what: str) -> float:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise UnitError(f"{what} must be a real number, got {type(value).__name__}")
    v = float(value)
    if math.isnan(v):
        raise UnitError(f"{what} must not be NaN")
    return v


@dataclass(frozen=True, slots=True, order=True)
class DataSize:
    """An amount of data, canonically stored in bits.

    ``DataSize`` is ordered and hashable; arithmetic with another
    :class:`DataSize` or a plain scalar behaves as expected, and dividing by a
    :class:`DataRate` or :class:`TimeDelta` produces the physically correct
    type.
    """

    bits: float

    def __post_init__(self) -> None:
        v = _check_number(self.bits, "DataSize.bits")
        if v < 0:
            raise UnitError(f"DataSize must be non-negative, got {v} bits")
        object.__setattr__(self, "bits", v)

    # -- accessors ---------------------------------------------------------
    @property
    def bytes(self) -> float:
        return self.bits / 8.0

    @property
    def kilobytes(self) -> float:
        """Binary kilobytes (KiB) — TCP window convention."""
        return self.bytes / _BIN["k"]

    @property
    def megabytes(self) -> float:
        """Decimal megabytes (MB) — transfer-size convention."""
        return self.bytes / _SI["m"]

    @property
    def gigabytes(self) -> float:
        return self.bytes / _SI["g"]

    @property
    def terabytes(self) -> float:
        return self.bytes / _SI["t"]

    @property
    def megabits(self) -> float:
        return self.bits / _SI["m"]

    @property
    def gigabits(self) -> float:
        return self.bits / _SI["g"]

    # -- arithmetic --------------------------------------------------------
    def __add__(self, other: "DataSize") -> "DataSize":
        if not isinstance(other, DataSize):
            return NotImplemented
        return DataSize(self.bits + other.bits)

    def __sub__(self, other: "DataSize") -> "DataSize":
        if not isinstance(other, DataSize):
            return NotImplemented
        if other.bits > self.bits:
            raise UnitError(
                f"DataSize subtraction underflow: {self} - {other} is negative"
            )
        return DataSize(self.bits - other.bits)

    def __mul__(self, factor: Number) -> "DataSize":
        f = _check_number(factor, "DataSize scale factor")
        return DataSize(self.bits * f)

    __rmul__ = __mul__

    def __truediv__(self, other: object):
        if isinstance(other, DataRate):
            if other.bps == 0:
                raise UnitError("cannot divide DataSize by a zero DataRate")
            return TimeDelta(self.bits / other.bps)
        if isinstance(other, TimeDelta):
            if other.s == 0:
                raise UnitError("cannot divide DataSize by a zero TimeDelta")
            return DataRate(self.bits / other.s)
        if isinstance(other, DataSize):
            if other.bits == 0:
                raise UnitError("cannot divide DataSize by a zero DataSize")
            return self.bits / other.bits
        if isinstance(other, (int, float)):
            f = _check_number(other, "DataSize divisor")
            if f == 0:
                raise UnitError("cannot divide DataSize by zero")
            return DataSize(self.bits / f)
        return NotImplemented

    def __bool__(self) -> bool:
        return self.bits > 0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"DataSize({self.human()})"

    def human(self) -> str:
        """Render with an auto-selected decimal byte unit (``'1.25 MB'``)."""
        b = self.bytes
        for unit, factor in (("PB", 1e15), ("TB", 1e12), ("GB", 1e9),
                             ("MB", 1e6), ("kB", 1e3)):
            if b >= factor:
                return f"{b / factor:.4g} {unit}"
        return f"{b:.4g} B"


@dataclass(frozen=True, slots=True, order=True)
class DataRate:
    """Data per unit time, canonically stored in bits per second."""

    bps: float

    def __post_init__(self) -> None:
        v = _check_number(self.bps, "DataRate.bps")
        if v < 0:
            raise UnitError(f"DataRate must be non-negative, got {v} bps")
        object.__setattr__(self, "bps", v)

    @property
    def kbps(self) -> float:
        return self.bps / _SI["k"]

    @property
    def mbps(self) -> float:
        return self.bps / _SI["m"]

    @property
    def gbps(self) -> float:
        return self.bps / _SI["g"]

    @property
    def bytes_per_second(self) -> float:
        return self.bps / 8.0

    @property
    def MBps(self) -> float:
        """Decimal megabytes per second (disk/transfer convention)."""
        return self.bps / 8.0 / _SI["m"]

    def bdp(self, rtt: "TimeDelta") -> DataSize:
        """Bandwidth-delay product: data in flight to fill this pipe at ``rtt``.

        This is the paper's Eq. 2: ``1 Gbps * 10 ms -> 1.25 MB``.
        """
        if not isinstance(rtt, TimeDelta):
            raise UnitError("bdp() requires a TimeDelta round-trip time")
        return DataSize(self.bps * rtt.s)

    def __add__(self, other: "DataRate") -> "DataRate":
        if not isinstance(other, DataRate):
            return NotImplemented
        return DataRate(self.bps + other.bps)

    def __sub__(self, other: "DataRate") -> "DataRate":
        if not isinstance(other, DataRate):
            return NotImplemented
        if other.bps > self.bps:
            raise UnitError(
                f"DataRate subtraction underflow: {self} - {other} is negative"
            )
        return DataRate(self.bps - other.bps)

    def __mul__(self, other: object):
        if isinstance(other, TimeDelta):
            return DataSize(self.bps * other.s)
        if isinstance(other, (int, float)):
            f = _check_number(other, "DataRate scale factor")
            return DataRate(self.bps * f)
        return NotImplemented

    __rmul__ = __mul__

    def __truediv__(self, other: object):
        if isinstance(other, DataRate):
            if other.bps == 0:
                raise UnitError("cannot divide by a zero DataRate")
            return self.bps / other.bps
        if isinstance(other, (int, float)):
            f = _check_number(other, "DataRate divisor")
            if f == 0:
                raise UnitError("cannot divide DataRate by zero")
            return DataRate(self.bps / f)
        return NotImplemented

    def __bool__(self) -> bool:
        return self.bps > 0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"DataRate({self.human()})"

    def human(self) -> str:
        v = self.bps
        for unit, factor in (("Tbps", 1e12), ("Gbps", 1e9), ("Mbps", 1e6),
                             ("Kbps", 1e3)):
            if v >= factor:
                return f"{v / factor:.4g} {unit}"
        return f"{v:.4g} bps"


@dataclass(frozen=True, slots=True, order=True)
class TimeDelta:
    """A duration, canonically stored in seconds."""

    s: float

    def __post_init__(self) -> None:
        v = _check_number(self.s, "TimeDelta.s")
        if v < 0:
            raise UnitError(f"TimeDelta must be non-negative, got {v} s")
        object.__setattr__(self, "s", v)

    @property
    def ms(self) -> float:
        return self.s * 1e3

    @property
    def us(self) -> float:
        return self.s * 1e6

    @property
    def minutes(self) -> float:
        return self.s / 60.0

    @property
    def hours(self) -> float:
        return self.s / 3600.0

    @property
    def days(self) -> float:
        return self.s / 86400.0

    def __add__(self, other: "TimeDelta") -> "TimeDelta":
        if not isinstance(other, TimeDelta):
            return NotImplemented
        return TimeDelta(self.s + other.s)

    def __sub__(self, other: "TimeDelta") -> "TimeDelta":
        if not isinstance(other, TimeDelta):
            return NotImplemented
        if other.s > self.s:
            raise UnitError(
                f"TimeDelta subtraction underflow: {self} - {other} is negative"
            )
        return TimeDelta(self.s - other.s)

    def __mul__(self, other: object):
        if isinstance(other, DataRate):
            return DataSize(other.bps * self.s)
        if isinstance(other, (int, float)):
            f = _check_number(other, "TimeDelta scale factor")
            return TimeDelta(self.s * f)
        return NotImplemented

    __rmul__ = __mul__

    def __truediv__(self, other: object):
        if isinstance(other, TimeDelta):
            if other.s == 0:
                raise UnitError("cannot divide by a zero TimeDelta")
            return self.s / other.s
        if isinstance(other, (int, float)):
            f = _check_number(other, "TimeDelta divisor")
            if f == 0:
                raise UnitError("cannot divide TimeDelta by zero")
            return TimeDelta(self.s / f)
        return NotImplemented

    def __bool__(self) -> bool:
        return self.s > 0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"TimeDelta({self.human()})"

    def human(self) -> str:
        v = self.s
        if v >= 86400:
            return f"{v / 86400:.4g} d"
        if v >= 3600:
            return f"{v / 3600:.4g} h"
        if v >= 60:
            return f"{v / 60:.4g} min"
        if v >= 1:
            return f"{v:.4g} s"
        if v >= 1e-3:
            return f"{v * 1e3:.4g} ms"
        return f"{v * 1e6:.4g} us"


# ---------------------------------------------------------------------------
# Constructors
# ---------------------------------------------------------------------------

def bits(n: Number) -> DataSize:
    return DataSize(float(n))


def bytes_(n: Number) -> DataSize:
    return DataSize(float(n) * 8.0)


def KB(n: Number) -> DataSize:
    """Binary kilobytes (1024 B) — matches TCP window conventions (64 KB)."""
    return DataSize(float(n) * _BIN["k"] * 8.0)


def MB(n: Number) -> DataSize:
    """Decimal megabytes (1e6 B) — matches the paper's transfer sizes."""
    return DataSize(float(n) * _SI["m"] * 8.0)


def GB(n: Number) -> DataSize:
    return DataSize(float(n) * _SI["g"] * 8.0)


def TB(n: Number) -> DataSize:
    return DataSize(float(n) * _SI["t"] * 8.0)


def PB(n: Number) -> DataSize:
    return DataSize(float(n) * _SI["p"] * 8.0)


# Decimal aliases kept explicit for callers who care about the distinction.
kB_dec = lambda n: DataSize(float(n) * _SI["k"] * 8.0)  # noqa: E731
MB_dec = MB
GB_dec = GB
TB_dec = TB


def bps(n: Number) -> DataRate:
    return DataRate(float(n))


def Kbps(n: Number) -> DataRate:
    return DataRate(float(n) * _SI["k"])


def Mbps(n: Number) -> DataRate:
    return DataRate(float(n) * _SI["m"])


def Gbps(n: Number) -> DataRate:
    return DataRate(float(n) * _SI["g"])


def Tbps(n: Number) -> DataRate:
    return DataRate(float(n) * _SI["t"])


def MBps(n: Number) -> DataRate:
    """Decimal megabytes per second (the paper's '395MB/s')."""
    return DataRate(float(n) * _SI["m"] * 8.0)


def GBps(n: Number) -> DataRate:
    return DataRate(float(n) * _SI["g"] * 8.0)


def seconds(n: Number) -> TimeDelta:
    return TimeDelta(float(n))


def ms(n: Number) -> TimeDelta:
    return TimeDelta(float(n) * 1e-3)


def us(n: Number) -> TimeDelta:
    return TimeDelta(float(n) * 1e-6)


def minutes(n: Number) -> TimeDelta:
    return TimeDelta(float(n) * 60.0)


def hours(n: Number) -> TimeDelta:
    return TimeDelta(float(n) * 3600.0)


def days(n: Number) -> TimeDelta:
    return TimeDelta(float(n) * 86400.0)


# ---------------------------------------------------------------------------
# Parsers — accept the spellings that appear in the paper and ops literature.
# ---------------------------------------------------------------------------

_SIZE_RE = re.compile(
    r"^\s*(?P<num>[0-9]*\.?[0-9]+)\s*(?P<unit>[a-zA-Z]+)\s*$"
)

_SIZE_UNITS = {
    "b": 1.0,  # bits
    "bit": 1.0,
    "bits": 1.0,
    "B": 8.0,
    "byte": 8.0,
    "bytes": 8.0,
    "KB": _BIN["k"] * 8.0,
    "KiB": _BIN["k"] * 8.0,
    "kB": _SI["k"] * 8.0,
    "MB": _SI["m"] * 8.0,
    "MiB": _BIN["m"] * 8.0,
    "GB": _SI["g"] * 8.0,
    "GiB": _BIN["g"] * 8.0,
    "TB": _SI["t"] * 8.0,
    "TiB": _BIN["t"] * 8.0,
    "PB": _SI["p"] * 8.0,
    "Kb": _SI["k"],
    "Mb": _SI["m"],
    "Gb": _SI["g"],
    "Tb": _SI["t"],
}

_RATE_UNITS = {
    "bps": 1.0,
    "kbps": _SI["k"],
    "Kbps": _SI["k"],
    "mbps": _SI["m"],
    "Mbps": _SI["m"],
    "gbps": _SI["g"],
    "Gbps": _SI["g"],
    "tbps": _SI["t"],
    "Tbps": _SI["t"],
    "MBps": _SI["m"] * 8.0,
    "GBps": _SI["g"] * 8.0,
    "KBps": _SI["k"] * 8.0,
}

_TIME_UNITS = {
    "s": 1.0,
    "sec": 1.0,
    "secs": 1.0,
    "ms": 1e-3,
    "us": 1e-6,
    "min": 60.0,
    "m": 60.0,
    "h": 3600.0,
    "hr": 3600.0,
    "d": 86400.0,
    "day": 86400.0,
    "days": 86400.0,
}


def _parse(text: str, table: dict, what: str, case_sensitive: bool) -> float:
    if not isinstance(text, str):
        raise UnitError(f"{what} must be parsed from a string, got {type(text)}")
    match = _SIZE_RE.match(text)
    if match is None:
        raise UnitError(f"cannot parse {what} from {text!r}")
    num = float(match.group("num"))
    unit = match.group("unit")
    if unit in table:
        return num * table[unit]
    if not case_sensitive:
        lowered = {k.lower(): v for k, v in table.items()}
        if unit.lower() in lowered:
            return num * lowered[unit.lower()]
    raise UnitError(f"unknown {what} unit {unit!r} in {text!r}")


def parse_size(text: str) -> DataSize:
    """Parse ``'239.5GB'``, ``'64 KB'``, ``'9000B'`` etc. into a DataSize.

    Size units are case-sensitive because ``Mb`` (megabits) and ``MB``
    (megabytes) must not be confused.
    """
    return DataSize(_parse(text, _SIZE_UNITS, "size", case_sensitive=True))


def parse_rate(text: str) -> DataRate:
    """Parse ``'10Gbps'``, ``'395 MBps'`` etc. into a DataRate."""
    return DataRate(_parse(text, _RATE_UNITS, "rate", case_sensitive=False))


def parse_time(text: str) -> TimeDelta:
    """Parse ``'10ms'``, ``'3 days'`` etc. into a TimeDelta."""
    return TimeDelta(_parse(text, _TIME_UNITS, "time", case_sensitive=True))

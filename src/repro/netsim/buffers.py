"""Finite queue models.

The paper's two central device pathologies — firewall input-buffer overflow
(§5) and switch fan-in (§5, §6.1) — are both "burst arrives faster than it
can drain and the buffer is too small" problems.  :class:`DropTailQueue` is
the shared primitive: a byte-counted FIFO with a service rate, supporting
both event-driven use (from :mod:`repro.netsim.packetsim`) and closed-form
burst analysis (:meth:`DropTailQueue.burst_loss_fraction`), which the fluid
TCP model uses to estimate loss without running packet events.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..errors import ConfigurationError
from ..units import DataRate, DataSize, TimeDelta, bits, seconds

__all__ = ["BufferStats", "DropTailQueue"]


@dataclass
class BufferStats:
    """Counters accumulated by a queue over its lifetime."""

    enqueued_packets: int = 0
    enqueued_bits: float = 0.0
    dropped_packets: int = 0
    dropped_bits: float = 0.0
    max_occupancy_bits: float = 0.0

    @property
    def offered_packets(self) -> int:
        return self.enqueued_packets + self.dropped_packets

    @property
    def drop_fraction(self) -> float:
        """Fraction of offered packets dropped (0 if nothing offered)."""
        total = self.offered_packets
        return self.dropped_packets / total if total else 0.0

    def reset(self) -> None:
        self.enqueued_packets = 0
        self.enqueued_bits = 0.0
        self.dropped_packets = 0
        self.dropped_bits = 0.0
        self.max_occupancy_bits = 0.0


@dataclass
class DropTailQueue:
    """A byte-counted drop-tail FIFO drained at a fixed service rate.

    Parameters
    ----------
    capacity:
        Buffer depth.  Inexpensive LAN switches have shallow buffers
        (tens-hundreds of KB per port); Science DMZ-grade routers have
        deep buffers (tens-hundreds of MB).
    service_rate:
        Drain rate — the egress line rate (or the firewall's internal
        processor rate, which may be *slower* than its interfaces).
    """

    capacity: DataSize
    service_rate: DataRate
    occupancy_bits: float = 0.0
    last_drain_time: float = 0.0
    stats: BufferStats = field(default_factory=BufferStats)

    def __post_init__(self) -> None:
        if not isinstance(self.capacity, DataSize):
            raise ConfigurationError("DropTailQueue.capacity must be a DataSize")
        if not isinstance(self.service_rate, DataRate) or self.service_rate.bps <= 0:
            raise ConfigurationError(
                "DropTailQueue.service_rate must be a positive DataRate"
            )

    # -- event-driven interface -------------------------------------------------
    def drain_to(self, now: float) -> None:
        """Advance the drain clock to simulation time ``now``."""
        if now < self.last_drain_time:
            raise ConfigurationError(
                f"queue drain time went backwards ({now} < {self.last_drain_time})"
            )
        elapsed = now - self.last_drain_time
        self.occupancy_bits = max(
            0.0, self.occupancy_bits - elapsed * self.service_rate.bps
        )
        self.last_drain_time = now

    def offer(self, size: DataSize, now: float) -> bool:
        """Offer a packet at time ``now``.  Returns True if enqueued."""
        self.drain_to(now)
        if self.occupancy_bits + size.bits > self.capacity.bits:
            self.stats.dropped_packets += 1
            self.stats.dropped_bits += size.bits
            return False
        self.occupancy_bits += size.bits
        self.stats.enqueued_packets += 1
        self.stats.enqueued_bits += size.bits
        self.stats.max_occupancy_bits = max(
            self.stats.max_occupancy_bits, self.occupancy_bits
        )
        return True

    def queueing_delay(self) -> TimeDelta:
        """Time for the current backlog to drain."""
        return seconds(self.occupancy_bits / self.service_rate.bps)

    @property
    def occupancy(self) -> DataSize:
        return bits(self.occupancy_bits)

    def reset(self) -> None:
        self.occupancy_bits = 0.0
        self.last_drain_time = 0.0
        self.stats.reset()

    # -- closed-form burst analysis ----------------------------------------------
    def burst_loss_fraction(
        self,
        burst_size: DataSize,
        arrival_rate: DataRate,
        *,
        initial_occupancy: Optional[DataSize] = None,
    ) -> float:
        """Fraction of a burst lost when it arrives faster than the drain rate.

        Models the §5 scenario: a TCP sender emits ``burst_size`` at
        ``arrival_rate`` (its NIC line rate) into a queue draining at
        ``service_rate``.  While the burst arrives, the queue grows at
        ``arrival_rate - service_rate``; once it hits capacity every
        excess bit is dropped.

        Returns the lost fraction in [0, 1).  Zero if the burst fits or the
        arrival rate does not exceed the drain rate.
        """
        if arrival_rate.bps <= 0:
            raise ConfigurationError("arrival_rate must be positive")
        start = (initial_occupancy.bits if initial_occupancy is not None else 0.0)
        if start > self.capacity.bits:
            raise ConfigurationError("initial occupancy exceeds queue capacity")
        growth = arrival_rate.bps - self.service_rate.bps
        if growth <= 0:
            return 0.0  # queue drains at least as fast as the burst arrives
        headroom = self.capacity.bits - start
        # Time until the buffer fills, measured in burst-arrival time.
        t_fill = headroom / growth
        t_burst = burst_size.bits / arrival_rate.bps
        if t_fill >= t_burst:
            return 0.0
        # After t_fill, arrivals exceed service and the excess is dropped.
        lost_bits = (t_burst - t_fill) * growth
        return min(1.0, lost_bits / burst_size.bits)

    def sustainable_burst(self, arrival_rate: DataRate) -> DataSize:
        """Largest burst at ``arrival_rate`` absorbed without loss (empty queue)."""
        growth = arrival_rate.bps - self.service_rate.bps
        if growth <= 0:
            return bits(float("inf"))
        t_fill = self.capacity.bits / growth
        return bits(t_fill * arrival_rate.bps)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"DropTailQueue(capacity={self.capacity.human()}, "
                f"service={self.service_rate.human()})")

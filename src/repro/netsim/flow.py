"""Flow descriptors.

A :class:`FlowSpec` names the endpoints, routing policy and transfer size of
one logical traffic demand.  It is the unit the multi-flow TCP simulator
(:mod:`repro.tcp.simulate`), the workload generators and the transfer
planner all exchange.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..errors import ConfigurationError
from ..units import DataRate, DataSize, TimeDelta, seconds

__all__ = ["FlowSpec"]


@dataclass(frozen=True)
class FlowSpec:
    """One logical traffic demand between two hosts.

    Attributes
    ----------
    src, dst:
        Node names in the topology.
    size:
        Total data to move.  ``None`` means an unbounded (rate-measured)
        flow, used by throughput tests and background traffic.
    start:
        Simulation time at which the flow begins.
    policy:
        Routing-policy keyword arguments forwarded to
        :meth:`repro.netsim.topology.Topology.path` (e.g.
        ``{'forbid_node_kinds': ('firewall',)}``).
    parallel_streams:
        Number of TCP connections carrying this flow (GridFTP-style
        parallelism).  Streams split the size evenly.
    rate_limit:
        Application-level pacing cap, if any.
    label:
        Free-form identifier for reporting.
    """

    src: str
    dst: str
    size: Optional[DataSize] = None
    start: TimeDelta = seconds(0)
    policy: dict = field(default_factory=dict)
    parallel_streams: int = 1
    rate_limit: Optional[DataRate] = None
    label: str = ""

    def __post_init__(self) -> None:
        if not self.src or not self.dst:
            raise ConfigurationError("FlowSpec requires src and dst node names")
        if self.src == self.dst:
            raise ConfigurationError("FlowSpec endpoints must differ")
        if self.parallel_streams < 1:
            raise ConfigurationError(
                f"parallel_streams must be >= 1, got {self.parallel_streams}"
            )
        if self.size is not None and self.size.bits <= 0:
            raise ConfigurationError("FlowSpec.size must be positive when given")

    def per_stream_size(self) -> Optional[DataSize]:
        """Size carried by each parallel stream (even split)."""
        if self.size is None:
            return None
        return DataSize(self.size.bits / self.parallel_streams)

    def describe(self) -> str:
        size = self.size.human() if self.size is not None else "unbounded"
        streams = (f" x{self.parallel_streams} streams"
                   if self.parallel_streams > 1 else "")
        name = f"[{self.label}] " if self.label else ""
        return f"{name}{self.src} -> {self.dst}: {size}{streams}"

"""Network simulation substrate.

This package provides the deterministic simulation machinery every other
subsystem builds on:

* :mod:`repro.netsim.engine` — discrete-event loop with named, seedable
  random streams.
* :mod:`repro.netsim.node` / :mod:`repro.netsim.link` — the vertices and
  edges of a topology, plus the :class:`~repro.netsim.node.PathElement`
  protocol that middleboxes (firewalls, faulty line cards, IDS taps)
  implement to affect traffic in transit.
* :mod:`repro.netsim.topology` — the topology graph, tag-based policy
  routing (how the "location" pattern is expressed), and end-to-end
  :class:`~repro.netsim.topology.PathProfile` computation.
* :mod:`repro.netsim.buffers` — finite queue models used by switches,
  routers and firewalls.
* :mod:`repro.netsim.packetsim` — packet-level queueing simulation for the
  device studies where per-packet burst behaviour matters (fan-in, firewall
  input buffers).
* :mod:`repro.netsim.flow` — flow descriptors tying endpoints, paths and
  transport parameters together.
"""

from .engine import Simulator, Event
from .link import Link
from .node import Node, Host, Router, Switch, PathElement, FlowContext
from .topology import Topology, Path, PathProfile
from .buffers import DropTailQueue, BufferStats
from .flow import FlowSpec
from .serialize import topology_to_dict, topology_from_dict

__all__ = [
    "topology_to_dict",
    "topology_from_dict",
    "Simulator",
    "Event",
    "Link",
    "Node",
    "Host",
    "Router",
    "Switch",
    "PathElement",
    "FlowContext",
    "Topology",
    "Path",
    "PathProfile",
    "DropTailQueue",
    "BufferStats",
    "FlowSpec",
]

"""Topology serialization: JSON-compatible round-trip.

Downstream users describe their campus once and version it; the CLI and
tests rebuild it.  The format covers the built-in node kinds (host,
router, switch, firewall), link attributes, host system profiles and
storage — enough to express every design in :mod:`repro.core.designs`.

Attached *stateful* elements (fault injectors, ACL engines with live
rule tables, switch fabrics) are deliberately not serialized: they are
experiment configuration, not topology.  The audit-relevant bits that
ARE topology (firewall settings, host profiles, tags) round-trip
faithfully; ``to_dict -> from_dict`` then ``to_dict`` again is stable.
"""

from __future__ import annotations

from typing import Optional

from ..errors import ConfigurationError, TopologyError
from ..units import DataRate, DataSize, TimeDelta
from .link import Link
from .node import Host, Node, Router, Switch
from .topology import Topology

__all__ = ["topology_to_dict", "topology_from_dict"]

FORMAT_VERSION = 1


def _rate(value: Optional[DataRate]) -> Optional[float]:
    return None if value is None else value.bps


def _node_to_dict(node: Node) -> dict:
    data: dict = {
        "name": node.name,
        "kind": node.kind,
        "tags": sorted(node.tags),
    }
    if isinstance(node, Host):
        data["nic_rate_bps"] = _rate(node.nic_rate)
        profile = node.meta.get("host_profile")
        if profile is not None:
            data["host_profile"] = _profile_to_dict(profile)
    if node.kind == "firewall":
        data["firewall"] = {
            "processors": node.processors,
            "processor_rate_bps": node.processor_rate.bps,
            "input_buffer_bits": node.input_buffer.bits,
            "sequence_checking": node.sequence_checking,
            "inspection_latency_s": node.inspection_latency.s,
        }
    return data


def _profile_to_dict(profile) -> dict:
    from ..dtn.host import HostSystemProfile
    if not isinstance(profile, HostSystemProfile):
        raise ConfigurationError(
            f"cannot serialize host profile of type {type(profile).__name__}"
        )
    data = {
        "name": profile.name,
        "tcp_buffer_max_bits": profile.tcp_buffer_max.bits,
        "mtu_bits": profile.mtu.bits,
        "congestion_algorithm": profile.congestion_algorithm,
        "dedicated": profile.dedicated,
        "installed_apps": list(profile.installed_apps),
    }
    if profile.storage is not None:
        data["storage"] = {
            "type": type(profile.storage).__name__,
            "name": profile.storage.name,
        }
    return data


def _link_to_dict(a: str, b: str, link: Link) -> dict:
    return {
        "a": a,
        "b": b,
        "rate_bps": link.rate.bps,
        "delay_s": link.delay.s,
        "mtu_bits": link.mtu.bits,
        "loss_probability": link.loss_probability,
        "bit_error_rate": link.bit_error_rate,
        "tags": sorted(link.tags),
        "name": link.name,
    }


def topology_to_dict(topology: Topology) -> dict:
    """Serialize a topology to a JSON-compatible dict."""
    nodes = [_node_to_dict(n) for n in
             sorted(topology.nodes(), key=lambda n: n.name)]
    links = []
    seen = set()
    for node in sorted(topology.nodes(), key=lambda n: n.name):
        for other in sorted(topology.nodes(), key=lambda n: n.name):
            key = tuple(sorted((node.name, other.name)))
            if node.name == other.name or key in seen:
                continue
            try:
                link = topology.link_between(node.name, other.name)
            except TopologyError:
                continue
            seen.add(key)
            links.append(_link_to_dict(key[0], key[1], link))
    return {
        "format_version": FORMAT_VERSION,
        "name": topology.name,
        "nodes": nodes,
        "links": links,
    }


_STORAGE_FACTORIES = {
    "SingleDisk": lambda name: _mk_storage("SingleDisk", name),
    "RaidArray": lambda name: _mk_storage("RaidArray", name),
    "StorageAreaNetwork": lambda name: _mk_storage("StorageAreaNetwork", name),
    "ParallelFilesystem": lambda name: _mk_storage("ParallelFilesystem", name),
}


def _mk_storage(kind: str, name: str):
    from ..dtn import storage as storage_mod
    cls = getattr(storage_mod, kind)
    return cls(name=name)


def _profile_from_dict(data: dict):
    from ..dtn.host import HostSystemProfile
    storage = None
    if "storage" in data:
        s = data["storage"]
        factory = _STORAGE_FACTORIES.get(s["type"])
        if factory is None:
            raise ConfigurationError(
                f"unknown storage type {s['type']!r} in serialized profile"
            )
        storage = factory(s["name"])
    return HostSystemProfile(
        name=data["name"],
        tcp_buffer_max=DataSize(data["tcp_buffer_max_bits"]),
        mtu=DataSize(data["mtu_bits"]),
        congestion_algorithm=data["congestion_algorithm"],
        dedicated=data["dedicated"],
        installed_apps=tuple(data["installed_apps"]),
        storage=storage,
    )


def _node_from_dict(data: dict) -> Node:
    kind = data["kind"]
    tags = frozenset(data.get("tags", ()))
    name = data["name"]
    if kind == "host":
        nic = data.get("nic_rate_bps")
        host = Host(name=name, tags=tags,
                    nic_rate=None if nic is None else DataRate(nic))
        if "host_profile" in data:
            from ..dtn.host import attach_profile
            attach_profile(host, _profile_from_dict(data["host_profile"]))
        return host
    if kind == "router":
        return Router(name=name, tags=tags)
    if kind == "switch":
        return Switch(name=name, tags=tags)
    if kind == "firewall":
        from ..devices.firewall import Firewall
        fw_data = data.get("firewall", {})
        fw = Firewall(
            name=name,
            tags=tags,
            processors=fw_data.get("processors", 16),
            processor_rate=DataRate(fw_data.get("processor_rate_bps", 650e6)),
            input_buffer=DataSize(fw_data.get("input_buffer_bits",
                                              512 * 1024 * 8)),
            sequence_checking=fw_data.get("sequence_checking", False),
            inspection_latency=TimeDelta(
                fw_data.get("inspection_latency_s", 300e-6)),
        )
        fw.policy.allow()
        return fw
    raise ConfigurationError(f"cannot deserialize node kind {kind!r}")


def topology_from_dict(data: dict) -> Topology:
    """Rebuild a topology from :func:`topology_to_dict` output."""
    version = data.get("format_version")
    if version != FORMAT_VERSION:
        raise ConfigurationError(
            f"unsupported topology format version {version!r} "
            f"(expected {FORMAT_VERSION})"
        )
    topo = Topology(data["name"])
    for node_data in data["nodes"]:
        topo.add_node(_node_from_dict(node_data))
    for link_data in data["links"]:
        topo.connect(link_data["a"], link_data["b"], Link(
            rate=DataRate(link_data["rate_bps"]),
            delay=TimeDelta(link_data["delay_s"]),
            mtu=DataSize(link_data["mtu_bits"]),
            loss_probability=link_data.get("loss_probability", 0.0),
            bit_error_rate=link_data.get("bit_error_rate", 0.0),
            tags=frozenset(link_data.get("tags", ())),
            name=link_data.get("name"),
        ))
    return topo

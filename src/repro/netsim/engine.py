"""Deterministic discrete-event simulation engine.

The engine is intentionally small: a time-ordered heap of events, a
monotonic clock, and a registry of *named* random streams.  Determinism is a
hard requirement for the reproduction — every benchmark must produce the
same table on every run — so:

* events that fire at the same timestamp are ordered by insertion sequence
  (a strictly increasing tie-breaker), never by callback identity;
* randomness is only available through :meth:`Simulator.rng`, which derives
  a child :class:`numpy.random.Generator` from the root seed and the stream
  name, so adding a new consumer of randomness never perturbs the draws seen
  by existing consumers.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional

import numpy as np

from ..errors import ReproError, SimulationError
from ..telemetry.tracer import NULL_TRACER, Tracer

__all__ = ["Event", "Simulator"]


def _action_label(action: Callable[[], None]) -> str:
    """Deterministic display name for a scheduled callback (no ids/addresses)."""
    name = getattr(action, "__qualname__", None)
    if name:
        # Strip the "<locals>" noise from closure factories.
        return name.replace(".<locals>", "")
    return type(action).__name__


@dataclass(order=True)
class Event:
    """A scheduled callback.  Ordered by ``(time, seq)``."""

    time: float
    seq: int
    action: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)
    # Book-keeping so Simulator.pending stays O(1): the owning simulator
    # decrements its live-event count exactly once per event, either when
    # the event fires or when it is first cancelled.
    _owner: Optional["Simulator"] = field(default=None, compare=False, repr=False)
    _fired: bool = field(default=False, compare=False, repr=False)

    def cancel(self) -> None:
        """Mark the event so the engine skips it when popped."""
        if self.cancelled or self._fired:
            return
        self.cancelled = True
        if self._owner is not None:
            self._owner._live_events -= 1


class Simulator:
    """Discrete-event simulator with named deterministic random streams.

    Parameters
    ----------
    seed:
        Root seed.  Every named stream's generator is derived from this
        seed combined with the stream name, so results are reproducible
        and streams are independent.
    tracer:
        Optional :class:`~repro.telemetry.tracer.Tracer`.  When enabled
        the engine emits a span per dispatched event, counts scheduled/
        cancelled/dispatched events and per-stream RNG acquisitions, and
        attaches the flight-recorder tail to any
        :class:`~repro.errors.ReproError` escaping an event callback.
        Defaults to the zero-overhead null tracer.

    Examples
    --------
    >>> sim = Simulator(seed=1)
    >>> fired = []
    >>> _ = sim.schedule(2.0, lambda: fired.append(sim.now))
    >>> _ = sim.schedule(1.0, lambda: fired.append(sim.now))
    >>> sim.run()
    >>> fired
    [1.0, 2.0]
    """

    def __init__(self, seed: int = 0, *,
                 tracer: Optional[Tracer] = None) -> None:
        self._now: float = 0.0
        self._heap: list[Event] = []
        self._seq = itertools.count()
        self._seed = int(seed)
        self._streams: Dict[str, np.random.Generator] = {}
        self._event_count = 0
        self._live_events = 0
        self._running = False
        self.tracer = NULL_TRACER
        # Hot-path counter objects, cached once in set_tracer() so the
        # per-event/per-draw paths skip the tracer's registry lookup.
        self._ctr_scheduled = None
        self._ctr_cancelled = None
        self._ctr_dispatched = None
        self._ctr_rng: Dict[str, object] = {}
        # Not `tracer or NULL_TRACER`: an empty tracer is falsy (len 0).
        self.set_tracer(tracer if tracer is not None else NULL_TRACER)

    def set_tracer(self, tracer: Tracer) -> None:
        """Attach a tracer (binds its clock to this simulator's)."""
        if not isinstance(tracer, Tracer):
            raise SimulationError("set_tracer() expects a Tracer")
        self.tracer = tracer
        self._ctr_rng = {}
        if tracer.enabled:
            tracer.bind_clock(lambda: self._now)
            tracer.event("engine", "attached", seed=self._seed)
            self._ctr_scheduled = tracer.counter(
                "events.scheduled", component="engine")
            self._ctr_cancelled = tracer.counter(
                "events.cancelled", component="engine")
            self._ctr_dispatched = tracer.counter(
                "events.dispatched", component="engine")
        else:
            self._ctr_scheduled = None
            self._ctr_cancelled = None
            self._ctr_dispatched = None

    # -- clock ---------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    @property
    def seed(self) -> int:
        return self._seed

    @property
    def events_processed(self) -> int:
        return self._event_count

    @property
    def pending(self) -> int:
        """Number of not-yet-fired, not-cancelled events (O(1))."""
        return self._live_events

    # -- randomness ------------------------------------------------------------
    def rng(self, stream: str) -> np.random.Generator:
        """Return the deterministic random generator for ``stream``.

        The same name always returns the same generator object within one
        simulator, and the same draw sequence across simulators built with
        the same seed.
        """
        if stream not in self._streams:
            child = np.random.SeedSequence(
                entropy=self._seed,
                spawn_key=tuple(stream.encode("utf-8")),
            )
            self._streams[stream] = np.random.default_rng(child)
            if self.tracer.enabled:
                self.tracer.event("engine", "rng-stream", stream=stream)
        if self.tracer.enabled:
            ctr = self._ctr_rng.get(stream)
            if ctr is None:
                ctr = self.tracer.counter(f"rng.{stream}.acquisitions",
                                          component="engine")
                self._ctr_rng[stream] = ctr
            ctr.inc()
        return self._streams[stream]

    # -- scheduling ------------------------------------------------------------
    def schedule(self, delay: float, action: Callable[[], None]) -> Event:
        """Schedule ``action`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        return self.schedule_at(self._now + delay, action)

    def schedule_at(self, when: float, action: Callable[[], None]) -> Event:
        """Schedule ``action`` at absolute simulation time ``when``."""
        if when < self._now:
            raise SimulationError(
                f"cannot schedule at t={when} before current time t={self._now}"
            )
        event = Event(time=float(when), seq=next(self._seq), action=action,
                      _owner=self)
        heapq.heappush(self._heap, event)
        self._live_events += 1
        if self._ctr_scheduled is not None:
            self._ctr_scheduled.inc()
        return event

    def schedule_periodic(
        self,
        interval: float,
        action: Callable[[], None],
        *,
        start: Optional[float] = None,
        until: Optional[float] = None,
    ) -> Event:
        """Schedule ``action`` every ``interval`` seconds.

        Returns the first event; cancelling a fired chain requires the
        caller to track subsequent events via closure state, so for
        cancellable periodic work prefer an explicit reschedule loop.
        """
        if interval <= 0:
            raise SimulationError(f"periodic interval must be positive, got {interval}")
        first = self._now + (interval if start is None else start)

        def fire_and_reschedule() -> None:
            action()
            next_time = self._now + interval
            if until is None or next_time <= until:
                self.schedule_at(next_time, fire_and_reschedule)

        return self.schedule_at(first, fire_and_reschedule)

    # -- execution ------------------------------------------------------------
    def step(self) -> bool:
        """Run the single next event.  Returns False if none remain."""
        tracer = self.tracer
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                if self._ctr_cancelled is not None:
                    self._ctr_cancelled.inc()
                continue
            if event.time < self._now:  # pragma: no cover - invariant guard
                raise SimulationError("event heap yielded an event in the past")
            event._fired = True
            self._live_events -= 1
            self._now = event.time
            self._event_count += 1
            if not tracer.enabled:
                event.action()
                return True
            self._ctr_dispatched.inc()
            with tracer.span("engine", "dispatch", seq=event.seq,
                             action=_action_label(event.action)):
                try:
                    event.action()
                except ReproError as exc:
                    # Attach the tail of history so the failure explains
                    # itself; the first raiser wins (innermost context).
                    if not hasattr(exc, "trace_tail"):
                        exc.trace_tail = tracer.recorder.render_tail()
                    raise
            return True
        return False

    def run(self, *, max_events: int = 10_000_000) -> None:
        """Run until the event heap is empty."""
        if self._running:
            raise SimulationError("Simulator.run() is not reentrant")
        self._running = True
        try:
            processed = 0
            while self.step():
                processed += 1
                if processed > max_events:
                    raise SimulationError(
                        f"simulation exceeded {max_events} events; likely a "
                        "runaway periodic schedule"
                    )
        finally:
            self._running = False

    def run_until(self, when: float, *, max_events: int = 10_000_000) -> None:
        """Run all events with time <= ``when`` and advance the clock to it."""
        if when < self._now:
            raise SimulationError(
                f"run_until({when}) is before current time {self._now}"
            )
        if self._running:
            raise SimulationError("Simulator.run_until() is not reentrant")
        self._running = True
        try:
            processed = 0
            while self._heap:
                # Skip over cancelled events at the head without advancing time.
                head = self._heap[0]
                if head.cancelled:
                    heapq.heappop(self._heap)
                    if self._ctr_cancelled is not None:
                        self._ctr_cancelled.inc()
                    continue
                if head.time > when:
                    break
                self.step()
                processed += 1
                if processed > max_events:
                    raise SimulationError(
                        f"simulation exceeded {max_events} events before t={when}"
                    )
            self._now = float(when)
        finally:
            self._running = False

"""Topology graph, policy routing and end-to-end path profiles.

The Science DMZ's *location pattern* is fundamentally a routing statement:
science traffic must reach the WAN through a short, clean path that bypasses
the enterprise firewall, while business traffic keeps its protected path.
We express this with tag-based policy routing — links and nodes carry tags,
and path selection can require or forbid them — so that the same topology
object answers both "what path does science data take?" and "what path does
enterprise data take?".

A :class:`PathProfile` is the folded end-to-end view of one path: bottleneck
capacity, base RTT, combined random per-packet loss, path MTU, and the final
:class:`~repro.netsim.node.FlowContext` after every middlebox transform.
The fluid TCP model consumes profiles; it never looks at the graph.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Tuple

import networkx as nx

from ..errors import RoutingError, TopologyError
from ..units import DataRate, DataSize, TimeDelta
from .link import Link
from .node import FlowContext, Host, Node, PathElement

__all__ = ["Topology", "Path", "PathProfile"]


@dataclass(frozen=True)
class PathProfile:
    """End-to-end characteristics of a concrete path.

    Attributes
    ----------
    capacity:
        Bottleneck rate: the minimum over every element that imposes one.
    one_way_latency:
        Sum of element latencies (propagation + forwarding).
    base_rtt:
        Two-way latency, assuming the reverse path mirrors the forward one.
    random_loss:
        Combined independent per-packet random-loss probability.
    mtu:
        Path MTU — minimum over traversed links.
    flow:
        The transport context after all middlebox transforms.
    bottleneck_index:
        Index into ``element_names`` of the capacity bottleneck.
    segment_loss:
        Per-element random-loss contribution, parallel to ``element_names``
        (used by fault localization).
    """

    capacity: DataRate
    one_way_latency: TimeDelta
    random_loss: float
    mtu: DataSize
    flow: FlowContext
    element_names: Tuple[str, ...]
    segment_loss: Tuple[float, ...]
    bottleneck_index: int
    #: Queue depth at the bottleneck element, when that element advertises
    #: one (shallow-buffered devices); None means "assume well-provisioned".
    bottleneck_buffer: Optional[DataSize] = None

    @property
    def base_rtt(self) -> TimeDelta:
        return TimeDelta(self.one_way_latency.s * 2.0)

    @property
    def bottleneck_name(self) -> str:
        return self.element_names[self.bottleneck_index]

    def bdp(self) -> DataSize:
        """Bandwidth-delay product of this path."""
        return self.capacity.bdp(self.base_rtt)


@dataclass(frozen=True)
class Path:
    """An ordered walk through the topology: nodes and the links between."""

    nodes: Tuple[Node, ...]
    links: Tuple[Link, ...]

    def __post_init__(self) -> None:
        if len(self.nodes) < 1:
            raise TopologyError("a path needs at least one node")
        if len(self.links) != len(self.nodes) - 1:
            raise TopologyError(
                f"path with {len(self.nodes)} nodes must have "
                f"{len(self.nodes) - 1} links, got {len(self.links)}"
            )

    @property
    def src(self) -> Node:
        return self.nodes[0]

    @property
    def dst(self) -> Node:
        return self.nodes[-1]

    @property
    def hop_count(self) -> int:
        return len(self.links)

    def node_names(self) -> List[str]:
        return [n.name for n in self.nodes]

    def elements(self) -> List[Tuple[str, PathElement]]:
        """The interleaved (name, element) sequence the profile folds over."""
        out: List[Tuple[str, PathElement]] = []
        for i, node in enumerate(self.nodes):
            for el in node.transit_elements():
                label = node.name if el is node else f"{node.name}:{type(el).__name__}"
                out.append((label, el))
            if i < len(self.links):
                link = self.links[i]
                label = link.name or f"{node.name}--{self.nodes[i + 1].name}"
                out.append((label, link))
        return out

    def traverses(self, predicate: Callable[[Node], bool]) -> bool:
        """True if any node on the path satisfies ``predicate``."""
        return any(predicate(n) for n in self.nodes)

    def traverses_kind(self, kind: str) -> bool:
        return self.traverses(lambda n: n.kind == kind)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "Path(" + " -> ".join(self.node_names()) + ")"


class Topology:
    """A named collection of nodes and links with policy-routed paths.

    Examples
    --------
    >>> from repro.units import Gbps, ms
    >>> topo = Topology("example")
    >>> a = topo.add_host("a"); b = topo.add_host("b")
    >>> _ = topo.connect(a, b, Link(rate=Gbps(10), delay=ms(5)))
    >>> topo.path("a", "b").hop_count
    1
    """

    def __init__(self, name: str = "topology") -> None:
        if not name:
            raise TopologyError("topology requires a name")
        self.name = name
        self._graph = nx.Graph()
        self._nodes: Dict[str, Node] = {}

    # -- construction -----------------------------------------------------------
    def add_node(self, node: Node) -> Node:
        if node.name in self._nodes:
            raise TopologyError(f"duplicate node name {node.name!r}")
        self._nodes[node.name] = node
        self._graph.add_node(node.name)
        return node

    def add_host(self, name: str, **kwargs) -> Host:
        return self.add_node(Host(name=name, **kwargs))

    def connect(self, a, b, link: Link) -> Link:
        """Attach ``link`` between two nodes (by object or name)."""
        na, nb = self._resolve(a), self._resolve(b)
        if na.name == nb.name:
            raise TopologyError(f"cannot connect node {na.name!r} to itself")
        if self._graph.has_edge(na.name, nb.name):
            raise TopologyError(
                f"nodes {na.name!r} and {nb.name!r} are already connected; "
                "parallel links are modelled as separate intermediate nodes"
            )
        if not isinstance(link, Link):
            raise TopologyError("connect() requires a Link")
        self._graph.add_edge(na.name, nb.name, link=link,
                             weight=link.delay.s + 1e-9)
        return link

    def remove_link(self, a, b) -> None:
        na, nb = self._resolve(a), self._resolve(b)
        if not self._graph.has_edge(na.name, nb.name):
            raise TopologyError(f"no link between {na.name!r} and {nb.name!r}")
        self._graph.remove_edge(na.name, nb.name)

    # -- lookup -------------------------------------------------------------------
    def _resolve(self, ref) -> Node:
        if isinstance(ref, Node):
            if ref.name not in self._nodes:
                raise TopologyError(f"node {ref.name!r} is not in topology {self.name!r}")
            return self._nodes[ref.name]
        if isinstance(ref, str):
            try:
                return self._nodes[ref]
            except KeyError:
                raise TopologyError(
                    f"no node named {ref!r} in topology {self.name!r}"
                ) from None
        raise TopologyError(f"cannot resolve node reference {ref!r}")

    def node(self, name: str) -> Node:
        return self._resolve(name)

    def has_node(self, name: str) -> bool:
        return name in self._nodes

    def nodes(self, *, kind: Optional[str] = None,
              tag: Optional[str] = None) -> List[Node]:
        out = list(self._nodes.values())
        if kind is not None:
            out = [n for n in out if n.kind == kind]
        if tag is not None:
            out = [n for n in out if n.has_tag(tag)]
        return out

    def link_between(self, a, b) -> Link:
        na, nb = self._resolve(a), self._resolve(b)
        data = self._graph.get_edge_data(na.name, nb.name)
        if data is None:
            raise TopologyError(f"no link between {na.name!r} and {nb.name!r}")
        return data["link"]

    def links(self) -> List[Link]:
        return [d["link"] for _, _, d in self._graph.edges(data=True)]

    @property
    def node_count(self) -> int:
        return len(self._nodes)

    @property
    def link_count(self) -> int:
        return self._graph.number_of_edges()

    # -- routing --------------------------------------------------------------------
    def path(
        self,
        src,
        dst,
        *,
        require_link_tags: Iterable[str] = (),
        forbid_link_tags: Iterable[str] = (),
        forbid_node_tags: Iterable[str] = (),
        forbid_node_kinds: Iterable[str] = (),
        via: Iterable = (),
    ) -> Path:
        """Find the minimum-latency path subject to policy constraints.

        ``require_link_tags`` keeps only links carrying *all* the tags
        (e.g. science traffic pinned to the Science DMZ fabric);
        ``forbid_*`` excludes links/nodes (e.g. routing around the
        enterprise firewall).  ``via`` forces the path through waypoints,
        in order.
        """
        nsrc, ndst = self._resolve(src), self._resolve(dst)
        require = frozenset(require_link_tags)
        forbid_l = frozenset(forbid_link_tags)
        forbid_nt = frozenset(forbid_node_tags)
        forbid_nk = frozenset(forbid_node_kinds)

        def link_ok(u: str, v: str, data: dict) -> bool:
            link: Link = data["link"]
            if require and not require <= link.tags:
                return False
            if forbid_l and link.tags & forbid_l:
                return False
            return True

        def node_ok(name: str) -> bool:
            node = self._nodes[name]
            if name in (nsrc.name, ndst.name):
                return True
            if forbid_nt and node.tags & forbid_nt:
                return False
            if forbid_nk and node.kind in forbid_nk:
                return False
            return True

        view = nx.subgraph_view(self._graph, filter_node=node_ok,
                                filter_edge=lambda u, v: link_ok(u, v, self._graph[u][v]))
        waypoints = [nsrc.name] + [self._resolve(w).name for w in via] + [ndst.name]
        names: List[str] = [waypoints[0]]
        for a, b in zip(waypoints, waypoints[1:]):
            try:
                seg = nx.shortest_path(view, a, b, weight="weight")
            except (nx.NetworkXNoPath, nx.NodeNotFound):
                raise RoutingError(
                    f"no route from {a!r} to {b!r} in {self.name!r} under the "
                    f"given policy constraints"
                ) from None
            names.extend(seg[1:])
        nodes = tuple(self._nodes[n] for n in names)
        links = tuple(self._graph[u][v]["link"] for u, v in zip(names, names[1:]))
        return Path(nodes=nodes, links=links)

    # -- profiling -----------------------------------------------------------------
    def profile(self, path: Path, *,
                flow: Optional[FlowContext] = None) -> PathProfile:
        """Fold a path into its end-to-end :class:`PathProfile`."""
        elements = path.elements()
        if flow is None:
            # Start from the smallest link MTU so the MSS is path-valid.
            mtu = min((l.mtu for l in path.links), default=None)
            if mtu is None:
                from .link import ETHERNET_MTU
                mtu = ETHERNET_MTU
            flow = FlowContext(mss=self._mss_for_mtu(mtu))

        capacity_bps = float("inf")
        bottleneck = 0
        bottleneck_buffer: Optional[DataSize] = None
        latency = 0.0
        survive = 1.0
        seg_loss: List[float] = []
        names: List[str] = []
        mtu_bits = float("inf")
        ctx = flow
        for idx, (name, el) in enumerate(elements):
            names.append(name)
            cap = el.element_capacity()
            if cap is not None and cap.bps < capacity_bps:
                capacity_bps = cap.bps
                bottleneck = idx
                buffer_fn = getattr(el, "element_buffer", None)
                bottleneck_buffer = buffer_fn() if callable(buffer_fn) else None
            latency += el.element_latency().s
            p = el.element_loss_probability()
            if not 0.0 <= p <= 1.0:
                raise TopologyError(
                    f"element {name!r} reported loss probability {p} outside [0,1]"
                )
            seg_loss.append(p)
            survive *= (1.0 - p)
            ctx = el.transform_flow(ctx)
            if isinstance(el, Link):
                mtu_bits = min(mtu_bits, el.mtu.bits)

        if capacity_bps == float("inf"):
            raise TopologyError(
                f"path {path!r} has no capacity-constraining element; "
                "every real path must include at least one link or NIC"
            )
        if mtu_bits == float("inf"):
            from .link import ETHERNET_MTU
            mtu_bits = ETHERNET_MTU.bits
        mtu = DataSize(mtu_bits)
        # Clamp the MSS to the path MTU (minus 40 B TCP/IP headers, plus 12 B
        # for timestamps when window scaling survives — simplified to 40 B).
        max_mss = DataSize(mtu.bits - 40 * 8)
        if ctx.mss.bits > max_mss.bits:
            ctx = ctx.with_(mss=max_mss)
        return PathProfile(
            capacity=DataRate(capacity_bps),
            one_way_latency=TimeDelta(latency),
            random_loss=1.0 - survive,
            mtu=mtu,
            flow=ctx,
            element_names=tuple(names),
            segment_loss=tuple(seg_loss),
            bottleneck_index=bottleneck,
            bottleneck_buffer=bottleneck_buffer,
        )

    def profile_between(self, src, dst, **path_kwargs) -> PathProfile:
        """Shorthand: route then profile."""
        flow = path_kwargs.pop("flow", None)
        return self.profile(self.path(src, dst, **path_kwargs), flow=flow)

    @staticmethod
    def _mss_for_mtu(mtu: DataSize) -> DataSize:
        return DataSize(max(mtu.bits - 40 * 8, 64 * 8))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"Topology({self.name!r}, nodes={self.node_count}, "
                f"links={self.link_count})")

"""Nodes of the simulated network and the transit-behaviour protocol.

A :class:`Node` is a named vertex in a :class:`~repro.netsim.topology.Topology`.
What a node *does to traffic passing through it* is expressed by the
:class:`PathElement` protocol.  Links implement the same protocol, so an
end-to-end path profile is computed by folding a uniform sequence of
elements (host NIC, switch, firewall, link, router, ...), each contributing
latency, a capacity constraint, a random per-packet loss probability, and an
optional transformation of the flow's TCP parameters.

The flow-transformation hook is how middlebox pathologies are modelled: the
Penn State firewall (paper §6.2) is a node whose element rewrites the flow
context to disable TCP window scaling, clamping the receive window at 64 KB.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Iterable, List, Optional, Protocol, runtime_checkable

from ..errors import ConfigurationError
from ..units import DataRate, DataSize, KB, TimeDelta, seconds

__all__ = [
    "FlowContext",
    "PathElement",
    "Node",
    "Host",
    "Router",
    "Switch",
]


#: Default (pre-RFC1323) maximum TCP receive window: 64 KB.
DEFAULT_UNSCALED_WINDOW = KB(64)


@dataclass(frozen=True)
class FlowContext:
    """Transport-level parameters of a flow as seen along its path.

    Middleboxes may return a modified copy from
    :meth:`PathElement.transform_flow`; the final context after folding the
    whole path is what the TCP simulation uses.

    Attributes
    ----------
    mss:
        Maximum segment size (payload bytes per packet), bounded by the
        path MTU minus header overhead.
    window_scaling:
        Whether RFC 1323 window scaling survives end-to-end.  If any element
        strips it (e.g. a firewall doing TCP sequence checking), the
        receive window is clamped to 64 KB regardless of socket buffers.
    max_receive_window:
        The advertised receive-window ceiling from the receiving host's
        socket buffer configuration.
    sender_rate_limit:
        Rate cap imposed by the sending application/host (None = NIC rate).
    """

    mss: DataSize
    window_scaling: bool = True
    max_receive_window: DataSize = KB(16 * 1024)  # 16 MB autotuning ceiling
    sender_rate_limit: Optional[DataRate] = None

    def effective_receive_window(self) -> DataSize:
        """Receive window after applying the window-scaling clamp."""
        if self.window_scaling:
            return self.max_receive_window
        return min(self.max_receive_window, DEFAULT_UNSCALED_WINDOW)

    def with_(self, **changes) -> "FlowContext":
        """Return a copy with the given fields replaced."""
        return replace(self, **changes)


@runtime_checkable
class PathElement(Protocol):
    """Anything on a path that affects traffic in transit.

    Implementations must be cheap, side-effect free and deterministic:
    the topology folds them every time a path profile is computed.
    """

    def element_latency(self) -> TimeDelta:
        """One-way delay contributed by this element."""
        ...

    def element_capacity(self) -> Optional[DataRate]:
        """Throughput ceiling imposed by this element (None = unconstrained)."""
        ...

    def element_loss_probability(self) -> float:
        """Independent per-packet random-loss probability in [0, 1]."""
        ...

    def transform_flow(self, ctx: FlowContext) -> FlowContext:
        """Rewrite transport parameters for flows traversing this element."""
        ...

    # Optional extension (looked up with getattr, absent = None):
    #
    # def element_buffer(self) -> Optional[DataSize]:
    #     """Queue depth available where this element constrains capacity.
    #     Shallow-buffered devices (cheap switches, firewall input stages)
    #     advertise it so the TCP model can bound the bottleneck queue."""


class NeutralElement:
    """Mixin providing the do-nothing PathElement behaviour."""

    def element_latency(self) -> TimeDelta:
        return seconds(0)

    def element_capacity(self) -> Optional[DataRate]:
        return None

    def element_loss_probability(self) -> float:
        return 0.0

    def transform_flow(self, ctx: FlowContext) -> FlowContext:
        return ctx


@dataclass
class Node(NeutralElement):
    """A vertex in the topology.

    Parameters
    ----------
    name:
        Unique identifier within a topology.
    kind:
        Free-form role label ('host', 'router', 'switch', 'firewall', ...);
        the audit engine keys off this.
    tags:
        Policy labels (e.g. ``{'science-dmz'}``, ``{'enterprise'}``) used by
        routing constraints and the design audit.
    elements:
        Additional transit behaviours attached to this node (fault
        injectors, ACL engines, inspection taps).  They are folded into the
        path profile after the node's own element behaviour.
    """

    name: str
    kind: str = "node"
    tags: frozenset = frozenset()
    elements: List[PathElement] = field(default_factory=list)
    meta: Dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.name or not isinstance(self.name, str):
            raise ConfigurationError("Node requires a non-empty string name")
        self.tags = frozenset(self.tags)

    def __hash__(self) -> int:
        return hash((self.name, self.kind))

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Node)
            and other.name == self.name
            and other.kind == self.kind
        )

    def attach(self, element: PathElement) -> "Node":
        """Attach a transit behaviour (returns self for chaining)."""
        if not isinstance(element, PathElement):
            raise ConfigurationError(
                f"{element!r} does not implement the PathElement protocol"
            )
        self.elements.append(element)
        return self

    def detach(self, element: PathElement) -> "Node":
        """Remove a previously attached behaviour."""
        try:
            self.elements.remove(element)
        except ValueError:
            raise ConfigurationError(
                f"{element!r} is not attached to node {self.name!r}"
            ) from None
        return self

    def transit_elements(self) -> Iterable[PathElement]:
        """All behaviours applied to traffic transiting this node, in order."""
        yield self
        yield from self.elements

    def has_tag(self, tag: str) -> bool:
        return tag in self.tags

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}({self.name!r}, kind={self.kind!r})"


@dataclass(eq=False)
class Host(Node):
    """An end host (server, workstation, DTN).

    ``nic_rate`` bounds what the host can send/receive; the richer host
    model (kernel tuning, storage) lives in :mod:`repro.dtn.host` and is
    attached via :attr:`Node.meta` under the key ``'host_profile'``.
    """

    kind: str = "host"
    nic_rate: Optional[DataRate] = None

    def element_capacity(self) -> Optional[DataRate]:
        return self.nic_rate


@dataclass(eq=False)
class Router(Node):
    """A router: forwards at line rate, may carry ACLs/fault elements."""

    kind: str = "router"
    forwarding_latency: TimeDelta = seconds(50e-6)

    def element_latency(self) -> TimeDelta:
        return self.forwarding_latency


@dataclass(eq=False)
class Switch(Node):
    """A simple switch vertex.

    The buffer/fabric behaviour that matters for fan-in studies is
    modelled by :class:`repro.devices.switchfab.SwitchFabric`, attached as
    an element; the base vertex only adds forwarding latency.
    """

    kind: str = "switch"
    forwarding_latency: TimeDelta = seconds(10e-6)

    def element_latency(self) -> TimeDelta:
        return self.forwarding_latency

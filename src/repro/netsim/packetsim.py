"""Packet-level queueing simulation for device studies.

The fluid TCP model (:mod:`repro.tcp`) is what most experiments use, but two
of the paper's core arguments are about *sub-RTT* packet behaviour:

* §5: a "200 Mbps" TCP flow is really line-rate bursts with pauses, so a
  firewall whose internal processors are slower than its interfaces drops
  the tails of bursts when its input buffer is shallow;
* §5/§6.1: fan-in — several ingress ports bursting simultaneously toward
  one egress port overruns shallow switch buffers.

This module simulates exactly that: bursty packet arrival processes swept
through :class:`~repro.netsim.buffers.DropTailQueue` instances.  Arrival
times are generated vectorially with numpy and merged with a single sorted
sweep — orders of magnitude faster than per-packet event scheduling, while
preserving per-packet drop decisions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from ..errors import ConfigurationError
from ..units import DataRate, DataSize, TimeDelta, bits, bytes_, seconds

__all__ = [
    "BurstySource",
    "SourceStats",
    "FanInResult",
    "generate_arrivals",
    "simulate_fan_in",
    "burst_trace",
]


@dataclass(frozen=True)
class BurstySource:
    """An on/off packet source modelling TCP burstiness.

    A TCP sender with congestion window W emits W segments back-to-back at
    its NIC line rate once per RTT, then goes quiet until the ACK clock
    releases the next window.  We model this as fixed-size bursts emitted at
    ``line_rate`` separated by pauses sized so the long-run average equals
    ``mean_rate``.

    Parameters
    ----------
    name:
        Identifier for reporting.
    line_rate:
        NIC rate — the instantaneous rate *within* a burst.
    mean_rate:
        Long-run average rate (must not exceed ``line_rate``).
    burst_size:
        Bytes per burst (≈ congestion window).
    packet_size:
        Wire size of each packet.
    jitter:
        Fractional uniform jitter applied to burst start times, so that
        multiple sources do not stay phase-locked (0 = fully periodic).
    """

    name: str
    line_rate: DataRate
    mean_rate: DataRate
    burst_size: DataSize
    packet_size: DataSize = bytes_(1500)
    jitter: float = 0.5

    def __post_init__(self) -> None:
        if self.mean_rate.bps > self.line_rate.bps:
            raise ConfigurationError(
                f"source {self.name!r}: mean_rate {self.mean_rate.human()} "
                f"exceeds line_rate {self.line_rate.human()}"
            )
        if self.mean_rate.bps <= 0:
            raise ConfigurationError(f"source {self.name!r}: mean_rate must be > 0")
        if self.burst_size.bits < self.packet_size.bits:
            raise ConfigurationError(
                f"source {self.name!r}: burst smaller than one packet"
            )
        if not 0.0 <= self.jitter <= 1.0:
            raise ConfigurationError("jitter must be in [0, 1]")

    @property
    def packets_per_burst(self) -> int:
        return max(1, int(round(self.burst_size.bits / self.packet_size.bits)))

    @property
    def burst_interval(self) -> TimeDelta:
        """Time between burst starts for the long-run mean to hold."""
        return seconds(self.burst_size.bits / self.mean_rate.bps)

    @property
    def duty_cycle(self) -> float:
        """Fraction of time the source is actually transmitting."""
        return self.mean_rate.bps / self.line_rate.bps


def generate_arrivals(
    source: BurstySource,
    duration: TimeDelta,
    rng: np.random.Generator,
) -> np.ndarray:
    """Packet arrival times (seconds, sorted) for one source over ``duration``.

    Burst starts are periodic at :attr:`BurstySource.burst_interval` with
    uniform jitter; packets within a burst are spaced at the line rate.
    """
    interval = source.burst_interval.s
    n_bursts = int(np.ceil(duration.s / interval)) + 1
    starts = np.arange(n_bursts, dtype=np.float64) * interval
    if source.jitter > 0:
        starts = starts + rng.uniform(
            0.0, source.jitter * interval, size=n_bursts
        )
    ppb = source.packets_per_burst
    gap = source.packet_size.bits / source.line_rate.bps
    offsets = np.arange(ppb, dtype=np.float64) * gap
    times = (starts[:, None] + offsets[None, :]).ravel()
    times = times[times < duration.s]
    times.sort(kind="stable")
    return times


@dataclass
class SourceStats:
    """Per-source outcome of a fan-in sweep."""

    name: str
    offered_packets: int = 0
    delivered_packets: int = 0
    dropped_packets: int = 0

    @property
    def loss_fraction(self) -> float:
        return (self.dropped_packets / self.offered_packets
                if self.offered_packets else 0.0)


@dataclass
class FanInResult:
    """Outcome of :func:`simulate_fan_in`."""

    per_source: Dict[str, SourceStats]
    total_offered: int
    total_delivered: int
    total_dropped: int
    max_queue_occupancy: DataSize
    duration: TimeDelta
    egress_rate: DataRate
    packet_size: DataSize

    @property
    def loss_fraction(self) -> float:
        return (self.total_dropped / self.total_offered
                if self.total_offered else 0.0)

    @property
    def delivered_rate(self) -> DataRate:
        return DataRate(
            self.total_delivered * self.packet_size.bits / self.duration.s
        )

    @property
    def offered_rate(self) -> DataRate:
        return DataRate(
            self.total_offered * self.packet_size.bits / self.duration.s
        )

    def summary(self) -> str:
        lines = [
            f"fan-in: offered {self.offered_rate.human()}, "
            f"delivered {self.delivered_rate.human()}, "
            f"loss {self.loss_fraction:.4%}, "
            f"peak queue {self.max_queue_occupancy.human()}"
        ]
        for st in self.per_source.values():
            lines.append(
                f"  {st.name}: {st.offered_packets} pkts, "
                f"loss {st.loss_fraction:.4%}"
            )
        return "\n".join(lines)


def simulate_fan_in(
    sources: Sequence[BurstySource],
    *,
    egress_rate: DataRate,
    buffer_size: DataSize,
    duration: TimeDelta,
    rng: np.random.Generator,
) -> FanInResult:
    """Sweep bursty sources through a shared drop-tail egress queue.

    All sources must use the same packet size (the common case for bulk
    data flows; mixed sizes would only blur the effect under study).
    """
    if not sources:
        raise ConfigurationError("simulate_fan_in requires at least one source")
    pkt = sources[0].packet_size
    for s in sources:
        if s.packet_size.bits != pkt.bits:
            raise ConfigurationError(
                "all fan-in sources must share a packet size; "
                f"{s.name!r} differs"
            )
    if duration.s <= 0:
        raise ConfigurationError("duration must be positive")

    # Vector-generate all arrivals, tag with source index, merge-sort once.
    all_times: List[np.ndarray] = []
    all_src: List[np.ndarray] = []
    for idx, src in enumerate(sources):
        t = generate_arrivals(src, duration, rng)
        all_times.append(t)
        all_src.append(np.full(t.shape, idx, dtype=np.int32))
    times = np.concatenate(all_times)
    owners = np.concatenate(all_src)
    order = np.argsort(times, kind="stable")
    times = times[order]
    owners = owners[order]

    # Single-pass queue sweep.  The queue drains continuously at egress_rate;
    # each packet is accepted iff the backlog (after draining to its arrival
    # time) leaves room.
    cap_bits = buffer_size.bits
    pkt_bits = pkt.bits
    drain_bps = egress_rate.bps
    backlog = 0.0
    last_t = 0.0
    max_backlog = 0.0
    delivered = np.zeros(len(sources), dtype=np.int64)
    dropped = np.zeros(len(sources), dtype=np.int64)
    for t, who in zip(times, owners):
        backlog = max(0.0, backlog - (t - last_t) * drain_bps)
        last_t = t
        if backlog + pkt_bits <= cap_bits:
            backlog += pkt_bits
            delivered[who] += 1
            if backlog > max_backlog:
                max_backlog = backlog
        else:
            dropped[who] += 1

    per_source: Dict[str, SourceStats] = {}
    for idx, src in enumerate(sources):
        per_source[src.name] = SourceStats(
            name=src.name,
            offered_packets=int(delivered[idx] + dropped[idx]),
            delivered_packets=int(delivered[idx]),
            dropped_packets=int(dropped[idx]),
        )
    total_offered = int(delivered.sum() + dropped.sum())
    return FanInResult(
        per_source=per_source,
        total_offered=total_offered,
        total_delivered=int(delivered.sum()),
        total_dropped=int(dropped.sum()),
        max_queue_occupancy=bits(max_backlog),
        duration=duration,
        egress_rate=egress_rate,
        packet_size=pkt,
    )


def burst_trace(
    source: BurstySource,
    duration: TimeDelta,
    rng: np.random.Generator,
    *,
    bin_width: TimeDelta = seconds(0.001),
) -> Tuple[np.ndarray, np.ndarray]:
    """Instantaneous-rate time series of a bursty source.

    Returns ``(bin_centers_s, rate_bps)`` — used to *show* (as the paper
    argues in §5) that an "average 200 Mbps" flow is near-line-rate bursts.
    """
    t = generate_arrivals(source, duration, rng)
    n_bins = max(1, int(np.ceil(duration.s / bin_width.s)))
    edges = np.linspace(0.0, n_bins * bin_width.s, n_bins + 1)
    counts, _ = np.histogram(t, bins=edges)
    rate = counts * source.packet_size.bits / bin_width.s
    centers = (edges[:-1] + edges[1:]) / 2.0
    return centers, rate

"""Packet-level queueing simulation for device studies.

The fluid TCP model (:mod:`repro.tcp`) is what most experiments use, but two
of the paper's core arguments are about *sub-RTT* packet behaviour:

* §5: a "200 Mbps" TCP flow is really line-rate bursts with pauses, so a
  firewall whose internal processors are slower than its interfaces drops
  the tails of bursts when its input buffer is shallow;
* §5/§6.1: fan-in — several ingress ports bursting simultaneously toward
  one egress port overruns shallow switch buffers.

This module simulates exactly that: bursty packet arrival processes swept
through :class:`~repro.netsim.buffers.DropTailQueue` instances.  Arrival
times are generated vectorially with numpy and merged with a single sorted
sweep — orders of magnitude faster than per-packet event scheduling, while
preserving per-packet drop decisions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import ConfigurationError
from ..units import DataRate, DataSize, TimeDelta, bits, bytes_, seconds
from ..vectorize import check_backend, resolve_backend

__all__ = [
    "BurstySource",
    "SourceStats",
    "FanInResult",
    "generate_arrivals",
    "simulate_fan_in",
    "burst_trace",
]


@dataclass(frozen=True)
class BurstySource:
    """An on/off packet source modelling TCP burstiness.

    A TCP sender with congestion window W emits W segments back-to-back at
    its NIC line rate once per RTT, then goes quiet until the ACK clock
    releases the next window.  We model this as fixed-size bursts emitted at
    ``line_rate`` separated by pauses sized so the long-run average equals
    ``mean_rate``.

    Parameters
    ----------
    name:
        Identifier for reporting.
    line_rate:
        NIC rate — the instantaneous rate *within* a burst.
    mean_rate:
        Long-run average rate (must not exceed ``line_rate``).
    burst_size:
        Bytes per burst (≈ congestion window).
    packet_size:
        Wire size of each packet.
    jitter:
        Fractional uniform jitter applied to burst start times, so that
        multiple sources do not stay phase-locked (0 = fully periodic).
    """

    name: str
    line_rate: DataRate
    mean_rate: DataRate
    burst_size: DataSize
    packet_size: DataSize = bytes_(1500)
    jitter: float = 0.5

    def __post_init__(self) -> None:
        if self.mean_rate.bps > self.line_rate.bps:
            raise ConfigurationError(
                f"source {self.name!r}: mean_rate {self.mean_rate.human()} "
                f"exceeds line_rate {self.line_rate.human()}"
            )
        if self.mean_rate.bps <= 0:
            raise ConfigurationError(f"source {self.name!r}: mean_rate must be > 0")
        if self.burst_size.bits < self.packet_size.bits:
            raise ConfigurationError(
                f"source {self.name!r}: burst smaller than one packet"
            )
        if not 0.0 <= self.jitter <= 1.0:
            raise ConfigurationError("jitter must be in [0, 1]")

    @property
    def packets_per_burst(self) -> int:
        return max(1, int(round(self.burst_size.bits / self.packet_size.bits)))

    @property
    def burst_interval(self) -> TimeDelta:
        """Time between burst starts for the long-run mean to hold."""
        return seconds(self.burst_size.bits / self.mean_rate.bps)

    @property
    def duty_cycle(self) -> float:
        """Fraction of time the source is actually transmitting."""
        return self.mean_rate.bps / self.line_rate.bps


def generate_arrivals(
    source: BurstySource,
    duration: TimeDelta,
    rng: np.random.Generator,
) -> np.ndarray:
    """Packet arrival times (seconds, sorted) for one source over ``duration``.

    Burst starts are periodic at :attr:`BurstySource.burst_interval` with
    uniform jitter; packets within a burst are spaced at the line rate.
    """
    interval = source.burst_interval.s
    n_bursts = int(np.ceil(duration.s / interval)) + 1
    starts = np.arange(n_bursts, dtype=np.float64) * interval
    if source.jitter > 0:
        starts = starts + rng.uniform(
            0.0, source.jitter * interval, size=n_bursts
        )
    ppb = source.packets_per_burst
    gap = source.packet_size.bits / source.line_rate.bps
    offsets = np.arange(ppb, dtype=np.float64) * gap
    times = (starts[:, None] + offsets[None, :]).ravel()
    times = times[times < duration.s]
    times.sort(kind="stable")
    return times


@dataclass
class SourceStats:
    """Per-source outcome of a fan-in sweep."""

    name: str
    offered_packets: int = 0
    delivered_packets: int = 0
    dropped_packets: int = 0

    @property
    def loss_fraction(self) -> float:
        return (self.dropped_packets / self.offered_packets
                if self.offered_packets else 0.0)


@dataclass
class FanInResult:
    """Outcome of :func:`simulate_fan_in`."""

    per_source: Dict[str, SourceStats]
    total_offered: int
    total_delivered: int
    total_dropped: int
    max_queue_occupancy: DataSize
    duration: TimeDelta
    egress_rate: DataRate
    packet_size: DataSize

    @property
    def loss_fraction(self) -> float:
        return (self.total_dropped / self.total_offered
                if self.total_offered else 0.0)

    @property
    def delivered_rate(self) -> DataRate:
        return DataRate(
            self.total_delivered * self.packet_size.bits / self.duration.s
        )

    @property
    def offered_rate(self) -> DataRate:
        return DataRate(
            self.total_offered * self.packet_size.bits / self.duration.s
        )

    def summary(self) -> str:
        lines = [
            f"fan-in: offered {self.offered_rate.human()}, "
            f"delivered {self.delivered_rate.human()}, "
            f"loss {self.loss_fraction:.4%}, "
            f"peak queue {self.max_queue_occupancy.human()}"
        ]
        for st in self.per_source.values():
            lines.append(
                f"  {st.name}: {st.offered_packets} pkts, "
                f"loss {st.loss_fraction:.4%}"
            )
        return "\n".join(lines)


def _sweep_python(
    times: np.ndarray,
    owners: np.ndarray,
    n_sources: int,
    cap_bits: float,
    pkt_bits: float,
    drain_bps: float,
) -> Tuple[np.ndarray, np.ndarray, float]:
    """Scalar reference Lindley sweep: one Python iteration per packet."""
    backlog = 0.0
    last_t = 0.0
    max_backlog = 0.0
    delivered = np.zeros(n_sources, dtype=np.int64)
    dropped = np.zeros(n_sources, dtype=np.int64)
    for t, who in zip(times, owners):
        backlog = max(0.0, backlog - (t - last_t) * drain_bps)
        last_t = t
        if backlog + pkt_bits <= cap_bits:
            backlog += pkt_bits
            delivered[who] += 1
            if backlog > max_backlog:
                max_backlog = backlog
        else:
            dropped[who] += 1
    return delivered, dropped, max_backlog


def _sweep_numpy(
    times: np.ndarray,
    owners: np.ndarray,
    n_sources: int,
    cap_bits: float,
    pkt_bits: float,
    drain_bps: float,
) -> Tuple[np.ndarray, np.ndarray, float]:
    """Vectorized Lindley sweep, bit-identical to :func:`_sweep_python`.

    The backlog recursion ``b <- max(0, b - d_i); accept iff b + pkt <= cap``
    is linear *between* boundary events (clamps to empty and drops), so it
    is evaluated speculatively in chunks with one interleaved ``cumsum``:

    ``z = [b0 - d_0, +pkt, -d_1, +pkt, ...]`` gives running sums whose even
    elements are the post-drain backlogs and odd elements the post-accept
    backlogs.  The chunk is valid up to the first *violation* — a post-drain
    value below zero (the scalar loop would have clamped) or a post-accept
    value above the capacity (the scalar loop would have dropped).  The
    accepted prefix is committed wholesale; a clamp is repaired with one
    O(1) step (the queue is empty: the packet is accepted onto an empty
    buffer); a drop switches to a short scalar run, since drops cluster in
    exactly the overload regimes where speculation keeps failing.  The
    chunk size adapts to twice the distance the last attempt advanced.

    Bit-identity notes: ``cumsum`` accumulates sequentially, so every
    committed backlog equals the scalar loop's float-by-float value;
    ``b0 + (-d) == b0 - d`` and ``0.0 + pkt == pkt`` exactly in IEEE-754;
    a post-drain ``-0.0`` (scalar: ``+0.0``) subtracts and compares
    identically and is never surfaced in ``max_backlog``.
    """
    n = len(times)
    delivered = np.zeros(n_sources, dtype=np.int64)
    dropped = np.zeros(n_sources, dtype=np.int64)
    if n == 0:
        return delivered, dropped, 0.0
    if pkt_bits > cap_bits:
        # Degenerate: no packet ever fits; the queue never holds anything.
        return delivered, np.bincount(owners, minlength=n_sources), 0.0

    d = np.empty(n)
    d[0] = (times[0] - 0.0) * drain_bps
    np.multiply(np.diff(times), drain_bps, out=d[1:])

    accepted = np.zeros(n, dtype=bool)
    max_backlog = 0.0
    b = 0.0
    i = 0
    chunk = 1024
    CHUNK_MIN, CHUNK_MAX, SCALAR_RUN = 128, 32768, 64
    d_list = None  # materialized lazily, only if a drop regime appears
    while i < n:
        m = min(chunk, n - i)
        z = np.empty(2 * m)
        z[0::2] = -d[i:i + m]
        z[1::2] = pkt_bits
        z[0] += b
        s = np.cumsum(z)
        post_drain = s[0::2]
        post_accept = s[1::2]
        violation = (post_drain < 0.0) | (post_accept > cap_bits)
        bad = int(np.argmax(violation)) if violation.any() else m
        if bad:
            accepted[i:i + bad] = True
            prefix_max = post_accept[:bad].max()
            if prefix_max > max_backlog:
                max_backlog = prefix_max
            b = float(post_accept[bad - 1])
        advance = bad
        if bad < m:
            j = i + bad
            if post_drain[bad] < 0.0:
                # Clamp: the queue drained empty before this packet, which
                # therefore lands on an empty buffer and always fits.
                accepted[j] = True
                b = pkt_bits
                if b > max_backlog:
                    max_backlog = b
                advance = bad + 1
            else:
                # Drop: replay a short span scalar-wise — drops cluster in
                # overload bursts where chunk speculation keeps failing.
                if d_list is None:
                    d_list = d.tolist()
                end = min(n, j + SCALAR_RUN)
                for kk in range(j, end):
                    b = b - d_list[kk]
                    if b < 0.0:
                        b = 0.0
                    if b + pkt_bits <= cap_bits:
                        b += pkt_bits
                        accepted[kk] = True
                        if b > max_backlog:
                            max_backlog = b
                advance = end - i
        i += advance
        chunk = min(CHUNK_MAX, max(CHUNK_MIN, 2 * advance))
    delivered = np.bincount(owners[accepted], minlength=n_sources)
    dropped = np.bincount(owners[~accepted], minlength=n_sources)
    return delivered, dropped, float(max_backlog)


def simulate_fan_in(
    sources: Sequence[BurstySource],
    *,
    egress_rate: DataRate,
    buffer_size: DataSize,
    duration: TimeDelta,
    rng: np.random.Generator,
    backend: Optional[str] = None,
) -> FanInResult:
    """Sweep bursty sources through a shared drop-tail egress queue.

    All sources must use the same packet size (the common case for bulk
    data flows; mixed sizes would only blur the effect under study).

    ``backend="numpy"`` runs the chunked vectorized Lindley sweep;
    ``backend="python"`` runs the per-packet scalar reference.  Both
    produce bit-identical results; ``backend=None`` (default) resolves
    through :func:`repro.vectorize.default_backend`.
    """
    backend = resolve_backend(backend)
    if not sources:
        raise ConfigurationError("simulate_fan_in requires at least one source")
    pkt = sources[0].packet_size
    for s in sources:
        if s.packet_size.bits != pkt.bits:
            raise ConfigurationError(
                "all fan-in sources must share a packet size; "
                f"{s.name!r} differs"
            )
    if duration.s <= 0:
        raise ConfigurationError("duration must be positive")

    # Vector-generate all arrivals, tag with source index, merge-sort once.
    all_times: List[np.ndarray] = []
    all_src: List[np.ndarray] = []
    for idx, src in enumerate(sources):
        t = generate_arrivals(src, duration, rng)
        all_times.append(t)
        all_src.append(np.full(t.shape, idx, dtype=np.int32))
    times = np.concatenate(all_times)
    owners = np.concatenate(all_src)
    order = np.argsort(times, kind="stable")
    times = times[order]
    owners = owners[order]

    # Queue sweep.  The queue drains continuously at egress_rate; each
    # packet is accepted iff the backlog (after draining to its arrival
    # time) leaves room.
    sweep = _sweep_numpy if backend == "numpy" else _sweep_python
    delivered, dropped, max_backlog = sweep(
        times, owners, len(sources),
        buffer_size.bits, pkt.bits, egress_rate.bps,
    )

    per_source: Dict[str, SourceStats] = {}
    for idx, src in enumerate(sources):
        per_source[src.name] = SourceStats(
            name=src.name,
            offered_packets=int(delivered[idx] + dropped[idx]),
            delivered_packets=int(delivered[idx]),
            dropped_packets=int(dropped[idx]),
        )
    total_offered = int(delivered.sum() + dropped.sum())
    return FanInResult(
        per_source=per_source,
        total_offered=total_offered,
        total_delivered=int(delivered.sum()),
        total_dropped=int(dropped.sum()),
        max_queue_occupancy=bits(max_backlog),
        duration=duration,
        egress_rate=egress_rate,
        packet_size=pkt,
    )


def burst_trace(
    source: BurstySource,
    duration: TimeDelta,
    rng: np.random.Generator,
    *,
    bin_width: TimeDelta = seconds(0.001),
) -> Tuple[np.ndarray, np.ndarray]:
    """Instantaneous-rate time series of a bursty source.

    Returns ``(bin_centers_s, rate_bps)`` — used to *show* (as the paper
    argues in §5) that an "average 200 Mbps" flow is near-line-rate bursts.
    """
    t = generate_arrivals(source, duration, rng)
    n_bins = max(1, int(np.ceil(duration.s / bin_width.s)))
    edges = np.linspace(0.0, n_bins * bin_width.s, n_bins + 1)
    counts, _ = np.histogram(t, bins=edges)
    rate = counts * source.packet_size.bits / bin_width.s
    centers = (edges[:-1] + edges[1:]) / 2.0
    return centers, rate

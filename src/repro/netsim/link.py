"""Network links.

A :class:`Link` is an edge in the topology and implements the
:class:`~repro.netsim.node.PathElement` protocol: it contributes propagation
delay, a capacity ceiling, and a per-packet random-loss probability derived
from either an explicit loss rate (e.g. a failing component on the span) or
a bit-error rate (dirty optics).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..errors import ConfigurationError
from ..units import DataRate, DataSize, TimeDelta, bytes_, seconds

__all__ = ["Link", "ETHERNET_MTU", "JUMBO_MTU"]

#: Standard Ethernet MTU (bytes of L3 payload).
ETHERNET_MTU = bytes_(1500)
#: Jumbo-frame MTU used throughout the paper's measurements ("9KByte MTU").
JUMBO_MTU = bytes_(9000)


@dataclass
class Link:
    """A bidirectional point-to-point link.

    Parameters
    ----------
    rate:
        Line rate (applies to each direction independently).
    delay:
        One-way propagation delay.
    mtu:
        Maximum transmission unit.  The smallest MTU along a path bounds the
        TCP maximum segment size.
    loss_probability:
        Independent per-packet loss probability on this span (use for
        modelling failing components in the path); combined with
        ``bit_error_rate`` if both are set.
    bit_error_rate:
        Per-bit error probability (dirty optics).  Converted to per-packet
        loss using the MTU-sized packet assumption.
    tags:
        Policy labels used by routing constraints (e.g. ``{'science'}``).
    """

    rate: DataRate
    delay: TimeDelta
    mtu: DataSize = ETHERNET_MTU
    loss_probability: float = 0.0
    bit_error_rate: float = 0.0
    tags: frozenset = frozenset()
    name: Optional[str] = None
    meta: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not isinstance(self.rate, DataRate):
            raise ConfigurationError("Link.rate must be a DataRate")
        if self.rate.bps <= 0:
            raise ConfigurationError("Link.rate must be positive")
        if not isinstance(self.delay, TimeDelta):
            raise ConfigurationError("Link.delay must be a TimeDelta")
        if not isinstance(self.mtu, DataSize) or self.mtu.bytes < 64:
            raise ConfigurationError("Link.mtu must be a DataSize >= 64 bytes")
        if not 0.0 <= self.loss_probability <= 1.0:
            raise ConfigurationError(
                f"Link.loss_probability must be in [0,1], got {self.loss_probability}"
            )
        if not 0.0 <= self.bit_error_rate <= 1.0:
            raise ConfigurationError(
                f"Link.bit_error_rate must be in [0,1], got {self.bit_error_rate}"
            )
        self.tags = frozenset(self.tags)

    # -- PathElement protocol -------------------------------------------------
    def element_latency(self) -> TimeDelta:
        return self.delay

    def element_capacity(self) -> Optional[DataRate]:
        return self.rate

    def element_loss_probability(self) -> float:
        """Combined random loss: explicit span loss plus BER-induced loss."""
        p_ber = 1.0 - (1.0 - self.bit_error_rate) ** self.mtu.bits
        return 1.0 - (1.0 - self.loss_probability) * (1.0 - p_ber)

    def transform_flow(self, ctx):
        return ctx

    # -- helpers ---------------------------------------------------------------
    def serialization_delay(self, size: DataSize) -> TimeDelta:
        """Time to clock ``size`` onto the wire at this link's rate."""
        return seconds(size.bits / self.rate.bps)

    def has_tag(self, tag: str) -> bool:
        return tag in self.tags

    def degrade(self, *, loss_probability: Optional[float] = None,
                bit_error_rate: Optional[float] = None) -> None:
        """Inject a soft failure on this span (in place)."""
        if loss_probability is not None:
            if not 0.0 <= loss_probability <= 1.0:
                raise ConfigurationError("loss_probability must be in [0,1]")
            self.loss_probability = loss_probability
        if bit_error_rate is not None:
            if not 0.0 <= bit_error_rate <= 1.0:
                raise ConfigurationError("bit_error_rate must be in [0,1]")
            self.bit_error_rate = bit_error_rate

    def repair(self) -> None:
        """Clear injected span failures."""
        self.loss_probability = 0.0
        self.bit_error_rate = 0.0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        label = f" {self.name!r}" if self.name else ""
        return (f"Link({self.rate.human()}, {self.delay.human()}"
                f", mtu={self.mtu.bytes:.0f}B{label})")

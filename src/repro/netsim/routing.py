"""Reusable routing policies.

Policy routing is how the Science DMZ *location pattern* is expressed in
this library: the same topology serves both science and enterprise traffic,
and the difference between "data trickles through the firewall" and "data
flies through the DMZ" is purely which policy selects the path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

__all__ = [
    "RoutingPolicy",
    "SCIENCE_POLICY",
    "ENTERPRISE_POLICY",
    "ANY_PATH",
]


@dataclass(frozen=True)
class RoutingPolicy:
    """A bundle of path-selection constraints.

    Converts to the keyword arguments accepted by
    :meth:`repro.netsim.topology.Topology.path` via :meth:`kwargs`.
    """

    name: str
    require_link_tags: Tuple[str, ...] = ()
    forbid_link_tags: Tuple[str, ...] = ()
    forbid_node_tags: Tuple[str, ...] = ()
    forbid_node_kinds: Tuple[str, ...] = ()

    def kwargs(self) -> dict:
        return {
            "require_link_tags": self.require_link_tags,
            "forbid_link_tags": self.forbid_link_tags,
            "forbid_node_tags": self.forbid_node_tags,
            "forbid_node_kinds": self.forbid_node_kinds,
        }

    def merged(self, other: "RoutingPolicy", name: str = "") -> "RoutingPolicy":
        """Union of two policies' constraints."""
        return RoutingPolicy(
            name=name or f"{self.name}+{other.name}",
            require_link_tags=tuple(
                dict.fromkeys(self.require_link_tags + other.require_link_tags)
            ),
            forbid_link_tags=tuple(
                dict.fromkeys(self.forbid_link_tags + other.forbid_link_tags)
            ),
            forbid_node_tags=tuple(
                dict.fromkeys(self.forbid_node_tags + other.forbid_node_tags)
            ),
            forbid_node_kinds=tuple(
                dict.fromkeys(self.forbid_node_kinds + other.forbid_node_kinds)
            ),
        )


#: Science data must never traverse a firewall appliance; it rides links
#: that are part of the science fabric when they exist.
SCIENCE_POLICY = RoutingPolicy(
    name="science",
    forbid_node_kinds=("firewall",),
)

#: Enterprise/business traffic must stay behind the perimeter firewall —
#: it is forbidden from using the unprotected science fabric.
ENTERPRISE_POLICY = RoutingPolicy(
    name="enterprise",
    forbid_link_tags=("science",),
)

#: No constraints: whatever the shortest path is.
ANY_PATH = RoutingPolicy(name="any")

"""Transfer tool models.

§3.2 lists the software that belongs on a DTN — GridFTP and its
service-oriented front end Globus Online, discipline tools like XRootD,
and "versions of default toolsets such as SSH/SCP with high-performance
patches applied" — and §6.3 shows what the wrong tool costs (a legacy FTP
server trickling at 1-2 MB/s).

Each :class:`TransferTool` captures the properties that decide real
transfer performance:

* ``streams`` — parallel TCP connections (GridFTP's headline feature);
* ``internal_window_cap`` — application-level buffer limits that clamp
  the window below the kernel's (stock OpenSSH's ~1 MB channel buffer is
  the canonical example; HPN-SSH removes it);
* ``cipher_rate_cap`` — per-stream CPU ceiling from encryption;
* ``per_file_overhead`` — control-channel round trips per file (FTP/SCP
  pay it; pipelined GridFTP mostly doesn't);
* ``checksum_overhead`` — integrity verification cost (Globus);
* ``restart_on_failure`` — whether a failed file retries automatically.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Optional

from ..errors import ConfigurationError
from ..units import DataRate, DataSize, KB, MB, MBps, TimeDelta, seconds

__all__ = ["TransferTool", "TOOL_REGISTRY", "tool_by_name", "register_tool"]


@dataclass(frozen=True)
class TransferTool:
    """A data-movement application profile."""

    name: str
    streams: int = 1
    internal_window_cap: Optional[DataSize] = None
    cipher_rate_cap: Optional[DataRate] = None
    per_file_overhead: TimeDelta = field(default_factory=lambda: seconds(0.5))
    checksum_overhead: float = 0.0
    restart_on_failure: bool = False
    description: str = ""

    def __post_init__(self) -> None:
        if self.streams < 1:
            raise ConfigurationError("tool needs at least one stream")
        if not 0.0 <= self.checksum_overhead < 1.0:
            raise ConfigurationError("checksum_overhead must be in [0,1)")

    def with_streams(self, streams: int) -> "TransferTool":
        """Same tool configured for a different parallelism level."""
        return replace(self, streams=streams)

    def effective_window(self, kernel_window: DataSize) -> DataSize:
        """Receive window after the tool's internal buffer cap."""
        if self.internal_window_cap is None:
            return kernel_window
        return DataSize(min(kernel_window.bits, self.internal_window_cap.bits))

    def per_stream_rate_cap(self) -> Optional[DataRate]:
        return self.cipher_rate_cap


def _builtin_tools() -> Dict[str, TransferTool]:
    return {
        "ftp": TransferTool(
            name="ftp",
            streams=1,
            # Legacy FTP daemons ship fixed socket buffers; no autotuning.
            internal_window_cap=KB(64),
            per_file_overhead=seconds(1.0),
            description="legacy single-stream FTP, fixed 64 KB buffers (§6.3)",
        ),
        "scp": TransferTool(
            name="scp",
            streams=1,
            # Stock OpenSSH: ~1 MB channel window + single-core cipher.
            internal_window_cap=MB(1),
            cipher_rate_cap=MBps(60),
            per_file_overhead=seconds(0.8),
            description="stock OpenSSH scp: static channel buffer + cipher CPU cap",
        ),
        "hpn-scp": TransferTool(
            name="hpn-scp",
            streams=1,
            internal_window_cap=None,  # HPN patches remove the static buffer
            cipher_rate_cap=MBps(400),  # multithreaded AES / NONE cipher option
            per_file_overhead=seconds(0.8),
            description="SSH/SCP with HPN patches (§3.2 footnote 9)",
        ),
        "gridftp": TransferTool(
            name="gridftp",
            streams=4,
            per_file_overhead=seconds(0.05),  # pipelined control channel
            description="Globus striped/parallel GridFTP (§3.2)",
        ),
        "globus": TransferTool(
            name="globus",
            streams=4,
            per_file_overhead=seconds(0.05),
            checksum_overhead=0.05,
            restart_on_failure=True,
            description="Globus Online: GridFTP + integrity + auto-retry (§6.3)",
        ),
        "fdt": TransferTool(
            name="fdt",
            streams=4,
            per_file_overhead=seconds(0.02),  # streams files back-to-back
            description="Fast Data Transfer (java NIO streaming, §3.2)",
        ),
        "xrootd": TransferTool(
            name="xrootd",
            streams=2,
            per_file_overhead=seconds(0.1),
            description="XRootD data service (HEP discipline tool, §3.2)",
        ),
    }


TOOL_REGISTRY: Dict[str, TransferTool] = _builtin_tools()


def register_tool(tool: TransferTool) -> TransferTool:
    """Add a custom tool to the registry (overwrites same-name entries)."""
    TOOL_REGISTRY[tool.name] = tool
    return tool


def tool_by_name(name: str) -> TransferTool:
    """Look up a registered transfer tool by name."""
    try:
        return TOOL_REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(TOOL_REGISTRY))
        raise ConfigurationError(
            f"unknown transfer tool {name!r}; known tools: {known}"
        ) from None

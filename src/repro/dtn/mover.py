"""A Globus-Online-style managed transfer service.

§3.2 calls Globus Online the "service-oriented front-end" to GridFTP:
users submit transfer *tasks* and the service schedules them, limits
concurrency per endpoint, retries failures, and reports status — §6.3's
NOAA team used exactly this.  :class:`TransferService` models that layer
on top of :class:`~repro.dtn.transfer.TransferPlan`:

* submitted jobs queue per source endpoint with a concurrency limit
  (real DTNs cap concurrent GridFTP sessions to protect storage);
* jobs run in submission order as slots free, tracking queue wait
  separately from transfer time;
* per-service statistics aggregate throughput and utilization.

The service is simulation-time based: :meth:`run` advances an internal
clock, it does not wall-clock block.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from ..errors import ConfigurationError, TransferError
from ..telemetry.tracer import NULL_TRACER
from ..units import DataRate, DataSize, TimeDelta, bits, seconds
from .transfer import TransferPlan, TransferReport

__all__ = ["JobState", "TransferJob", "TransferService"]


class JobState(enum.Enum):
    """Lifecycle of a submitted transfer job."""

    QUEUED = "queued"
    ACTIVE = "active"
    SUCCEEDED = "succeeded"
    FAILED = "failed"


@dataclass
class TransferJob:
    """One submitted transfer task."""

    job_id: int
    plan: TransferPlan
    submitted_at: float
    state: JobState = JobState.QUEUED
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    report: Optional[TransferReport] = None
    error: Optional[str] = None

    @property
    def queue_wait(self) -> Optional[TimeDelta]:
        if self.started_at is None:
            return None
        return seconds(self.started_at - self.submitted_at)

    @property
    def total_time(self) -> Optional[TimeDelta]:
        if self.finished_at is None:
            return None
        return seconds(self.finished_at - self.submitted_at)

    def describe(self) -> str:
        base = (f"job {self.job_id} "
                f"[{self.plan.dataset.name} "
                f"{self.plan.src}->{self.plan.dst}]: {self.state.value}")
        if self.report is not None:
            base += (f", {self.report.mean_throughput.human()}, "
                     f"waited {self.queue_wait.human()}")
        if self.error:
            base += f" ({self.error})"
        return base


class TransferService:
    """Managed transfer scheduling with per-source concurrency limits.

    Parameters
    ----------
    concurrency_per_source:
        Maximum simultaneously active jobs reading from one source host.
    rng:
        Generator used for every executed plan (lossy paths need it).
    tracer:
        Optional :class:`~repro.telemetry.tracer.Tracer`: emits a span
        per job anchored at its (service-clock) start/finish times with
        queue-wait attrs, and per-outcome counters.
    """

    def __init__(
        self,
        *,
        concurrency_per_source: int = 2,
        rng: Optional[np.random.Generator] = None,
        tracer=None,
    ) -> None:
        if concurrency_per_source < 1:
            raise ConfigurationError("concurrency must be >= 1")
        self.concurrency = concurrency_per_source
        self._rng = rng
        self._tracer = tracer if tracer is not None else NULL_TRACER
        self._ids = itertools.count(1)
        self.jobs: List[TransferJob] = []
        self._clock = 0.0

    # -- submission ---------------------------------------------------------------
    def submit(self, plan: TransferPlan, *,
               at: Optional[TimeDelta] = None) -> TransferJob:
        """Queue a transfer task (defaults to 'now' on the service clock)."""
        submitted = self._clock if at is None else at.s
        if at is not None and at.s < self._clock:
            raise ConfigurationError(
                "cannot submit in the past of the service clock"
            )
        job = TransferJob(job_id=next(self._ids), plan=plan,
                          submitted_at=submitted)
        self.jobs.append(job)
        return job

    # -- scheduling ------------------------------------------------------------------
    def run(self) -> List[TransferJob]:
        """Run every queued job to completion, respecting concurrency.

        Scheduling model: per-source slots; each slot processes its jobs
        back-to-back in submission order.  Concurrent jobs from one
        source share that source's storage/NIC via the per-plan
        simulation (the plans already account for stream counts), so the
        service treats slot occupancy, not bandwidth, as the contended
        resource — matching how Globus limits concurrent tasks.
        """
        queued = sorted(
            (j for j in self.jobs if j.state is JobState.QUEUED),
            key=lambda j: (j.submitted_at, j.job_id),
        )
        # Per-source slot free-times.
        slots: Dict[str, List[float]] = {}
        tracer = self._tracer
        for job in queued:
            src = job.plan.src
            free = slots.setdefault(src, [0.0] * self.concurrency)
            slot_idx = min(range(len(free)), key=lambda i: free[i])
            start = max(free[slot_idx], job.submitted_at)
            job.state = JobState.ACTIVE
            job.started_at = start
            try:
                report = job.plan.execute(self._rng, tracer=tracer,
                                          trace_offset=start)
            except TransferError as exc:
                job.state = JobState.FAILED
                job.error = str(exc)
                job.finished_at = start
                free[slot_idx] = start
                if tracer.enabled:
                    tracer.event("dtn", "job-failed", t=start,
                                 job_id=job.job_id,
                                 dataset=job.plan.dataset.name,
                                 src=src, dst=job.plan.dst, error=str(exc))
                    tracer.counter("jobs_failed", component="dtn").inc()
                continue
            job.report = report
            job.finished_at = start + report.duration.s
            job.state = JobState.SUCCEEDED
            free[slot_idx] = job.finished_at
            self._clock = max(self._clock, job.finished_at)
            if tracer.enabled:
                tracer.span_at(
                    "dtn", f"job-{job.job_id}", start, job.finished_at,
                    dataset=job.plan.dataset.name, src=src,
                    dst=job.plan.dst, queue_wait_s=job.queue_wait.s,
                    slot=slot_idx,
                )
                tracer.counter("jobs_succeeded", component="dtn").inc()
                tracer.histogram("job_queue_wait_s",
                                 component="dtn").observe(job.queue_wait.s)
        return queued

    # -- reporting --------------------------------------------------------------------
    def completed(self) -> List[TransferJob]:
        return [j for j in self.jobs if j.state is JobState.SUCCEEDED]

    def failed(self) -> List[TransferJob]:
        return [j for j in self.jobs if j.state is JobState.FAILED]

    def total_moved(self) -> DataSize:
        return bits(sum(j.plan.dataset.total_size.bits
                        for j in self.completed()))

    def makespan(self) -> TimeDelta:
        """Time from first submission to last completion."""
        done = self.completed()
        if not done:
            return seconds(0)
        start = min(j.submitted_at for j in done)
        end = max(j.finished_at for j in done)
        return seconds(end - start)

    def aggregate_throughput(self) -> DataRate:
        span = self.makespan()
        if span.s <= 0:
            return DataRate(0)
        return DataRate(self.total_moved().bits / span.s)

    def summary(self) -> str:
        lines = [
            f"transfer service: {len(self.completed())} succeeded, "
            f"{len(self.failed())} failed, "
            f"{self.total_moved().human()} moved in "
            f"{self.makespan().human()} "
            f"({self.aggregate_throughput().human()} aggregate)",
        ]
        lines += [f"  {j.describe()}" for j in self.jobs]
        return "\n".join(lines)

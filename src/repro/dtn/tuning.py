"""The DTN tuning guide as executable checks.

§3.2: "Because the design and tuning of a DTN can be time-consuming for
small research groups, ESnet has a DTN Tuning guide and a Reference DTN
Implementation guide."  This module encodes the checks that matter for the
experiments as functions over a :class:`~repro.dtn.host.HostSystemProfile`
and an intended WAN target (rate x RTT), so a design audit can say *why* a
host will underperform before any packet is simulated.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

from ..errors import ConfigurationError
from ..units import DataRate, DataSize, Gbps, TimeDelta, ms
from .host import HostSystemProfile

__all__ = ["TuningFinding", "TuningCheck", "REQUIRED_CHECKS", "audit_host"]


@dataclass(frozen=True)
class TuningFinding:
    """One result from the tuning audit."""

    check: str
    passed: bool
    detail: str
    recommendation: str = ""

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        mark = "PASS" if self.passed else "FAIL"
        rec = f" -> {self.recommendation}" if not self.passed else ""
        return f"[{mark}] {self.check}: {self.detail}{rec}"


@dataclass(frozen=True)
class TuningCheck:
    """A named check with its evaluation function."""

    name: str
    evaluate: Callable[[HostSystemProfile, DataRate, TimeDelta], TuningFinding]


def _check_buffers(profile: HostSystemProfile, rate: DataRate,
                   rtt: TimeDelta) -> TuningFinding:
    bdp = rate.bdp(rtt)
    needed = DataSize(bdp.bits * 2)  # 2x BDP headroom per the guide
    ok = profile.tcp_buffer_max.bits >= needed.bits
    return TuningFinding(
        check="tcp-buffers",
        passed=ok,
        detail=(f"buffer ceiling {profile.tcp_buffer_max.human()} vs "
                f"2xBDP {needed.human()} for {rate.human()} at {rtt.human()}"),
        recommendation=(f"raise net.ipv4.tcp_rmem/tcp_wmem max to at least "
                        f"{needed.human()}"),
    )


def _check_mtu(profile: HostSystemProfile, rate: DataRate,
               rtt: TimeDelta) -> TuningFinding:
    ok = profile.mtu.bytes >= 9000
    return TuningFinding(
        check="jumbo-frames",
        passed=ok,
        detail=f"MTU {profile.mtu.bytes:.0f} B",
        recommendation="enable 9000-byte jumbo frames end-to-end",
    )


def _check_congestion(profile: HostSystemProfile, rate: DataRate,
                      rtt: TimeDelta) -> TuningFinding:
    ok = profile.congestion_algorithm in ("htcp", "cubic")
    return TuningFinding(
        check="congestion-control",
        passed=ok,
        detail=f"kernel uses {profile.congestion_algorithm}",
        recommendation="use htcp or cubic for high-BDP paths",
    )


def _check_dedicated(profile: HostSystemProfile, rate: DataRate,
                     rtt: TimeDelta) -> TuningFinding:
    ok = profile.dedicated and not profile.runs_general_purpose_apps()
    return TuningFinding(
        check="dedicated-system",
        passed=ok,
        detail=("dedicated, data-transfer apps only" if ok else
                f"general-purpose apps installed: "
                f"{', '.join(a for a in profile.installed_apps)}"),
        recommendation=("dedicate the host to data transfer; remove "
                        "user-agent applications (§3.2)"),
    )


def _check_storage(profile: HostSystemProfile, rate: DataRate,
                   rtt: TimeDelta) -> TuningFinding:
    if profile.storage is None:
        return TuningFinding(
            check="storage-rate",
            passed=False,
            detail="no storage subsystem attached",
            recommendation="attach storage able to keep up with the WAN rate",
        )
    read = profile.storage.read_rate(4)
    ok = read.bps >= rate.bps
    return TuningFinding(
        check="storage-rate",
        passed=ok,
        detail=(f"storage read {read.human()} vs WAN target {rate.human()}"),
        recommendation="provision storage bandwidth to match the network",
    )


REQUIRED_CHECKS: List[TuningCheck] = [
    TuningCheck("tcp-buffers", _check_buffers),
    TuningCheck("jumbo-frames", _check_mtu),
    TuningCheck("congestion-control", _check_congestion),
    TuningCheck("dedicated-system", _check_dedicated),
    TuningCheck("storage-rate", _check_storage),
]


def audit_host(
    profile: HostSystemProfile,
    *,
    target_rate: DataRate = Gbps(10),
    target_rtt: TimeDelta = ms(50),
    checks: Optional[List[TuningCheck]] = None,
) -> List[TuningFinding]:
    """Run the tuning-guide checks against an intended WAN working point.

    Returns all findings (pass and fail) in guide order.
    """
    if target_rate.bps <= 0 or target_rtt.s <= 0:
        raise ConfigurationError("target rate and RTT must be positive")
    selected = checks if checks is not None else REQUIRED_CHECKS
    return [c.evaluate(profile, target_rate, target_rtt) for c in selected]

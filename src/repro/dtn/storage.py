"""Storage subsystem models.

"The DTN also has access to storage resources, whether it is a local
high-speed disk subsystem, a connection to a local storage infrastructure,
such as a storage area network (SAN), or the direct mount of a high-speed
parallel file system such as Lustre or GPFS" (§3.2).

A transfer's end-to-end rate is the minimum of network throughput, source
read rate and sink write rate, so these models expose stream-dependent
read/write rates.  :class:`ParallelFilesystem` also carries the §4.2
observation about double copies: when DTNs mount the parallel filesystem
directly, "data sets are immediately available on the supercomputer
resources without the need for double-copying the data".
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field

from ..errors import ConfigurationError
from ..units import DataRate, GBps, MBps

__all__ = [
    "StorageSystem",
    "SingleDisk",
    "RaidArray",
    "StorageAreaNetwork",
    "ParallelFilesystem",
]


class StorageSystem(ABC):
    """Base class: a storage back-end with stream-dependent rates."""

    name: str = "storage"
    #: Mounted directly on compute resources (no staging copy needed)?
    shared_with_compute: bool = False

    @abstractmethod
    def read_rate(self, streams: int = 1) -> DataRate:
        """Sustained aggregate read rate with ``streams`` concurrent readers."""

    @abstractmethod
    def write_rate(self, streams: int = 1) -> DataRate:
        """Sustained aggregate write rate with ``streams`` concurrent writers."""

    @staticmethod
    def _check_streams(streams: int) -> int:
        if streams < 1:
            raise ConfigurationError("streams must be >= 1")
        return streams

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"{type(self).__name__}({self.name!r}, "
                f"read={self.read_rate().human()}, "
                f"write={self.write_rate().human()})")


@dataclass(repr=False)
class SingleDisk(StorageSystem):
    """One spinning disk or SSD.

    Sequential rate degrades with concurrent streams on spinning media
    (seek thrash); SSDs set ``seek_penalty=0``.
    """

    name: str = "disk"
    sequential_rate: DataRate = field(default_factory=lambda: MBps(150))
    seek_penalty: float = 0.15  # fractional rate loss per extra stream
    shared_with_compute: bool = False

    def __post_init__(self) -> None:
        if self.sequential_rate.bps <= 0:
            raise ConfigurationError("sequential_rate must be positive")
        if not 0.0 <= self.seek_penalty < 1.0:
            raise ConfigurationError("seek_penalty must be in [0,1)")

    def _rate(self, streams: int) -> DataRate:
        streams = self._check_streams(streams)
        factor = max(0.1, 1.0 - self.seek_penalty * (streams - 1))
        return DataRate(self.sequential_rate.bps * factor)

    def read_rate(self, streams: int = 1) -> DataRate:
        return self._rate(streams)

    def write_rate(self, streams: int = 1) -> DataRate:
        return self._rate(streams)


@dataclass(repr=False)
class RaidArray(StorageSystem):
    """A local RAID array: near-linear scaling to the controller limit."""

    name: str = "raid"
    disks: int = 8
    per_disk_rate: DataRate = field(default_factory=lambda: MBps(150))
    controller_limit: DataRate = field(default_factory=lambda: GBps(1.2))
    write_efficiency: float = 0.8  # parity overhead
    shared_with_compute: bool = False

    def __post_init__(self) -> None:
        if self.disks < 1:
            raise ConfigurationError("RAID needs at least one disk")
        if not 0.0 < self.write_efficiency <= 1.0:
            raise ConfigurationError("write_efficiency must be in (0,1]")

    def read_rate(self, streams: int = 1) -> DataRate:
        self._check_streams(streams)
        raw = self.per_disk_rate.bps * self.disks
        return DataRate(min(raw, self.controller_limit.bps))

    def write_rate(self, streams: int = 1) -> DataRate:
        self._check_streams(streams)
        raw = self.per_disk_rate.bps * self.disks * self.write_efficiency
        return DataRate(min(raw, self.controller_limit.bps))


@dataclass(repr=False)
class StorageAreaNetwork(StorageSystem):
    """A SAN connection: rate bounded by the fabric link (FC/iSCSI)."""

    name: str = "san"
    fabric_rate: DataRate = field(default_factory=lambda: GBps(1.6))
    array_rate: DataRate = field(default_factory=lambda: GBps(4))
    shared_with_compute: bool = False

    def read_rate(self, streams: int = 1) -> DataRate:
        self._check_streams(streams)
        return DataRate(min(self.fabric_rate.bps, self.array_rate.bps))

    def write_rate(self, streams: int = 1) -> DataRate:
        return self.read_rate(streams)


@dataclass(repr=False)
class ParallelFilesystem(StorageSystem):
    """Lustre/GPFS-style parallel filesystem.

    Aggregate bandwidth scales with object storage targets; a single
    client is bounded by its own network/client stack
    (``per_client_limit``), and parallel streams on one client approach
    that limit.  ``shared_with_compute=True`` is the §4.2 design point:
    data written by the DTN is immediately visible to the supercomputer.
    """

    name: str = "parallel-fs"
    ost_count: int = 32
    per_ost_rate: DataRate = field(default_factory=lambda: MBps(500))
    per_client_limit: DataRate = field(default_factory=lambda: GBps(2.5))
    shared_with_compute: bool = True

    def __post_init__(self) -> None:
        if self.ost_count < 1:
            raise ConfigurationError("need at least one OST")

    @property
    def aggregate_rate(self) -> DataRate:
        return DataRate(self.ost_count * self.per_ost_rate.bps)

    def _client_rate(self, streams: int) -> DataRate:
        streams = self._check_streams(streams)
        # One stream reaches ~40% of the client limit (single-threaded
        # posix I/O); more streams approach the limit harmonically.
        frac = min(1.0, 0.4 + 0.2 * (streams - 1))
        rate = self.per_client_limit.bps * frac
        return DataRate(min(rate, self.aggregate_rate.bps))

    def read_rate(self, streams: int = 1) -> DataRate:
        return self._client_rate(streams)

    def write_rate(self, streams: int = 1) -> DataRate:
        return self._client_rate(streams)

"""Host system profiles: the tuned-DTN vs general-purpose distinction.

A :class:`HostSystemProfile` captures the kernel/NIC/storage configuration
of an end host and attaches to a topology :class:`~repro.netsim.node.Host`
as a transit element, so every flow terminating at (or passing through)
the host inherits its TCP buffer ceiling and the host's application mix.

The paper's §3.2 distinction is encoded in two constructors:

* :func:`untuned_host` — a general-purpose machine: stock TCP buffers
  (small relative to WAN BDPs), standard 1500-byte MTU, Reno-era
  congestion control, competing application load.
* :func:`tuned_dtn` — the ESnet reference DTN: large buffers, jumbo
  frames, H-TCP/CUBIC, no general-purpose applications installed.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

from ..errors import ConfigurationError
from ..netsim.node import FlowContext, Host
from ..units import DataRate, DataSize, MB, TimeDelta, bytes_, seconds
from .storage import StorageSystem

__all__ = ["HostSystemProfile", "untuned_host", "tuned_dtn", "attach_profile"]

#: General-purpose applications found on non-dedicated hosts (§3.2 lists
#: what must NOT be on a DTN).
GENERAL_PURPOSE_APPS = (
    "email-client", "web-browser", "document-editor", "media-player",
)

#: The limited application set of a proper DTN.
DTN_APPS = ("gridftp", "globus", "fdt", "xrootd", "hpn-ssh")


@dataclass
class HostSystemProfile:
    """Kernel/NIC/storage configuration of one end host.

    Attributes
    ----------
    tcp_buffer_max:
        Socket buffer autotuning ceiling — bounds the receive window.
    mtu:
        Host interface MTU (9000 for jumbo-frame DTNs).
    congestion_algorithm:
        Kernel congestion-control module name ('reno', 'htcp', 'cubic').
    dedicated:
        True for purpose-built DTNs; False for general-purpose machines.
    installed_apps:
        What runs on the box; audited by the dedicated-systems pattern.
    app_cpu_ceiling:
        Rate ceiling from host CPU contention (general-purpose load,
        underpowered cores); None = NIC-limited only.
    storage:
        Storage backend, consulted by the transfer planner.
    """

    name: str = "host-profile"
    tcp_buffer_max: DataSize = field(default_factory=lambda: MB(4))
    mtu: DataSize = field(default_factory=lambda: bytes_(1500))
    congestion_algorithm: str = "reno"
    dedicated: bool = False
    installed_apps: tuple = GENERAL_PURPOSE_APPS
    app_cpu_ceiling: Optional[DataRate] = None
    storage: Optional[StorageSystem] = None

    def __post_init__(self) -> None:
        if self.tcp_buffer_max.bits <= 0:
            raise ConfigurationError("tcp_buffer_max must be positive")
        if self.mtu.bytes < 576:
            raise ConfigurationError("MTU must be at least 576 bytes")

    # -- PathElement protocol ------------------------------------------------------
    def element_latency(self) -> TimeDelta:
        return seconds(0)

    def element_capacity(self) -> Optional[DataRate]:
        return self.app_cpu_ceiling

    def element_loss_probability(self) -> float:
        return 0.0

    def transform_flow(self, ctx: FlowContext) -> FlowContext:
        """Set the receive-window ceiling from this host's buffers and
        clamp the MSS to this host's MTU.

        The window is *set*, not min-ed: the receive window is a property
        of the receiving host's socket buffers, and path elements are
        folded in path order, so the destination host (the last element)
        decides — which is exactly TCP's semantics.  A tuned DTN therefore
        raises the ceiling above the conservative default, and an untuned
        host lowers it.
        """
        mss_cap = self.mtu.bits - 40 * 8
        mss = min(ctx.mss.bits, mss_cap)
        return ctx.with_(
            max_receive_window=self.tcp_buffer_max,
            mss=DataSize(max(mss, 64 * 8)),
        )

    # -- convenience ------------------------------------------------------------------
    def with_(self, **changes) -> "HostSystemProfile":
        return replace(self, **changes)

    def runs_general_purpose_apps(self) -> bool:
        return any(app in GENERAL_PURPOSE_APPS for app in self.installed_apps)

    def describe(self) -> str:
        kind = "dedicated DTN" if self.dedicated else "general-purpose host"
        return (
            f"{self.name}: {kind}, buffers {self.tcp_buffer_max.human()}, "
            f"MTU {self.mtu.bytes:.0f}B, cc={self.congestion_algorithm}, "
            f"apps={','.join(self.installed_apps)}"
        )


def untuned_host(name: str = "untuned",
                 storage: Optional[StorageSystem] = None) -> HostSystemProfile:
    """A stock general-purpose machine (the campus desktop/server)."""
    return HostSystemProfile(
        name=name,
        tcp_buffer_max=MB(4),
        mtu=bytes_(1500),
        congestion_algorithm="reno",
        dedicated=False,
        installed_apps=GENERAL_PURPOSE_APPS,
        app_cpu_ceiling=None,
        storage=storage,
    )


def tuned_dtn(name: str = "dtn",
              storage: Optional[StorageSystem] = None,
              *,
              buffer_max: DataSize = MB(256)) -> HostSystemProfile:
    """An ESnet-reference-style DTN: big buffers, jumbo frames, H-TCP,
    nothing installed but data movers (§3.2)."""
    return HostSystemProfile(
        name=name,
        tcp_buffer_max=buffer_max,
        mtu=bytes_(9000),
        congestion_algorithm="htcp",
        dedicated=True,
        installed_apps=DTN_APPS,
        app_cpu_ceiling=None,
        storage=storage,
    )


def attach_profile(host: Host, profile: HostSystemProfile) -> Host:
    """Attach a system profile to a topology host (stored in meta and as a
    transit element so flows inherit the tuning)."""
    if not isinstance(host, Host):
        raise ConfigurationError("attach_profile requires a Host node")
    existing = host.meta.get("host_profile")
    if existing is not None:
        host.detach(existing)
    host.meta["host_profile"] = profile
    host.attach(profile)
    return host

"""End-to-end transfer planning and execution.

Combines the four factors that decide how long a science data transfer
takes — the path (network), the hosts (kernel tuning), the tool
(streams/windows/cipher), and the storage at both ends — into one
executable plan.  The case-study benches (§6.3 NOAA, §6.4 NERSC/OLCF) are
built directly on this.

Model: the per-stream TCP behaviour is simulated with the fluid
:class:`~repro.tcp.connection.TcpConnection` (so loss, RTT and window
clamps act exactly as in the single-flow experiments); parallel streams
aggregate additively up to the path capacity (valid when loss, not
fairness, is the binding constraint — the regime of every case study);
storage read/write rates and tool overheads then bound the result.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Optional

import numpy as np

from ..errors import ConfigurationError, TransferError
from ..netsim.topology import PathProfile, Topology
from ..tcp.congestion import algorithm_by_name
from ..tcp.connection import TcpConnection, TransferResult
from ..telemetry.tracer import NULL_TRACER
from ..units import DataRate, DataSize, TimeDelta, bits, seconds
from .host import HostSystemProfile
from .tools import TransferTool, tool_by_name

__all__ = ["Dataset", "TransferPlan", "TransferReport"]


@dataclass(frozen=True)
class Dataset:
    """A collection of files to move."""

    name: str
    total_size: DataSize
    file_count: int = 1

    def __post_init__(self) -> None:
        if self.total_size.bits <= 0:
            raise ConfigurationError("dataset must have positive size")
        if self.file_count < 1:
            raise ConfigurationError("dataset needs at least one file")

    @property
    def mean_file_size(self) -> DataSize:
        return DataSize(self.total_size.bits / self.file_count)

    def describe(self) -> str:
        return (f"{self.name}: {self.total_size.human()} in "
                f"{self.file_count} files "
                f"(mean {self.mean_file_size.human()})")


#: Residual per-packet corruption probability that survives the TCP
#: checksum (the classic Stone & Partridge observation: roughly one bad
#: segment per 1e7-1e8 escapes detection).  This is why Globus-style
#: end-to-end checksumming and auto-retry exist.
CORRUPTION_PER_PACKET = 1e-8


@dataclass
class TransferReport:
    """Outcome of a planned transfer, with the limiting-factor breakdown."""

    dataset: Dataset
    tool: TransferTool
    duration: TimeDelta
    network_rate: DataRate        # aggregate TCP rate achievable on the path
    storage_read_rate: DataRate
    storage_write_rate: DataRate
    effective_rate: DataRate      # what the transfer actually sustained
    overhead_time: TimeDelta      # control-channel / per-file costs
    limiting_factor: str          # 'network' | 'source-storage' | ...
    per_stream_result: TransferResult = None
    #: Expected number of files that were corrupted in flight, detected by
    #: the tool's checksums, and automatically re-sent (0 for tools
    #: without integrity verification).
    expected_retried_files: float = 0.0
    #: Expected number of files delivered *silently corrupted* — the fate
    #: of integrity failures when the tool neither checksums nor retries.
    expected_corrupt_files: float = 0.0

    @property
    def mean_throughput(self) -> DataRate:
        if self.duration.s <= 0:
            return DataRate(0)
        return DataRate(self.dataset.total_size.bits / self.duration.s)

    def summary(self) -> str:
        return (
            f"{self.dataset.name} via {self.tool.name} x{self.tool.streams}: "
            f"{self.dataset.total_size.human()} in {self.duration.human()} "
            f"= {self.mean_throughput.human()} "
            f"({self.mean_throughput.MBps:.1f} MB/s), "
            f"limited by {self.limiting_factor}"
        )


class TransferPlan:
    """A concrete plan: dataset + tool + endpoints over a topology.

    Parameters
    ----------
    topology:
        Network containing both endpoints.
    src, dst:
        Host node names.  If the hosts carry
        :class:`~repro.dtn.host.HostSystemProfile` objects (via
        :func:`~repro.dtn.host.attach_profile`), their buffers, MTU,
        congestion control and storage participate automatically.
    dataset:
        What to move.
    tool:
        Transfer tool name or instance.
    policy:
        Routing-policy kwargs (science vs enterprise path).
    """

    def __init__(
        self,
        topology: Topology,
        src: str,
        dst: str,
        dataset: Dataset,
        tool,
        *,
        policy: Optional[dict] = None,
    ) -> None:
        self.topology = topology
        self.src = src
        self.dst = dst
        self.dataset = dataset
        self.tool = tool_by_name(tool) if isinstance(tool, str) else tool
        if not isinstance(self.tool, TransferTool):
            raise ConfigurationError("tool must be a name or TransferTool")
        self.policy = dict(policy or {})

    # -- profile assembly -------------------------------------------------------
    def _host_profile(self, node_name: str) -> Optional[HostSystemProfile]:
        node = self.topology.node(node_name)
        profile = node.meta.get("host_profile")
        return profile if isinstance(profile, HostSystemProfile) else None

    def path_profile(self) -> PathProfile:
        """The network profile with tool-level constraints folded in."""
        profile = self.topology.profile_between(self.src, self.dst,
                                                **self.policy)
        ctx = profile.flow
        # Tool's internal buffer caps the window below the kernel's.
        window = self.tool.effective_window(ctx.max_receive_window)
        changes = {"max_receive_window": window}
        cap = self.tool.per_stream_rate_cap()
        if cap is not None:
            prior = ctx.sender_rate_limit
            changes["sender_rate_limit"] = (
                cap if prior is None else DataRate(min(cap.bps, prior.bps))
            )
        return replace(profile, flow=ctx.with_(**changes))

    def _congestion_algorithm(self):
        profile = self._host_profile(self.src)
        name = profile.congestion_algorithm if profile else "reno"
        return algorithm_by_name(name)

    # -- execution -----------------------------------------------------------------
    def execute(self, rng: Optional[np.random.Generator] = None,
                *, max_rounds: int = 200_000,
                tracer=None, trace_offset: float = 0.0) -> TransferReport:
        """Run the transfer; returns the report with limiting factors.

        Pass a :class:`~repro.telemetry.tracer.Tracer` to get a span
        for the whole transfer (wrapping the representative stream's
        own span and loss events) plus counters for retried/corrupted
        files; ``trace_offset`` anchors the stamps in a shared timeline.
        """
        tracer = tracer if tracer is not None else NULL_TRACER
        profile = self.path_profile()
        if profile.random_loss > 0 and rng is None:
            raise TransferError(
                "path has random loss; execute() requires an rng"
            )
        streams = self.tool.streams
        per_stream_size = DataSize(self.dataset.total_size.bits / streams)

        if tracer.enabled:
            tracer.event(
                "dtn", "transfer", t=trace_offset, phase="B",
                dataset=self.dataset.name, src=self.src, dst=self.dst,
                tool=self.tool.name, streams=streams,
                size_bytes=self.dataset.total_size.bytes,
                files=self.dataset.file_count,
            )
        # Simulate one representative stream moving its share.
        conn = TcpConnection(profile, algorithm=self._congestion_algorithm(),
                             rng=rng, tracer=tracer,
                             trace_offset=trace_offset)
        stream_result = conn.transfer(per_stream_size, max_rounds=max_rounds)
        stream_rate = stream_result.mean_throughput

        # Aggregate: additive up to path capacity.
        network_rate = DataRate(
            min(stream_rate.bps * streams, profile.capacity.bps)
        )

        # Storage at both ends.
        src_prof = self._host_profile(self.src)
        dst_prof = self._host_profile(self.dst)
        read_rate = (src_prof.storage.read_rate(streams)
                     if src_prof and src_prof.storage else DataRate(float("inf")))
        write_rate = (dst_prof.storage.write_rate(streams)
                      if dst_prof and dst_prof.storage else DataRate(float("inf")))

        rates = {
            "network": network_rate.bps,
            "source-storage": read_rate.bps,
            "destination-storage": write_rate.bps,
        }
        limiting_factor = min(rates, key=rates.get)
        effective = rates[limiting_factor]
        if effective <= 0 or math.isnan(effective):
            raise TransferError("transfer cannot make progress (zero rate)")

        # Integrity verification inflates the bytes moved/processed.
        payload_bits = self.dataset.total_size.bits * (
            1.0 + self.tool.checksum_overhead
        )
        transfer_time = payload_bits / effective
        # Per-file control-channel costs, amortized across streams.
        overhead = (self.dataset.file_count * self.tool.per_file_overhead.s
                    / streams)

        # Residual corruption: TCP's checksum lets roughly one bad segment
        # per 1e8 through.  Checksumming tools detect and re-send those
        # files (costing time); non-checksumming tools deliver them
        # silently corrupted (costing science).
        packets_per_file = max(
            1.0, self.dataset.mean_file_size.bits / profile.flow.mss.bits)
        p_corrupt = 1.0 - (1.0 - CORRUPTION_PER_PACKET) ** packets_per_file
        retried = corrupt = 0.0
        verifies = (self.tool.checksum_overhead > 0
                    or self.tool.restart_on_failure)
        if verifies and p_corrupt > 0:
            retried = self.dataset.file_count * p_corrupt / (1.0 - p_corrupt)
            transfer_time *= 1.0 + p_corrupt / (1.0 - p_corrupt)
        else:
            corrupt = self.dataset.file_count * p_corrupt
        duration = seconds(transfer_time + overhead)

        if tracer.enabled:
            tracer.event("dtn", "transfer", phase="E",
                         t=trace_offset + duration.s)
            tracer.event(
                "dtn", "transfer-done", t=trace_offset + duration.s,
                dataset=self.dataset.name, limiting_factor=limiting_factor,
                effective_rate_bps=effective, duration_s=duration.s,
                retried_files=retried, corrupt_files=corrupt,
            )
            tracer.counter("transfers", component="dtn").inc()
            tracer.counter("files_moved", component="dtn").inc(
                self.dataset.file_count)
            if retried:
                tracer.counter("files_retried", component="dtn").inc(retried)
            if corrupt:
                tracer.counter("files_corrupted",
                               component="dtn").inc(corrupt)

        return TransferReport(
            dataset=self.dataset,
            tool=self.tool,
            duration=duration,
            network_rate=network_rate,
            storage_read_rate=(DataRate(read_rate.bps)
                               if math.isfinite(read_rate.bps)
                               else DataRate(0)),
            storage_write_rate=(DataRate(write_rate.bps)
                                if math.isfinite(write_rate.bps)
                                else DataRate(0)),
            effective_rate=DataRate(effective),
            overhead_time=seconds(overhead),
            limiting_factor=limiting_factor,
            per_stream_result=stream_result,
            expected_retried_files=retried,
            expected_corrupt_files=corrupt,
        )

    def execute_multiflow(
        self,
        rng: Optional[np.random.Generator] = None,
        *,
        max_ticks: int = 2_000_000,
    ) -> TransferReport:
        """Execute using the full multi-flow simulator instead of the
        additive-stream composition.

        Runs the tool's parallel streams as genuinely competing TCP flows
        through :class:`repro.tcp.simulate.MultiFlowSimulation` (so
        intra-transfer fairness and shared-bottleneck queueing are
        simulated, not assumed), then applies the same storage/overhead
        accounting.  Slower but assumption-free; the analytic mode is
        cross-validated against it in the test suite.
        """
        from ..netsim.flow import FlowSpec
        from ..tcp.simulate import MultiFlowSimulation

        profile = self.path_profile()
        if profile.random_loss > 0 and rng is None:
            raise TransferError(
                "path has random loss; execute_multiflow() requires an rng"
            )
        spec = FlowSpec(
            src=self.src, dst=self.dst, size=self.dataset.total_size,
            parallel_streams=self.tool.streams,
            rate_limit=(None if self.tool.per_stream_rate_cap() is None else
                        DataRate(self.tool.per_stream_rate_cap().bps
                                 * self.tool.streams)),
            policy=self.policy, label="transfer",
        )
        algo = self._congestion_algorithm()
        sim = MultiFlowSimulation(self.topology, [spec], rng=rng,
                                  algorithm=algo)
        progress = sim.run(max_ticks=max_ticks)["transfer"]
        if not progress.done:
            raise TransferError("multiflow transfer did not complete")
        network_time = progress.finish_time.s
        network_rate = DataRate(self.dataset.total_size.bits / network_time)

        src_prof = self._host_profile(self.src)
        dst_prof = self._host_profile(self.dst)
        streams = self.tool.streams
        read_rate = (src_prof.storage.read_rate(streams)
                     if src_prof and src_prof.storage else DataRate(float("inf")))
        write_rate = (dst_prof.storage.write_rate(streams)
                      if dst_prof and dst_prof.storage else DataRate(float("inf")))
        rates = {
            "network": network_rate.bps,
            "source-storage": read_rate.bps,
            "destination-storage": write_rate.bps,
        }
        limiting_factor = min(rates, key=rates.get)
        effective = rates[limiting_factor]
        payload_bits = self.dataset.total_size.bits * (
            1.0 + self.tool.checksum_overhead)
        transfer_time = payload_bits / effective
        overhead = (self.dataset.file_count * self.tool.per_file_overhead.s
                    / streams)
        duration = seconds(transfer_time + overhead)
        return TransferReport(
            dataset=self.dataset,
            tool=self.tool,
            duration=duration,
            network_rate=network_rate,
            storage_read_rate=(DataRate(read_rate.bps)
                               if math.isfinite(read_rate.bps)
                               else DataRate(0)),
            storage_write_rate=(DataRate(write_rate.bps)
                                if math.isfinite(write_rate.bps)
                                else DataRate(0)),
            effective_rate=DataRate(effective),
            overhead_time=seconds(overhead),
            limiting_factor=limiting_factor,
            per_stream_result=None,
        )

"""Data Transfer Node (DTN) models.

§3.2: "Systems used for wide area science data transfers perform far
better if they are purpose-built for and dedicated to this function."
This package models the pieces that make that true:

* :mod:`repro.dtn.storage` — storage subsystems (single disk, RAID, SAN,
  parallel filesystems) with stream-dependent read/write rates and the
  double-copy penalty the supercomputer design avoids (§4.2).
* :mod:`repro.dtn.host` — host system profiles: TCP buffer limits, MTU,
  congestion control, the dedicated-vs-general-purpose distinction; a
  profile attaches to a topology host and shapes every flow through it.
* :mod:`repro.dtn.tools` — transfer tool models: ftp, scp, HPN-scp,
  GridFTP, Globus Online, FDT, XRootD (§3.2's tool list).
* :mod:`repro.dtn.transfer` — the end-to-end transfer planner/executor
  combining dataset, tool, hosts, and path into elapsed time.
* :mod:`repro.dtn.tuning` — the ESnet DTN tuning guide as executable
  checks.
"""

from .storage import (
    StorageSystem,
    SingleDisk,
    RaidArray,
    StorageAreaNetwork,
    ParallelFilesystem,
)
from .host import HostSystemProfile, untuned_host, tuned_dtn, attach_profile
from .tools import TransferTool, TOOL_REGISTRY, tool_by_name
from .transfer import Dataset, TransferPlan, TransferReport
from .tuning import TuningFinding, audit_host, REQUIRED_CHECKS
from .mover import JobState, TransferJob, TransferService

__all__ = [
    "JobState",
    "TransferJob",
    "TransferService",
    "StorageSystem",
    "SingleDisk",
    "RaidArray",
    "StorageAreaNetwork",
    "ParallelFilesystem",
    "HostSystemProfile",
    "untuned_host",
    "tuned_dtn",
    "attach_profile",
    "TransferTool",
    "TOOL_REGISTRY",
    "tool_by_name",
    "Dataset",
    "TransferPlan",
    "TransferReport",
    "TuningFinding",
    "audit_host",
    "REQUIRED_CHECKS",
]

"""Domains, peering policy, and the federation build step.

A federation instantiates each :class:`~repro.federation.spec.DomainSpec`
as an administrative domain with its own topology and OSCARS service
(§7.1's per-domain circuit controller), joins mutually-declared peers at
exchange-point routers, and reuses the
:class:`~repro.circuits.multidomain.InterDomainController` for
end-to-end circuit reservation across the mesh.

Policy is enforced at two seams:

* **peering is mutual** — a domain listing a peer that does not list it
  back is a configuration error, caught at build time;
* **stubs never transit** — route computation only admits paths whose
  interior domains are all ``transit`` role, so a campus can never end
  up carrying another campus's traffic even if the raw peering graph
  would allow the shortcut.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import networkx as nx

from ..circuits.multidomain import Domain, InterDomainController
from ..circuits.oscars import OscarsService
from ..devices.cache import CacheDevice
from ..dtn.host import attach_profile, tuned_dtn
from ..dtn.storage import ParallelFilesystem
from ..errors import ConfigurationError, RoutingError
from ..netsim.link import JUMBO_MTU, Link
from ..netsim.node import Host, Router
from ..netsim.topology import PathProfile, Topology
from ..units import GB, Gbps, hours, ms, seconds
from .spec import FederationSpec, ROLE_TRANSIT

__all__ = ["FederationDomain", "Federation", "build_federation",
           "exchange_name"]


def exchange_name(a: str, b: str) -> str:
    """Canonical exchange-point node shared by a peering pair."""
    lo, hi = sorted((a, b))
    return f"ix-{lo}-{hi}"


@dataclass
class FederationDomain:
    """One instantiated domain: topology, circuit service, cache."""

    name: str
    role: str
    peers: Tuple[str, ...]
    topology: Topology
    oscars: OscarsService
    site_host: str
    border: str
    cache: Optional[CacheDevice] = None

    def as_circuit_domain(self) -> Domain:
        return Domain(name=self.name, topology=self.topology,
                      oscars=self.oscars)


class Federation:
    """The built multi-domain system a :class:`FederationSpec` describes."""

    def __init__(self, spec: FederationSpec, *,
                 scale: float = 1.0) -> None:
        if scale <= 0:
            raise ConfigurationError("cache scale must be > 0")
        self.spec = spec
        self.scale = float(scale)
        self.domains: Dict[str, FederationDomain] = {}
        self._build_domains()
        self._peering_graph = self._check_peering()
        self.idc = InterDomainController(
            [d.as_circuit_domain() for d in self.domains.values()],
            [(a, b, exchange_name(a, b))
             for a, b in self._peering_graph.edges],
        )

    # -- construction ------------------------------------------------------
    def _build_domains(self) -> None:
        spec = self.spec
        link_rate = Gbps(spec.link_gbps)
        for dom in spec.domains:
            topo = Topology(name=dom.name)
            border = topo.add_node(Router(name=f"{dom.name}-border"))
            site = topo.add_node(Host(name=f"{dom.name}-dtn"))
            attach_profile(site, tuned_dtn(
                f"{dom.name}-dtn", ParallelFilesystem()))
            topo.connect(site, border, Link(
                rate=link_rate, delay=ms(0.1), mtu=JUMBO_MTU,
                tags=("science",)))
            cache = None
            if dom.cache_gb > 0:
                cache = CacheDevice(
                    name=f"{dom.name}-cache",
                    capacity=GB(dom.cache_gb * self.scale),
                    policy=dom.cache_policy,
                    tier="regional" if dom.role == ROLE_TRANSIT else "site",
                )
                # Transparent on the path; lives at the domain border.
                border.attach(cache)
            self.domains[dom.name] = FederationDomain(
                name=dom.name, role=dom.role, peers=dom.peers,
                topology=topo, oscars=OscarsService(topo),
                site_host=site.name, border=border.name, cache=cache,
            )

    def _check_peering(self) -> "nx.Graph":
        """Mutual-consent peering graph; exchange routers added to both."""
        graph = nx.Graph()
        graph.add_nodes_from(self.domains)
        spec = self.spec
        link_rate = Gbps(spec.link_gbps)
        # Each peering crossing contributes half the configured RTT
        # one-way, split across its two border->exchange links.
        hop_delay = ms(spec.link_rtt_ms / 4.0)
        for dom in spec.domains:
            for peer in dom.peers:
                peer_spec = next(d for d in spec.domains if d.name == peer)
                if dom.name not in peer_spec.peers:
                    raise ConfigurationError(
                        f"asymmetric peering: {dom.name!r} lists "
                        f"{peer!r} but {peer!r} does not list "
                        f"{dom.name!r} back"
                    )
                if graph.has_edge(dom.name, peer):
                    continue
                ix = exchange_name(dom.name, peer)
                for side in (dom.name, peer):
                    topo = self.domains[side].topology
                    ix_node = topo.add_node(Router(name=ix))
                    topo.connect(self.domains[side].border, ix_node, Link(
                        rate=link_rate, delay=hop_delay, mtu=JUMBO_MTU,
                        tags=("science", "interdomain")))
                graph.add_edge(dom.name, peer)
        return graph

    # -- policy-aware routing ----------------------------------------------
    def route(self, src: str, dst: str) -> List[str]:
        """Domain-level route honoring the stub-never-transits rule.

        Interior domains must all be ``transit`` role; stubs may only
        appear as endpoints.  Raises :class:`RoutingError` when no
        policy-compliant route exists.
        """
        for name in (src, dst):
            if name not in self.domains:
                raise ConfigurationError(f"unknown domain {name!r}")
        if src == dst:
            return [src]
        admissible = nx.subgraph_view(
            self._peering_graph,
            filter_node=lambda n: (
                n in (src, dst) or self.domains[n].role == ROLE_TRANSIT),
        )
        try:
            return nx.shortest_path(admissible, src, dst)
        except (nx.NetworkXNoPath, nx.NodeNotFound):
            raise RoutingError(
                f"no policy-compliant route from domain {src!r} to "
                f"{dst!r} (stubs never transit)"
            ) from None

    def tier_chain(self, client: str) -> List[CacheDevice]:
        """Caches a client's request consults, nearest first.

        The client's own site cache, then each transit domain's cache
        along the policy route toward the origin.  The origin domain's
        cache (if any) is excluded — past the last tier the request is
        served by the origin DTN itself.
        """
        chain: List[CacheDevice] = []
        for name in self.route(client, self.spec.origin)[:-1]:
            cache = self.domains[name].cache
            if cache is not None:
                chain.append(cache)
        return chain

    def caches(self) -> Dict[str, CacheDevice]:
        """Every deployed cache, keyed by domain name."""
        return {name: dom.cache for name, dom in self.domains.items()
                if dom.cache is not None}

    def circuit_profile(self, client: str) -> PathProfile:
        """Stitched profile of a guaranteed circuit client-DTN -> origin.

        Reserves half the inter-domain link rate end-to-end through the
        :class:`InterDomainController` (all-or-nothing across domains),
        captures the stitched profile, and releases the reservation —
        the federation only needs the path view, not a held calendar
        slot.  The circuit's domain sequence must match the policy
        route; a mismatch means the raw peering graph offered a
        stub-transit shortcut, which is a routing-policy violation.
        """
        policy_route = self.route(client, self.spec.origin)
        circuit = self.idc.reserve_end_to_end(
            self.domains[client].site_host,
            self.domains[self.spec.origin].site_host,
            Gbps(self.spec.link_gbps / 2.0),
            start=seconds(0), end=hours(1),
            description=f"{client} -> {self.spec.origin} federation feed",
        )
        try:
            if list(circuit.domain_names) != policy_route:
                raise RoutingError(
                    f"circuit route {list(circuit.domain_names)} violates "
                    f"policy route {policy_route} for {client!r}"
                )
            return circuit.profile
        finally:
            self.idc.release(circuit)


def build_federation(spec: FederationSpec, *,
                     scale: float = 1.0) -> Federation:
    """Instantiate the federation a spec describes at one cache scale."""
    return Federation(spec, scale=scale)

"""FederationSpec: a multi-domain cache-placement experiment as data.

The fifth :class:`~repro.experiment.spec.ExperimentSpec` kind
(``"federation"``): a set of administrative domains with per-domain
policy (allowed peers, transit vs stub role, cache size/policy), a
working-set-skewed object workload, and a tuple of *cache scales* — the
placement sweep.  Running the spec replays the same request trace once
per scale and reports the hit-rate / byte-savings curve, reproducing
the in-network caching literature's hit-rate-vs-cache-size measurement.

Same contract as every other kind: frozen, lossless JSON round-trip,
canonical digest, runnable through ``repro run`` with golden gating,
result-cached per grid point.  The kind registers lazily — parsing a
``"kind": "federation"`` file imports :mod:`repro.federation` on
demand, exactly like the chaos campaign kind.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import ClassVar, Dict, Mapping, Tuple

from ..devices.cache import CACHE_POLICIES
from ..errors import ConfigurationError
from ..experiment.spec import ExperimentSpec, register_spec_kind

__all__ = [
    "CacheWorkloadSpec",
    "DomainSpec",
    "FederationSpec",
    "ROLE_STUB",
    "ROLE_TRANSIT",
    "default_federation_spec",
]

#: A stub domain originates/consumes data but never forwards for others.
ROLE_STUB = "stub"
#: A transit domain (a regional) may carry other domains' traffic — and
#: is where the shared in-network caches live.
ROLE_TRANSIT = "transit"


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise ConfigurationError(message)


@dataclass(frozen=True)
class DomainSpec:
    """One administrative domain: identity, policy, cache provisioning.

    ``peers`` is the domain's allowed-peer list — an inter-domain
    circuit link exists only where two domains name *each other* (the
    build step rejects asymmetric peering).  ``cache_gb`` of 0 means
    the domain deploys no cache.
    """

    name: str
    role: str = ROLE_STUB
    peers: Tuple[str, ...] = ()
    cache_gb: float = 0.0
    cache_policy: str = "lru"

    def __post_init__(self) -> None:
        _require(bool(self.name), "domain name must be non-empty")
        _require(self.role in (ROLE_STUB, ROLE_TRANSIT),
                 f"domain {self.name!r}: role must be "
                 f"{ROLE_STUB!r} or {ROLE_TRANSIT!r}, got {self.role!r}")
        _require(self.cache_gb >= 0,
                 f"domain {self.name!r}: cache_gb must be >= 0")
        _require(self.cache_policy in CACHE_POLICIES,
                 f"domain {self.name!r}: cache_policy must be one of "
                 f"{', '.join(CACHE_POLICIES)}")
        _require(self.name not in self.peers,
                 f"domain {self.name!r} cannot peer with itself")

    def to_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "role": self.role,
            "peers": list(self.peers),
            "cache_gb": self.cache_gb,
            "cache_policy": self.cache_policy,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "DomainSpec":
        return cls(
            name=str(data["name"]),
            role=str(data.get("role", ROLE_STUB)),
            peers=tuple(str(p) for p in data.get("peers") or ()),
            cache_gb=float(data.get("cache_gb", 0.0)),
            cache_policy=str(data.get("cache_policy", "lru")),
        )


@dataclass(frozen=True)
class CacheWorkloadSpec:
    """The Zipf working-set workload one federation run replays."""

    objects: int = 200
    requests_per_round: int = 100
    rounds: int = 4
    alpha: float = 1.1
    mean_object_gb: float = 2.0
    size_sigma: float = 0.6

    def __post_init__(self) -> None:
        _require(self.objects >= 1, "workload needs objects >= 1")
        _require(self.requests_per_round >= 1,
                 "workload needs requests_per_round >= 1")
        _require(self.rounds >= 1, "workload needs rounds >= 1")
        _require(self.alpha >= 0, "workload alpha must be >= 0")
        _require(self.mean_object_gb > 0,
                 "workload mean_object_gb must be > 0")
        _require(self.size_sigma >= 0, "workload size_sigma must be >= 0")

    def to_dict(self) -> Dict[str, object]:
        return {
            "objects": self.objects,
            "requests_per_round": self.requests_per_round,
            "rounds": self.rounds,
            "alpha": self.alpha,
            "mean_object_gb": self.mean_object_gb,
            "size_sigma": self.size_sigma,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "CacheWorkloadSpec":
        return cls(
            objects=int(data.get("objects", 200)),
            requests_per_round=int(data.get("requests_per_round", 100)),
            rounds=int(data.get("rounds", 4)),
            alpha=float(data.get("alpha", 1.1)),
            mean_object_gb=float(data.get("mean_object_gb", 2.0)),
            size_sigma=float(data.get("size_sigma", 0.6)),
        )


@register_spec_kind
@dataclass(frozen=True)
class FederationSpec(ExperimentSpec):
    """A multi-domain federation with in-network caches, as one document."""

    kind: ClassVar[str] = "federation"

    domains: Tuple[DomainSpec, ...] = ()
    #: Name of the domain whose DTN holds the origin copy of the data.
    origin: str = ""
    workload: CacheWorkloadSpec = field(default_factory=CacheWorkloadSpec)
    #: The cache-placement sweep: every committed cache size is
    #: multiplied by each scale and the workload replayed per scale.
    cache_scales: Tuple[float, ...] = (1.0,)
    #: Inter-domain circuit link provisioning.
    link_gbps: float = 100.0
    link_rtt_ms: float = 20.0

    def __post_init__(self) -> None:
        super().__post_init__()
        _require(len(self.domains) >= 2,
                 "a federation needs at least two domains")
        names = [d.name for d in self.domains]
        _require(len(set(names)) == len(names),
                 f"duplicate domain names in federation {self.name!r}")
        _require(self.origin in names,
                 f"origin {self.origin!r} is not one of the federation's "
                 f"domains ({', '.join(names)})")
        known = set(names)
        for domain in self.domains:
            for peer in domain.peers:
                _require(peer in known,
                         f"domain {domain.name!r} peers with unknown "
                         f"domain {peer!r}")
        clients = [d.name for d in self.domains
                   if d.role == ROLE_STUB and d.name != self.origin]
        _require(len(clients) >= 1,
                 "a federation needs at least one stub domain besides "
                 "the origin (someone has to request data)")
        _require(len(self.cache_scales) >= 1,
                 "cache_scales needs at least one entry")
        _require(all(s > 0 for s in self.cache_scales),
                 "every cache scale must be > 0")
        _require(self.link_gbps > 0, "link_gbps must be > 0")
        _require(self.link_rtt_ms > 0, "link_rtt_ms must be > 0")

    def client_domains(self) -> Tuple[str, ...]:
        """Stub domains (minus the origin), in spec order — the requesters."""
        return tuple(d.name for d in self.domains
                     if d.role == ROLE_STUB and d.name != self.origin)

    def _payload_dict(self) -> Dict[str, object]:
        return {
            "domains": [d.to_dict() for d in self.domains],
            "origin": self.origin,
            "workload": self.workload.to_dict(),
            "cache_scales": list(self.cache_scales),
            "link_gbps": self.link_gbps,
            "link_rtt_ms": self.link_rtt_ms,
        }

    @classmethod
    def _from_payload(cls, data: Mapping[str, object]) -> "FederationSpec":
        return cls(
            name=str(data["name"]),
            seed=int(data.get("seed", 0)),
            description=str(data.get("description", "")),
            domains=tuple(DomainSpec.from_dict(d)
                          for d in data.get("domains") or ()),
            origin=str(data.get("origin", "")),
            workload=CacheWorkloadSpec.from_dict(data.get("workload") or {}),
            cache_scales=tuple(float(s)
                               for s in data.get("cache_scales") or (1.0,)),
            link_gbps=float(data.get("link_gbps", 100.0)),
            link_rtt_ms=float(data.get("link_rtt_ms", 20.0)),
        )


def default_federation_spec(name: str = "federation", *,
                            seed: int = 0,
                            cache_scales: Tuple[float, ...] = (1.0,),
                            workload: CacheWorkloadSpec = None,
                            cache_gb: float = None,
                            alpha: float = None,
                            ) -> FederationSpec:
    """The canonical six-domain federation: one origin lab, two regional
    transit networks with shared caches, three consuming campuses with
    site caches.

    ``cache_gb`` overrides every cache's size uniformly (the sweep
    target uses it); ``alpha`` overrides the workload's Zipf exponent.
    """
    wl = workload if workload is not None else CacheWorkloadSpec()
    if alpha is not None:
        from dataclasses import replace
        wl = replace(wl, alpha=float(alpha))
    site_gb = 40.0 if cache_gb is None else float(cache_gb)
    regional_gb = 120.0 if cache_gb is None else float(cache_gb)
    domains = (
        DomainSpec(name="lab", role=ROLE_STUB,
                   peers=("regional-east", "regional-west")),
        DomainSpec(name="regional-east", role=ROLE_TRANSIT,
                   peers=("lab", "regional-west", "uni-a", "uni-b"),
                   cache_gb=regional_gb, cache_policy="lfu"),
        DomainSpec(name="regional-west", role=ROLE_TRANSIT,
                   peers=("lab", "regional-east", "uni-c"),
                   cache_gb=regional_gb, cache_policy="lfu"),
        DomainSpec(name="uni-a", role=ROLE_STUB, peers=("regional-east",),
                   cache_gb=site_gb),
        DomainSpec(name="uni-b", role=ROLE_STUB, peers=("regional-east",),
                   cache_gb=site_gb),
        DomainSpec(name="uni-c", role=ROLE_STUB, peers=("regional-west",),
                   cache_gb=site_gb),
    )
    return FederationSpec(
        name=name,
        seed=seed,
        description=("six-domain federation: origin lab, two regional "
                     "caches, three campus site caches"),
        domains=domains,
        origin="lab",
        workload=wl,
        cache_scales=cache_scales,
    )

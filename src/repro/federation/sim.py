"""Replay an object workload through cache tiers and keep the books.

The conservation argument the test layer verifies lives here: every
delivered byte is served by exactly one tier — the first cache in the
client's chain holding the object, else the origin.  So

    origin_bytes + sum(cache.bytes_served) == delivered_bytes

holds by construction for honest caches, and the
``cache-bytes-conserved`` chaos oracle re-checks it from the exported
ledgers, where a :class:`~repro.devices.faults.CacheAccountingBug`
breaks it.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Sequence

import numpy as np

from ..devices.cache import CacheDevice
from ..errors import ConfigurationError
from ..workloads.cachepop import CacheRequest, working_set_trace
from ..units import GB

__all__ = ["simulate_requests", "replay_design_workload"]


def simulate_requests(
    chains: Mapping[str, Sequence[CacheDevice]],
    trace: Iterable[CacheRequest],
) -> Dict[str, object]:
    """Run a request trace through per-client cache-tier chains.

    ``chains`` maps client name -> tier chain (nearest cache first; may
    be empty, meaning every request goes to the origin).  Each request
    walks its chain until some tier reports a hit; a miss at every tier
    is an origin fetch (the tiers fill on the way, so the *next*
    request finds the object closer — standard read-through caching).

    Returns a plain-scalar ledger: totals plus each cache's own
    :meth:`~repro.devices.cache.CacheDevice.ledger`, sorted by cache
    name so the payload digests deterministically.
    """
    delivered = 0
    origin = 0
    origin_requests = 0
    requests = 0
    seen: Dict[str, CacheDevice] = {}
    for chain in chains.values():
        for cache in chain:
            seen[cache.name] = cache
    for req in trace:
        if req.client not in chains:
            raise ConfigurationError(
                f"request from unknown client {req.client!r}")
        requests += 1
        delivered += req.size_bytes
        hit = False
        for cache in chains[req.client]:
            if cache.request(req.object_id, req.size_bytes):
                hit = True
                break
        if not hit:
            origin += req.size_bytes
            origin_requests += 1
    cache_served = sum(c.bytes_served for c in seen.values())
    return {
        "requests": requests,
        "origin_requests": origin_requests,
        "hit_rate": round(1.0 - origin_requests / requests, 6)
        if requests else 0.0,
        "delivered_bytes": delivered,
        "origin_bytes": origin,
        "cache_served_bytes": cache_served,
        "byte_savings": delivered - origin,
        "caches": [seen[name].ledger() for name in sorted(seen)],
    }


def replay_design_workload(bundle, outcome, seed: int) -> Dict[str, object]:
    """Replay the cache workload a design bundle carries, chaos-aware.

    The ``federated-wan`` design stores its caches, per-client tier
    chains, and workload parameters in ``bundle.extras``.  The chaos
    runner calls this after the scenario horizon: any
    :class:`~repro.devices.faults.CacheAccountingBug` still active on a
    cache-bearing node flips that cache's ``corrupt_accounting`` before
    the replay, so the exported ledger lies exactly the way the fault
    says it does.  The trace itself depends only on the parameters and
    ``seed`` — identical across a campaign schedule and its ddmin
    shrinks, which is what lets a shrunk schedule still reproduce the
    violation.
    """
    extras = bundle.extras
    caches: Dict[str, CacheDevice] = dict(extras["caches"])
    chains: Dict[str, List[CacheDevice]] = {
        client: [caches[node] for node in nodes]
        for client, nodes in extras["tier_chains"].items()
    }
    params = dict(extras["cache_workload"])

    for cache in caches.values():
        cache.reset()
    broken = set()
    for record in getattr(outcome, "faults", ()) or ():
        if record.active and type(record.fault).__name__ == \
                "CacheAccountingBug" and record.node_name in caches:
            broken.add(record.node_name)
    for node in broken:
        caches[node].corrupt_accounting = True

    rng = np.random.default_rng(seed)
    trace = working_set_trace(
        sorted(chains),
        rng=rng,
        n_objects=int(params["objects"]),
        requests_per_round=int(params["requests_per_round"]),
        rounds=int(params["rounds"]),
        alpha=float(params["alpha"]),
        mean_object_size=GB(float(params["mean_object_gb"])),
        size_sigma=float(params["size_sigma"]),
    )
    ledger = simulate_requests(chains, trace)
    ledger["corrupted_nodes"] = sorted(broken)
    return ledger

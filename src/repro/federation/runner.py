"""Federation execution: the ``"federation"`` spec runner.

One grid point per cache scale: build the federation with every cache
size multiplied by the scale, replay the *same* seeded request trace
(identical across scales, so the curve isolates cache size), and
collect the byte ledger plus the stitched circuit view per client.
Points run through the standard exec fan-out, so federation runs
inherit serial/pooled byte-identity, content-addressed caching, and
golden gating exactly like scenarios, sweeps, and campaigns.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List

import numpy as np

from ..exec.seeding import derive_seed
from ..experiment.runner import register_spec_runner
from ..experiment.spec import ExperimentSpec
from ..units import GB
from ..workloads.cachepop import working_set_trace
from .domain import build_federation
from .sim import simulate_requests
from .spec import FederationSpec

__all__ = ["FederationResult", "run_federation"]


@dataclass
class FederationResult:
    """In-process value of a federation run (``RunResult.value``)."""

    spec: FederationSpec
    curve: List[Dict[str, object]] = field(default_factory=list)

    def hit_rates(self) -> List[float]:
        return [float(point["hit_rate"]) for point in self.curve]


def _trace_for(spec: FederationSpec):
    """The spec's request trace — a function of the spec alone, never
    of the cache scale, so every sweep point replays identical demand."""
    rng = np.random.default_rng(
        derive_seed(spec.seed, {"federation": "cache-workload"}))
    wl = spec.workload
    return working_set_trace(
        list(spec.client_domains()),
        rng=rng,
        n_objects=wl.objects,
        requests_per_round=wl.requests_per_round,
        rounds=wl.rounds,
        alpha=wl.alpha,
        mean_object_size=GB(wl.mean_object_gb),
        size_sigma=wl.size_sigma,
    )


def _federation_point(spec: str, scale: float) -> Dict[str, object]:
    """One cache-placement point; module-level so the exec engine can
    fingerprint, cache, and ship it to a pool like any swept function."""
    parsed = ExperimentSpec.from_json(spec)
    fed = build_federation(parsed, scale=float(scale))
    clients = parsed.client_domains()
    chains = {c: fed.tier_chain(c) for c in clients}
    ledger = simulate_requests(chains, _trace_for(parsed))
    circuits = {}
    for client in clients:
        profile = fed.circuit_profile(client)
        circuits[client] = {
            "domains": fed.route(client, parsed.origin),
            "rtt_ms": round(profile.base_rtt.s * 1e3, 6),
            "capacity_gbps": round(profile.capacity.bps / 1e9, 6),
            "loss": round(profile.random_loss, 9),
        }
    return {
        "scale": float(scale),
        "cache_bytes_total": sum(c.capacity_bytes
                                 for c in fed.caches().values()),
        "hit_rate": ledger["hit_rate"],
        "byte_savings": ledger["byte_savings"],
        "ledger": ledger,
        "circuits": circuits,
    }


def run_federation(spec: FederationSpec, ctx, version: str):
    """Execute a federation spec; the ``"federation"`` runner entry.

    Returns ``(payload, summary, value, extra_artifacts)`` per the
    extension-runner contract.  The payload carries the full
    hit-rate-vs-cache-size curve and nothing environment-dependent, so
    its digest is identical serial vs pooled and cold vs warm — the
    property the differential tests and the golden gate rely on.
    """
    tracer = ctx.tracer
    if tracer.enabled:
        tracer.event("federation", "start", name=spec.name,
                     domains=len(spec.domains),
                     scales=len(spec.cache_scales))

    runner = ctx.runner(code_version=version)
    points = [{"spec": spec.to_json(), "scale": float(s)}
              for s in spec.cache_scales]
    outcomes = runner.map(_federation_point, points)
    curve = [o.value for o in outcomes]

    if tracer.enabled:
        tracer.counter("points", component="federation").inc(len(curve))
        for point in curve:
            tracer.event("federation", "point", scale=point["scale"],
                         hit_rate=point["hit_rate"],
                         byte_savings=point["byte_savings"])

    payload: Dict[str, object] = {
        "clients": list(spec.client_domains()),
        "origin": spec.origin,
        "workload": spec.workload.to_dict(),
        "curve": curve,
    }
    summary = {
        "scales": len(curve),
        "hit_rate_min": min(p["hit_rate"] for p in curve),
        "hit_rate_max": max(p["hit_rate"] for p in curve),
        "byte_savings_max": max(p["byte_savings"] for p in curve),
    }
    value = FederationResult(spec=spec, curve=curve)
    extra_artifacts = {
        "curve.json": (json.dumps(
            [{"scale": p["scale"],
              "cache_bytes_total": p["cache_bytes_total"],
              "hit_rate": p["hit_rate"],
              "byte_savings": p["byte_savings"]} for p in curve],
            indent=2, sort_keys=True) + "\n").encode("utf-8"),
    }
    return payload, summary, value, extra_artifacts


register_spec_runner("federation", run_federation)


def federation_hit_rate(cache_gb: float, alpha: float,
                        seed: int = 0) -> float:
    """Sweep target: overall federation hit rate at one cache size.

    Builds the canonical six-domain federation with every cache set to
    ``cache_gb`` and the workload's Zipf exponent set to ``alpha`` —
    the axes of the cache-placement figure.
    """
    from .spec import default_federation_spec

    spec = default_federation_spec(
        "federation-sweep", seed=int(seed),
        cache_gb=float(cache_gb), alpha=float(alpha))
    fed = build_federation(spec)
    chains = {c: fed.tier_chain(c) for c in spec.client_domains()}
    ledger = simulate_requests(chains, _trace_for(spec))
    return float(ledger["hit_rate"])

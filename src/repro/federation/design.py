"""The ``federated-wan`` design: the federation as one flat topology.

The :class:`~repro.federation.domain.Federation` keeps per-domain
topologies for circuit reservation; chaos campaigns and the scenario
engine want a single :class:`~repro.core.designs.DesignBundle`.  This
builder lays the same six-domain federation out flat — one WAN core,
two regional transit networks each carrying an in-path cache node,
three consuming campuses with site caches, and the origin lab — and
stashes the cache devices, per-client tier chains, and workload
parameters in ``bundle.extras`` so the chaos runner can replay the
cache workload against whatever faults a schedule injects.
"""

from __future__ import annotations

from typing import Dict, List

from ..core.designs import DesignBundle
from ..devices.cache import CacheDevice
from ..dtn.host import attach_profile, tuned_dtn
from ..dtn.storage import ParallelFilesystem
from ..netsim.link import JUMBO_MTU, Link
from ..netsim.node import Host, Router, Switch
from ..netsim.topology import Topology
from ..units import DataRate, Gbps, GB, TimeDelta, ms, us

__all__ = ["federated_wan_design"]

#: Which regional each campus homes to, and the cache provisioning the
#: committed federation spec mirrors (see ``default_federation_spec``).
_SITES = {"uni-a": "regional-east", "uni-b": "regional-east",
          "uni-c": "regional-west"}
_SITE_CACHE_GB = 40.0
_REGIONAL_CACHE_GB = 120.0


def federated_wan_design(
    *,
    wan_rtt: TimeDelta = ms(20),
    wan_rate: DataRate = Gbps(100),
    cache_scale: float = 1.0,
) -> DesignBundle:
    """Six-domain federation with two cache tiers, as one topology.

    Path from a campus DTN to the origin lab:
    ``{site}-dtn -> {site}-cache -> {site}-border -> {regional} ->
    {regional}-cache -> wan -> lab-border -> lab-dtn``.
    """
    topo = Topology(name="federated-wan")
    wan = topo.add_node(Router(name="wan", tags={"wan"}))

    # Origin lab: holds the authoritative copy, no cache.
    lab_border = topo.add_node(Router(name="lab-border"))
    lab = topo.add_node(Host(name="lab-dtn", nic_rate=wan_rate,
                             tags={"dtn"}))
    topo.connect(lab, lab_border, Link(
        rate=wan_rate, delay=us(50), mtu=JUMBO_MTU))
    topo.connect(lab_border, wan, Link(
        rate=wan_rate, delay=TimeDelta(wan_rtt.s / 4.0), mtu=JUMBO_MTU,
        name="lab-uplink"))
    attach_profile(lab, tuned_dtn("lab-dtn", ParallelFilesystem()))

    caches: Dict[str, CacheDevice] = {}

    def _cache_node(name: str, gb: float, *, policy: str,
                    tier: str) -> Switch:
        node = topo.add_node(Switch(name=name, tags={"cache"}))
        device = CacheDevice(name=name, capacity=GB(gb * cache_scale),
                             policy=policy, tier=tier)
        node.attach(device)
        caches[name] = device
        return node

    # Regional transit networks, each with an in-path shared cache.
    for regional in ("regional-east", "regional-west"):
        router = topo.add_node(Router(name=regional, tags={"transit"}))
        cache = _cache_node(f"{regional}-cache", _REGIONAL_CACHE_GB,
                            policy="lfu", tier="regional")
        topo.connect(router, cache, Link(
            rate=wan_rate, delay=us(20), mtu=JUMBO_MTU))
        topo.connect(cache, wan, Link(
            rate=wan_rate, delay=TimeDelta(wan_rtt.s / 4.0), mtu=JUMBO_MTU,
            name=f"{regional}-uplink"))

    # Consuming campuses: DTN behind a site cache behind the border.
    dtns: List[str] = []
    for site, regional in _SITES.items():
        border = topo.add_node(Router(name=f"{site}-border"))
        cache = _cache_node(f"{site}-cache", _SITE_CACHE_GB,
                            policy="lru", tier="site")
        host = topo.add_node(Host(name=f"{site}-dtn", nic_rate=wan_rate,
                                  tags={"dtn"}))
        topo.connect(host, cache, Link(
            rate=wan_rate, delay=us(20), mtu=JUMBO_MTU))
        topo.connect(cache, border, Link(
            rate=wan_rate, delay=us(20), mtu=JUMBO_MTU))
        topo.connect(border, regional, Link(
            rate=wan_rate, delay=TimeDelta(wan_rtt.s / 8.0), mtu=JUMBO_MTU,
            name=f"{site}-uplink"))
        attach_profile(host, tuned_dtn(f"{site}-dtn", ParallelFilesystem()))
        dtns.append(host.name)

    ps = topo.add_node(Host(name="uni-a-perfsonar", tags={"perfsonar"}))
    topo.connect(ps, "uni-a-border", Link(
        rate=Gbps(10), delay=us(20), mtu=JUMBO_MTU))
    attach_profile(ps, tuned_dtn("uni-a-perfsonar"))

    tier_chains = {
        site: [f"{site}-cache", f"{regional}-cache"]
        for site, regional in _SITES.items()
    }
    return DesignBundle(
        topology=topo,
        wan="wan",
        border="uni-a-border",
        remote_dtn="lab-dtn",
        dtns=dtns,
        perfsonar=[ps.name],
        science_policy={},
        extras={
            "caches": caches,
            "tier_chains": tier_chains,
            "cache_workload": {
                "objects": 200,
                "requests_per_round": 100,
                "rounds": 4,
                "alpha": 1.1,
                "mean_object_gb": 2.0,
                "size_sigma": 0.6,
            },
        },
        description=("federated WAN: origin lab, two regional cache "
                     "tiers, three campus site caches"),
    )

"""Multi-domain federation with in-network cache tiers.

§7.1 scales the Science DMZ pattern out: inter-domain controllers
stitch guaranteed circuits across campuses and regionals (DYNES), and
the follow-on in-network caching work (PAPERS.md) adds the missing
piece — shared caches inside the regional networks absorbing the
repeated transfers that dominate science data sharing.  This package
models that federation end to end:

* :mod:`repro.federation.spec` — :class:`FederationSpec`, the
  ``"federation"`` experiment kind: domains, peering policy, cache
  provisioning, workload, and the cache-placement sweep, as one JSON
  document.
* :mod:`repro.federation.domain` — the build step: per-domain
  topologies and OSCARS services, mutual-consent peering at exchange
  points, policy routing (stubs never transit), cache tier chains, and
  circuit stitching through the
  :class:`~repro.circuits.multidomain.InterDomainController`.
* :mod:`repro.federation.sim` — read-through replay of an object
  workload over the tiers, producing the byte ledger the conservation
  oracle audits.
* :mod:`repro.federation.design` — ``federated-wan``, the federation
  as a flat :class:`~repro.core.designs.DesignBundle` for chaos
  campaigns and scenarios.
* :mod:`repro.federation.runner` — the registered spec runner: one
  cached grid point per cache scale, hit-rate curve out.

Importing this package registers the spec kind, the spec runner, and
(via :mod:`repro.chaos`, which imports nothing from here) composes with
the ``cache-bytes-conserved`` oracle.
"""

from .spec import (
    CacheWorkloadSpec,
    DomainSpec,
    FederationSpec,
    ROLE_STUB,
    ROLE_TRANSIT,
    default_federation_spec,
)
from .domain import Federation, FederationDomain, build_federation
from .sim import replay_design_workload, simulate_requests
from .design import federated_wan_design
from .runner import FederationResult, federation_hit_rate, run_federation

__all__ = [
    "CacheWorkloadSpec",
    "DomainSpec",
    "FederationSpec",
    "ROLE_STUB",
    "ROLE_TRANSIT",
    "default_federation_spec",
    "Federation",
    "FederationDomain",
    "build_federation",
    "replay_design_workload",
    "simulate_requests",
    "federated_wan_design",
    "FederationResult",
    "federation_hit_rate",
    "run_federation",
]

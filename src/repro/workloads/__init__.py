"""Workload and traffic generation.

* :mod:`repro.workloads.datasets` — dataset catalogs and file-size
  distributions, including the paper's named datasets (NOAA GEFS
  reforecast, the carbon-14 input files, LHC-scale stores).
* :mod:`repro.workloads.science` — science transfer workload builders
  (LHC-like steady fan-in, climate-archive bulk pulls, light-source
  burst-per-experiment patterns).
* :mod:`repro.workloads.background` — enterprise background traffic
  profiles (the "many low-speed flows" a business network carries).
* :mod:`repro.workloads.matrix` — ESnet-scale traffic matrices
  (gravity-model demand between WAN sites, 10k–1M flows) sized for the
  :mod:`repro.fluid` mean-field engine.
* :mod:`repro.workloads.cachepop` — working-set-skewed object request
  traces (Zipf popularity, repeated-transfer rounds) for the
  federation's in-network cache experiments.
"""

from .datasets import (
    FileSizeDistribution,
    make_dataset,
    NOAA_GEFS_SAMPLE,
    NOAA_GEFS_FULL_PULL,
    CARBON14_INPUTS,
    LHC_DAILY_REPLICATION,
)
from .science import (
    ScienceWorkload,
    lhc_tier2_fanin,
    climate_archive_pull,
    lightsource_bursts,
)
from .background import enterprise_background_sources, BackgroundProfile
from .matrix import traffic_matrix, wan_backbone
from .cachepop import CacheRequest, working_set_trace, zipf_weights

__all__ = [
    "FileSizeDistribution",
    "make_dataset",
    "NOAA_GEFS_SAMPLE",
    "NOAA_GEFS_FULL_PULL",
    "CARBON14_INPUTS",
    "LHC_DAILY_REPLICATION",
    "ScienceWorkload",
    "lhc_tier2_fanin",
    "climate_archive_pull",
    "lightsource_bursts",
    "enterprise_background_sources",
    "BackgroundProfile",
    "traffic_matrix",
    "wan_backbone",
    "CacheRequest",
    "working_set_trace",
    "zipf_weights",
]

"""Dataset catalogs and file-size distributions.

The paper's case studies quote concrete datasets; they are reproduced here
as constants so the benches print the same denominators:

* §6.3 NOAA: "273 files with a total size of 239.5GB" moved in ~10 min;
  the larger goal was "about 170TB" of the 800 TB GEFS reforecast archive.
* §6.4 NERSC/OLCF: "a single 33 GB input file ... one of the 20 files of
  similar size", and "all 40 TB of data" moved in under three days.
* §4.3 LHC: Tier-1 centers serving "multi-petabyte data storage systems".

:class:`FileSizeDistribution` draws synthetic catalogs for workload
generators that need per-file structure rather than a single blob.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from ..dtn.transfer import Dataset
from ..errors import ConfigurationError
from ..units import DataSize, GB, MB, TB, bits

__all__ = [
    "FileSizeDistribution",
    "make_dataset",
    "NOAA_GEFS_SAMPLE",
    "NOAA_GEFS_FULL_PULL",
    "CARBON14_INPUTS",
    "LHC_DAILY_REPLICATION",
]

# -- the paper's named datasets ------------------------------------------------

#: §6.3: the measured NOAA transfer (273 files, 239.5 GB, ~10 min).
NOAA_GEFS_SAMPLE = Dataset("noaa-gefs-sample", GB(239.5), 273)

#: §6.3: the full planned pull (~170 TB of the 800 TB archive).
NOAA_GEFS_FULL_PULL = Dataset("noaa-gefs-170tb", TB(170), 190_000)

#: §6.4: 20 input files of ~33 GB each for the carbon-14 collaboration,
#: part of a 40 TB campaign.
CARBON14_INPUTS = Dataset("carbon14-inputs", GB(33 * 20), 20)

#: §4.3-scale: a day of Tier-1 -> Tier-2 replication (order 100 TB/day).
LHC_DAILY_REPLICATION = Dataset("lhc-daily-replication", TB(100), 50_000)


@dataclass(frozen=True)
class FileSizeDistribution:
    """Log-normal file-size model for synthetic catalogs.

    Science file catalogs are heavy-tailed; a log-normal with a floor
    reproduces the "mostly medium files, a few giants" shape without
    pretending to more realism than a simulation substrate can claim.
    """

    median: DataSize
    sigma: float = 1.0
    floor: DataSize = MB(1)

    def __post_init__(self) -> None:
        if self.median.bits <= 0:
            raise ConfigurationError("median file size must be positive")
        if self.sigma < 0:
            raise ConfigurationError("sigma must be non-negative")
        if self.floor.bits <= 0:
            raise ConfigurationError("floor must be positive")

    def sample(self, count: int, rng: np.random.Generator) -> List[DataSize]:
        """Draw ``count`` file sizes."""
        if count < 1:
            raise ConfigurationError("count must be >= 1")
        mu = np.log(self.median.bits)
        draws = rng.lognormal(mean=mu, sigma=self.sigma, size=count)
        draws = np.maximum(draws, self.floor.bits)
        return [bits(float(v)) for v in draws]

    def sample_dataset(self, name: str, count: int,
                       rng: np.random.Generator) -> Dataset:
        sizes = self.sample(count, rng)
        total = bits(sum(s.bits for s in sizes))
        return Dataset(name, total, count)


def make_dataset(name: str, total: DataSize, *,
                 file_count: Optional[int] = None,
                 mean_file: Optional[DataSize] = None) -> Dataset:
    """Build a dataset from either a file count or a mean file size."""
    if (file_count is None) == (mean_file is None):
        raise ConfigurationError(
            "specify exactly one of file_count or mean_file"
        )
    if file_count is None:
        file_count = max(1, int(round(total.bits / mean_file.bits)))
    return Dataset(name, total, file_count)

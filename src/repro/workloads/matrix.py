"""ESnet-scale traffic matrices: 10k–1M transfer demands over a WAN.

The Snowmass networking report frames the HEP traffic problem as a
*matrix* — every site pair exchanging bulk data continuously — rather
than the handful of named transfers the other workload builders model.
These builders produce that shape: a multi-site wide-area backbone and
a gravity-model demand matrix large enough to exercise the
:mod:`repro.fluid` mean-field engine (the per-flow kernels top out
around thousands of flows).

Both builders are deterministic given their inputs; the matrix draws
all randomness from the caller's generator in one vectorized pass so
even million-flow matrices build in seconds.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from ..errors import ConfigurationError
from ..netsim.flow import FlowSpec
from ..netsim.link import Link
from ..netsim.node import Router
from ..netsim.topology import Topology
from ..units import DataRate, DataSize, GB, Gbps, TimeDelta, bytes_, ms, seconds
from .science import ScienceWorkload

__all__ = ["traffic_matrix", "wan_backbone"]


def wan_backbone(
    n_sites: int = 12,
    *,
    core_rate: DataRate = Gbps(100),
    uplink_rate: DataRate = Gbps(40),
    core_delay: TimeDelta = ms(8),
    uplink_delay: TimeDelta = ms(1),
    mtu: DataSize = bytes_(9000),
    chord_every: int = 3,
) -> Topology:
    """A multi-link WAN: a ring of core routers with cross-country
    chords, one site host hanging off each core node.

    Site hosts are named ``site0`` … ``site{n-1}`` — the names
    :func:`traffic_matrix` expects.  ``chord_every`` spaces the diameter
    chords around the first half of the ring (0 disables them).
    """
    if n_sites < 3:
        raise ConfigurationError("wan_backbone needs at least 3 sites")
    topo = Topology(f"wan-backbone-{n_sites}")
    for i in range(n_sites):
        topo.add_node(Router(name=f"core{i}"))
    for i in range(n_sites):
        topo.connect(f"core{i}", f"core{(i + 1) % n_sites}",
                     Link(rate=core_rate, delay=core_delay, mtu=mtu))
    if chord_every:
        for i in range(0, n_sites // 2, chord_every):
            topo.connect(f"core{i}", f"core{i + n_sites // 2}",
                         Link(rate=core_rate,
                              delay=TimeDelta(core_delay.s * 2.0), mtu=mtu))
    for i in range(n_sites):
        topo.add_host(f"site{i}", nic_rate=core_rate)
        topo.connect(f"site{i}", f"core{i}",
                     Link(rate=uplink_rate, delay=uplink_delay, mtu=mtu))
    return topo


def traffic_matrix(
    sites: Sequence[str],
    *,
    n_flows: int,
    rng: np.random.Generator,
    mean_size: DataSize = GB(2),
    size_sigma: float = 0.8,
    streams_per_flow: int = 4,
    arrival_window: TimeDelta = seconds(30),
    gravity_alpha: float = 0.8,
    policy: Optional[dict] = None,
) -> ScienceWorkload:
    """A gravity-model demand matrix between ``sites``.

    Site popularity follows a Zipf law with exponent ``gravity_alpha``
    (a few tier-1s dominate, the tail trickles), transfer sizes are
    log-normal around ``mean_size`` with shape ``size_sigma``, and
    arrivals land uniformly in ``arrival_window``.  Every demand shares
    ``streams_per_flow`` and ``policy``, so the matrix collapses into
    O(site-pairs) flow classes under the fluid engine no matter how
    large ``n_flows`` grows.
    """
    if len(sites) < 2:
        raise ConfigurationError("traffic_matrix needs at least 2 sites")
    if n_flows < 1:
        raise ConfigurationError("n_flows must be >= 1")
    n_sites = len(sites)
    weights = 1.0 / np.arange(1, n_sites + 1) ** gravity_alpha
    weights /= weights.sum()

    src = rng.choice(n_sites, size=n_flows, p=weights)
    dst = rng.choice(n_sites, size=n_flows, p=weights)
    same = src == dst
    dst[same] = (dst[same] + 1 + rng.integers(0, n_sites - 1,
                                              size=int(same.sum()))) % n_sites
    # Log-normal sized so the median transfer is modest but the tail
    # carries archive-scale pulls; mu re-centers the mean on mean_size.
    mu = np.log(mean_size.bits) - 0.5 * size_sigma ** 2
    sizes = np.exp(rng.normal(mu, size_sigma, size=n_flows))
    starts = rng.uniform(0.0, max(arrival_window.s, 0.0), size=n_flows)

    policy = dict(policy or {})
    flows: List[FlowSpec] = [
        FlowSpec(
            src=sites[int(s)],
            dst=sites[int(d)],
            size=DataSize(float(sz)),
            start=seconds(float(t)),
            parallel_streams=streams_per_flow,
            policy=dict(policy),
            label=f"tm-{i}",
        )
        for i, (s, d, sz, t) in enumerate(zip(src, dst, sizes, starts))
    ]
    return ScienceWorkload(name="traffic-matrix", flows=tuple(flows))

"""Working-set-skewed object workloads: what in-network caches absorb.

The in-network caching studies (PAPERS.md) observe that scientific
data-sharing traffic is dominated by a *skewed working set*: a small
number of popular objects (calibration files, reference datasets, hot
analysis inputs) requested again and again across sites, with a long
tail of one-shot transfers.  These builders produce that shape:

* object popularity is Zipf(``alpha``) over a fixed catalog — the same
  ``1/rank^alpha`` idiom the traffic-matrix gravity model uses;
* object sizes are lognormal, drawn **once per object** (the same
  object always has the same size — caches depend on that);
* a trace is a sequence of *rounds* (repeated-transfer schedules): each
  round re-draws requests from the same catalog, so popular objects
  recur across rounds and a warm cache gets to prove itself.

Everything is deterministic given the caller's generator; all draws
happen in vectorized passes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from ..errors import ConfigurationError
from ..units import DataSize, GB

__all__ = ["CacheRequest", "working_set_trace", "zipf_weights"]


@dataclass(frozen=True)
class CacheRequest:
    """One object request: who asks, for what, how many bytes."""

    round: int
    client: str
    object_id: str
    size_bytes: int


def zipf_weights(n_objects: int, alpha: float) -> np.ndarray:
    """Normalized Zipf popularity over ranks 1..n (``1/rank^alpha``)."""
    if n_objects < 1:
        raise ConfigurationError("need at least one object")
    if alpha < 0:
        raise ConfigurationError("Zipf alpha must be >= 0")
    weights = 1.0 / np.arange(1, n_objects + 1, dtype=float) ** alpha
    return weights / weights.sum()


def working_set_trace(
    clients: Sequence[str],
    *,
    rng: np.random.Generator,
    n_objects: int = 200,
    requests_per_round: int = 100,
    rounds: int = 4,
    alpha: float = 1.1,
    mean_object_size: DataSize = GB(2),
    size_sigma: float = 0.6,
) -> List[CacheRequest]:
    """A multi-round, Zipf-skewed object request trace.

    Each round draws ``requests_per_round`` (object, client) pairs from
    the same catalog and popularity law — the repeated-transfer
    schedule a federation's caches are built for.  Sizes are fixed per
    object (lognormal around ``mean_object_size``), so total unique
    bytes is bounded by the catalog while delivered bytes grow with
    every round.
    """
    if not clients:
        raise ConfigurationError("working_set_trace needs >= 1 client")
    if requests_per_round < 1 or rounds < 1:
        raise ConfigurationError(
            "need requests_per_round >= 1 and rounds >= 1")
    weights = zipf_weights(n_objects, alpha)
    mean_bytes = mean_object_size.bits / 8.0
    if mean_bytes <= 0:
        raise ConfigurationError("mean_object_size must be positive")
    # Lognormal with the requested mean: mu = ln(mean) - sigma^2/2.
    mu = np.log(mean_bytes) - 0.5 * size_sigma ** 2
    sizes = np.maximum(
        1, rng.lognormal(mu, size_sigma, size=n_objects)).astype(np.int64)

    total = rounds * requests_per_round
    object_idx = rng.choice(n_objects, size=total, p=weights)
    client_idx = rng.integers(len(clients), size=total)
    trace: List[CacheRequest] = []
    for i in range(total):
        obj = int(object_idx[i])
        trace.append(CacheRequest(
            round=i // requests_per_round,
            client=str(clients[int(client_idx[i])]),
            object_id=f"obj-{obj:05d}",
            size_bytes=int(sizes[obj]),
        ))
    return trace

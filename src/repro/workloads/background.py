"""Enterprise background traffic profiles.

§5: firewall architectures "work well when the traffic traversing the
firewall is composed of a large number of low-speed flows (e.g., a typical
business network traffic profile)".  To show that contrast, experiments
need such a profile: many small bursty sources (web, mail, VoIP-ish)
rather than a few elephant flows.

:func:`enterprise_background_sources` produces
:class:`~repro.netsim.packetsim.BurstySource` lists for the packet-level
device studies; :meth:`BackgroundProfile.flow_specs` produces unbounded
low-rate :class:`~repro.netsim.flow.FlowSpec` demands for the fluid
multi-flow simulator.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional


from ..errors import ConfigurationError
from ..netsim.flow import FlowSpec
from ..netsim.packetsim import BurstySource
from ..units import (
    DataRate,
    DataSize,
    KB,
    Kbps,
    Mbps,
    bytes_,
    seconds,
)

__all__ = ["BackgroundProfile", "enterprise_background_sources"]


@dataclass(frozen=True)
class BackgroundProfile:
    """A population of small business-traffic flows.

    Parameters
    ----------
    flow_count:
        Number of concurrent low-speed flows.
    per_flow_mean:
        Long-run average rate of each flow.
    per_flow_line_rate:
        Access rate of the client (bursts run at this).
    burst_size:
        Bytes per application burst (a web page, a mail message).
    """

    flow_count: int = 200
    per_flow_mean: DataRate = field(default_factory=lambda: Kbps(500))
    per_flow_line_rate: DataRate = field(default_factory=lambda: Mbps(100))
    burst_size: DataSize = field(default_factory=lambda: KB(64))

    def __post_init__(self) -> None:
        if self.flow_count < 1:
            raise ConfigurationError("flow_count must be >= 1")
        if self.per_flow_mean.bps > self.per_flow_line_rate.bps:
            raise ConfigurationError("mean rate cannot exceed line rate")

    @property
    def aggregate_mean(self) -> DataRate:
        return DataRate(self.flow_count * self.per_flow_mean.bps)

    def sources(self, *, packet_size: DataSize = bytes_(1500)
                ) -> List[BurstySource]:
        """Packet-level sources for device studies."""
        return [
            BurstySource(
                name=f"bg{i}",
                line_rate=self.per_flow_line_rate,
                mean_rate=self.per_flow_mean,
                burst_size=self.burst_size,
                packet_size=packet_size,
            )
            for i in range(self.flow_count)
        ]

    def flow_specs(self, src: str, dst: str, *,
                   policy: Optional[dict] = None,
                   bundle: int = 10) -> List[FlowSpec]:
        """Fluid-model demands: flows bundled to keep simulations tractable.

        ``bundle`` flows are aggregated into one rate-capped FlowSpec
        (fluid fairness treats them identically, and it keeps the
        multi-flow state small).
        """
        if bundle < 1:
            raise ConfigurationError("bundle must be >= 1")
        bundles = max(1, self.flow_count // bundle)
        per_bundle_rate = DataRate(self.aggregate_mean.bps / bundles)
        return [
            FlowSpec(
                src=src,
                dst=dst,
                size=None,
                rate_limit=per_bundle_rate,
                policy=dict(policy or {}),
                label=f"enterprise-bg-{i}",
            )
            for i in range(bundles)
        ]


def enterprise_background_sources(
    count: int = 200,
    *,
    per_flow_mean: DataRate = Kbps(500),
    line_rate: DataRate = Mbps(100),
    burst_size: DataSize = KB(64),
) -> List[BurstySource]:
    """Shorthand for :meth:`BackgroundProfile.sources`."""
    return BackgroundProfile(
        flow_count=count,
        per_flow_mean=per_flow_mean,
        per_flow_line_rate=line_rate,
        burst_size=burst_size,
    ).sources()

"""Science transfer workload builders.

The paper's introduction motivates three recurring traffic shapes, which
these builders produce as lists of :class:`~repro.netsim.flow.FlowSpec`
ready for :class:`~repro.tcp.simulate.MultiFlowSimulation`:

* **LHC-style fan-in** (§4.3, §6.1): many remote sites pushing/pulling
  steadily against one cluster, "multiple streams of traffic approaching
  an aggregate of 5 Gbps".
* **Climate-archive bulk pull** (§6.3): one site draining a large archive
  through a handful of parallel streams.
* **Light-source bursts** (§3.2, §6.4): an instrument emitting a dataset
  per experiment cycle, quiet between cycles.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence


from ..errors import ConfigurationError
from ..netsim.flow import FlowSpec
from ..units import DataSize, GB, TimeDelta, minutes, seconds

__all__ = [
    "ScienceWorkload",
    "lhc_tier2_fanin",
    "climate_archive_pull",
    "lightsource_bursts",
]


@dataclass(frozen=True)
class ScienceWorkload:
    """A named bundle of flow demands."""

    name: str
    flows: tuple

    def __post_init__(self) -> None:
        if not self.flows:
            raise ConfigurationError("workload must contain flows")

    @property
    def total_bytes(self) -> DataSize:
        total = sum(f.size.bits for f in self.flows if f.size is not None)
        return DataSize(total)

    def specs(self) -> List[FlowSpec]:
        return list(self.flows)


def lhc_tier2_fanin(
    remote_sites: Sequence[str],
    cluster_host: str,
    *,
    per_site_size: DataSize = GB(200),
    streams_per_site: int = 2,
    policy: Optional[dict] = None,
    stagger: TimeDelta = seconds(5),
) -> ScienceWorkload:
    """Many sites pushing datasets into one analysis cluster (§6.1 CMS)."""
    if not remote_sites:
        raise ConfigurationError("need at least one remote site")
    flows = []
    for i, site in enumerate(remote_sites):
        flows.append(FlowSpec(
            src=site,
            dst=cluster_host,
            size=per_site_size,
            start=seconds(stagger.s * i),
            parallel_streams=streams_per_site,
            policy=dict(policy or {}),
            label=f"cms-{site}",
        ))
    return ScienceWorkload(name="lhc-tier2-fanin", flows=tuple(flows))


def climate_archive_pull(
    archive_host: str,
    home_host: str,
    *,
    total: DataSize,
    parallel_transfers: int = 4,
    streams_per_transfer: int = 4,
    policy: Optional[dict] = None,
) -> ScienceWorkload:
    """One site draining an archive (§6.3 NOAA reforecast shape)."""
    if parallel_transfers < 1:
        raise ConfigurationError("parallel_transfers must be >= 1")
    share = DataSize(total.bits / parallel_transfers)
    flows = [
        FlowSpec(
            src=archive_host,
            dst=home_host,
            size=share,
            parallel_streams=streams_per_transfer,
            policy=dict(policy or {}),
            label=f"archive-pull-{i}",
        )
        for i in range(parallel_transfers)
    ]
    return ScienceWorkload(name="climate-archive-pull", flows=tuple(flows))


def lightsource_bursts(
    beamline_host: str,
    compute_host: str,
    *,
    dataset_per_cycle: DataSize,
    cycles: int = 4,
    cycle_gap: TimeDelta = minutes(2),
    streams: int = 4,
    policy: Optional[dict] = None,
) -> ScienceWorkload:
    """An instrument emitting one dataset per experiment cycle (§6.4 ALS)."""
    if cycles < 1:
        raise ConfigurationError("cycles must be >= 1")
    flows = [
        FlowSpec(
            src=beamline_host,
            dst=compute_host,
            size=dataset_per_cycle,
            start=seconds(cycle_gap.s * i),
            parallel_streams=streams,
            policy=dict(policy or {}),
            label=f"beamline-cycle-{i}",
        )
        for i in range(cycles)
    ]
    return ScienceWorkload(name="lightsource-bursts", flows=tuple(flows))

"""Flow-class aggregation: collapsing flows into mean-field populations.

A *flow class* is the unit the fluid engine advances: every flow that
shares (a) the exact sequence of links, (b) the same congestion-control
behaviour, and (c) the same transport parameters (RTT, MSS, receive
window, random-loss rate, parallel-stream count, rate cap) competes
identically in the per-flow model, so its population can be represented
by one aggregate congestion window and a live-member count.  Science
traffic matrices collapse extremely well under this key — 100k
transfers between a few dozen sites yield a few hundred classes — which
is the entire performance story of :mod:`repro.fluid`.

Grouping never changes *which* flows exist: births and deaths inside a
class are tracked individually (each member keeps its own start time
and transfer size), only the congestion state is pooled.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from ..netsim.flow import FlowSpec
from ..tcp.congestion import CongestionControl

__all__ = ["DEFAULT_PHASE_SHARDS", "FlowClass", "build_flow_classes"]

#: Default phase-shard count per population.  Enough stagger to damp
#: the lockstep back-off artifact (the whole class halving at once
#: drains the queue and under-registers congestion) while keeping the
#: class count — and the max-min filler cost — within a small multiple.
DEFAULT_PHASE_SHARDS = 8


def algorithm_key(algo: CongestionControl):
    """Group key for a congestion-control instance.

    Algorithms are stateless by contract, so instances of the same class
    with equal attributes are interchangeable — the common
    ``algorithm=None`` path builds one ``Reno()`` per flow, which must
    collapse into a single group (the per-flow kernels use the same
    rule).
    """
    try:
        return (type(algo), tuple(sorted(vars(algo).items())))
    except TypeError:
        return id(algo)


@dataclass
class FlowClass:
    """One mean-field population of interchangeable flows.

    ``flow_ids`` index the caller's global flow list and are sorted by
    ascending start time so the engine can consume births with a single
    advancing pointer.  ``per_stream_bits`` is ``inf`` for unbounded
    flows (they never die).
    """

    index: int
    algorithm: CongestionControl
    link_indices: Tuple[int, ...]
    rtt_s: float
    mss_bits: float
    rwnd_pkts: float
    random_loss: float
    streams_per_flow: int
    rate_cap_bps: float
    flow_ids: np.ndarray
    starts_s: np.ndarray
    per_stream_bits: np.ndarray
    #: Initial RTT-clock offset as a fraction of the RTT.  Shards of one
    #: population carry staggered phases so their window updates spread
    #: across the RTT the way individually-born per-flow streams do,
    #: instead of the whole population halving in lockstep.
    phase: float = 0.0

    @property
    def population(self) -> int:
        """Member flows (not streams) over the whole simulation."""
        return int(self.flow_ids.size)

    @property
    def stream_population(self) -> int:
        return self.population * self.streams_per_flow


def build_flow_classes(
    specs: Sequence[FlowSpec],
    flow_links: Sequence[Tuple[int, ...]],
    algorithms: Sequence[CongestionControl],
    *,
    rtts: np.ndarray,
    mss_bits: np.ndarray,
    rwnd_pkts: np.ndarray,
    loss_p: np.ndarray,
    rate_caps: np.ndarray,
    n_shards: int = 1,
) -> List[FlowClass]:
    """Partition ``specs`` into :class:`FlowClass` populations.

    ``flow_links[f]`` is the tuple of link-inventory indices flow *f*
    crosses (path identity); the per-flow parameter arrays are the same
    ones the exact kernels precompute in ``MultiFlowSimulation.run``.

    ``n_shards`` splits each population round-robin into up to that many
    phase-staggered shards (RTT-clock offsets ``j/K`` of the RTT).  In
    the per-flow model each stream updates its window at its *own* RTT
    boundary — phases spread uniformly by birth time — so a single
    lockstep population over-oscillates: the whole class backs off at
    once, the queue drains, and congestion under-registers.  A handful
    of shards restores the stagger at class-level cost.
    """
    grouped: Dict[tuple, List[int]] = {}
    for f, spec in enumerate(specs):
        key = (flow_links[f], algorithm_key(algorithms[f]),
               spec.parallel_streams, float(rate_caps[f]), float(rtts[f]),
               float(mss_bits[f]), float(rwnd_pkts[f]), float(loss_p[f]))
        grouped.setdefault(key, []).append(f)

    shards = max(1, int(n_shards))
    classes: List[FlowClass] = []
    for key, members in grouped.items():
        ids = np.asarray(members, dtype=np.int64)
        starts = np.array([specs[f].start.s for f in members],
                          dtype=np.float64)
        order = np.lexsort((ids, starts))
        ids, starts = ids[order], starts[order]
        per_stream = np.array([
            (specs[f].per_stream_size().bits
             if specs[f].size is not None else np.inf)
            for f in ids], dtype=np.float64)
        first = int(ids[0])
        k = min(shards, ids.size)
        for j in range(k):
            # Round-robin over the start-sorted members keeps every
            # shard's births spread across the arrival window.
            sel = slice(j, None, k)
            classes.append(FlowClass(
                index=len(classes),
                algorithm=algorithms[first],
                link_indices=flow_links[first],
                rtt_s=float(rtts[first]),
                mss_bits=float(mss_bits[first]),
                rwnd_pkts=float(rwnd_pkts[first]),
                random_loss=float(loss_p[first]),
                streams_per_flow=int(specs[first].parallel_streams),
                rate_cap_bps=float(rate_caps[first]),
                flow_ids=ids[sel],
                starts_s=starts[sel],
                per_stream_bits=per_stream[sel],
                phase=j / k,
            ))
    return classes

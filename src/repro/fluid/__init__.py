"""Mean-field flow-class engine for very large flow populations.

The per-flow kernels in :mod:`repro.tcp.simulate` walk every stream
every tick, which tops out around thousands of concurrent flows.  This
package trades per-flow congestion state for *flow classes* — groups of
flows sharing the same path, congestion control and transport
parameters — and advances each class with ODE-style population
dynamics:

* one aggregate congestion window per class (the population mean),
  stepped by the same :class:`~repro.tcp.congestion.CongestionControl`
  batch arithmetic the exact kernels use;
* loss-rate coupling through shared link capacities: classes offer
  their aggregate demand onto the links they cross, links grow virtual
  queues, and overflow feeds back as a per-class loss pressure;
* birth/death demographics as transfers start and finish, tracked in
  O(total flows) with per-class finish heaps — never a per-flow walk
  per tick.

Per-tick cost is O(classes + links), independent of population size,
which is what makes 100k–1M concurrent flows tractable (see
``benchmarks/bench_megaflows.py``).

Accuracy contract
-----------------
The fluid engine is **approximate by design** — it belongs to the
engine tier of :data:`repro.vectorize.SIM_ENGINES`, not the
bit-identical backend tier.  The contract, gated by the megaflows
bench, is a *delivered-bytes ratio within 1% of the per-flow kernels at
matched horizon* for saturated many-flow workloads.  Scenarios below
the hybrid switchover threshold never reach this engine at all: the
``engine="hybrid"`` dispatcher keeps them on the exact kernels,
byte-for-byte.
"""

from .classes import DEFAULT_PHASE_SHARDS, FlowClass, build_flow_classes
from .engine import DEFAULT_SWITCHOVER, FluidEngine, FluidResult

__all__ = [
    "DEFAULT_PHASE_SHARDS",
    "DEFAULT_SWITCHOVER",
    "FlowClass",
    "FluidEngine",
    "FluidResult",
    "build_flow_classes",
]

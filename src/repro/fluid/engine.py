"""The mean-field stepper: ODE population dynamics over flow classes.

Each tick advances *classes*, not flows:

1. every class with live members offers
   ``n_streams_live * min(W, rwnd) * mss / rtt`` (W is the class's mean
   per-stream congestion window), capped by its members' rate limits;
2. link bandwidth is divided max-min fairly among *classes* (the same
   progressive-filling allocator as the per-flow kernels, at class
   granularity — flows within a class are symmetric, so the class-level
   split equals the flow-level one);
3. links whose offered load exceeds capacity grow the same virtual
   queues as the per-flow model; overflow plus random path loss feed a
   per-class *loss pressure* ``P`` — the expected fraction of streams
   that saw a loss event since the last window update;
4. once per RTT the mean window takes the expectation of the per-flow
   update: ``W <- P * on_loss(W) + (1-P) * grow(W)``, with slow-start,
   ssthresh, and the receive-window cap mirroring the exact kernels'
   arithmetic (the same :class:`~repro.tcp.congestion.CongestionControl`
   batch methods);
5. births advance a pointer over start-time-sorted members; deaths pop
   a per-class heap of finish thresholds expressed in cumulative
   per-stream delivered bits, so neither ever walks the population.

Per-tick cost is O(classes + links); total birth/death cost is
O(flows log flows) over the whole run.  The engine is deterministic —
loss is an expectation, not a sample — so it needs no RNG.

This is the approximate tier: see :mod:`repro.fluid` for the accuracy
contract, and ``benchmarks/bench_megaflows.py`` for the gate.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import List, Sequence, Tuple

import numpy as np

from ..errors import SimulationError
from ..tcp.simulate import _ProgressiveFiller
from .classes import FlowClass, algorithm_key

__all__ = ["DEFAULT_SWITCHOVER", "FluidEngine", "FluidResult"]

#: Hybrid dispatcher threshold: simulations with at least this many
#: streams (flows x parallel streams) take the fluid engine; smaller
#: populations stay on the bit-identical per-flow kernels.
DEFAULT_SWITCHOVER = 1024


@dataclass
class FluidResult:
    """Outcome of one :meth:`FluidEngine.run`, indexed by global flow id."""

    now_s: float
    ticks: int
    delivered_bits: np.ndarray
    finish_s: np.ndarray          # NaN while unfinished
    started: np.ndarray           # bool
    queues_bits: np.ndarray       # final per-link virtual queue state
    class_delivered_bits: np.ndarray
    class_population: np.ndarray
    classes_retired: int          # classes whose every member finished
    #: Aggregate throughput samples ``(time_s, total_rate_bps)`` at the
    #: caller's sample interval.  Per-flow series are deliberately not
    #: produced — materializing them is a per-flow cost.
    samples: List[Tuple[float, float]] = field(default_factory=list)

    @property
    def n_classes(self) -> int:
        return int(self.class_population.size)


class FluidEngine:
    """Advance a set of :class:`FlowClass` populations over shared links.

    Parameters mirror the per-flow simulator where they overlap:
    ``capacities_bps`` / ``buffers_bits`` are the link inventory the
    classes' ``link_indices`` point into, ``initial_cwnd`` seeds each
    class's mean window, and ``dt_s`` is the tick (the caller passes the
    per-flow model's ``min(rtt)/2`` rule so horizons line up).
    """

    def __init__(
        self,
        classes: Sequence[FlowClass],
        capacities_bps: np.ndarray,
        buffers_bits: np.ndarray,
        *,
        initial_cwnd: float = 10.0,
        dt_s: float,
        deterministic_loss: bool = False,
    ) -> None:
        if not classes:
            raise SimulationError("FluidEngine needs at least one flow class")
        self.classes = list(classes)
        self._caps = np.asarray(capacities_bps, dtype=np.float64)
        self._buffers = np.asarray(buffers_bits, dtype=np.float64)
        self._initial_cwnd = float(initial_cwnd)
        self._dt = float(dt_s)
        self._deterministic = bool(deterministic_loss)

        n_cls, n_links = len(self.classes), self._caps.size
        usage = np.zeros((n_cls, n_links), dtype=bool)
        for c, cls in enumerate(self.classes):
            usage[c, list(cls.link_indices)] = True
        self._usage = usage
        self._filler = _ProgressiveFiller(usage, self._caps)

        self._rtt = np.array([c.rtt_s for c in self.classes])
        self._mss = np.array([c.mss_bits for c in self.classes])
        self._rwnd = np.array([c.rwnd_pkts for c in self.classes])
        self._rwnd_cap = self._rwnd * 1.25
        self._lossp = np.array([c.random_loss for c in self.classes])
        self._streams = np.array([c.streams_per_flow for c in self.classes],
                                 dtype=np.float64)
        self._flow_cap = np.array([c.rate_cap_bps for c in self.classes])

        # Classes grouped by congestion-control behaviour for batch
        # updates, under the same interchangeability key as the exact
        # kernels.
        groups: List[Tuple[object, np.ndarray]] = []
        seen = {}
        for c, cls in enumerate(self.classes):
            key = algorithm_key(cls.algorithm)
            if key not in seen:
                seen[key] = len(groups)
                groups.append((cls.algorithm, np.zeros(n_cls, dtype=bool)))
            groups[seen[key]][1][c] = True
        self._algo_groups = groups

    def run(
        self,
        *,
        horizon_s: float,
        until_given: bool,
        max_ticks: int = 2_000_000,
        sample_interval_s: float = 1.0,
    ) -> FluidResult:
        """Step the populations until every bounded flow finishes (or the
        horizon elapses).  One-shot: each call restarts from t=0."""
        classes = self.classes
        n_cls = len(classes)
        n_flows = sum(c.population for c in classes)
        dt = self._dt
        rtt, mss, rwnd = self._rtt, self._mss, self._rwnd
        rwnd_cap, lossp = self._rwnd_cap, self._lossp
        streams_c, flow_cap = self._streams, self._flow_cap
        usage_f = self._usage.astype(np.float64)
        # Congestion pressure per congested tick.  With an RNG the
        # per-flow model flags each stream Bernoulli(dt/rtt); without
        # one it flags *every* stream on the congested link, so the
        # deterministic mode saturates the pressure (the whole class
        # halves at its next window update, exactly like the exact
        # kernels' rng-less branch).
        cong_p = (np.ones(rtt.size) if self._deterministic
                  else np.minimum(1.0, dt / rtt))
        has_lossp = lossp > 0.0
        any_lossp = bool(has_lossp.any())
        # Per-flow demand cap lifted to the class: n_live * cap, only
        # evaluated for capped classes (0 * inf is NaN).
        capped = np.nonzero(np.isfinite(flow_cap))[0]

        # Global birth schedule: (start, flow) ascending across classes.
        b_starts = np.concatenate([c.starts_s for c in classes])
        b_flows = np.concatenate([c.flow_ids for c in classes])
        b_class = np.concatenate([
            np.full(c.population, c.index, dtype=np.int64) for c in classes])
        b_size = np.concatenate([c.per_stream_bits for c in classes])
        order = np.lexsort((b_flows, b_starts))
        b_starts, b_flows = b_starts[order], b_flows[order]
        b_class, b_size = b_class[order], b_size[order]
        bp = 0  # birth pointer

        # Class population state.  Slow start is tracked as the
        # *fraction* of streams still in it (exit on first loss is
        # one-way in the per-flow model, so the fraction decays by the
        # surviving share at every window update) — an infinite-ssthresh
        # mean would never leave slow start under blending.
        W = np.full(n_cls, self._initial_cwnd)
        ss_frac = np.ones(n_cls)
        tsl = np.zeros(n_cls)
        # Shards start mid-window (phase in [0, 1)) so sibling shards'
        # updates stagger across the RTT like per-flow stream clocks.
        rtt_clock = np.array([c.phase for c in classes]) * rtt
        P = np.zeros(n_cls)            # accumulated loss pressure
        D = np.zeros(n_cls)            # cumulative per-stream delivered bits
        n_flows_live = np.zeros(n_cls)
        n_streams_live = np.zeros(n_cls)
        agg = np.zeros(n_cls)          # class delivered bits (conserved)
        queues = np.zeros(self._caps.size)

        # Flow-level outcome state (touched only at birth/death).
        started = np.zeros(n_flows, dtype=bool)
        d_birth = np.zeros(n_flows)
        streams_of = np.zeros(n_flows)
        class_of = np.zeros(n_flows, dtype=np.int64)
        finish_s = np.full(n_flows, np.nan)
        heaps: List[list] = [[] for _ in range(n_cls)]
        next_death = np.full(n_cls, np.inf)
        n_unfinished = n_flows

        now = 0.0
        next_sample = 0.0
        samples: List[Tuple[float, float]] = []
        allocate = self._filler._allocate_numpy

        for tick in range(max_ticks):
            if now >= horizon_s:
                break
            while bp < b_starts.size and b_starts[bp] <= now:
                f, c = int(b_flows[bp]), int(b_class[bp])
                started[f] = True
                class_of[f] = c
                streams_of[f] = streams_c[c]
                d_birth[f] = D[c]
                n_flows_live[c] += 1
                n_streams_live[c] += streams_c[c]
                if np.isfinite(b_size[bp]):
                    heapq.heappush(heaps[c], (float(D[c] + b_size[bp]), f))
                    next_death[c] = heaps[c][0][0]
                bp += 1

            live = n_streams_live > 0.0
            if not live.any():
                if bp < b_starts.size:
                    now = min(float(b_starts[bp]), horizon_s)
                    continue
                if not until_given:
                    break
                now = horizon_s
                continue

            demands = np.where(
                live, n_streams_live * np.minimum(W, rwnd) * mss / rtt, 0.0)
            if capped.size:
                demands[capped] = np.minimum(
                    demands[capped], n_flows_live[capped] * flow_cap[capped])

            alloc = allocate(demands)

            # Virtual queues: same advance rule as the per-flow model,
            # driven by class-aggregate offered load.
            offered = demands @ usage_f
            queues = np.maximum(0.0, queues + (offered - self._caps) * dt)
            overflowing = queues > self._buffers
            np.minimum(queues, self._buffers, out=queues)

            rate_ps = np.where(live, alloc / np.maximum(n_streams_live, 1.0),
                               0.0)

            # Loss pressure: expected fraction of a class's streams that
            # flagged a loss since the last window update.  Congestion
            # contributes dt/rtt per congested tick (the per-flow model's
            # per-stream Bernoulli rate); random path loss contributes
            # its per-packet expectation over the bits moved this tick.
            e = np.where(live & (self._usage[:, overflowing].any(axis=1)
                                 if overflowing.any()
                                 else np.zeros(n_cls, dtype=bool)),
                         cong_p, 0.0)
            if any_lossp:
                pkts = rate_ps * dt / mss
                e_rand = np.where(has_lossp,
                                  1.0 - (1.0 - lossp) ** pkts, 0.0)
                e = 1.0 - (1.0 - e) * (1.0 - e_rand)
            P = 1.0 - (1.0 - P) * (1.0 - e)

            # Deliver and harvest deaths (heap pops touch only classes
            # whose cumulative delivered crossed a member's threshold).
            inc = rate_ps * dt
            D += inc
            agg += inc * n_streams_live
            for c in np.nonzero(D >= next_death)[0]:
                heap = heaps[c]
                while heap and heap[0][0] <= D[c]:
                    thr, f = heapq.heappop(heap)
                    over = D[c] - thr
                    finish_s[f] = (now + dt - over / rate_ps[c]
                                   if rate_ps[c] > 0.0 else now + dt)
                    n_flows_live[c] -= 1
                    n_streams_live[c] -= streams_of[f]
                    agg[c] -= over * streams_of[f]
                    n_unfinished -= 1
                next_death[c] = heap[0][0] if heap else np.inf

            # Per-RTT mean-field window update: the expectation of the
            # per-flow rule under loss fraction P.
            rtt_clock += live * dt
            tsl += live * dt
            upd = live & (rtt_clock >= rtt)
            if upd.any():
                rtt_clock[upd] = 0.0
                p = P[upd]
                s = ss_frac[upd]
                w_up = W[upd]
                for algo, cmask in self._algo_groups:
                    sel = upd & cmask
                    if not sel.any():
                        continue
                    sub = cmask[upd]
                    # Loss-free growth is the population mix of the two
                    # regimes: the slow-start fraction doubles, the rest
                    # takes the congestion-avoidance increase (windows
                    # already past rwnd hold, like the per-flow rule).
                    grow_ss = np.minimum(w_up[sub] * algo.slow_start_factor,
                                         rwnd_cap[upd][sub])
                    grow_ca = np.where(
                        w_up[sub] <= rwnd[upd][sub],
                        np.minimum(
                            w_up[sub] + algo.increase_batch(
                                w_up[sub], tsl[upd][sub], rtt[upd][sub]),
                            rwnd_cap[upd][sub]),
                        w_up[sub])
                    grow_sel = s[sub] * grow_ss + (1.0 - s[sub]) * grow_ca
                    inflight = np.minimum(w_up[sub], rwnd[upd][sub])
                    w_loss = algo.on_loss_batch(
                        inflight, rtt[upd][sub], rtt[upd][sub])
                    W[sel] = p[sub] * w_loss + (1.0 - p[sub]) * grow_sel
                ss_frac[upd] = s * (1.0 - p)
                tsl[upd] *= 1.0 - p
                P[upd] = 0.0

            now += dt
            if now >= next_sample:
                next_sample = now + sample_interval_s
                samples.append((now, float(alloc.sum())))
            if n_unfinished == 0 and bp >= b_starts.size and not until_given:
                break
        else:
            raise SimulationError(
                f"multi-flow simulation did not settle within {max_ticks} ticks"
            )

        # Per-flow delivered totals from the class's cumulative counter:
        # streams * (D_at_finish - D_at_birth), clipped to the transfer
        # size.  Sums match `agg` to float roundoff by construction (the
        # death loop subtracts each finisher's overshoot).
        per_stream_done = np.concatenate([c.per_stream_bits for c in classes])
        flow_ids = np.concatenate([c.flow_ids for c in classes])
        size_of = np.empty(n_flows)
        size_of[flow_ids] = per_stream_done
        delivered = np.where(
            started,
            streams_of * np.minimum(D[class_of] - d_birth, size_of),
            0.0)

        retired = sum(
            1 for c in classes
            if np.isfinite(finish_s[c.flow_ids]).all())
        self.queues = queues
        return FluidResult(
            now_s=now,
            ticks=tick + 1,
            delivered_bits=delivered,
            finish_s=finish_s,
            started=started,
            queues_bits=queues,
            class_delivered_bits=agg,
            class_population=np.array([c.population for c in classes]),
            classes_retired=retired,
            samples=samples,
        )

"""Performance-regression harness for the simulator's hot paths.

The simulator's credibility rests on two things: the reproduced numbers
(guarded by goldens) and the ability to run large parameter studies
quickly (guarded here).  This module times a small registry of *pinned*
scenarios — the vectorized multi-flow fluid loop, the fan-in Lindley
sweep, max-min fair allocation, and the single-connection fluid TCP
loop — and compares the timings against a committed baseline
(``benchmarks/baseline.json``).

Raw wall-clock times are not portable across machines, so every suite
run also times a fixed pure-numpy *calibration kernel* and the
comparison works on calibration-normalized times::

    ratio = (current_s / current_calibration) / (baseline_s / baseline_calibration)

A scenario regresses when its normalized ratio exceeds ``1 + tolerance``
(default tolerance 0.30, per the CI gate).  Speedups silently pass; to
lock them in, refresh the baseline with ``repro bench --write-baseline``.

Scenario timings measure only the hot loop: topology construction and
path profiling happen outside the timed region, and each repeat builds
fresh state so stateful objects (``MultiFlowSimulation``) never resume
a previous run.
"""

from __future__ import annotations

import json
import platform
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from .errors import ConfigurationError, ReproError

__all__ = [
    "SCENARIOS",
    "Scenario",
    "calibrate",
    "compare",
    "load_baseline",
    "run_scenario",
    "run_suite",
    "run_suite_from_spec",
    "write_json",
]

#: JSON schema version for suite/baseline payloads.
SCHEMA_VERSION = 1

#: CI gate: fail when a scenario is >30% slower than baseline (normalized).
DEFAULT_TOLERANCE = 0.30


@dataclass(frozen=True)
class Scenario:
    """A pinned, reproducible workload for regression timing.

    ``factory(quick)`` returns a zero-argument thunk wrapping the timed
    hot loop; the harness calls the factory once per repeat so no state
    leaks between measurements.
    """

    name: str
    description: str
    factory: Callable[[bool], Callable[[], object]]


# -- workload builders --------------------------------------------------------

def _chain_simulation(backend: str, quick: bool):
    """64 flows x 4 streams over a shared 30-link lossy chain.

    The headline scenario from the vectorization work: many competing
    multi-stream flows on overlapping paths, with a small uniform loss
    probability on the backbone so the stochastic loss machinery runs.
    Quick mode shrinks to 8 flows over 10 links for smoke tests.
    """
    from .netsim import Link, Topology
    from .netsim.flow import FlowSpec
    from .netsim.node import Router
    from .tcp.simulate import MultiFlowSimulation
    from .units import Gbps, MB, bytes_, ms, seconds

    n_links = 10 if quick else 30
    n_flows = 8 if quick else 64
    horizon = seconds(3) if quick else seconds(30)

    topo = Topology("bench-chain")
    topo.add_node(Router(name="r0"))
    for i in range(1, n_links + 1):
        topo.add_node(Router(name=f"r{i}"))
        topo.connect(f"r{i - 1}", f"r{i}",
                     Link(rate=Gbps(40), delay=ms(1), mtu=bytes_(9000),
                          loss_probability=2e-6))
    for h in range(n_flows):
        a = h % n_links
        b = n_links - (h % max(n_links - 5, 1))
        topo.add_host(f"h{h}", nic_rate=Gbps(10))
        topo.add_host(f"g{h}", nic_rate=Gbps(10))
        topo.connect(f"h{h}", f"r{a}",
                     Link(rate=Gbps(10), delay=ms(1), mtu=bytes_(9000)))
        topo.connect(f"g{h}", f"r{b}",
                     Link(rate=Gbps(10), delay=ms(1), mtu=bytes_(9000)))
    specs = [FlowSpec(src=f"h{h}", dst=f"g{h}", size=MB(200),
                      parallel_streams=4, label=f"f{h}")
             for h in range(n_flows)]
    sim = MultiFlowSimulation(topo, specs, rng=np.random.default_rng(3),
                              backend=backend)
    return sim, horizon


def _multiflow_factory(backend: str):
    def factory(quick: bool):
        sim, horizon = _chain_simulation(backend, quick)
        return lambda: sim.run(until=horizon)
    return factory


def _fanin_factory(backend: str):
    def factory(quick: bool):
        from .netsim.packetsim import BurstySource, simulate_fan_in
        from .units import Gbps, KB, Mbps, seconds

        n_sources = 3 if quick else 8
        duration = seconds(0.2) if quick else seconds(2.0)
        sources = [BurstySource(name=f"s{i}", line_rate=Gbps(1),
                                mean_rate=Mbps(600), burst_size=KB(128))
                   for i in range(n_sources)]
        # Moderate-drop regime (~6% loss): enough contention that the
        # drop machinery runs, not so much that the sweep degenerates
        # into per-packet drop handling.
        return lambda: simulate_fan_in(
            sources, egress_rate=Gbps(4.5), buffer_size=KB(512),
            duration=duration, rng=np.random.default_rng(7),
            backend=backend)
    return factory


def _maxmin_factory(backend: str):
    def factory(quick: bool):
        from .tcp.simulate import max_min_fair_allocation

        n_flows = 40 if quick else 200
        n_links = 12 if quick else 60
        n_calls = 5 if quick else 200
        rng = np.random.default_rng(11)
        usage = rng.random((n_flows, n_links)) < 0.15
        usage[:, 0] = True  # every flow crosses the shared border link
        demands = rng.random(n_flows) * 10.0
        capacities = rng.random(n_links) * 40.0 + 1.0

        def run():
            total = 0.0
            for _ in range(n_calls):
                total += float(max_min_fair_allocation(
                    demands, usage, capacities, backend=backend).sum())
            return total
        return run
    return factory


def _megaflows_simulation(backend: str, quick: bool):
    """An LHC-style gravity traffic matrix on the 12-site WAN backbone.

    The mean-field engine's headline workload: the full mode loads
    100k concurrent flows (400k streams) — far past what the per-flow
    kernels can carry — and the fluid engine collapses them into a few
    hundred flow classes.  Quick mode shrinks to 5k flows so the CI
    smoke still crosses the hybrid switchover threshold.
    """
    from .tcp.simulate import MultiFlowSimulation
    from .units import seconds
    from .workloads import traffic_matrix, wan_backbone

    n_flows = 5_000 if quick else 100_000
    horizon = seconds(1) if quick else seconds(2)
    n_sites = 12
    topo = wan_backbone(n_sites)
    workload = traffic_matrix([f"site{i}" for i in range(n_sites)],
                              n_flows=n_flows,
                              rng=np.random.default_rng(42))
    sim = MultiFlowSimulation(topo, workload.specs(), backend=backend)
    return sim, horizon


def _megaflows_factory(backend: str):
    def factory(quick: bool):
        sim, horizon = _megaflows_simulation(backend, quick)
        return lambda: sim.run(until=horizon)
    return factory


def _fluid_tcp_factory(quick: bool):
    from dataclasses import replace

    from .netsim import Link, Topology
    from .tcp import Reno, TcpConnection
    from .units import Gbps, MB, bytes_, ms, seconds

    topo = Topology("bench-fluid")
    topo.add_host("a", nic_rate=Gbps(10))
    topo.add_host("b", nic_rate=Gbps(10))
    topo.connect("a", "b", Link(rate=Gbps(10), delay=ms(10),
                                mtu=bytes_(9000), loss_probability=1e-4))
    profile = topo.profile_between("a", "b")
    profile = replace(profile,
                      flow=profile.flow.with_(max_receive_window=MB(64)))
    horizon = seconds(20) if quick else seconds(600)

    def run():
        conn = TcpConnection(profile, algorithm=Reno(),
                             rng=np.random.default_rng(1))
        return conn.measure(horizon, max_rounds=60_000).rounds
    return run


#: Registry of pinned regression scenarios, keyed by ``family.backend``.
SCENARIOS: Dict[str, Scenario] = {}


def _register(name: str, description: str,
              factory: Callable[[bool], Callable[[], object]]) -> None:
    SCENARIOS[name] = Scenario(name=name, description=description,
                               factory=factory)


_register("multiflow.numpy",
          "64 flows x 4 streams, 30-link lossy chain (vectorized)",
          _multiflow_factory("numpy"))
_register("multiflow.python",
          "64 flows x 4 streams, 30-link lossy chain (scalar reference)",
          _multiflow_factory("python"))
_register("fanin.numpy",
          "8-source fan-in Lindley sweep, 2s horizon (vectorized)",
          _fanin_factory("numpy"))
_register("fanin.python",
          "8-source fan-in Lindley sweep, 2s horizon (scalar reference)",
          _fanin_factory("python"))
_register("maxmin.numpy",
          "max-min fair allocation, 200 flows x 60 links x 100 calls",
          _maxmin_factory("numpy"))
_register("maxmin.python",
          "max-min fair allocation, scalar reference",
          _maxmin_factory("python"))
_register("fluid_tcp",
          "single-connection fluid TCP, 20k lossy rounds",
          _fluid_tcp_factory)
_register("megaflows.fluid",
          "100k-flow gravity traffic matrix, 12-site WAN (mean-field)",
          _megaflows_factory("fluid"))
_register("megaflows.hybrid",
          "100k-flow gravity traffic matrix through the hybrid dispatcher",
          _megaflows_factory("hybrid"))


# -- timing -------------------------------------------------------------------

def calibrate(repeats: int = 3) -> float:
    """Time a fixed pure-numpy kernel (seconds, best of ``repeats``).

    Used to normalize scenario timings across machines: CI runners and
    laptops differ in absolute speed but the *ratio* of a scenario to
    this kernel is far more stable.
    """
    rng = np.random.default_rng(0)
    a = rng.random((400, 400))
    b = rng.random(200_000)
    best = float("inf")
    for _ in range(max(1, repeats)):
        t0 = time.perf_counter()
        for _ in range(4):
            (a @ a).sum()
            np.cumsum(b).sum()
            np.sort(b)
        best = min(best, time.perf_counter() - t0)
    return best


def run_scenario(name: str, *, repeats: int = 3,
                 quick: bool = False) -> Dict[str, object]:
    """Run one registered scenario; returns name/seconds/repeats.

    ``seconds`` is the best (minimum) of ``repeats`` timed runs — the
    standard choice for regression gating since it is the least noisy
    estimator of the true cost.
    """
    try:
        scenario = SCENARIOS[name]
    except KeyError:
        known = ", ".join(sorted(SCENARIOS))
        raise ConfigurationError(
            f"unknown bench scenario {name!r}; known: {known}")
    best = float("inf")
    for _ in range(max(1, repeats)):
        thunk = scenario.factory(quick)
        t0 = time.perf_counter()
        thunk()
        best = min(best, time.perf_counter() - t0)
    return {"name": name, "seconds": best, "repeats": max(1, repeats)}


def run_suite(names: Optional[Sequence[str]] = None, *, repeats: int = 3,
              quick: bool = False,
              progress: Optional[Callable[[str, float], None]] = None,
              ) -> Dict[str, object]:
    """Run scenarios and return the suite payload (see module docs)."""
    selected = list(names) if names else sorted(SCENARIOS)
    for name in selected:
        if name not in SCENARIOS:
            known = ", ".join(sorted(SCENARIOS))
            raise ConfigurationError(
                f"unknown bench scenario {name!r}; known: {known}")
    results: Dict[str, float] = {}
    for name in selected:
        results[name] = float(run_scenario(
            name, repeats=repeats, quick=quick)["seconds"])
        if progress is not None:
            progress(name, results[name])
    return {
        "schema": SCHEMA_VERSION,
        "quick": bool(quick),
        "repeats": int(repeats),
        "calibration": calibrate(),
        "platform": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "machine": platform.machine(),
        },
        "results": results,
    }


def run_suite_from_spec(spec, *,
                        progress: Optional[Callable[[str, float], None]]
                        = None) -> Dict[str, object]:
    """Run the suite a :class:`repro.experiment.BenchSpec` pins down.

    Duck-typed on ``scenarios``/``repeats``/``quick`` so this module
    never imports :mod:`repro.experiment` (which imports the scenario
    layer); the experiment runner calls in the other direction.
    """
    names = list(spec.scenarios) or None
    return run_suite(names, repeats=spec.repeats, quick=spec.quick,
                     progress=progress)


# -- baseline I/O and comparison ----------------------------------------------

def write_json(payload: Dict[str, object], path: str) -> str:
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def load_baseline(path: str) -> Dict[str, object]:
    try:
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
    except OSError as exc:
        raise ReproError(f"cannot read baseline {path!r}: {exc}")
    except ValueError as exc:
        raise ReproError(f"baseline {path!r} is not valid JSON: {exc}")
    if not isinstance(payload, dict) or "results" not in payload:
        raise ReproError(f"baseline {path!r} has no 'results' section")
    if payload.get("schema") != SCHEMA_VERSION:
        raise ReproError(
            f"baseline {path!r} has schema {payload.get('schema')!r}; "
            f"this harness speaks schema {SCHEMA_VERSION}")
    return payload


def compare(current: Dict[str, object], baseline: Dict[str, object], *,
            tolerance: float = DEFAULT_TOLERANCE) -> List[Dict[str, object]]:
    """Compare suite payloads; returns one row per shared scenario.

    Each row carries the calibration-normalized ``ratio`` (current over
    baseline; 1.0 means unchanged) and ``regressed`` (ratio beyond
    ``1 + tolerance``).  Scenarios present in only one payload are
    skipped — renaming a scenario intentionally resets its history.
    """
    if tolerance < 0:
        raise ConfigurationError("tolerance must be non-negative")
    if bool(current.get("quick")) != bool(baseline.get("quick")):
        raise ReproError(
            "refusing to compare: one payload was produced in quick mode "
            "and the other was not; their workloads differ")
    cur_cal = float(current.get("calibration", 0.0)) or 1.0
    base_cal = float(baseline.get("calibration", 0.0)) or 1.0
    rows: List[Dict[str, object]] = []
    base_results = baseline["results"]
    for name, cur_s in sorted(current["results"].items()):
        if name not in base_results:
            continue
        base_s = float(base_results[name])
        if base_s <= 0.0:
            continue
        ratio = (float(cur_s) / cur_cal) / (base_s / base_cal)
        rows.append({
            "name": name,
            "baseline_s": base_s,
            "current_s": float(cur_s),
            "ratio": ratio,
            "regressed": ratio > 1.0 + tolerance,
        })
    return rows

"""Time-series helpers and terminal figure rendering."""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from ..errors import ConfigurationError

__all__ = ["decimate", "rolling_mean", "ascii_chart"]


def decimate(times: np.ndarray, values: np.ndarray,
             max_points: int = 512) -> Tuple[np.ndarray, np.ndarray]:
    """Uniformly thin a series to at most ``max_points`` points."""
    times = np.asarray(times, dtype=np.float64)
    values = np.asarray(values, dtype=np.float64)
    if times.shape != values.shape:
        raise ConfigurationError("times and values must have the same shape")
    if max_points < 2:
        raise ConfigurationError("max_points must be >= 2")
    if times.size <= max_points:
        return times, values
    idx = np.linspace(0, times.size - 1, max_points).round().astype(int)
    return times[idx], values[idx]


def rolling_mean(values: np.ndarray, window: int) -> np.ndarray:
    """Trailing rolling mean with a warm-up that averages what exists."""
    values = np.asarray(values, dtype=np.float64)
    if window < 1:
        raise ConfigurationError("window must be >= 1")
    if values.size == 0:
        return values.copy()
    cumsum = np.cumsum(values)
    out = np.empty_like(values)
    for i in range(values.size):
        lo = max(0, i - window + 1)
        total = cumsum[i] - (cumsum[lo - 1] if lo > 0 else 0.0)
        out[i] = total / (i - lo + 1)
    return out


def ascii_chart(
    series: Sequence[Tuple[str, np.ndarray, np.ndarray]],
    *,
    width: int = 72,
    height: int = 16,
    title: str = "",
    logy: bool = False,
    ylabel: str = "",
    xlabel: str = "",
) -> str:
    """Render one or more (label, x, y) series as an ASCII chart.

    Used by the benches to render the paper's figures in a terminal; each
    series gets a distinct glyph, and the legend maps glyphs to labels.
    """
    if not series:
        raise ConfigurationError("ascii_chart needs at least one series")
    glyphs = "*o+x#@%&"
    xs_all = np.concatenate([np.asarray(x, dtype=np.float64) for _, x, _ in series])
    ys_all = np.concatenate([np.asarray(y, dtype=np.float64) for _, _, y in series])
    if xs_all.size == 0:
        raise ConfigurationError("series are empty")
    if logy:
        positive = ys_all[ys_all > 0]
        if positive.size == 0:
            raise ConfigurationError("logy chart needs positive values")
        y_min, y_max = positive.min(), ys_all.max()
    else:
        y_min, y_max = float(ys_all.min()), float(ys_all.max())
    x_min, x_max = float(xs_all.min()), float(xs_all.max())
    x_span = (x_max - x_min) or 1.0

    def y_to_row(y: float) -> Optional[int]:
        if logy:
            if y <= 0:
                return None
            lo, hi = np.log10(y_min), np.log10(y_max)
            frac = (np.log10(y) - lo) / ((hi - lo) or 1.0)
        else:
            frac = (y - y_min) / ((y_max - y_min) or 1.0)
        return int(round((height - 1) * (1.0 - frac)))

    canvas = [[" "] * width for _ in range(height)]
    for (label, x, y), glyph in zip(series, glyphs):
        x = np.asarray(x, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        for xv, yv in zip(x, y):
            col = int(round((width - 1) * (xv - x_min) / x_span))
            row = y_to_row(float(yv))
            if row is not None:
                canvas[row][col] = glyph

    lines = []
    if title:
        lines.append(title)
    top_label = f"{y_max:.3g}"
    bottom_label = f"{y_min:.3g}"
    margin = max(len(top_label), len(bottom_label), len(ylabel)) + 1
    for i, row in enumerate(canvas):
        if i == 0:
            prefix = top_label.rjust(margin)
        elif i == height - 1:
            prefix = bottom_label.rjust(margin)
        elif i == height // 2 and ylabel:
            prefix = ylabel.rjust(margin)
        else:
            prefix = " " * margin
        lines.append(prefix + "|" + "".join(row))
    axis = " " * margin + "+" + "-" * width
    lines.append(axis)
    xl = f"{x_min:.3g}".ljust(width // 2) + f"{x_max:.3g}".rjust(width // 2)
    lines.append(" " * (margin + 1) + xl + (f"  {xlabel}" if xlabel else ""))
    legend = "  ".join(f"{g}={label}" for (label, _, _), g in zip(series, glyphs))
    lines.append(" " * (margin + 1) + "legend: " + legend)
    return "\n".join(lines)

"""Parameter sweeps: the benches' grid machinery, reusable.

:func:`sweep` evaluates a function over the cartesian product of named
parameter grids and collects results into a :class:`ResultTable` plus raw
records, so ablation studies ("loss x RTT x algorithm") are three lines:

>>> from repro.analysis.sweep import sweep
>>> result = sweep(lambda x, y: x * y, {"x": [1, 2], "y": [10, 20]})
>>> [r.value for r in result.records]
[10, 20, 20, 40]
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence

from ..errors import ConfigurationError
from .tables import ResultTable

__all__ = ["SweepRecord", "SweepResult", "sweep"]


@dataclass(frozen=True)
class SweepRecord:
    """One grid point and its outcome."""

    params: Dict[str, object]
    value: object
    error: Optional[str] = None

    @property
    def ok(self) -> bool:
        return self.error is None


@dataclass
class SweepResult:
    """All grid points, with table rendering."""

    param_names: List[str]
    records: List[SweepRecord] = field(default_factory=list)
    value_label: str = "value"

    def table(self, title: str = "sweep") -> ResultTable:
        table = ResultTable(title, self.param_names + [self.value_label])
        for record in self.records:
            cells = [record.params[k] for k in self.param_names]
            cells.append(record.value if record.ok
                         else f"error: {record.error}")
            table.add_row(cells)
        return table

    def values(self) -> List[object]:
        """Outcomes of the successful points, in grid order."""
        return [r.value for r in self.records if r.ok]

    def best(self, key: Callable[[object], float], *,
             maximize: bool = True) -> SweepRecord:
        """The grid point optimizing ``key`` over successful outcomes."""
        candidates = [r for r in self.records if r.ok]
        if not candidates:
            raise ConfigurationError("sweep produced no successful points")
        return (max if maximize else min)(
            candidates, key=lambda r: key(r.value))

    def failures(self) -> List[SweepRecord]:
        return [r for r in self.records if not r.ok]


def sweep(
    fn: Callable[..., object],
    grid: Mapping[str, Sequence[object]],
    *,
    value_label: str = "value",
    catch_errors: bool = False,
    on_error: Optional[str] = None,
) -> SweepResult:
    """Evaluate ``fn(**point)`` over the cartesian product of ``grid``.

    Parameters
    ----------
    fn:
        Called with one keyword argument per grid dimension.
    grid:
        ``{param_name: [values...]}``.  Order of keys defines column and
        iteration order (last key varies fastest).
    catch_errors:
        When True, exceptions from ``fn`` become failed records instead
        of propagating — useful for sweeps that intentionally cross into
        invalid regions (e.g. oversubscribed reservations).
    on_error:
        Explicit spelling of the same choice: ``"raise"`` propagates the
        first exception, ``"record"`` turns each into a failed record.
        Overrides ``catch_errors`` when given.
    """
    if on_error is not None:
        if on_error not in ("raise", "record"):
            raise ConfigurationError(
                f"on_error must be 'raise' or 'record', got {on_error!r}")
        catch_errors = on_error == "record"
    if not grid:
        raise ConfigurationError("sweep needs at least one parameter")
    names = list(grid.keys())
    for name, values in grid.items():
        if not values:
            raise ConfigurationError(f"parameter {name!r} has no values")
    result = SweepResult(param_names=names, value_label=value_label)
    for combo in itertools.product(*(grid[n] for n in names)):
        params = dict(zip(names, combo))
        try:
            value = fn(**params)
            result.records.append(SweepRecord(params=params, value=value))
        except Exception as exc:  # noqa: BLE001 - intentional catch-all
            if not catch_errors:
                raise
            result.records.append(SweepRecord(
                params=params, value=None, error=str(exc)))
    return result

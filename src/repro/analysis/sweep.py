"""Parameter sweeps: the benches' grid machinery, reusable.

:func:`sweep` evaluates a function over the cartesian product of named
parameter grids and collects results into a :class:`ResultTable` plus raw
records, so ablation studies ("loss x RTT x algorithm") are three lines:

>>> from repro.analysis.sweep import sweep
>>> result = sweep(lambda x, y: x * y, {"x": [1, 2], "y": [10, 20]})
>>> [r.value for r in result.records]
[10, 20, 20, 40]

Grids can fan out over a process pool and reuse cached points — the
results are byte-identical to the serial run (see
:mod:`repro.exec` and ``docs/execution.md``)::

    from repro.exec import ResultCache
    result = sweep(fn, grid, workers=4, cache=ResultCache())
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence

from ..errors import ConfigurationError
from .tables import ResultTable

__all__ = ["SweepRecord", "SweepResult", "sweep"]


@dataclass(frozen=True)
class SweepRecord:
    """One grid point and its outcome."""

    params: Dict[str, object]
    value: object
    error: Optional[str] = None

    @property
    def ok(self) -> bool:
        return self.error is None


@dataclass
class SweepResult:
    """All grid points, with table rendering."""

    param_names: List[str]
    records: List[SweepRecord] = field(default_factory=list)
    value_label: str = "value"
    #: Execution counters (points/evaluated/cache hits...) when the
    #: sweep ran through :class:`repro.exec.ParallelRunner`; None for
    #: the plain serial path.  Excluded from equality so a cached and
    #: a computed run still compare equal record-for-record.
    stats: Optional[Dict[str, int]] = field(default=None, compare=False,
                                            repr=False)

    def table(self, title: str = "sweep", *,
              status: Optional[bool] = None) -> ResultTable:
        """Render the grid.

        Failed points are reported through a dedicated ``status``
        column driven by each record's ``ok`` flag — never by
        formatting the value cell — so a legitimate string value that
        happens to start with ``"error:"`` can't masquerade as a
        failure (nor vice versa).  The column appears automatically
        when the sweep has failures; pass ``status=True``/``False`` to
        force it on or off.
        """
        include_status = (any(not r.ok for r in self.records)
                          if status is None else status)
        columns = self.param_names + [self.value_label]
        if include_status:
            columns = columns + ["status"]
        table = ResultTable(title, columns)
        for record in self.records:
            cells = [record.params[k] for k in self.param_names]
            cells.append(record.value if record.ok else "-")
            if include_status:
                cells.append("ok" if record.ok
                             else f"error: {record.error}")
            table.add_row(cells)
        return table

    def values(self) -> List[object]:
        """Outcomes of the successful points, in grid order."""
        return [r.value for r in self.records if r.ok]

    def best(self, key: Callable[[object], float], *,
             maximize: bool = True) -> SweepRecord:
        """The grid point optimizing ``key`` over successful outcomes."""
        candidates = [r for r in self.records if r.ok]
        if not candidates:
            raise ConfigurationError("sweep produced no successful points")
        return (max if maximize else min)(
            candidates, key=lambda r: key(r.value))

    def failures(self) -> List[SweepRecord]:
        return [r for r in self.records if not r.ok]


def sweep(
    fn: Callable[..., object],
    grid: Mapping[str, Sequence[object]],
    *,
    value_label: str = "value",
    catch_errors: bool = False,
    on_error: Optional[str] = None,
    workers: Optional[int] = None,
    cache: Optional[object] = None,
    base_seed: Optional[int] = None,
    seed_param: str = "seed",
    code_version: Optional[str] = None,
    mp_context=None,
    metrics=None,
    on_point=None,
) -> SweepResult:
    """Evaluate ``fn(**point)`` over the cartesian product of ``grid``.

    Parameters
    ----------
    fn:
        Called with one keyword argument per grid dimension.  Must be
        picklable (module top level) when ``workers > 1``.
    grid:
        ``{param_name: [values...]}``.  Order of keys defines column and
        iteration order (last key varies fastest).
    catch_errors:
        When True, exceptions from ``fn`` become failed records instead
        of propagating — useful for sweeps that intentionally cross into
        invalid regions (e.g. oversubscribed reservations).
    on_error:
        Explicit spelling of the same choice: ``"raise"`` propagates the
        first exception (in grid order, even under ``workers``),
        ``"record"`` turns each into a failed record.  Overrides
        ``catch_errors`` when given.
    workers:
        Process-pool size; ``None``/``0``/``1`` runs serially.  Results
        are restored to grid order and are byte-identical to the
        serial run.
    cache:
        Optional :class:`repro.exec.ResultCache` or a directory path
        (str/PathLike) to create one at; previously computed
        points are loaded instead of re-evaluated, new points are
        stored.  Hit/miss counters land in the cache's telemetry
        registry and in ``SweepResult.stats``.
    base_seed:
        When given, each call receives a derived, per-point seed as
        keyword ``seed_param`` (``seed`` by default) — stable across
        runs and independent of worker scheduling.
    code_version:
        Override for the cache's code-version tag; defaults to a hash
        of ``fn``'s source, so editing ``fn`` invalidates its entries.
    mp_context:
        Optional :mod:`multiprocessing` context for the pool.
    metrics:
        Optional shared :class:`~repro.telemetry.MetricsRegistry` the
        engine counters land in — lets a
        :class:`~repro.experiment.RunContext` aggregate sweep, cache
        and scenario counters in one place.
    on_point:
        Optional observer called with each
        :class:`~repro.exec.PointOutcome` as it completes (completion
        order, parent process) — how the experiment service streams
        per-point progress.  Forces the exec engine even for plain
        serial sweeps so the hook fires uniformly.
    """
    if on_error is not None:
        if on_error not in ("raise", "record"):
            raise ConfigurationError(
                f"on_error must be 'raise' or 'record', got {on_error!r}")
        catch_errors = on_error == "record"
    if not grid:
        raise ConfigurationError("sweep needs at least one parameter")
    names = list(grid.keys())
    for name, values in grid.items():
        if not values:
            raise ConfigurationError(f"parameter {name!r} has no values")
    if seed_param in names and base_seed is not None:
        raise ConfigurationError(
            f"grid already has a {seed_param!r} dimension; it would "
            "collide with the derived per-point seed")
    result = SweepResult(param_names=names, value_label=value_label)
    points = [dict(zip(names, combo))
              for combo in itertools.product(*(grid[n] for n in names))]

    engine_needed = (cache is not None or base_seed is not None
                     or metrics is not None or on_point is not None
                     or (workers is not None and workers > 1))
    if not engine_needed:
        for params in points:
            try:
                value = fn(**params)
                result.records.append(SweepRecord(params=params, value=value))
            except Exception as exc:  # noqa: BLE001 - intentional catch-all
                if not catch_errors:
                    raise
                result.records.append(SweepRecord(
                    params=params, value=None, error=str(exc)))
        return result

    from ..exec import ParallelRunner
    runner = ParallelRunner(workers, cache=cache, base_seed=base_seed,
                            seed_param=seed_param,
                            code_version=code_version,
                            mp_context=mp_context,
                            metrics=metrics,
                            on_outcome=on_point)
    for outcome in runner.map(fn, points, catch_errors=catch_errors):
        result.records.append(SweepRecord(
            params=outcome.params, value=outcome.value,
            error=outcome.error))
    result.stats = runner.stats()
    return result

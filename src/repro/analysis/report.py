"""Paper-vs-measured experiment records.

Each bench produces an :class:`ExperimentRecord`: the experiment id
(figure/section), the paper's claim, our measured value, and a list of
:class:`ShapeCheck` assertions ("who wins, by roughly what factor").  A
record renders as the EXPERIMENTS.md row for that experiment, and its
checks double as integration-test assertions.
"""

from __future__ import annotations

import io
from dataclasses import dataclass, field
from typing import Callable, List, Optional

from ..errors import ConfigurationError

__all__ = ["ShapeCheck", "ExperimentRecord", "ExperimentReport"]


@dataclass
class ShapeCheck:
    """One qualitative/quantitative shape assertion.

    ``passed`` is set when :meth:`evaluate` runs; checks are built with a
    thunk so records can be constructed before results exist.
    """

    description: str
    predicate: Callable[[], bool]
    passed: Optional[bool] = None

    def evaluate(self) -> bool:
        self.passed = bool(self.predicate())
        return self.passed

    def status(self) -> str:
        if self.passed is None:
            return "not-run"
        return "PASS" if self.passed else "FAIL"


@dataclass
class ExperimentRecord:
    """One paper experiment's reproduction outcome."""

    experiment_id: str          # e.g. "Figure 1", "§6.3 NOAA"
    paper_claim: str            # what the paper reports
    measured: str               # what we measured (filled by the bench)
    checks: List[ShapeCheck] = field(default_factory=list)
    notes: str = ""

    def add_check(self, description: str,
                  predicate: Callable[[], bool]) -> ShapeCheck:
        check = ShapeCheck(description=description, predicate=predicate)
        self.checks.append(check)
        return check

    def evaluate(self) -> bool:
        """Run all checks; True iff every one passes."""
        return all(c.evaluate() for c in self.checks) if self.checks else True

    @property
    def all_passed(self) -> bool:
        return all(c.passed for c in self.checks) if self.checks else True

    def render_markdown(self) -> str:
        buf = io.StringIO()
        buf.write(f"### {self.experiment_id}\n\n")
        buf.write(f"- **Paper:** {self.paper_claim}\n")
        buf.write(f"- **Measured:** {self.measured}\n")
        for check in self.checks:
            buf.write(f"- [{check.status()}] {check.description}\n")
        if self.notes:
            buf.write(f"- Notes: {self.notes}\n")
        return buf.getvalue()

    def render_text(self) -> str:
        lines = [f"{self.experiment_id}:",
                 f"  paper:    {self.paper_claim}",
                 f"  measured: {self.measured}"]
        for check in self.checks:
            lines.append(f"  [{check.status()}] {check.description}")
        if self.notes:
            lines.append(f"  notes: {self.notes}")
        return "\n".join(lines)


class ExperimentReport:
    """A collection of records (one full bench run)."""

    def __init__(self, title: str) -> None:
        if not title:
            raise ConfigurationError("report needs a title")
        self.title = title
        self.records: List[ExperimentRecord] = []

    def add(self, record: ExperimentRecord) -> ExperimentRecord:
        self.records.append(record)
        return record

    def evaluate(self) -> bool:
        return all(r.evaluate() for r in self.records)

    def render_markdown(self) -> str:
        buf = io.StringIO()
        buf.write(f"## {self.title}\n\n")
        for record in self.records:
            buf.write(record.render_markdown())
            buf.write("\n")
        return buf.getvalue()

    def failures(self) -> List[ShapeCheck]:
        return [c for r in self.records for c in r.checks if c.passed is False]

"""Result analysis and reporting.

* :mod:`repro.analysis.tables` — lightweight result tables with aligned
  text rendering and CSV export (what every bench prints).
* :mod:`repro.analysis.series` — time-series helpers: decimation, ASCII
  charts for figures rendered in a terminal.
* :mod:`repro.analysis.report` — paper-vs-measured experiment records and
  the shape checks ("who wins, by roughly what factor") EXPERIMENTS.md is
  built from.
"""

from .tables import ResultTable
from .series import ascii_chart, decimate, rolling_mean
from .report import ExperimentRecord, ShapeCheck, ExperimentReport
from .sweep import SweepRecord, SweepResult, sweep

__all__ = [
    "ResultTable",
    "SweepRecord",
    "SweepResult",
    "sweep",
    "ascii_chart",
    "decimate",
    "rolling_mean",
    "ExperimentRecord",
    "ShapeCheck",
    "ExperimentReport",
]

"""Aligned result tables.

Every benchmark prints one or more of these so its output can be compared
line-for-line with the paper's figures and case-study numbers.
"""

from __future__ import annotations

import io
from typing import Iterable, List, Sequence

from ..errors import ConfigurationError

__all__ = ["ResultTable"]


class ResultTable:
    """A column-typed table with text and CSV rendering.

    Examples
    --------
    >>> t = ResultTable("demo", ["name", "value"])
    >>> t.add_row(["alpha", 1.5])
    >>> print(t.render_text())  # doctest: +NORMALIZE_WHITESPACE
    == demo ==
    name  | value
    ------+------
    alpha | 1.5
    """

    def __init__(self, title: str, columns: Sequence[str]) -> None:
        if not columns:
            raise ConfigurationError("a table needs at least one column")
        if len(set(columns)) != len(columns):
            raise ConfigurationError("column names must be unique")
        self.title = title
        self.columns = list(columns)
        self.rows: List[List[str]] = []

    @staticmethod
    def _fmt(value: object) -> str:
        if isinstance(value, float):
            if value == 0:
                return "0"
            magnitude = abs(value)
            if magnitude >= 1e5 or magnitude < 1e-3:
                return f"{value:.3e}"
            return f"{value:.4g}"
        return str(value)

    def add_row(self, values: Iterable[object]) -> None:
        row = [self._fmt(v) for v in values]
        if len(row) != len(self.columns):
            raise ConfigurationError(
                f"row has {len(row)} cells for {len(self.columns)} columns"
            )
        self.rows.append(row)

    def column(self, name: str) -> List[str]:
        try:
            idx = self.columns.index(name)
        except ValueError:
            raise ConfigurationError(f"no column named {name!r}") from None
        return [r[idx] for r in self.rows]

    def render_text(self) -> str:
        widths = [
            max(len(c), *(len(r[i]) for r in self.rows)) if self.rows else len(c)
            for i, c in enumerate(self.columns)
        ]
        buf = io.StringIO()
        buf.write(f"== {self.title} ==\n")
        header = " | ".join(c.ljust(w) for c, w in zip(self.columns, widths))
        buf.write(header.rstrip() + "\n")
        buf.write("-+-".join("-" * w for w in widths) + "\n")
        for row in self.rows:
            line = " | ".join(cell.ljust(w) for cell, w in zip(row, widths))
            buf.write(line.rstrip() + "\n")
        return buf.getvalue().rstrip("\n")

    def render_csv(self) -> str:
        buf = io.StringIO()
        buf.write(",".join(self.columns) + "\n")
        for row in self.rows:
            buf.write(",".join(cell.replace(",", ";") for cell in row) + "\n")
        return buf.getvalue()

    def __len__(self) -> int:
        return len(self.rows)

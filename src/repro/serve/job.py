"""Job records: one accepted submission, from queue to manifest.

A :class:`Job` is the service-side state of one submitted experiment
spec — who sent it (tenant), how urgent it is (priority class), what
it is (the spec's canonical JSON and digest), where it stands
(lifecycle state), and what came out (the :class:`RunManifest` dict
and result payload).  Jobs are mutable records guarded by the owning
:class:`~repro.serve.scheduler.ExperimentService`'s lock; everything
the HTTP API returns is a plain-dict snapshot taken under that lock.

Lifecycle::

    queued ──> running ──> done
       │           └─────> failed
       └─────────────────> persisted     (drained before starting)

plus two short-circuits that never enter the queue: a submission whose
spec digest already *completed* is answered from the service's result
memo (``deduped="memo"``, born ``done``), and one whose digest is
currently queued/running attaches to the in-flight primary
(``deduped="inflight"``) and completes when it does.

Every state transition appends an event ``{"seq", "event", ...}`` to
``job.events`` — the exact records the ``/v1/jobs/<id>/events`` NDJSON
stream replays, including per-point completions forwarded from the
experiment layer's progress hook.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

__all__ = ["Job", "PRIORITY_CLASSES", "DEFAULT_PRIORITY", "QUEUED",
           "RUNNING", "DONE", "FAILED", "PERSISTED", "TERMINAL_STATES"]

#: Priority classes, lower rank = served first.  ``interactive`` is a
#: human waiting at a prompt, ``normal`` the default API traffic,
#: ``batch`` bulk backfill that yields to everything else.
PRIORITY_CLASSES: Dict[str, int] = {
    "interactive": 0,
    "normal": 1,
    "batch": 2,
}

DEFAULT_PRIORITY = "normal"

QUEUED = "queued"
RUNNING = "running"
DONE = "done"
FAILED = "failed"
#: Drained out of the queue before starting; resubmitted on restart.
PERSISTED = "persisted"

TERMINAL_STATES = frozenset({DONE, FAILED, PERSISTED})

#: Per-point progress events kept verbatim per job; beyond this only
#: the ``points_done`` counter advances (a 100k-point sweep should not
#: hold 100k event dicts in service memory).
MAX_POINT_EVENTS = 2048


@dataclass
class Job:
    """Service-side record of one submission (see module docs)."""

    id: str
    tenant: str
    priority: str
    spec_kind: str
    spec_name: str
    spec_digest: str
    spec_json: str
    state: str = QUEUED
    submitted_at: float = field(default_factory=time.time)
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    error: Optional[str] = None
    #: "memo" (answered from the completed-result memo), "inflight"
    #: (attached to a running/queued primary), or None (executed here).
    deduped: Optional[str] = None
    #: For attached jobs: the id of the job that actually executes.
    primary_id: Optional[str] = None
    #: For primaries: ids of jobs attached to this execution.
    attached: List[str] = field(default_factory=list)
    manifest: Optional[Dict[str, object]] = None
    payload: Optional[Dict[str, object]] = None
    points_total: Optional[int] = None
    points_done: int = 0
    events: List[Dict[str, object]] = field(default_factory=list)

    # -- events ---------------------------------------------------------------
    def add_event(self, event: str, **fields: object) -> Dict[str, object]:
        record: Dict[str, object] = {"seq": len(self.events),
                                     "event": event, "job": self.id}
        record.update(fields)
        self.events.append(record)
        return record

    def add_point_event(self, **fields: object) -> None:
        self.points_done += 1
        if len(self.events) < MAX_POINT_EVENTS:
            self.add_event("point", done=self.points_done,
                           total=self.points_total, **fields)

    @property
    def terminal(self) -> bool:
        return self.state in TERMINAL_STATES

    @property
    def queue_latency_s(self) -> Optional[float]:
        """Seconds from submission to execution start (None until then;
        for deduped jobs, submission to answer)."""
        if self.started_at is None:
            return None
        return max(0.0, self.started_at - self.submitted_at)

    # -- snapshots ------------------------------------------------------------
    def to_dict(self, *, with_payload: bool = False) -> Dict[str, object]:
        """JSON snapshot for the API (payload only on request — result
        payloads can be large and ``/v1/jobs`` lists many jobs)."""
        out: Dict[str, object] = {
            "id": self.id,
            "tenant": self.tenant,
            "priority": self.priority,
            "kind": self.spec_kind,
            "name": self.spec_name,
            "spec_digest": self.spec_digest,
            "state": self.state,
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "queue_latency_s": self.queue_latency_s,
            "error": self.error,
            "deduped": self.deduped,
            "primary_id": self.primary_id,
            "points_total": self.points_total,
            "points_done": self.points_done,
            "manifest": self.manifest,
        }
        if with_payload:
            out["payload"] = self.payload
        return out

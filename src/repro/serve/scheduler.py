"""ExperimentService: the multi-tenant scheduler behind ``repro serve``.

This is the service core, HTTP-free and fully testable in-process: a
bounded :class:`~repro.serve.queue.FairQueue` in front of a pool of
scheduler threads, each executing accepted jobs through the very same
:func:`repro.experiment.run_experiment` door the offline CLI uses —
which is the whole reproducibility argument: a manifest produced by
the service is byte-for-byte the manifest ``repro run`` produces,
because both are the same pure function of (spec, code, seed).

Three layers of deduplication make identical submissions near-free,
in the order a submission meets them:

1. **result memo** — a completed digest is answered immediately from
   an in-memory LRU of ``(manifest, payload)``; the job is born done;
2. **in-flight coalescing** — a digest currently queued or running
   attaches to the primary job and completes when it does (a thundering
   herd of identical submissions costs one execution);
3. **result cache** — all jobs share one concurrency-safe
   :class:`~repro.exec.cache.ResultCache`, so even a memo-evicted or
   post-restart resubmission re-executes into cache hits.

Graceful drain (``SIGTERM`` → :meth:`drain`): admissions stop
(:class:`~repro.errors.DrainingError` → HTTP 503), queued jobs are
persisted to ``state_dir/queue.json`` in fair order (reloaded on the
next start), in-flight jobs run to completion, and a final
``jobs.json`` snapshot records every job's terminal state.

Telemetry: counters/gauges under the ``serve`` component in a
:class:`~repro.telemetry.MetricsRegistry` (submitted/admitted/
rejected/deduped/completed/failed, queue depth, running), plus exact
queue-latency samples for the p50/p99 the load bench reports.
"""

from __future__ import annotations

import json
import os
import pathlib
import tempfile
import threading
import time
from collections import OrderedDict
from typing import Dict, List, Mapping, Optional, Tuple

from ..errors import ConfigurationError, DrainingError, ServeError
from ..exec.cache import ResultCache
from ..experiment import ExperimentSpec, RunContext, run_experiment
from ..telemetry import MetricsRegistry
from .job import (DEFAULT_PRIORITY, DONE, FAILED, PERSISTED,
                  PRIORITY_CLASSES, QUEUED, RUNNING, Job)
from .queue import FairQueue

__all__ = ["ExperimentService"]

#: Schema of the persisted queue file.
STATE_SCHEMA_VERSION = 1

QUEUE_STATE_FILE = "queue.json"
JOBS_STATE_FILE = "jobs.json"


def _atomic_write_json(path: pathlib.Path, data: object) -> None:
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
    with os.fdopen(fd, "w", encoding="utf-8") as handle:
        json.dump(data, handle, indent=2, sort_keys=True)
        handle.write("\n")
    os.replace(tmp, path)


class ExperimentService:
    """Accept, schedule, deduplicate and execute experiment specs.

    Parameters
    ----------
    workers:
        Scheduler threads executing jobs concurrently.  ``0`` creates
        no threads — jobs queue until :meth:`step` runs them, which is
        how the backpressure/fairness tests hold the queue still.
    capacity:
        Queue bound; submissions beyond it are rejected with an
        :class:`~repro.errors.AdmissionError` (HTTP 429).
    cache:
        Shared :class:`ResultCache`, a directory path for one, or None.
    state_dir:
        Where drain persists the queue and restart restores it from;
        None disables persistence.
    inner_workers:
        Process-pool size *within* one job's sweep (default 1: the
        scheduler threads are the parallelism; a mostly-idle service
        can instead run few jobs with big pools).
    tenant_weights:
        ``{tenant: weight}`` for the fair queue (default weight 1).
    """

    COMPONENT = "serve"

    def __init__(self, *, workers: int = 2, capacity: int = 1024,
                 cache: Optional[ResultCache | str | os.PathLike] = None,
                 state_dir: Optional[os.PathLike | str] = None,
                 inner_workers: int = 1,
                 tenant_weights: Optional[Dict[str, float]] = None,
                 memo_limit: int = 4096,
                 latency_sample_limit: int = 100_000,
                 metrics: Optional[MetricsRegistry] = None) -> None:
        if workers < 0:
            raise ConfigurationError(
                f"service workers must be >= 0, got {workers}")
        self.workers = int(workers)
        self.inner_workers = max(1, int(inner_workers))
        if isinstance(cache, (str, os.PathLike)):
            cache = ResultCache(cache)
        self.cache = cache
        self.state_dir = (pathlib.Path(state_dir)
                          if state_dir is not None else None)
        self.queue = FairQueue(capacity, tenant_weights=tenant_weights)
        self.metrics = metrics if metrics is not None else MetricsRegistry()

        self._lock = threading.Lock()
        self._completion = threading.Condition(self._lock)
        self._jobs: "OrderedDict[str, Job]" = OrderedDict()
        self._inflight: Dict[str, str] = {}      # digest -> primary job id
        self._memo: "OrderedDict[str, Tuple[Dict, Dict]]" = OrderedDict()
        self._memo_limit = int(memo_limit)
        self._latencies: List[float] = []
        self._latency_limit = int(latency_sample_limit)
        self._next_id = 1
        self._threads: List[threading.Thread] = []
        self._draining = False
        self._started = False

        counter = self.metrics.counter
        self._c_submitted = counter("submitted", component=self.COMPONENT)
        self._c_admitted = counter("admitted", component=self.COMPONENT)
        self._c_rejected = counter("rejected", component=self.COMPONENT)
        self._c_memo = counter("deduped_memo", component=self.COMPONENT)
        self._c_inflight = counter("deduped_inflight",
                                   component=self.COMPONENT)
        self._c_completed = counter("completed", component=self.COMPONENT)
        self._c_failed = counter("failed", component=self.COMPONENT)
        self._c_restored = counter("restored", component=self.COMPONENT)
        self._c_persisted = counter("persisted", component=self.COMPONENT)
        self._g_depth = self.metrics.gauge("queue_depth",
                                           component=self.COMPONENT)
        self._g_running = self.metrics.gauge("running",
                                             component=self.COMPONENT)
        self._h_latency = self.metrics.histogram("queue_latency_s",
                                                 component=self.COMPONENT)
        self._g_depth.set(0)
        self._g_running.set(0)
        self._running_count = 0

    # -- lifecycle ------------------------------------------------------------
    def start(self) -> "ExperimentService":
        """Restore persisted queue state and launch the worker threads."""
        if self._started:
            return self
        self._started = True
        self.restore_state()
        for n in range(self.workers):
            thread = threading.Thread(target=self._worker_loop,
                                      name=f"serve-worker-{n}",
                                      daemon=True)
            thread.start()
            self._threads.append(thread)
        return self

    @property
    def draining(self) -> bool:
        return self._draining

    # -- submission -----------------------------------------------------------
    def submit(self, spec: "ExperimentSpec | str | Mapping", *,
               tenant: str = "anonymous",
               priority: str = DEFAULT_PRIORITY) -> Job:
        """Validate, canonicalize, dedupe and (maybe) enqueue one spec.

        Raises :class:`~repro.errors.ConfigurationError` for a bad
        spec or priority (HTTP 400), :class:`AdmissionError` when the
        queue is full (429), :class:`DrainingError` while draining
        (503).  Returns the job record — possibly already ``done``
        when the digest was memoized.
        """
        if priority not in PRIORITY_CLASSES:
            known = ", ".join(sorted(PRIORITY_CLASSES))
            raise ConfigurationError(
                f"unknown priority class {priority!r}; "
                f"known classes: {known}")
        if isinstance(spec, str):
            spec = ExperimentSpec.from_json(spec)
        elif isinstance(spec, Mapping):
            spec = ExperimentSpec.from_dict(spec)
        canonical = spec.to_json()
        digest = spec.digest()
        points = getattr(spec, "points", None)
        points_total = points() if callable(points) else None
        if spec.kind == "scenario":
            points_total = 1

        with self._lock:
            self._c_submitted.inc()
            if self._draining:
                raise DrainingError(
                    "service is draining; submissions are closed")
            job = Job(
                id=self._new_id(),
                tenant=str(tenant),
                priority=priority,
                spec_kind=spec.kind,
                spec_name=spec.name,
                spec_digest=digest,
                spec_json=canonical,
                points_total=points_total,
            )

            memo = self._memo.get(digest)
            if memo is not None:
                self._memo.move_to_end(digest)
                manifest, payload = memo
                now = time.time()
                job.state = DONE
                job.deduped = "memo"
                job.started_at = now
                job.finished_at = now
                job.manifest = manifest
                job.payload = payload
                job.points_done = points_total or 0
                job.add_event("done", deduped="memo",
                              result_digest=manifest.get("result_digest"))
                self._jobs[job.id] = job
                self._c_memo.inc()
                self._record_latency(job)
                self._completion.notify_all()
                return job

            primary_id = self._inflight.get(digest)
            if primary_id is not None:
                primary = self._jobs[primary_id]
                job.deduped = "inflight"
                job.primary_id = primary_id
                job.state = primary.state if primary.state in (
                    QUEUED, RUNNING) else QUEUED
                primary.attached.append(job.id)
                self._jobs[job.id] = job
                job.add_event("attached", primary=primary_id)
                self._c_inflight.inc()
                return job

            # Full admission: the job owns an execution slot.
            try:
                self.queue.push(job, tenant=job.tenant,
                                priority=job.priority,
                                workers=max(1, self.workers))
            except ConfigurationError:
                raise
            except ServeError:
                self._c_rejected.inc()
                raise
            self._jobs[job.id] = job
            self._inflight[digest] = job.id
            self._c_admitted.inc()
            self._g_depth.set(len(self.queue))
            job.add_event("queued", priority=job.priority,
                          tenant=job.tenant)
            return job

    def _new_id(self) -> str:
        job_id = f"job-{self._next_id:06d}"
        self._next_id += 1
        return job_id

    # -- execution ------------------------------------------------------------
    def _worker_loop(self) -> None:
        while True:
            job = self.queue.pop(timeout=0.2)
            if job is None:
                if self._draining:
                    return
                continue
            with self._lock:
                self._g_depth.set(len(self.queue))
            self._execute(job)

    def step(self, timeout: float = 0.0) -> Optional[Job]:
        """Pop and execute one queued job inline (the ``workers=0``
        test mode and a handy REPL tool).  None when the queue is
        empty."""
        job = self.queue.pop(timeout=timeout)
        if job is None:
            return None
        with self._lock:
            self._g_depth.set(len(self.queue))
        self._execute(job)
        return job

    def _execute(self, job: Job) -> None:
        spec = ExperimentSpec.from_json(job.spec_json)
        with self._lock:
            job.state = RUNNING
            job.started_at = time.time()
            self._running_count += 1
            self._g_running.set(self._running_count)
            job.add_event("running")
            for attached_id in job.attached:
                self._jobs[attached_id].state = RUNNING

        def progress(event: str, fields: Mapping[str, object]) -> None:
            if event != "point":
                return
            with self._lock:
                job.add_point_event(index=fields.get("index"),
                                    cached=fields.get("cached"))

        started = time.perf_counter()
        ctx = RunContext(workers=self.inner_workers, cache=self.cache,
                         progress=progress)
        try:
            result = run_experiment(spec, ctx, persist=False)
        except Exception as exc:  # noqa: BLE001 - job-level isolation
            self._finish(job, error=f"{type(exc).__name__}: {exc}")
        else:
            self._finish(job, manifest=result.manifest.to_dict(),
                         payload=result.payload)
        finally:
            self.queue.observe_service_time(time.perf_counter() - started)
            with self._lock:
                self._running_count -= 1
                self._g_running.set(self._running_count)

    def _finish(self, job: Job, *, manifest: Optional[Dict] = None,
                payload: Optional[Dict] = None,
                error: Optional[str] = None) -> None:
        now = time.time()
        with self._lock:
            members = [job] + [self._jobs[a] for a in job.attached]
            for member in members:
                member.finished_at = now
                if member is not job:
                    member.started_at = (member.started_at
                                         or job.started_at or now)
                if error is None:
                    member.state = DONE
                    member.manifest = manifest
                    member.payload = payload
                    member.points_done = (job.points_total
                                          or job.points_done)
                    member.add_event(
                        "done",
                        result_digest=manifest.get("result_digest"))
                    self._c_completed.inc()
                else:
                    member.state = FAILED
                    member.error = error
                    member.add_event("failed", error=error)
                    self._c_failed.inc()
                self._record_latency(member)
            if error is None:
                self._memo[job.spec_digest] = (manifest, payload)
                while len(self._memo) > self._memo_limit:
                    self._memo.popitem(last=False)
            if self._inflight.get(job.spec_digest) == job.id:
                del self._inflight[job.spec_digest]
            self._completion.notify_all()

    def _record_latency(self, job: Job) -> None:
        latency = job.queue_latency_s
        if latency is None:
            return
        self._h_latency.observe(latency)
        if len(self._latencies) < self._latency_limit:
            self._latencies.append(latency)

    # -- queries --------------------------------------------------------------
    def job(self, job_id: str) -> Optional[Job]:
        with self._lock:
            return self._jobs.get(job_id)

    def job_snapshot(self, job_id: str, *,
                     with_payload: bool = False) -> Optional[Dict]:
        with self._lock:
            job = self._jobs.get(job_id)
            return None if job is None else job.to_dict(
                with_payload=with_payload)

    def job_events(self, job_id: str, since: int = 0) -> List[Dict]:
        """Events past ``since`` (their ``seq`` is the next cursor)."""
        with self._lock:
            job = self._jobs.get(job_id)
            if job is None:
                return []
            return [dict(e) for e in job.events[since:]]

    def jobs(self, *, tenant: Optional[str] = None,
             limit: Optional[int] = None) -> List[Dict]:
        with self._lock:
            rows = [j.to_dict() for j in self._jobs.values()
                    if tenant is None or j.tenant == tenant]
        if limit is not None:
            rows = rows[-limit:]
        return rows

    def wait(self, job_id: str,
             timeout: Optional[float] = None) -> Job:
        """Block until the job reaches a terminal state; returns it.

        Raises :class:`ServeError` on unknown id or timeout.
        """
        deadline = (None if timeout is None
                    else time.monotonic() + timeout)
        with self._lock:
            while True:
                job = self._jobs.get(job_id)
                if job is None:
                    raise ServeError(f"unknown job {job_id!r}")
                if job.terminal:
                    return job
                remaining = (None if deadline is None
                             else deadline - time.monotonic())
                if remaining is not None and remaining <= 0:
                    raise ServeError(
                        f"job {job_id!r} still {job.state!r} after "
                        f"{timeout}s")
                self._completion.wait(timeout=remaining)

    def latency_quantiles(self) -> Dict[str, object]:
        with self._lock:
            samples = sorted(self._latencies)
        if not samples:
            return {"count": 0, "p50_s": None, "p90_s": None,
                    "p99_s": None, "max_s": None}

        def q(p: float) -> float:
            idx = min(len(samples) - 1,
                      max(0, int(round(p * (len(samples) - 1)))))
            return round(samples[idx], 6)

        return {"count": len(samples), "p50_s": q(0.50),
                "p90_s": q(0.90), "p99_s": q(0.99),
                "max_s": round(samples[-1], 6)}

    def metrics_snapshot(self) -> Dict[str, object]:
        """The ``/v1/metrics`` document: queue, jobs, dedupe, cache,
        latency quantiles."""
        with self._lock:
            admitted = int(self._c_admitted.value)
            memo = int(self._c_memo.value)
            inflight = int(self._c_inflight.value)
            submitted = int(self._c_submitted.value)
            accepted = admitted + memo + inflight
            snapshot: Dict[str, object] = {
                "draining": self._draining,
                "queue": {
                    "depth": len(self.queue),
                    "capacity": self.queue.capacity,
                },
                "jobs": {
                    "submitted": submitted,
                    "admitted": admitted,
                    "rejected": int(self._c_rejected.value),
                    "accepted": accepted,
                    "deduped_memo": memo,
                    "deduped_inflight": inflight,
                    "completed": int(self._c_completed.value),
                    "failed": int(self._c_failed.value),
                    "running": self._running_count,
                    "restored": int(self._c_restored.value),
                    "persisted": int(self._c_persisted.value),
                },
                "dedupe_ratio": (round((memo + inflight) / accepted, 4)
                                 if accepted else 0.0),
            }
        snapshot["cache"] = (self.cache.stats()
                             if self.cache is not None else None)
        snapshot["queue_latency"] = self.latency_quantiles()
        return snapshot

    # -- drain / persistence --------------------------------------------------
    def drain(self, timeout: Optional[float] = None) -> Dict[str, int]:
        """Stop admissions, persist the backlog, finish in-flight jobs.

        Returns ``{"persisted": n, "completed_in_flight": m}``.  Safe
        to call twice (the second call is a no-op summary).
        """
        with self._lock:
            already = self._draining
            self._draining = True
        if already:
            return {"persisted": 0, "completed_in_flight": 0}

        backlog = self.queue.drain()
        persisted = 0
        with self._lock:
            for job in backlog:
                job.state = PERSISTED
                job.add_event("persisted")
                self._c_persisted.inc()
                persisted += 1
                if self._inflight.get(job.spec_digest) == job.id:
                    del self._inflight[job.spec_digest]
            self._g_depth.set(0)
            self._completion.notify_all()
        self._persist_backlog(backlog)

        with self._lock:
            in_flight = self._running_count
        self.queue.close()
        deadline = (None if timeout is None
                    else time.monotonic() + timeout)
        for thread in self._threads:
            remaining = (None if deadline is None
                         else max(0.0, deadline - time.monotonic()))
            thread.join(timeout=remaining)
        with self._lock:
            self._completion.notify_all()
        self._persist_jobs_index()
        return {"persisted": persisted, "completed_in_flight": in_flight}

    def _persist_backlog(self, backlog: List[Job]) -> None:
        if self.state_dir is None:
            return
        entries = [{
            "id": job.id,
            "tenant": job.tenant,
            "priority": job.priority,
            "spec": json.loads(job.spec_json),
            "submitted_at": job.submitted_at,
        } for job in backlog]
        _atomic_write_json(self.state_dir / QUEUE_STATE_FILE,
                           {"schema": STATE_SCHEMA_VERSION,
                            "jobs": entries})

    def _persist_jobs_index(self) -> None:
        if self.state_dir is None:
            return
        with self._lock:
            rows = [j.to_dict() for j in self._jobs.values()]
        _atomic_write_json(self.state_dir / JOBS_STATE_FILE,
                           {"schema": STATE_SCHEMA_VERSION, "jobs": rows})

    def restore_state(self) -> int:
        """Re-enqueue jobs a previous drain persisted; returns count."""
        if self.state_dir is None:
            return 0
        path = self.state_dir / QUEUE_STATE_FILE
        try:
            data = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return 0
        if data.get("schema") != STATE_SCHEMA_VERSION:
            raise ConfigurationError(
                f"persisted queue {path} has schema "
                f"{data.get('schema')!r}; this service speaks "
                f"{STATE_SCHEMA_VERSION}")
        restored = 0
        for entry in data.get("jobs") or ():
            spec = ExperimentSpec.from_dict(entry["spec"])
            with self._lock:
                job = Job(
                    id=str(entry.get("id") or self._new_id()),
                    tenant=str(entry.get("tenant", "anonymous")),
                    priority=str(entry.get("priority", DEFAULT_PRIORITY)),
                    spec_kind=spec.kind,
                    spec_name=spec.name,
                    spec_digest=spec.digest(),
                    spec_json=spec.to_json(),
                    submitted_at=float(entry.get("submitted_at", 0.0)
                                       or time.time()),
                )
                points = getattr(spec, "points", None)
                job.points_total = (points() if callable(points)
                                    else 1 if spec.kind == "scenario"
                                    else None)
                self.queue.push(job, tenant=job.tenant,
                                priority=job.priority,
                                workers=max(1, self.workers))
                self._jobs[job.id] = job
                if job.spec_digest not in self._inflight:
                    self._inflight[job.spec_digest] = job.id
                self._c_restored.inc()
                self._g_depth.set(len(self.queue))
                job.add_event("restored")
                self._bump_id_counter(job.id)
                restored += 1
        if restored:
            path.unlink(missing_ok=True)
        return restored

    def _bump_id_counter(self, job_id: str) -> None:
        try:
            n = int(job_id.rsplit("-", 1)[1])
        except (IndexError, ValueError):
            return
        self._next_id = max(self._next_id, n + 1)

"""repro.serve: the simulator as a long-running experiment service.

Everything before this package answers "run this spec, once, here".
:mod:`repro.serve` turns the same machinery into a *service*: many
tenants submit :class:`~repro.experiment.spec.ExperimentSpec` JSON
over HTTP, a bounded weighted-fair queue schedules them onto a shared
worker pool, three dedupe layers (result memo, in-flight coalescing,
the shared :class:`~repro.exec.cache.ResultCache`) collapse identical
submissions, and every answer carries the *same manifest digest* the
offline ``repro run`` produces — the service adds multiplexing, never
new numbers.

Layers, bottom-up:

* :mod:`~repro.serve.job` — the :class:`Job` record and lifecycle;
* :mod:`~repro.serve.queue` — :class:`FairQueue`: bounded admission
  (429 + Retry-After on overflow), priority classes, start-time fair
  queueing across tenants;
* :mod:`~repro.serve.scheduler` — :class:`ExperimentService`: worker
  threads, dedupe, telemetry, graceful drain with queue persistence;
* :mod:`~repro.serve.api` — asyncio HTTP JSON API + NDJSON event
  streams, SIGTERM → drain;
* :mod:`~repro.serve.client` — blocking client that honors the
  backpressure protocol (used by ``repro submit`` / ``repro jobs``
  and the load bench).

Quick start::

    repro serve --workers 4 --cache .repro-cache   # terminal 1
    repro submit specs/fig1_tcp_loss_quick.json    # terminal 2, twice:
                                                   # second is a dedupe

or in-process, no HTTP::

    from repro.serve import ExperimentService
    svc = ExperimentService(workers=2, cache=".repro-cache").start()
    job = svc.submit(spec_json, tenant="alice")
    svc.wait(job.id).manifest["result_digest"]

See ``docs/serve.md``.
"""

from .api import DEFAULT_HOST, DEFAULT_PORT, ExperimentServer, serve_forever
from .client import ServiceClient
from .job import DEFAULT_PRIORITY, PRIORITY_CLASSES, TERMINAL_STATES, Job
from .queue import FairQueue
from .scheduler import ExperimentService

__all__ = [
    "DEFAULT_HOST",
    "DEFAULT_PORT",
    "DEFAULT_PRIORITY",
    "ExperimentServer",
    "ExperimentService",
    "FairQueue",
    "Job",
    "PRIORITY_CLASSES",
    "ServiceClient",
    "TERMINAL_STATES",
    "serve_forever",
]

"""Blocking client for the experiment service (stdlib ``http.client``).

The client is what ``repro submit`` and ``repro jobs`` use and what
the load bench hammers the server with.  It speaks the small JSON API
of :mod:`repro.serve.api` and encodes the protocol's etiquette:

* **429 Too Many Requests** — honored: the client sleeps for the
  server's ``Retry-After`` hint (capped) and retries, up to
  ``max_retries`` times before surfacing the
  :class:`~repro.errors.AdmissionError`.  Backpressure only works when
  clients cooperate.
* **503 draining** — surfaced immediately as
  :class:`~repro.errors.DrainingError`; a draining server will not
  come back for this connection, retrying is pointless.
* **400** — surfaced as :class:`~repro.errors.ConfigurationError`
  (bad input, CLI exit code 2); other failures raise
  :class:`~repro.errors.ServeError` (operational, exit code 1).

Every request uses ``Connection: close`` — one TCP connection per
call, matching the server — so the client is trivially thread-safe:
the load bench runs one instance from many threads.
"""

from __future__ import annotations

import http.client
import json
import time
from typing import Dict, Iterator, List, Optional
from urllib.parse import urlencode, urlsplit

from ..errors import (AdmissionError, ConfigurationError, DrainingError,
                      ServeError)

__all__ = ["ServiceClient"]

#: Never sleep longer than this on one 429, whatever the server hints.
MAX_RETRY_SLEEP_S = 5.0


class ServiceClient:
    """Talk to one experiment service at ``base_url``."""

    def __init__(self, base_url: str, *, timeout: float = 60.0,
                 max_retries: int = 8) -> None:
        split = urlsplit(base_url if "//" in base_url
                         else f"http://{base_url}")
        if split.scheme not in ("", "http"):
            raise ConfigurationError(
                f"only http:// service URLs are supported, got {base_url!r}")
        self.host = split.hostname or "127.0.0.1"
        self.port = split.port or 80
        self.timeout = float(timeout)
        self.max_retries = int(max_retries)

    # -- transport ------------------------------------------------------------
    def _request(self, method: str, path: str, *,
                 body: Optional[Dict] = None,
                 query: Optional[Dict[str, object]] = None):
        """One request → ``(status, headers, parsed-JSON body)``."""
        if query:
            pairs = {k: v for k, v in query.items() if v is not None}
            if pairs:
                path = f"{path}?{urlencode(pairs)}"
        payload = (None if body is None
                   else json.dumps(body).encode("utf-8"))
        conn = http.client.HTTPConnection(self.host, self.port,
                                          timeout=self.timeout)
        try:
            headers = {"Connection": "close"}
            if payload is not None:
                headers["Content-Type"] = "application/json"
            try:
                conn.request(method, path, body=payload, headers=headers)
                response = conn.getresponse()
                raw = response.read()
            except (OSError, http.client.HTTPException) as exc:
                raise ServeError(
                    f"cannot reach service at {self.host}:{self.port}: "
                    f"{exc}")
            try:
                doc = json.loads(raw.decode("utf-8")) if raw else None
            except ValueError:
                doc = {"error": raw.decode("utf-8", "replace")}
            return response.status, dict(response.getheaders()), doc
        finally:
            conn.close()

    @staticmethod
    def _error_text(doc: object, fallback: str) -> str:
        if isinstance(doc, dict) and doc.get("error"):
            return str(doc["error"])
        return fallback

    def _raise_for(self, status: int, headers: Dict[str, str],
                   doc: object, context: str) -> None:
        message = self._error_text(doc, f"{context}: HTTP {status}")
        if status == 429:
            raise AdmissionError(message, retry_after_s=float(
                headers.get("Retry-After", 1.0)))
        if status == 503:
            raise DrainingError(message)
        if status == 400:
            raise ConfigurationError(message)
        if status == 404:
            raise ServeError(message)
        raise ServeError(f"{context}: HTTP {status}: {message}")

    # -- API ------------------------------------------------------------------
    def health(self) -> Dict[str, object]:
        status, headers, doc = self._request("GET", "/v1/health")
        if status != 200:
            self._raise_for(status, headers, doc, "health")
        return doc

    def metrics(self) -> Dict[str, object]:
        status, headers, doc = self._request("GET", "/v1/metrics")
        if status != 200:
            self._raise_for(status, headers, doc, "metrics")
        return doc

    def submit(self, spec: Dict, *, tenant: str = "anonymous",
               priority: str = "normal",
               retry: bool = True) -> Dict[str, object]:
        """Submit a spec document; returns the job snapshot.

        With ``retry`` (default), 429 responses are retried after the
        server's ``Retry-After`` hint, up to ``max_retries`` attempts.
        """
        body = {"spec": spec, "tenant": tenant, "priority": priority}
        attempts = 0
        while True:
            status, headers, doc = self._request("POST", "/v1/jobs",
                                                 body=body)
            if status in (200, 202):
                return doc
            if status == 429 and retry and attempts < self.max_retries:
                attempts += 1
                hint = float(headers.get("Retry-After", 1.0))
                time.sleep(min(MAX_RETRY_SLEEP_S, max(0.05, hint)))
                continue
            self._raise_for(status, headers, doc, "submit")

    def job(self, job_id: str, *,
            payload: bool = False) -> Dict[str, object]:
        status, headers, doc = self._request(
            "GET", f"/v1/jobs/{job_id}",
            query={"payload": 1 if payload else None})
        if status != 200:
            self._raise_for(status, headers, doc, f"job {job_id}")
        return doc

    def jobs(self, *, tenant: Optional[str] = None,
             limit: Optional[int] = None) -> List[Dict[str, object]]:
        status, headers, doc = self._request(
            "GET", "/v1/jobs", query={"tenant": tenant, "limit": limit})
        if status != 200:
            self._raise_for(status, headers, doc, "jobs")
        return list(doc["jobs"])

    def result(self, job_id: str, *,
               timeout: float = 300.0) -> Dict[str, object]:
        """Block until the job is terminal; returns the full snapshot
        (manifest + payload).  Raises :class:`ServeError` on a failed
        job or when the wait times out."""
        deadline = time.monotonic() + timeout
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise ServeError(
                    f"job {job_id} not finished after {timeout}s")
            status, headers, doc = self._request(
                "GET", f"/v1/jobs/{job_id}/result",
                query={"timeout": round(max(0.05, remaining), 3)})
            if status == 200:
                if doc.get("state") == "failed":
                    raise ServeError(
                        f"job {job_id} failed: {doc.get('error')}")
                return doc
            if status == 202:
                continue
            self._raise_for(status, headers, doc, f"result {job_id}")

    def run(self, spec: Dict, *, tenant: str = "anonymous",
            priority: str = "normal",
            timeout: float = 300.0) -> Dict[str, object]:
        """Submit and wait: the one-call path ``repro submit`` uses."""
        job = self.submit(spec, tenant=tenant, priority=priority)
        return self.result(job["id"], timeout=timeout)

    def events(self, job_id: str, *,
               since: int = 0) -> Iterator[Dict[str, object]]:
        """Stream the job's NDJSON events; yields dicts until the
        server ends the stream (job terminal)."""
        conn = http.client.HTTPConnection(self.host, self.port,
                                          timeout=self.timeout)
        try:
            try:
                conn.request("GET", f"/v1/jobs/{job_id}/events?since={since}",
                             headers={"Connection": "close"})
                response = conn.getresponse()
            except (OSError, http.client.HTTPException) as exc:
                raise ServeError(
                    f"cannot reach service at {self.host}:{self.port}: "
                    f"{exc}")
            if response.status != 200:
                raw = response.read()
                try:
                    doc = json.loads(raw.decode("utf-8"))
                except ValueError:
                    doc = None
                self._raise_for(response.status,
                                dict(response.getheaders()), doc,
                                f"events {job_id}")
            buffer = b""
            while True:
                chunk = response.read(4096)
                if not chunk:
                    break
                buffer += chunk
                while b"\n" in buffer:
                    line, buffer = buffer.split(b"\n", 1)
                    if line.strip():
                        yield json.loads(line.decode("utf-8"))
        finally:
            conn.close()

"""HTTP JSON API for the experiment service — stdlib asyncio only.

A deliberately small HTTP/1.1 server on :mod:`asyncio` streams (no
framework, no new dependency — the same stance as the rest of the
repo): every request is parsed from the raw stream, answered, and the
connection closed.  The service core stays synchronous; blocking calls
(waiting for a job, draining) hop onto the default executor so the
event loop keeps accepting connections while experiments run.

Endpoints (all JSON unless noted)::

    GET  /v1/health               liveness + draining flag
    GET  /v1/metrics              queue/jobs/cache/latency snapshot
    POST /v1/jobs                 submit {"spec": {...}, "tenant", "priority"}
                                    202 queued | 200 deduped-done
                                    400 bad spec/priority
                                    429 queue full (+ Retry-After)
                                    503 draining
    GET  /v1/jobs                 list jobs (?tenant=&limit=)
    GET  /v1/jobs/<id>            one job (?payload=1)
    GET  /v1/jobs/<id>/result     block until terminal (?timeout=s),
                                    202 + snapshot if still running
    GET  /v1/jobs/<id>/events     NDJSON event stream (?since=seq),
                                    follows the job live until terminal

Backpressure is *explicit*: a full queue is a 429 with a computed
``Retry-After`` (queue depth over observed service rate), and a
draining server answers 503 — clients are told to go away rather than
silently buffered, the failure mode the Science DMZ paper's
"engineered for the load" stance warns against.

Shutdown: ``SIGTERM``/``SIGINT`` triggers
:meth:`~repro.serve.scheduler.ExperimentService.drain` — admissions
stop, the backlog persists to ``state_dir``, in-flight jobs finish —
then the listener closes and ``drained`` is printed (the line the CI
smoke job and the drain test grep for).
"""

from __future__ import annotations

import asyncio
import json
import signal
from typing import Dict, List, Optional, Tuple
from urllib.parse import parse_qs, urlsplit

from ..errors import (AdmissionError, ConfigurationError, DrainingError,
                      ReproError, ServeError)
from .scheduler import ExperimentService

__all__ = ["ExperimentServer", "serve_forever", "DEFAULT_HOST",
           "DEFAULT_PORT"]

DEFAULT_HOST = "127.0.0.1"
DEFAULT_PORT = 8351

#: Upper bound on request bodies; a spec JSON is a few KiB.
MAX_BODY_BYTES = 8 * 1024 * 1024

#: Poll interval for the NDJSON event stream and result waits.
POLL_S = 0.05

_REASONS = {200: "OK", 202: "Accepted", 400: "Bad Request",
            404: "Not Found", 405: "Method Not Allowed",
            408: "Request Timeout", 413: "Payload Too Large",
            429: "Too Many Requests", 500: "Internal Server Error",
            503: "Service Unavailable"}


class _HttpError(Exception):
    def __init__(self, status: int, message: str,
                 headers: Optional[Dict[str, str]] = None) -> None:
        super().__init__(message)
        self.status = status
        self.headers = headers or {}


class ExperimentServer:
    """Asyncio HTTP front end over one :class:`ExperimentService`."""

    def __init__(self, service: ExperimentService, *,
                 host: str = DEFAULT_HOST,
                 port: int = DEFAULT_PORT) -> None:
        self.service = service
        self.host = host
        self.port = port
        self._server: Optional[asyncio.AbstractServer] = None
        self._stop = asyncio.Event()

    # -- lifecycle ------------------------------------------------------------
    async def start(self) -> "ExperimentServer":
        """Start the service workers and the listener; resolves
        ``self.port`` when 0 was requested."""
        self.service.start()
        self._server = await asyncio.start_server(
            self._handle, self.host, self.port)
        sockets = self._server.sockets or []
        if sockets:
            self.port = sockets[0].getsockname()[1]
        return self

    @property
    def address(self) -> str:
        return f"http://{self.host}:{self.port}"

    def request_stop(self) -> None:
        self._stop.set()

    async def serve_until_stopped(self, *,
                                  install_signals: bool = True) -> None:
        """Serve until SIGTERM/SIGINT (or :meth:`request_stop`), then
        drain gracefully and close."""
        if self._server is None:
            await self.start()
        loop = asyncio.get_running_loop()
        if install_signals:
            for signum in (signal.SIGTERM, signal.SIGINT):
                try:
                    loop.add_signal_handler(signum, self._stop.set)
                except (NotImplementedError, RuntimeError):
                    pass
        print(f"serving on {self.address}", flush=True)
        await self._stop.wait()
        print("draining", flush=True)
        summary = await loop.run_in_executor(None, self.service.drain)
        assert self._server is not None
        self._server.close()
        await self._server.wait_closed()
        print(f"drained (persisted={summary['persisted']} "
              f"in_flight={summary['completed_in_flight']})", flush=True)

    # -- request plumbing -----------------------------------------------------
    async def _handle(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        try:
            try:
                method, path, headers = await self._read_head(reader)
                body = await self._read_body(reader, headers)
                await self._dispatch(writer, method, path, body)
            except _HttpError as exc:
                await self._send_json(writer, exc.status,
                                      {"error": str(exc)},
                                      extra_headers=exc.headers)
            except (asyncio.IncompleteReadError, ConnectionError):
                return
            except Exception as exc:  # noqa: BLE001 - last-ditch 500
                await self._send_json(
                    writer, 500,
                    {"error": f"{type(exc).__name__}: {exc}"})
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _read_head(self, reader: asyncio.StreamReader
                         ) -> Tuple[str, str, Dict[str, str]]:
        raw = await reader.readuntil(b"\r\n\r\n")
        head = raw.decode("latin-1").split("\r\n")
        try:
            method, path, _version = head[0].split(" ", 2)
        except ValueError:
            raise _HttpError(400, f"malformed request line {head[0]!r}")
        headers: Dict[str, str] = {}
        for line in head[1:]:
            if not line:
                continue
            name, _, value = line.partition(":")
            headers[name.strip().lower()] = value.strip()
        return method.upper(), path, headers

    async def _read_body(self, reader: asyncio.StreamReader,
                         headers: Dict[str, str]) -> bytes:
        try:
            length = int(headers.get("content-length", "0") or "0")
        except ValueError:
            raise _HttpError(400, "bad Content-Length")
        if length > MAX_BODY_BYTES:
            raise _HttpError(413, f"body exceeds {MAX_BODY_BYTES} bytes")
        if length <= 0:
            return b""
        return await reader.readexactly(length)

    async def _send_json(self, writer: asyncio.StreamWriter, status: int,
                         payload: object, *,
                         extra_headers: Optional[Dict[str, str]] = None
                         ) -> None:
        body = (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")
        await self._send_raw(writer, status, "application/json", body,
                             extra_headers)

    async def _send_raw(self, writer: asyncio.StreamWriter, status: int,
                        content_type: str, body: bytes,
                        extra_headers: Optional[Dict[str, str]] = None
                        ) -> None:
        reason = _REASONS.get(status, "Unknown")
        lines = [f"HTTP/1.1 {status} {reason}",
                 f"Content-Type: {content_type}",
                 f"Content-Length: {len(body)}",
                 "Connection: close"]
        for name, value in (extra_headers or {}).items():
            lines.append(f"{name}: {value}")
        writer.write(("\r\n".join(lines) + "\r\n\r\n").encode("latin-1"))
        writer.write(body)
        await writer.drain()

    # -- routing --------------------------------------------------------------
    async def _dispatch(self, writer: asyncio.StreamWriter, method: str,
                        raw_path: str, body: bytes) -> None:
        split = urlsplit(raw_path)
        path = split.path.rstrip("/") or "/"
        query = {k: v[-1] for k, v in parse_qs(split.query).items()}
        parts = [p for p in path.split("/") if p]

        if parts == ["v1", "health"] and method == "GET":
            await self._send_json(writer, 200, {
                "ok": True, "draining": self.service.draining})
            return
        if parts == ["v1", "metrics"] and method == "GET":
            await self._send_json(writer, 200,
                                  self.service.metrics_snapshot())
            return
        if parts == ["v1", "jobs"]:
            if method == "POST":
                await self._submit(writer, body)
                return
            if method == "GET":
                limit = query.get("limit")
                rows = self.service.jobs(
                    tenant=query.get("tenant"),
                    limit=int(limit) if limit else None)
                await self._send_json(writer, 200, {"jobs": rows})
                return
            raise _HttpError(405, f"{method} not allowed on /v1/jobs")
        if len(parts) >= 3 and parts[:2] == ["v1", "jobs"]:
            job_id = parts[2]
            tail = parts[3:]
            if method != "GET":
                raise _HttpError(405, f"{method} not allowed here")
            if not tail:
                await self._job_snapshot(writer, job_id, query)
                return
            if tail == ["result"]:
                await self._job_result(writer, job_id, query)
                return
            if tail == ["events"]:
                await self._job_events(writer, job_id, query)
                return
        raise _HttpError(404, f"no route for {method} {path}")

    # -- handlers -------------------------------------------------------------
    async def _submit(self, writer: asyncio.StreamWriter,
                      body: bytes) -> None:
        try:
            doc = json.loads(body.decode("utf-8"))
        except (ValueError, UnicodeDecodeError) as exc:
            raise _HttpError(400, f"request body is not JSON: {exc}")
        if not isinstance(doc, dict) or "spec" not in doc:
            raise _HttpError(400, 'body must be {"spec": {...}, ...}')
        try:
            job = self.service.submit(
                doc["spec"],
                tenant=str(doc.get("tenant", "anonymous")),
                priority=str(doc.get("priority", "normal")))
        except AdmissionError as exc:
            raise _HttpError(429, str(exc), headers={
                "Retry-After": f"{exc.retry_after_s:g}"})
        except DrainingError as exc:
            raise _HttpError(503, str(exc))
        except (ConfigurationError, ReproError) as exc:
            raise _HttpError(400, f"{type(exc).__name__}: {exc}")
        status = 200 if job.terminal else 202
        await self._send_json(writer, status,
                              self.service.job_snapshot(job.id))

    async def _job_snapshot(self, writer: asyncio.StreamWriter,
                            job_id: str, query: Dict[str, str]) -> None:
        snapshot = self.service.job_snapshot(
            job_id, with_payload=query.get("payload") in ("1", "true"))
        if snapshot is None:
            raise _HttpError(404, f"unknown job {job_id!r}")
        await self._send_json(writer, 200, snapshot)

    async def _job_result(self, writer: asyncio.StreamWriter,
                          job_id: str, query: Dict[str, str]) -> None:
        try:
            timeout = float(query.get("timeout", "300"))
        except ValueError:
            raise _HttpError(400, "timeout must be a number")
        loop = asyncio.get_running_loop()
        try:
            await loop.run_in_executor(
                None, lambda: self.service.wait(job_id, timeout=timeout))
        except ServeError as exc:
            snapshot = self.service.job_snapshot(job_id)
            if snapshot is None:
                raise _HttpError(404, f"unknown job {job_id!r}")
            # Known but not terminal in time: 202 + snapshot, client
            # may poll again.
            await self._send_json(writer, 202, dict(
                snapshot, wait_error=str(exc)))
            return
        snapshot = self.service.job_snapshot(job_id, with_payload=True)
        await self._send_json(writer, 200, snapshot)

    async def _job_events(self, writer: asyncio.StreamWriter,
                          job_id: str, query: Dict[str, str]) -> None:
        if self.service.job(job_id) is None:
            raise _HttpError(404, f"unknown job {job_id!r}")
        try:
            cursor = int(query.get("since", "0"))
        except ValueError:
            raise _HttpError(400, "since must be an integer")
        writer.write((
            "HTTP/1.1 200 OK\r\n"
            "Content-Type: application/x-ndjson\r\n"
            "Connection: close\r\n\r\n").encode("latin-1"))
        while True:
            events = self.service.job_events(job_id, since=cursor)
            for event in events:
                writer.write(
                    (json.dumps(event, sort_keys=True) + "\n"
                     ).encode("utf-8"))
                cursor = int(event["seq"]) + 1
            await writer.drain()
            job = self.service.job(job_id)
            if job is None or (job.terminal
                               and not self.service.job_events(
                                   job_id, since=cursor)):
                break
            await asyncio.sleep(POLL_S)


def serve_forever(service: ExperimentService, *, host: str = DEFAULT_HOST,
                  port: int = DEFAULT_PORT) -> None:
    """Blocking entry point for ``repro serve``: run until a signal
    triggers the graceful drain."""

    async def _main() -> None:
        server = ExperimentServer(service, host=host, port=port)
        await server.start()
        await server.serve_until_stopped()

    asyncio.run(_main())

"""Bounded priority queue with per-tenant weighted fair ordering.

The Science DMZ serves *many* science groups over one set of DTNs; the
experiment service faces the same multiplexing problem one layer up —
many tenants submitting experiments against one worker pool — and uses
the classic answer: **start-time fair queueing** within each priority
class.

Each tenant carries a weight (default 1).  A job's virtual *start* tag
is ``max(class_clock, tenant_last_finish)`` and its *finish* tag adds
``cost / weight``; the queue always pops the lowest ``(priority_rank,
finish_tag, arrival_seq)``.  Consequences, all covered by tests:

* a higher priority class preempts lower ones entirely (``interactive``
  jobs never wait behind ``batch`` backfill);
* within a class, tenants with equal weights interleave 1:1 no matter
  how bursty their arrivals — a tenant that dumps 1000 jobs cannot
  starve one that submits a single job afterwards;
* a weight-2 tenant receives ~2x the dequeues of a weight-1 tenant
  while both are backlogged;
* a lone tenant degrades to plain FIFO.

Admission is **bounded**: pushing past ``capacity`` raises
:class:`~repro.errors.AdmissionError` carrying a ``retry_after_s``
hint (queue depth over observed service rate), which the HTTP layer
turns into ``429 Too Many Requests`` + ``Retry-After`` — explicit
backpressure instead of unbounded memory growth, exactly the
engineering-for-load stance of the source paper.

The queue is thread-safe; ``pop`` blocks on a condition variable.
``close()`` wakes every blocked popper (they observe None), and
``drain()`` atomically empties the queue in fair order for
persistence.
"""

from __future__ import annotations

import heapq
import threading
from typing import Dict, List, Optional, Tuple

from ..errors import AdmissionError, ConfigurationError
from .job import DEFAULT_PRIORITY, PRIORITY_CLASSES

__all__ = ["FairQueue"]


class FairQueue:
    """Bounded, priority-classed, weighted-fair job queue."""

    def __init__(self, capacity: int = 1024, *,
                 tenant_weights: Optional[Dict[str, float]] = None) -> None:
        if capacity < 1:
            raise ConfigurationError(
                f"queue capacity must be >= 1, got {capacity}")
        self.capacity = int(capacity)
        self._weights = dict(tenant_weights or {})
        for tenant, weight in self._weights.items():
            if weight <= 0:
                raise ConfigurationError(
                    f"tenant {tenant!r} weight must be > 0, got {weight}")
        self._heap: List[Tuple[int, float, int, object]] = []
        self._cond = threading.Condition()
        self._seq = 0
        self._closed = False
        #: Virtual clock per priority class (advances to the finish tag
        #: of the last job popped from that class).
        self._clock: Dict[int, float] = {}
        #: Last finish tag per (class, tenant).
        self._finish: Dict[Tuple[int, str], float] = {}
        #: Exponential moving average of observed service seconds/job;
        #: seeds the Retry-After hint before any job has finished.
        self._service_ema_s = 1.0

    # -- admission ------------------------------------------------------------
    def weight(self, tenant: str) -> float:
        return self._weights.get(tenant, 1.0)

    def set_weight(self, tenant: str, weight: float) -> None:
        if weight <= 0:
            raise ConfigurationError(
                f"tenant {tenant!r} weight must be > 0, got {weight}")
        self._weights[tenant] = float(weight)

    def observe_service_time(self, seconds: float) -> None:
        """Feed a completed job's execution time into the Retry-After
        estimate (EMA, alpha 0.2)."""
        with self._cond:
            self._service_ema_s = (0.8 * self._service_ema_s
                                   + 0.2 * max(1e-4, float(seconds)))

    def retry_after_s(self, workers: int) -> float:
        """Hint for a rejected client: roughly one queue-drain time."""
        with self._cond:
            depth = len(self._heap)
            per_worker = depth / max(1, workers)
            return round(max(0.1, per_worker * self._service_ema_s), 3)

    def push(self, item: object, *, tenant: str,
             priority: str = DEFAULT_PRIORITY, cost: float = 1.0,
             workers: int = 1) -> None:
        """Enqueue ``item`` for ``tenant``; raises on unknown priority
        or a full queue (:class:`AdmissionError` with retry hint)."""
        try:
            rank = PRIORITY_CLASSES[priority]
        except KeyError:
            known = ", ".join(sorted(PRIORITY_CLASSES))
            raise ConfigurationError(
                f"unknown priority class {priority!r}; "
                f"known classes: {known}")
        with self._cond:
            if len(self._heap) >= self.capacity:
                per_worker = len(self._heap) / max(1, workers)
                raise AdmissionError(
                    f"queue is full ({len(self._heap)}/{self.capacity} "
                    f"jobs); retry later",
                    retry_after_s=round(
                        max(0.1, per_worker * self._service_ema_s), 3))
            clock = self._clock.get(rank, 0.0)
            last = self._finish.get((rank, tenant), 0.0)
            start = max(clock, last)
            finish = start + float(cost) / self.weight(tenant)
            self._finish[(rank, tenant)] = finish
            heapq.heappush(self._heap, (rank, finish, self._seq, item))
            self._seq += 1
            self._cond.notify()

    # -- service --------------------------------------------------------------
    def pop(self, timeout: Optional[float] = None) -> Optional[object]:
        """Next item in fair order; None on timeout or when closed and
        empty.  ``timeout=None`` blocks until either happens."""
        with self._cond:
            while not self._heap:
                if self._closed:
                    return None
                if not self._cond.wait(timeout=timeout):
                    return None
            rank, finish, _, item = heapq.heappop(self._heap)
            clock = self._clock.get(rank, 0.0)
            self._clock[rank] = max(clock, finish)
            return item

    def drain(self) -> List[object]:
        """Atomically empty the queue, returning items in fair order."""
        with self._cond:
            items = []
            while self._heap:
                rank, finish, _, item = heapq.heappop(self._heap)
                self._clock[rank] = max(self._clock.get(rank, 0.0), finish)
                items.append(item)
            return items

    def close(self) -> None:
        """Stop the queue: blocked and future pops return None once
        the backlog is gone.  Pushes keep working (restart recovery
        re-enqueues into a closed-then-reopened queue)."""
        with self._cond:
            self._closed = True
            self._cond.notify_all()

    def reopen(self) -> None:
        with self._cond:
            self._closed = False

    def __len__(self) -> int:
        with self._cond:
            return len(self._heap)

"""Pluggable TCP congestion-control algorithms.

The fluid connection model (:mod:`repro.tcp.connection`) advances the
congestion window once per round-trip.  An algorithm supplies three pieces:

* the *additive increase* applied per loss-free RTT in congestion
  avoidance (possibly a function of time since the last loss — this is
  where H-TCP and CUBIC get their high-BDP advantage over Reno);
* the *multiplicative decrease* applied on a loss event;
* the slow-start growth factor.

The algorithms implemented are the ones in the paper's Figure 1 (TCP-Reno
and TCP-Hamilton/H-TCP) plus CUBIC (the Linux default on DTNs since 2.6.19)
and a loss-free ideal used to draw the figure's topmost line.

References: RFC 5681 (Reno), Leith & Shorten 2004 (H-TCP), Ha, Rhee & Xu
2008 (CUBIC).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Dict, Type

import numpy as np

from ..errors import ConfigurationError

__all__ = [
    "CongestionControl",
    "Reno",
    "HTcp",
    "Cubic",
    "LossFreeIdeal",
    "algorithm_by_name",
    "register_algorithm",
]


class CongestionControl(ABC):
    """Strategy interface for window evolution.

    All window quantities are in *segments* (floats — the fluid model does
    not quantize).  Implementations must be stateless across connections;
    per-connection state is limited to what the model passes in
    (current window, time since last loss event, RTT).
    """

    #: Registry name; subclasses override.
    name: str = "abstract"

    #: Slow-start per-RTT multiplier (2.0 = classic doubling).
    slow_start_factor: float = 2.0

    @abstractmethod
    def increase(self, cwnd: float, time_since_loss: float, rtt: float) -> float:
        """Additive window increase (segments) for one loss-free RTT
        in congestion avoidance."""

    @abstractmethod
    def decrease_factor(self, cwnd: float, rtt_min: float, rtt_max: float) -> float:
        """Multiplicative factor applied to cwnd on a loss event (in (0,1))."""

    def on_loss(self, cwnd: float, rtt_min: float, rtt_max: float) -> float:
        """New congestion window after a loss event."""
        beta = self.decrease_factor(cwnd, rtt_min, rtt_max)
        if not 0.0 < beta < 1.0:
            raise ConfigurationError(
                f"{self.name}: decrease factor must be in (0,1), got {beta}"
            )
        return max(1.0, cwnd * beta)

    # -- batch (array) API --------------------------------------------------
    # The multi-flow simulator updates many streams per tick, so each
    # algorithm also exposes elementwise ndarray versions of its update
    # rules.  numpy routes array arithmetic (notably ``**``) through SIMD
    # loops whose last-bit rounding can differ from libm scalar calls, so
    # the batch methods are the *canonical* arithmetic for the multi-flow
    # model: both its backends call these (the scalar reference on
    # length-1 arrays), which keeps the backends bit-identical.  The
    # scalar methods above remain the canonical path for the single
    # connection model.  The defaults fall back to the scalar methods so
    # third-party subclasses keep working unmodified.

    def increase_batch(self, cwnd: np.ndarray, time_since_loss: np.ndarray,
                       rtt: np.ndarray) -> np.ndarray:
        """Elementwise :meth:`increase` over stream-state arrays."""
        return np.array([
            self.increase(float(c), float(t), float(r))
            for c, t, r in zip(cwnd, time_since_loss, rtt)
        ], dtype=np.float64)

    def decrease_factor_batch(self, cwnd: np.ndarray, rtt_min: np.ndarray,
                              rtt_max: np.ndarray) -> np.ndarray:
        """Elementwise :meth:`decrease_factor` over stream-state arrays."""
        return np.array([
            self.decrease_factor(float(c), float(lo), float(hi))
            for c, lo, hi in zip(cwnd, rtt_min, rtt_max)
        ], dtype=np.float64)

    def on_loss_batch(self, cwnd: np.ndarray, rtt_min: np.ndarray,
                      rtt_max: np.ndarray) -> np.ndarray:
        """Elementwise :meth:`on_loss` over stream-state arrays."""
        beta = np.asarray(
            self.decrease_factor_batch(cwnd, rtt_min, rtt_max),
            dtype=np.float64)
        if np.any((beta <= 0.0) | (beta >= 1.0)):
            bad = beta[(beta <= 0.0) | (beta >= 1.0)][0]
            raise ConfigurationError(
                f"{self.name}: decrease factor must be in (0,1), got {bad}"
            )
        return np.maximum(1.0, cwnd * beta)

    def trace_attrs(self) -> Dict[str, float]:
        """Algorithm parameters attached to trace events (loss episodes,
        transfer spans) so a trace is self-describing.  Subclasses extend
        with their tuning constants."""
        return {"algorithm": self.name,
                "slow_start_factor": self.slow_start_factor}

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"


class Reno(CongestionControl):
    """Classic AIMD: +1 segment per RTT, halve on loss (RFC 5681)."""

    name = "reno"

    def increase(self, cwnd: float, time_since_loss: float, rtt: float) -> float:
        return 1.0

    def decrease_factor(self, cwnd: float, rtt_min: float, rtt_max: float) -> float:
        return 0.5

    def increase_batch(self, cwnd: np.ndarray, time_since_loss: np.ndarray,
                       rtt: np.ndarray) -> np.ndarray:
        return np.ones_like(cwnd)

    def decrease_factor_batch(self, cwnd: np.ndarray, rtt_min: np.ndarray,
                              rtt_max: np.ndarray) -> np.ndarray:
        return np.full_like(cwnd, 0.5)


class HTcp(CongestionControl):
    """H-TCP (Hamilton Institute), the paper's "TCP-Hamilton".

    The additive increase is a function of the time Δ since the last
    congestion event: for Δ ≤ Δ_L (1 s) it behaves like Reno; beyond that

    .. math:: \\alpha(\\Delta) = 1 + 10(\\Delta - \\Delta_L)
              + \\left(\\frac{\\Delta - \\Delta_L}{2}\\right)^2

    so long loss-free periods on high-BDP paths ramp the window far faster
    than Reno's one-segment-per-RTT.  The backoff factor adapts to RTT
    variation: β = RTT_min / RTT_max, clamped to [0.5, 0.8].
    """

    name = "htcp"
    delta_l: float = 1.0  # seconds of Reno-compatible low-speed regime

    def trace_attrs(self) -> Dict[str, float]:
        attrs = super().trace_attrs()
        attrs["delta_l"] = self.delta_l
        return attrs

    def increase(self, cwnd: float, time_since_loss: float, rtt: float) -> float:
        delta = max(0.0, time_since_loss)
        if delta <= self.delta_l:
            return 1.0
        excess = delta - self.delta_l
        return 1.0 + 10.0 * excess + (excess / 2.0) ** 2

    def decrease_factor(self, cwnd: float, rtt_min: float, rtt_max: float) -> float:
        if rtt_max <= 0:
            return 0.5
        beta = rtt_min / rtt_max
        return min(0.8, max(0.5, beta))

    def increase_batch(self, cwnd: np.ndarray, time_since_loss: np.ndarray,
                       rtt: np.ndarray) -> np.ndarray:
        delta = np.maximum(0.0, time_since_loss)
        excess = delta - self.delta_l
        high = 1.0 + 10.0 * excess + (excess / 2.0) ** 2
        return np.where(delta <= self.delta_l, 1.0, high)

    def decrease_factor_batch(self, cwnd: np.ndarray, rtt_min: np.ndarray,
                              rtt_max: np.ndarray) -> np.ndarray:
        with np.errstate(divide="ignore", invalid="ignore"):
            beta = np.where(rtt_max > 0, rtt_min / np.where(rtt_max > 0,
                                                            rtt_max, 1.0), 0.5)
        return np.minimum(0.8, np.maximum(0.5, beta))


class Cubic(CongestionControl):
    """CUBIC (Ha, Rhee & Xu 2008): window is a cubic of time since loss.

    .. math:: W(t) = C (t - K)^3 + W_{max},\\quad
              K = \\sqrt[3]{W_{max} \\beta_{cubic} / C}

    with C = 0.4, β_cubic = 0.3 (decrease factor 0.7).  The fluid model
    calls :meth:`increase` per RTT; we return the cubic's growth over one
    RTT evaluated at the current time since loss, reconstructing
    :math:`W_{max}` from the current window and elapsed time.
    """

    name = "cubic"
    c: float = 0.4
    beta_cubic: float = 0.3  # fraction *removed* on loss

    def trace_attrs(self) -> Dict[str, float]:
        attrs = super().trace_attrs()
        attrs["c"] = self.c
        attrs["beta_cubic"] = self.beta_cubic
        return attrs

    def increase(self, cwnd: float, time_since_loss: float, rtt: float) -> float:
        # Reconstruct W_max from the invariant W(t) = C (t-K)^3 + W_max.
        # At the moment of loss, W(0) = (1-beta) W_max. We don't carry
        # W_max explicitly, so approximate it from the current state: the
        # cubic is symmetric around K, thus
        #   W_max = cwnd - C (t - K)^3.
        # Solving exactly needs W_max; instead we use the standard fluid
        # trick: estimate W_max as the window at the last loss divided by
        # (1 - beta). For the per-RTT update this reduces to evaluating the
        # cubic slope at t, with K inferred from cwnd growth history being
        # unavailable; the widely used approximation takes W_max ≈ cwnd at
        # loss time. We carry that via time_since_loss == 0 detection in
        # the connection model, which passes the post-loss window; here we
        # approximate W_max = cwnd / (1 - beta) when near the loss and
        # cwnd when beyond K (concave->convex crossover).
        w_max = cwnd / (1.0 - self.beta_cubic)
        k = (w_max * self.beta_cubic / self.c) ** (1.0 / 3.0)
        t = max(0.0, time_since_loss)
        w_now = self.c * (t - k) ** 3 + w_max
        w_next = self.c * (t + rtt - k) ** 3 + w_max
        growth = w_next - w_now
        # TCP-friendly region: never grow slower than Reno.
        return max(1.0, growth)

    def decrease_factor(self, cwnd: float, rtt_min: float, rtt_max: float) -> float:
        return 1.0 - self.beta_cubic

    def increase_batch(self, cwnd: np.ndarray, time_since_loss: np.ndarray,
                       rtt: np.ndarray) -> np.ndarray:
        w_max = cwnd / (1.0 - self.beta_cubic)
        k = (w_max * self.beta_cubic / self.c) ** (1.0 / 3.0)
        t = np.maximum(0.0, time_since_loss)
        w_now = self.c * (t - k) ** 3 + w_max
        w_next = self.c * (t + rtt - k) ** 3 + w_max
        return np.maximum(1.0, w_next - w_now)

    def decrease_factor_batch(self, cwnd: np.ndarray, rtt_min: np.ndarray,
                              rtt_max: np.ndarray) -> np.ndarray:
        return np.full_like(cwnd, 1.0 - self.beta_cubic)


class LossFreeIdeal(CongestionControl):
    """Reference algorithm for the loss-free environment of Figure 1.

    Grows aggressively and never sees loss events in a clean network, so a
    connection using it converges to the path/receive-window limit — the
    figure's topmost (purple) line.  If the network *does* lose packets it
    degrades like Reno, which keeps the model honest when someone runs the
    ideal over a dirty path.
    """

    name = "ideal"

    def increase(self, cwnd: float, time_since_loss: float, rtt: float) -> float:
        return max(1.0, cwnd * 0.5)  # exponential approach to the cap

    def decrease_factor(self, cwnd: float, rtt_min: float, rtt_max: float) -> float:
        return 0.5

    def increase_batch(self, cwnd: np.ndarray, time_since_loss: np.ndarray,
                       rtt: np.ndarray) -> np.ndarray:
        return np.maximum(1.0, cwnd * 0.5)

    def decrease_factor_batch(self, cwnd: np.ndarray, rtt_min: np.ndarray,
                              rtt_max: np.ndarray) -> np.ndarray:
        return np.full_like(cwnd, 0.5)


_REGISTRY: Dict[str, Type[CongestionControl]] = {}


def register_algorithm(cls: Type[CongestionControl]) -> Type[CongestionControl]:
    """Register a congestion-control class under its ``name``."""
    if not issubclass(cls, CongestionControl):
        raise ConfigurationError(f"{cls!r} is not a CongestionControl")
    if not cls.name or cls.name == "abstract":
        raise ConfigurationError("algorithm must define a concrete name")
    _REGISTRY[cls.name] = cls
    return cls


for _cls in (Reno, HTcp, Cubic, LossFreeIdeal):
    register_algorithm(_cls)


def algorithm_by_name(name: str) -> CongestionControl:
    """Instantiate a registered algorithm: 'reno', 'htcp', 'cubic', 'ideal'."""
    try:
        return _REGISTRY[name.lower()]()
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise ConfigurationError(
            f"unknown congestion-control algorithm {name!r}; known: {known}"
        ) from None

"""Synchronized multi-flow TCP simulation over a shared topology.

Single connections are handled by :class:`repro.tcp.connection.TcpConnection`;
this module simulates *competing* flows — the supercomputer-center and
big-data-site experiments need many DTN streams sharing links, and the
fan-out/fan-in campus stories need science flows competing with enterprise
background traffic.

Model: a fluid tick loop.  Each tick

1. every active flow offers ``window/RTT``;
2. link bandwidth is divided max-min fairly among the flows crossing it;
3. links whose offered load exceeds capacity grow a virtual queue; when a
   queue overflows its buffer, flows crossing that link suffer a loss event
   with probability proportional to their share of the overload;
4. per-packet random loss on each flow's path contributes stochastic loss
   events;
5. each flow advances its own RTT clock and applies congestion control once
   per RTT.

The approximation is standard fluid-model fare: it will not reproduce
packet-level synchronization artifacts, but it preserves the relationships
the paper's experiments rely on (who wins, how throughput scales with flow
count and buffering, how badly loss hurts at high RTT).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import ConfigurationError, SimulationError
from ..netsim.flow import FlowSpec
from ..netsim.link import Link
from ..netsim.topology import Path, PathProfile, Topology
from ..units import DataRate, DataSize, TimeDelta, bits, seconds
from .congestion import CongestionControl, Reno, algorithm_by_name

__all__ = ["FlowProgress", "MultiFlowSimulation", "max_min_fair_allocation"]


def max_min_fair_allocation(
    demands: np.ndarray,
    usage: np.ndarray,
    capacities: np.ndarray,
) -> np.ndarray:
    """Max-min fair rates for flows over shared links.

    Parameters
    ----------
    demands:
        Shape (F,) — each flow's offered rate (bps).
    usage:
        Shape (F, L) boolean — flow f crosses link l.
    capacities:
        Shape (L,) — link capacities (bps).

    Returns
    -------
    Shape (F,) allocated rates; each flow gets at most its demand and links
    are never oversubscribed.  Classic progressive-filling algorithm.
    """
    demands = np.asarray(demands, dtype=np.float64)
    usage = np.asarray(usage, dtype=bool)
    capacities = np.asarray(capacities, dtype=np.float64)
    n_flows, n_links = usage.shape
    if demands.shape != (n_flows,) or capacities.shape != (n_links,):
        raise ConfigurationError("max_min_fair_allocation: shape mismatch")

    alloc = np.zeros(n_flows)
    frozen = demands <= 0
    alloc[frozen] = 0.0
    remaining_cap = capacities.astype(np.float64).copy()

    # Progressive filling: each round either satisfies some flows' demands
    # or saturates the currently tightest link, freezing only the flows
    # that cross it.  Terminates within n_flows + n_links rounds.
    for _ in range(n_flows + n_links + 1):
        active = ~frozen
        if not active.any():
            break
        # Fair share on each link among its active flows.
        active_per_link = usage[active].sum(axis=0)
        with np.errstate(divide="ignore", invalid="ignore"):
            share = np.where(
                active_per_link > 0,
                remaining_cap / np.maximum(active_per_link, 1),
                np.inf,
            )
        # Each active flow is limited by the tightest link it crosses.
        limit = np.full(n_flows, np.inf)
        for f in np.nonzero(active)[0]:
            links = usage[f]
            if links.any():
                limit[f] = share[links].min()
        # Flows whose demand is below their limit are satisfied; freeze them
        # and recompute shares with the released capacity.
        headroom = demands - alloc
        satisfied = active & (headroom <= limit + 1e-9)
        if satisfied.any():
            grant = headroom[satisfied]
            alloc[satisfied] += grant
            for f, g in zip(np.nonzero(satisfied)[0], grant):
                remaining_cap[usage[f]] -= g
            frozen |= satisfied
            continue
        # No flow is demand-satisfied: saturate the tightest link only.
        finite_links = share[active_per_link > 0]
        if finite_links.size == 0 or not np.isfinite(finite_links).any():
            alloc[active] = demands[active]
            break
        min_share = finite_links[np.isfinite(finite_links)].min()
        bottleneck_links = (active_per_link > 0) & (share <= min_share + 1e-9)
        to_freeze = active & usage[:, bottleneck_links].any(axis=1)
        for f in np.nonzero(to_freeze)[0]:
            alloc[f] += limit[f]
            remaining_cap[usage[f]] -= limit[f]
        remaining_cap = np.maximum(remaining_cap, 0.0)
        frozen |= to_freeze
    return np.minimum(alloc, demands)


@dataclass
class FlowProgress:
    """Per-flow outcome of a multi-flow simulation."""

    spec: FlowSpec
    delivered: DataSize = bits(0)
    finish_time: Optional[TimeDelta] = None
    loss_events: int = 0
    started: bool = False
    time_series: List[Tuple[float, float]] = field(default_factory=list)
    # (time_s, rate_bps) decimated samples

    @property
    def done(self) -> bool:
        return self.finish_time is not None

    def mean_throughput(self, now: TimeDelta) -> DataRate:
        end = self.finish_time.s if self.finish_time else now.s
        start = self.spec.start.s
        dur = max(end - start, 1e-12)
        return DataRate(self.delivered.bits / dur)


class _StreamState:
    """Congestion state of one TCP stream inside a flow."""

    __slots__ = ("cwnd", "ssthresh", "time_since_loss", "rtt_clock",
                 "loss_flag", "delivered_bits", "remaining_bits")

    def __init__(self, initial_cwnd: float, remaining_bits: Optional[float]):
        self.cwnd = initial_cwnd
        self.ssthresh = float("inf")
        self.time_since_loss = 0.0
        self.rtt_clock = 0.0
        self.loss_flag = False
        self.delivered_bits = 0.0
        self.remaining_bits = remaining_bits


class MultiFlowSimulation:
    """Run a set of :class:`FlowSpec` demands over a topology.

    Parameters
    ----------
    topology:
        The network.
    specs:
        Flow demands.  Labels must be unique and non-empty.
    rng:
        Required for stochastic loss; deterministic paths may omit it.
    algorithm:
        Congestion control shared by all flows, or a dict
        ``{label: algorithm}`` for per-flow choices.
    buffer_rtt_fraction:
        Virtual-queue depth per link, in units of that link's
        capacity x 100 ms (approximating "one WAN RTT of buffer").
    """

    def __init__(
        self,
        topology: Topology,
        specs: Sequence[FlowSpec],
        *,
        rng: Optional[np.random.Generator] = None,
        algorithm=None,
        buffer_rtt_fraction: float = 1.0,
        initial_cwnd: float = 10.0,
    ) -> None:
        if not specs:
            raise ConfigurationError("MultiFlowSimulation needs at least one flow")
        labels = [s.label or f"flow{i}" for i, s in enumerate(specs)]
        if len(set(labels)) != len(labels):
            raise ConfigurationError("flow labels must be unique")
        self.topology = topology
        self._rng = rng
        self._buffer_frac = buffer_rtt_fraction
        self._initial_cwnd = initial_cwnd

        self._labels = labels
        self._specs = list(specs)
        self._paths: List[Path] = []
        self._profiles: List[PathProfile] = []
        self._algos: List[CongestionControl] = []
        for label, spec in zip(labels, self._specs):
            path = topology.path(spec.src, spec.dst, **spec.policy)
            profile = topology.profile(path)
            self._paths.append(path)
            self._profiles.append(profile)
            if isinstance(algorithm, dict):
                algo = algorithm.get(label, Reno())
            elif algorithm is None:
                algo = Reno()
            else:
                algo = algorithm
            if isinstance(algo, str):
                algo = algorithm_by_name(algo)
            self._algos.append(algo)
            if profile.random_loss > 0 and rng is None:
                raise ConfigurationError(
                    f"flow {label!r} crosses a lossy path; rng is required"
                )

        # Link inventory: every link used by any flow.
        link_ids: Dict[int, int] = {}
        self._links: List[Link] = []
        for path in self._paths:
            for link in path.links:
                if id(link) not in link_ids:
                    link_ids[id(link)] = len(self._links)
                    self._links.append(link)
        n_flows, n_links = len(specs), len(self._links)
        self._usage = np.zeros((n_flows, n_links), dtype=bool)
        for f, path in enumerate(self._paths):
            for link in path.links:
                self._usage[f, link_ids[id(link)]] = True
        self._capacities = np.array([l.rate.bps for l in self._links])
        self._queues = np.zeros(n_links)
        self._buffers = self._capacities * 0.1 * buffer_rtt_fraction  # bits

        self.progress: Dict[str, FlowProgress] = {
            label: FlowProgress(spec=spec)
            for label, spec in zip(labels, self._specs)
        }
        # One stream state per parallel stream of each flow.
        self._streams: List[List[_StreamState]] = []
        for spec in self._specs:
            per = spec.per_stream_size()
            self._streams.append([
                _StreamState(initial_cwnd, per.bits if per else None)
                for _ in range(spec.parallel_streams)
            ])

    # ---------------------------------------------------------------------------
    def run(
        self,
        *,
        until: Optional[TimeDelta] = None,
        max_ticks: int = 2_000_000,
        sample_interval: TimeDelta = seconds(1.0),
    ) -> Dict[str, FlowProgress]:
        """Advance until all sized flows finish (or ``until`` elapses)."""
        rtts = np.array([max(p.base_rtt.s, 1e-6) for p in self._profiles])
        dt = float(min(rtts.min() / 2.0, 0.05))
        horizon = until.s if until is not None else float("inf")
        if until is None and all(s.size is None for s in self._specs):
            raise ConfigurationError(
                "all flows are unbounded; an explicit until= horizon is required"
            )
        now = 0.0
        next_sample = 0.0
        rng = self._rng
        n_flows = len(self._specs)
        mss_bits = np.array([p.flow.mss.bits for p in self._profiles])
        rwnd_pkts = np.array([
            max(1.0, p.flow.effective_receive_window().bits / m)
            for p, m in zip(self._profiles, mss_bits)
        ])
        loss_p = np.array([p.random_loss for p in self._profiles])
        rate_caps = np.array([
            (s.rate_limit.bps if s.rate_limit else np.inf) for s in self._specs
        ])

        for tick in range(max_ticks):
            if now >= horizon:
                break
            active_any = False
            demands = np.zeros(n_flows)
            for f, (spec, streams) in enumerate(zip(self._specs, self._streams)):
                prog = self.progress[self._labels[f]]
                if prog.done or now < spec.start.s:
                    continue
                prog.started = True
                active_any = True
                demand = sum(
                    min(st.cwnd, rwnd_pkts[f]) * mss_bits[f] / rtts[f]
                    for st in streams
                    if st.remaining_bits is None or st.remaining_bits > 0
                )
                demands[f] = min(demand, rate_caps[f])
            if not active_any:
                # Flows scheduled in the future? Jump the clock to the next
                # start rather than ending the simulation early.
                pending = [
                    spec.start.s
                    for label, spec in zip(self._labels, self._specs)
                    if not self.progress[label].done and spec.start.s > now
                ]
                if pending:
                    now = min(min(pending), horizon)
                    continue
                if until is None:
                    break
                now = min(horizon, now + dt)
                continue

            alloc = max_min_fair_allocation(demands, self._usage, self._capacities)

            # Virtual queues: links where offered demand exceeds capacity.
            offered_per_link = (demands[:, None] * self._usage).sum(axis=0)
            overload = offered_per_link - self._capacities
            self._queues += np.maximum(overload, 0.0) * dt
            drained = overload < 0
            self._queues[drained] = np.maximum(
                0.0, self._queues[drained] + overload[drained] * dt
            )
            overflowing = self._queues > self._buffers
            self._queues = np.minimum(self._queues, self._buffers)

            # Loss events: congestion overflow + random path loss.
            for f in range(n_flows):
                label = self._labels[f]
                prog = self.progress[label]
                if prog.done or demands[f] <= 0:
                    continue
                streams = self._streams[f]
                live = [st for st in streams
                        if st.remaining_bits is None or st.remaining_bits > 0]
                if not live:
                    continue
                rate_per_stream = alloc[f] / len(live)
                congested = bool((self._usage[f] & overflowing).any())
                for st in live:
                    got = rate_per_stream * dt
                    if st.remaining_bits is not None:
                        got = min(got, st.remaining_bits)
                        st.remaining_bits -= got
                    st.delivered_bits += got
                    prog.delivered = bits(prog.delivered.bits + got)
                    if congested and rng is not None:
                        # Probability scaled by the flow's share of overload.
                        if rng.random() < min(1.0, dt / rtts[f]):
                            st.loss_flag = True
                    elif congested:
                        st.loss_flag = True
                    if loss_p[f] > 0:
                        pkts = got / mss_bits[f]
                        p_evt = 1.0 - (1.0 - loss_p[f]) ** pkts
                        if rng.random() < p_evt:
                            st.loss_flag = True

                    # Per-RTT congestion-control update.
                    st.rtt_clock += dt
                    st.time_since_loss += dt
                    if st.rtt_clock >= rtts[f]:
                        st.rtt_clock = 0.0
                        algo = self._algos[f]
                        if st.loss_flag:
                            st.loss_flag = False
                            prog.loss_events += 1
                            # Reduce from what was actually in flight
                            # (RFC 2861), not an inflated cwnd.
                            inflight = min(st.cwnd, rwnd_pkts[f])
                            st.cwnd = algo.on_loss(inflight, rtts[f], rtts[f])
                            st.ssthresh = st.cwnd
                            st.time_since_loss = 0.0
                        elif st.cwnd < st.ssthresh:
                            st.cwnd = min(st.cwnd * algo.slow_start_factor,
                                          rwnd_pkts[f] * 1.25)
                        elif st.cwnd <= rwnd_pkts[f]:
                            st.cwnd = min(
                                st.cwnd + algo.increase(
                                    st.cwnd, st.time_since_loss, rtts[f]),
                                rwnd_pkts[f] * 1.25,
                            )

                if all(st.remaining_bits is not None and st.remaining_bits <= 0
                       for st in streams):
                    prog.finish_time = seconds(now + dt)

            now += dt
            if now >= next_sample:
                next_sample = now + sample_interval.s
                for f, label in enumerate(self._labels):
                    prog = self.progress[label]
                    if prog.started and not prog.done:
                        prog.time_series.append((now, float(alloc[f])))
        else:
            raise SimulationError(
                f"multi-flow simulation did not settle within {max_ticks} ticks"
            )

        self.finished_at = seconds(now)
        return self.progress

    # -- conveniences ---------------------------------------------------------------
    def profile_of(self, label: str) -> PathProfile:
        try:
            return self._profiles[self._labels.index(label)]
        except ValueError:
            raise ConfigurationError(f"no flow labelled {label!r}") from None

    def aggregate_delivered(self) -> DataSize:
        return bits(sum(p.delivered.bits for p in self.progress.values()))

"""Synchronized multi-flow TCP simulation over a shared topology.

Single connections are handled by :class:`repro.tcp.connection.TcpConnection`;
this module simulates *competing* flows — the supercomputer-center and
big-data-site experiments need many DTN streams sharing links, and the
fan-out/fan-in campus stories need science flows competing with enterprise
background traffic.

Model: a fluid tick loop.  Each tick

1. every active flow offers ``window/RTT``;
2. link bandwidth is divided max-min fairly among the flows crossing it;
3. links whose offered load exceeds capacity grow a virtual queue; when a
   queue overflows its buffer, flows crossing that link suffer a loss event
   with probability proportional to their share of the overload;
4. per-packet random loss on each flow's path contributes stochastic loss
   events;
5. each flow advances its own RTT clock and applies congestion control once
   per RTT.

The approximation is standard fluid-model fare: it will not reproduce
packet-level synchronization artifacts, but it preserves the relationships
the paper's experiments rely on (who wins, how throughput scales with flow
count and buffering, how badly loss hurts at high RTT).

Backends
--------
The tick loop exists twice:

* ``backend="numpy"`` (default) keeps all stream state as flat
  struct-of-arrays (cwnd/ssthresh/rtt-clock/remaining-bits indexed by a
  flow map) and advances every stream per tick with array ops.  This is
  the production path — the many-flow paper scenarios are one to two
  orders of magnitude faster on it.
* ``backend="python"`` is the scalar reference: one
  :class:`_StreamState` object per stream, a plain per-stream loop.

Both backends are **bit-identical**: random variates are drawn in the
exact per-flow, per-stream order of the scalar loop (a single
``Generator.random(n)`` call consumes the PCG64 stream exactly like *n*
scalar calls), per-flow reductions use sequential-accumulation numpy
primitives (``np.bincount``), and transcendental arithmetic is routed
through numpy's array loops on both paths (SIMD ``**`` can differ from
libm's scalar ``pow`` in the last bit).  ``tests/test_vectorized_equivalence``
asserts the equivalence property over random topologies, seeds and
stream counts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import ConfigurationError, SimulationError
from ..netsim.flow import FlowSpec
from ..netsim.link import Link
from ..netsim.topology import Path, PathProfile, Topology
from ..units import DataRate, DataSize, TimeDelta, bits, seconds
from ..vectorize import (SIM_BACKENDS, SIM_ENGINES, exact_backend,
                         pow_elementwise, resolve_backend, resolve_engine)
from .congestion import CongestionControl, Reno, algorithm_by_name

__all__ = ["FlowProgress", "MultiFlowSimulation", "max_min_fair_allocation",
           "SIM_BACKENDS", "SIM_ENGINES"]


class _ProgressiveFiller:
    """Progressive-filling max-min allocator for a fixed (usage, capacities).

    The flow/link incidence never changes across a simulation, so the
    structural work — ``np.nonzero`` of the usage matrix, per-flow segment
    boundaries for ``np.minimum.reduceat``, the initial active-flow count
    per link — is done once here and the per-tick :meth:`allocate` call
    only touches O(F + L + nnz) arrays per round.

    Both backends walk the same round structure; they differ only in how
    each round's per-flow limits and per-link capacity deltas are
    evaluated.  Bit-identity notes: per-flow limits are plain minima
    (order-independent and exact); per-link deltas are accumulated in
    flow order via ``np.bincount`` over the row-major flat incidence,
    matching the scalar loop's association, and the zero weights
    contributed by unaffected flows are exact no-ops because every
    partial sum is non-negative.
    """

    def __init__(self, usage: np.ndarray, capacities: np.ndarray) -> None:
        usage = np.asarray(usage, dtype=bool)
        capacities = np.asarray(capacities, dtype=np.float64)
        self.n_flows, self.n_links = usage.shape
        if capacities.shape != (self.n_links,):
            raise ConfigurationError("max_min_fair_allocation: shape mismatch")
        self.usage = usage
        self.capacities = capacities
        self._flat_rows, self._flat_cols = np.nonzero(usage)
        counts = np.bincount(self._flat_rows, minlength=self.n_flows)
        has_links = counts > 0
        seg_ptr = np.cumsum(counts) - counts
        self._flows_with_links = np.nonzero(has_links)[0]
        self._seg_starts = seg_ptr[has_links]
        self._links_per_flow_active0 = usage.sum(axis=0).astype(np.float64)
        self._finite_caps = bool(np.isfinite(capacities).all())

    def allocate(self, demands: np.ndarray,
                 backend: str = "numpy") -> np.ndarray:
        demands = np.asarray(demands, dtype=np.float64)
        if demands.shape != (self.n_flows,):
            raise ConfigurationError("max_min_fair_allocation: shape mismatch")
        if backend == "numpy":
            return self._allocate_numpy(demands)
        return self._allocate_python(demands)

    def _allocate_numpy(self, demands: np.ndarray) -> np.ndarray:
        n_flows, n_links = self.n_flows, self.n_links
        flat_rows, flat_cols = self._flat_rows, self._flat_cols
        alloc = np.zeros(n_flows)
        frozen = demands <= 0.0
        n_frozen = int(np.count_nonzero(frozen))
        remaining_cap = self.capacities.copy()
        # Active-flow count per link, maintained incrementally (the counts
        # are small exact integers, so float bookkeeping is lossless).
        apl = self._links_per_flow_active0.copy()
        if n_frozen:
            apl -= np.bincount(flat_cols, weights=frozen[flat_rows],
                               minlength=n_links)
        limit = np.empty(n_flows)
        for _ in range(n_flows + n_links + 1):
            if n_frozen >= n_flows:
                break
            active = ~frozen
            # Fair share on each link among its active flows.
            with np.errstate(divide="ignore", invalid="ignore"):
                share = np.where(apl > 0.0,
                                 remaining_cap / np.maximum(apl, 1.0),
                                 np.inf)
            # Each flow is limited by the tightest link it crosses:
            # a segmented min over the flat incidence list.
            limit.fill(np.inf)
            if self._seg_starts.size:
                limit[self._flows_with_links] = np.minimum.reduceat(
                    share[flat_cols], self._seg_starts)
            # Flows whose demand is below their limit are satisfied; freeze
            # them and recompute shares with the released capacity.
            headroom = demands - alloc
            satisfied = active & (headroom <= limit + 1e-9)
            n_sat = int(np.count_nonzero(satisfied))
            if n_sat:
                grant = np.where(satisfied, headroom, 0.0)
                alloc = alloc + grant
                remaining_cap = remaining_cap - np.bincount(
                    flat_cols, weights=grant[flat_rows], minlength=n_links)
                apl -= np.bincount(flat_cols, weights=satisfied[flat_rows],
                                   minlength=n_links)
                frozen = frozen | satisfied
                n_frozen += n_sat
                continue
            # No flow is demand-satisfied: saturate the tightest link only.
            apl_pos = apl > 0.0
            finite_links = share[apl_pos]
            if self._finite_caps:
                # remaining_cap stays finite, so every busy link's share
                # is finite — the defensive isfinite scans are no-ops.
                if finite_links.size == 0:
                    alloc[active] = demands[active]
                    break
                min_share = finite_links.min()
            elif (finite_links.size == 0
                    or not np.isfinite(finite_links).any()):
                alloc[active] = demands[active]
                break
            else:
                min_share = finite_links[np.isfinite(finite_links)].min()
            bottleneck = apl_pos & (share <= min_share + 1e-9)
            to_freeze = np.zeros(n_flows, dtype=bool)
            to_freeze[flat_rows[bottleneck[flat_cols]]] = True
            to_freeze &= active
            taken_per_flow = np.where(to_freeze, limit, 0.0)
            alloc = alloc + taken_per_flow
            remaining_cap = np.maximum(
                remaining_cap - np.bincount(
                    flat_cols, weights=taken_per_flow[flat_rows],
                    minlength=n_links),
                0.0)
            apl -= np.bincount(flat_cols, weights=to_freeze[flat_rows],
                               minlength=n_links)
            frozen = frozen | to_freeze
            n_frozen += int(np.count_nonzero(to_freeze))
        return np.minimum(alloc, demands)

    def _allocate_python(self, demands: np.ndarray) -> np.ndarray:
        """Scalar reference: per-flow loops for limits and capacity deltas."""
        usage = self.usage
        n_flows, n_links = self.n_flows, self.n_links
        alloc = np.zeros(n_flows)
        frozen = demands <= 0
        alloc[frozen] = 0.0
        remaining_cap = self.capacities.copy()
        for _ in range(n_flows + n_links + 1):
            active = ~frozen
            if not active.any():
                break
            active_per_link = usage[active].sum(axis=0)
            with np.errstate(divide="ignore", invalid="ignore"):
                share = np.where(
                    active_per_link > 0,
                    remaining_cap / np.maximum(active_per_link, 1),
                    np.inf,
                )
            limit = np.full(n_flows, np.inf)
            for f in range(n_flows):
                links = usage[f]
                if links.any():
                    limit[f] = share[links].min()
            headroom = demands - alloc
            satisfied = active & (headroom <= limit + 1e-9)
            if satisfied.any():
                grant = headroom[satisfied]
                alloc[satisfied] += grant
                released = np.zeros(n_links)
                for f, g in zip(np.nonzero(satisfied)[0], grant):
                    for link in np.nonzero(usage[f])[0]:
                        released[link] += g
                remaining_cap = remaining_cap - released
                frozen |= satisfied
                continue
            finite_links = share[active_per_link > 0]
            if finite_links.size == 0 or not np.isfinite(finite_links).any():
                alloc[active] = demands[active]
                break
            min_share = finite_links[np.isfinite(finite_links)].min()
            bottleneck_links = ((active_per_link > 0)
                                & (share <= min_share + 1e-9))
            to_freeze = active & usage[:, bottleneck_links].any(axis=1)
            taken = np.zeros(n_links)
            for f in np.nonzero(to_freeze)[0]:
                alloc[f] += limit[f]
                for link in np.nonzero(usage[f])[0]:
                    taken[link] += limit[f]
            remaining_cap = remaining_cap - taken
            remaining_cap = np.maximum(remaining_cap, 0.0)
            frozen |= to_freeze
        return np.minimum(alloc, demands)


def max_min_fair_allocation(
    demands: np.ndarray,
    usage: np.ndarray,
    capacities: np.ndarray,
    *,
    backend: Optional[str] = None,
) -> np.ndarray:
    """Max-min fair rates for flows over shared links.

    Parameters
    ----------
    demands:
        Shape (F,) — each flow's offered rate (bps).
    usage:
        Shape (F, L) boolean — flow f crosses link l.
    capacities:
        Shape (L,) — link capacities (bps).
    backend:
        ``"numpy"`` computes each round's per-flow limits and capacity
        releases with masked matrix ops; ``"python"`` is the per-flow
        scalar reference.  Both are bit-identical.  None (default)
        resolves through :func:`repro.vectorize.default_backend`.

    Returns
    -------
    Shape (F,) allocated rates; each flow gets at most its demand and links
    are never oversubscribed.  Classic progressive-filling algorithm.

    Callers allocating repeatedly over a fixed topology (the multi-flow
    tick loop) hold a :class:`_ProgressiveFiller` instead, which hoists
    the structural precomputation out of the per-tick call.
    """
    backend = resolve_backend(backend)
    return _ProgressiveFiller(usage, capacities).allocate(demands, backend)


@dataclass
class FlowProgress:
    """Per-flow outcome of a multi-flow simulation."""

    spec: FlowSpec
    delivered: DataSize = bits(0)
    finish_time: Optional[TimeDelta] = None
    loss_events: int = 0
    started: bool = False
    time_series: List[Tuple[float, float]] = field(default_factory=list)
    # (time_s, rate_bps) decimated samples; a flow that finishes
    # mid-interval appends one final sample at its finish time carrying
    # the final tick's allocation, so consumers integrating the series
    # never extrapolate a stale boundary rate over the last partial
    # interval.

    @property
    def done(self) -> bool:
        return self.finish_time is not None

    def mean_throughput(self, now: TimeDelta) -> DataRate:
        end = self.finish_time.s if self.finish_time else now.s
        start = self.spec.start.s
        dur = max(end - start, 1e-12)
        return DataRate(self.delivered.bits / dur)


class _StreamState:
    """Congestion state of one TCP stream inside a flow."""

    __slots__ = ("cwnd", "ssthresh", "time_since_loss", "rtt_clock",
                 "loss_flag", "delivered_bits", "remaining_bits")

    def __init__(self, initial_cwnd: float, remaining_bits: Optional[float]):
        self.cwnd = initial_cwnd
        self.ssthresh = float("inf")
        self.time_since_loss = 0.0
        self.rtt_clock = 0.0
        self.loss_flag = False
        self.delivered_bits = 0.0
        self.remaining_bits = remaining_bits


class MultiFlowSimulation:
    """Run a set of :class:`FlowSpec` demands over a topology.

    Parameters
    ----------
    topology:
        The network.
    specs:
        Flow demands.  Labels must be unique and non-empty.
    rng:
        Required for stochastic loss; deterministic paths may omit it.
    algorithm:
        Congestion control shared by all flows, or a dict
        ``{label: algorithm}`` for per-flow choices.
    buffer_rtt_fraction:
        Virtual-queue depth per link, in units of that link's
        capacity x 100 ms (approximating "one WAN RTT of buffer").
    backend:
        ``"numpy"`` — vectorized struct-of-arrays tick loop;
        ``"python"`` — the scalar per-stream reference loop.  Both
        produce bit-identical results (see the module docstring).
        ``"fluid"`` — the approximate :mod:`repro.fluid` mean-field
        engine (flow-class population dynamics; scales to 100k+ flows).
        ``"hybrid"`` — dispatch on population: below ``switchover``
        total streams the exact kernels run (byte-for-byte identical to
        selecting them directly), at or above it the fluid engine does.
        None (default) resolves through
        :func:`repro.vectorize.default_backend`.
    switchover:
        Stream-population threshold for ``backend="hybrid"``; defaults
        to :data:`repro.fluid.DEFAULT_SWITCHOVER`.  Ignored by the
        other backends.
    """

    def __init__(
        self,
        topology: Topology,
        specs: Sequence[FlowSpec],
        *,
        rng: Optional[np.random.Generator] = None,
        algorithm=None,
        buffer_rtt_fraction: float = 1.0,
        initial_cwnd: float = 10.0,
        backend: Optional[str] = None,
        switchover: Optional[int] = None,
    ) -> None:
        if not specs:
            raise ConfigurationError("MultiFlowSimulation needs at least one flow")
        labels = [s.label or f"flow{i}" for i, s in enumerate(specs)]
        if len(set(labels)) != len(labels):
            raise ConfigurationError("flow labels must be unique")
        engine = resolve_engine(backend)
        if engine == "hybrid":
            from ..fluid.engine import DEFAULT_SWITCHOVER
            threshold = (DEFAULT_SWITCHOVER if switchover is None
                         else int(switchover))
            population = sum(s.parallel_streams for s in specs)
            # Below the threshold, fall to the *exact* tier — honoring a
            # scalar-reference default so hybrid stays bit-identical to
            # whichever exact backend the caller would otherwise get.
            engine = "fluid" if population >= threshold else exact_backend(None)
        self.backend = engine
        self.topology = topology
        self._rng = rng
        self._buffer_frac = buffer_rtt_fraction
        self._initial_cwnd = initial_cwnd

        self._labels = labels
        self._specs = list(specs)
        self._paths: List[Path] = []
        self._profiles: List[PathProfile] = []
        self._algos: List[CongestionControl] = []
        # Path lookups are cached per (src, dst, policy): a traffic
        # matrix carries O(sites^2) distinct pairs but may name 100k+
        # flows, and per-flow shortest-path work would dominate setup.
        # The link inventory is registered in first-encounter order, the
        # same order the uncached per-flow walk produced.
        path_cache: Dict[object, Tuple[Path, PathProfile, Tuple[int, ...]]] = {}
        link_ids: Dict[int, int] = {}
        self._links: List[Link] = []
        self._flow_links: List[Tuple[int, ...]] = []
        for label, spec in zip(labels, self._specs):
            try:
                key = (spec.src, spec.dst, tuple(sorted(spec.policy.items())))
                hash(key)
            except TypeError:
                key = (spec.src, spec.dst, repr(sorted(spec.policy.items())))
            cached = path_cache.get(key)
            if cached is None:
                path = topology.path(spec.src, spec.dst, **spec.policy)
                profile = topology.profile(path)
                for link in path.links:
                    if id(link) not in link_ids:
                        link_ids[id(link)] = len(self._links)
                        self._links.append(link)
                links = tuple(link_ids[id(link)] for link in path.links)
                cached = path_cache[key] = (path, profile, links)
            path, profile, links = cached
            self._paths.append(path)
            self._profiles.append(profile)
            self._flow_links.append(links)
            if isinstance(algorithm, dict):
                algo = algorithm.get(label, Reno())
            elif algorithm is None:
                algo = Reno()
            else:
                algo = algorithm
            if isinstance(algo, str):
                algo = algorithm_by_name(algo)
            self._algos.append(algo)
            if profile.random_loss > 0 and rng is None \
                    and self.backend != "fluid":
                raise ConfigurationError(
                    f"flow {label!r} crosses a lossy path; rng is required"
                )

        n_flows, n_links = len(specs), len(self._links)
        self._capacities = np.array([l.rate.bps for l in self._links])
        self._queues = np.zeros(n_links)
        self._buffers = self._capacities * 0.1 * buffer_rtt_fraction  # bits

        self.progress: Dict[str, FlowProgress] = {
            label: FlowProgress(spec=spec)
            for label, spec in zip(labels, self._specs)
        }
        if self.backend == "fluid":
            # The fluid engine keeps incidence and congestion state at
            # class granularity; the per-flow usage matrix, allocator and
            # stream objects would cost O(flows) for nothing.
            self._usage = None
            self._filler = None
            self._streams = []
            return
        self._usage = np.zeros((n_flows, n_links), dtype=bool)
        for f, links in enumerate(self._flow_links):
            self._usage[f, list(links)] = True
        self._filler = _ProgressiveFiller(self._usage, self._capacities)

        # One stream state per parallel stream of each flow.
        self._streams = []
        for spec in self._specs:
            per = spec.per_stream_size()
            self._streams.append([
                _StreamState(initial_cwnd, per.bits if per else None)
                for _ in range(spec.parallel_streams)
            ])

    # ---------------------------------------------------------------------------
    def run(
        self,
        *,
        until: Optional[TimeDelta] = None,
        max_ticks: int = 2_000_000,
        sample_interval: TimeDelta = seconds(1.0),
    ) -> Dict[str, FlowProgress]:
        """Advance until all sized flows finish (or ``until`` elapses)."""
        if until is None and all(s.size is None for s in self._specs):
            raise ConfigurationError(
                "all flows are unbounded; an explicit until= horizon is required"
            )
        rtts = np.array([max(p.base_rtt.s, 1e-6) for p in self._profiles])
        dt = float(min(rtts.min() / 2.0, 0.05))
        horizon = until.s if until is not None else float("inf")
        mss_bits = np.array([p.flow.mss.bits for p in self._profiles])
        rwnd_pkts = np.array([
            max(1.0, p.flow.effective_receive_window().bits / m)
            for p, m in zip(self._profiles, mss_bits)
        ])
        loss_p = np.array([p.random_loss for p in self._profiles])
        rate_caps = np.array([
            (s.rate_limit.bps if s.rate_limit else np.inf) for s in self._specs
        ])
        if self.backend == "fluid":
            now = self._run_fluid(
                until, max_ticks, sample_interval, rtts=rtts, dt=dt,
                horizon=horizon, mss_bits=mss_bits, rwnd_pkts=rwnd_pkts,
                loss_p=loss_p, rate_caps=rate_caps)
            self.finished_at = seconds(now)
            return self.progress
        if self.backend == "numpy":
            now = self._run_numpy(
                until, max_ticks, sample_interval, rtts=rtts, dt=dt,
                horizon=horizon, mss_bits=mss_bits, rwnd_pkts=rwnd_pkts,
                loss_p=loss_p, rate_caps=rate_caps)
        else:
            now = self._run_python(
                until, max_ticks, sample_interval, rtts=rtts, dt=dt,
                horizon=horizon, mss_bits=mss_bits, rwnd_pkts=rwnd_pkts,
                loss_p=loss_p, rate_caps=rate_caps)

        # A flow's delivered total is the sum of its streams' counters,
        # accumulated in stream order (both backends share this
        # association; `np.bincount` in the vectorized path accumulates
        # sequentially exactly like this loop).
        for label, streams in zip(self._labels, self._streams):
            prog = self.progress[label]
            prog.delivered = bits(sum(st.delivered_bits for st in streams))
        self.finished_at = seconds(now)
        return self.progress

    # -- mean-field loop --------------------------------------------------------
    def _run_fluid(
        self,
        until: Optional[TimeDelta],
        max_ticks: int,
        sample_interval: TimeDelta,
        *,
        rtts: np.ndarray,
        dt: float,
        horizon: float,
        mss_bits: np.ndarray,
        rwnd_pkts: np.ndarray,
        loss_p: np.ndarray,
        rate_caps: np.ndarray,
    ) -> float:
        """Delegate to the :mod:`repro.fluid` mean-field engine.

        One-shot (each call re-simulates from t=0) and approximate:
        delivered totals and finish times land in ``progress`` like the
        exact backends', but per-flow loss counts and time series are
        not produced — class-level aggregates live on ``fluid_result``.
        """
        from ..fluid import (DEFAULT_PHASE_SHARDS, FluidEngine,
                             build_flow_classes)
        classes = build_flow_classes(
            self._specs, self._flow_links, self._algos, rtts=rtts,
            mss_bits=mss_bits, rwnd_pkts=rwnd_pkts, loss_p=loss_p,
            rate_caps=rate_caps, n_shards=DEFAULT_PHASE_SHARDS)
        engine = FluidEngine(classes, self._capacities, self._buffers,
                             initial_cwnd=self._initial_cwnd, dt_s=dt,
                             deterministic_loss=self._rng is None)
        result = engine.run(horizon_s=horizon,
                            until_given=until is not None,
                            max_ticks=max_ticks,
                            sample_interval_s=sample_interval.s)
        self.fluid_result = result
        self._queues = result.queues_bits
        delivered, finish = result.delivered_bits, result.finish_s
        for f, label in enumerate(self._labels):
            prog = self.progress[label]
            if result.started[f]:
                prog.started = True
            prog.delivered = bits(float(delivered[f]))
            if np.isfinite(finish[f]):
                prog.finish_time = seconds(float(finish[f]))
        return result.now_s

    # -- scalar reference loop -------------------------------------------------
    def _run_python(
        self,
        until: Optional[TimeDelta],
        max_ticks: int,
        sample_interval: TimeDelta,
        *,
        rtts: np.ndarray,
        dt: float,
        horizon: float,
        mss_bits: np.ndarray,
        rwnd_pkts: np.ndarray,
        loss_p: np.ndarray,
        rate_caps: np.ndarray,
    ) -> float:
        now = 0.0
        next_sample = 0.0
        rng = self._rng
        n_flows = len(self._specs)

        for tick in range(max_ticks):
            if now >= horizon:
                break
            active_any = False
            demands = np.zeros(n_flows)
            for f, (spec, streams) in enumerate(zip(self._specs, self._streams)):
                prog = self.progress[self._labels[f]]
                if prog.done or now < spec.start.s:
                    continue
                prog.started = True
                active_any = True
                demand = sum(
                    min(st.cwnd, rwnd_pkts[f]) * mss_bits[f] / rtts[f]
                    for st in streams
                    if st.remaining_bits is None or st.remaining_bits > 0
                )
                demands[f] = min(demand, rate_caps[f])
            if not active_any:
                # Flows scheduled in the future? Jump the clock to the next
                # start rather than ending the simulation early.
                pending = [
                    spec.start.s
                    for label, spec in zip(self._labels, self._specs)
                    if not self.progress[label].done and spec.start.s > now
                ]
                if pending:
                    now = min(min(pending), horizon)
                    continue
                if until is None:
                    break
                now = min(horizon, now + dt)
                continue

            alloc = self._filler.allocate(demands, backend="python")

            overflowing = self._advance_queues(demands, dt)

            # Loss events: congestion overflow + random path loss.
            for f in range(n_flows):
                label = self._labels[f]
                prog = self.progress[label]
                if prog.done or demands[f] <= 0:
                    continue
                streams = self._streams[f]
                live = [st for st in streams
                        if st.remaining_bits is None or st.remaining_bits > 0]
                if not live:
                    continue
                rate_per_stream = alloc[f] / len(live)
                congested = bool((self._usage[f] & overflowing).any())
                for st in live:
                    got = rate_per_stream * dt
                    if st.remaining_bits is not None:
                        got = min(got, st.remaining_bits)
                        st.remaining_bits -= got
                    st.delivered_bits += got
                    if congested and rng is not None:
                        # Probability scaled by the flow's share of overload.
                        if rng.random() < min(1.0, dt / rtts[f]):
                            st.loss_flag = True
                    elif congested:
                        st.loss_flag = True
                    if loss_p[f] > 0:
                        pkts = got / mss_bits[f]
                        p_evt = 1.0 - pow_elementwise(1.0 - loss_p[f], pkts)
                        if rng.random() < p_evt:
                            st.loss_flag = True

                    # Per-RTT congestion-control update.
                    st.rtt_clock += dt
                    st.time_since_loss += dt
                    if st.rtt_clock >= rtts[f]:
                        st.rtt_clock = 0.0
                        algo = self._algos[f]
                        if st.loss_flag:
                            st.loss_flag = False
                            prog.loss_events += 1
                            # Reduce from what was actually in flight
                            # (RFC 2861), not an inflated cwnd.
                            inflight = min(st.cwnd, rwnd_pkts[f])
                            st.cwnd = float(algo.on_loss_batch(
                                np.array([inflight]),
                                np.array([rtts[f]]),
                                np.array([rtts[f]]))[0])
                            st.ssthresh = st.cwnd
                            st.time_since_loss = 0.0
                        elif st.cwnd < st.ssthresh:
                            st.cwnd = min(st.cwnd * algo.slow_start_factor,
                                          rwnd_pkts[f] * 1.25)
                        elif st.cwnd <= rwnd_pkts[f]:
                            grow = float(algo.increase_batch(
                                np.array([st.cwnd]),
                                np.array([st.time_since_loss]),
                                np.array([rtts[f]]))[0])
                            st.cwnd = min(st.cwnd + grow,
                                          rwnd_pkts[f] * 1.25)

                if all(st.remaining_bits is not None and st.remaining_bits <= 0
                       for st in streams):
                    prog.finish_time = seconds(now + dt)
                    # Final-tick sample: close the series at the finish
                    # time so the last partial interval is not silently
                    # extrapolated from the previous sample boundary.
                    if prog.started:
                        prog.time_series.append((now + dt, float(alloc[f])))

            now += dt
            if now >= next_sample:
                next_sample = now + sample_interval.s
                for f, label in enumerate(self._labels):
                    prog = self.progress[label]
                    if prog.started and not prog.done:
                        prog.time_series.append((now, float(alloc[f])))
        else:
            raise SimulationError(
                f"multi-flow simulation did not settle within {max_ticks} ticks"
            )
        return now

    # -- vectorized loop -------------------------------------------------------
    def _run_numpy(
        self,
        until: Optional[TimeDelta],
        max_ticks: int,
        sample_interval: TimeDelta,
        *,
        rtts: np.ndarray,
        dt: float,
        horizon: float,
        mss_bits: np.ndarray,
        rwnd_pkts: np.ndarray,
        loss_p: np.ndarray,
        rate_caps: np.ndarray,
    ) -> float:
        rng = self._rng
        has_rng = rng is not None
        n_flows = len(self._specs)
        usage = self._usage

        # Struct-of-arrays stream state, flow-major like self._streams.
        k = np.array([s.parallel_streams for s in self._specs], dtype=np.int64)
        flow_of = np.repeat(np.arange(n_flows, dtype=np.int64), k)
        n_streams = int(k.sum())
        flat = [st for streams in self._streams for st in streams]
        cwnd = np.array([st.cwnd for st in flat], dtype=np.float64)
        ssthresh = np.array([st.ssthresh for st in flat], dtype=np.float64)
        tsl = np.array([st.time_since_loss for st in flat], dtype=np.float64)
        rtt_clock = np.array([st.rtt_clock for st in flat], dtype=np.float64)
        loss_flag = np.array([st.loss_flag for st in flat], dtype=bool)
        delivered = np.array([st.delivered_bits for st in flat],
                             dtype=np.float64)
        bounded = np.array([st.remaining_bits is not None for st in flat],
                           dtype=bool)
        remaining = np.array([
            st.remaining_bits if st.remaining_bits is not None else np.inf
            for st in flat], dtype=np.float64)

        # Per-stream constants gathered once.
        mss_s = mss_bits[flow_of]
        rtt_s = rtts[flow_of]
        rwnd_s = rwnd_pkts[flow_of]
        rwnd_cap_s = rwnd_s * 1.25
        lossp_s = loss_p[flow_of]
        has_loss_s = lossp_s > 0.0
        cong_thresh_s = np.minimum(1.0, dt / rtt_s)

        # Per-flow bookkeeping mirrored from/into FlowProgress so repeated
        # run() calls resume exactly like the scalar backend.
        progresses = [self.progress[label] for label in self._labels]
        start_f = np.array([s.start.s for s in self._specs])
        done_f = np.array([p.done for p in progresses], dtype=bool)
        started_f = np.array([p.started for p in progresses], dtype=bool)
        loss_events_f = np.zeros(n_flows, dtype=np.int64)

        # Streams grouped by congestion-control *behaviour* for batch
        # updates.  Algorithms are stateless by contract, so instances of
        # the same class with equal attributes are interchangeable — the
        # common ``algorithm=None`` path builds one Reno() per flow, which
        # must collapse into a single group rather than one per flow.
        groups: List[Tuple[CongestionControl, np.ndarray]] = []
        seen: Dict[object, int] = {}
        for f, algo in enumerate(self._algos):
            try:
                key = (type(algo), tuple(sorted(vars(algo).items())))
            except TypeError:
                key = id(algo)
            if key not in seen:
                seen[key] = len(groups)
                groups.append((algo, np.zeros(n_streams, dtype=bool)))
            groups[seen[key]][1][flow_of == f] = True

        now = 0.0
        next_sample = 0.0
        sample_s = sample_interval.s
        allocate = self._filler._allocate_numpy
        any_loss = bool(has_loss_s.any())
        single_algo = groups[0][0] if len(groups) == 1 else None
        n_finished_prev = int(np.count_nonzero(remaining <= 0.0))

        # Per-tick numpy traffic is kept to full-array elementwise ops:
        # masked streams ride along with zero weights/deltas, which is
        # exact because every partial sum and running counter here is
        # non-negative, so `x + 0.0 == x` and `x - 0.0 == x` bitwise.
        for tick in range(max_ticks):
            if now >= horizon:
                break
            active_f = ~done_f & (start_f <= now)
            if not active_f.any():
                pending = ~done_f & (start_f > now)
                if pending.any():
                    now = min(float(start_f[pending].min()), horizon)
                    continue
                if until is None:
                    break
                now = min(horizon, now + dt)
                continue
            started_f |= active_f

            live = remaining > 0.0
            ps = live & active_f[flow_of]
            dem_w = np.where(ps, np.minimum(cwnd, rwnd_s) * mss_s / rtt_s, 0.0)
            raw = np.bincount(flow_of, weights=dem_w, minlength=n_flows)
            demands = np.where(active_f, np.minimum(raw, rate_caps), 0.0)

            alloc = allocate(demands)
            overflowing = self._advance_queues(demands, dt)

            # n_live is a small exact integer per flow; float bookkeeping
            # is lossless and the scalar loop's ``alloc / len(live)``
            # divides by the same value bit-for-bit.
            n_live = np.bincount(flow_of, weights=live, minlength=n_flows)
            proc_f = active_f & (demands > 0.0) & (n_live > 0.0)
            if proc_f.any():
                rate_ps = np.where(proc_f, alloc / np.maximum(n_live, 1.0),
                                   0.0)
                ps &= proc_f[flow_of]
                got = np.where(ps, rate_ps[flow_of] * dt, 0.0)
                np.minimum(got, remaining, out=got)
                remaining -= got
                delivered += got

                # Random draws, consumed in the scalar loop's order: flows
                # ascending, streams in flow order, the congestion draw
                # before the path-loss draw within a stream.  A single
                # Generator.random(n) call consumes the PCG64 stream
                # identically to n scalar calls.
                cong_draw = None
                if overflowing.any():
                    congested_f = (usage & overflowing[None, :]).any(axis=1)
                    cong_s = ps & congested_f[flow_of]
                    if has_rng:
                        cong_draw = cong_s
                    else:
                        loss_flag |= cong_s
                n_cong = (int(np.count_nonzero(cong_draw))
                          if cong_draw is not None else 0)
                loss_draw = (ps & has_loss_s) if any_loss else None
                n_loss = (int(np.count_nonzero(loss_draw))
                          if loss_draw is not None else 0)
                if n_cong and n_loss:
                    counts = cong_draw.astype(np.int64) + loss_draw
                    offsets = np.cumsum(counts) - counts
                    u = rng.random(n_cong + n_loss)
                    hit = u[offsets[cong_draw]] < cong_thresh_s[cong_draw]
                    loss_flag[np.nonzero(cong_draw)[0][hit]] = True
                    u_loss = u[offsets[loss_draw] + cong_draw[loss_draw]]
                    pkts = got[loss_draw] / mss_s[loss_draw]
                    p_evt = 1.0 - (1.0 - lossp_s[loss_draw]) ** pkts
                    hit = u_loss < p_evt
                    loss_flag[np.nonzero(loss_draw)[0][hit]] = True
                elif n_cong:
                    # Compressed draw order == stream order == scalar order.
                    hit = rng.random(n_cong) < cong_thresh_s[cong_draw]
                    loss_flag[np.nonzero(cong_draw)[0][hit]] = True
                elif n_loss:
                    pkts = got[loss_draw] / mss_s[loss_draw]
                    p_evt = 1.0 - (1.0 - lossp_s[loss_draw]) ** pkts
                    hit = rng.random(n_loss) < p_evt
                    loss_flag[np.nonzero(loss_draw)[0][hit]] = True

                # Per-RTT congestion-control updates, batched per algorithm.
                rtt_clock += ps * dt
                tsl += ps * dt
                upd = ps & (rtt_clock >= rtt_s)
                if upd.any():
                    rtt_clock[upd] = 0.0
                    lossy = upd & loss_flag
                    n_lossy = int(np.count_nonzero(lossy))
                    below = cwnd < ssthresh
                    if n_lossy:
                        grow = upd & ~lossy
                        ss = grow & below
                        ca = grow & ~below & (cwnd <= rwnd_s)
                        loss_flag[lossy] = False
                        loss_events_f += np.bincount(flow_of[lossy],
                                                     minlength=n_flows)
                        for algo, smask in groups:
                            sel = lossy & smask if len(groups) > 1 else lossy
                            if sel.any():
                                inflight = np.minimum(cwnd[sel], rwnd_s[sel])
                                new_cwnd = algo.on_loss_batch(
                                    inflight, rtt_s[sel], rtt_s[sel])
                                cwnd[sel] = new_cwnd
                                ssthresh[sel] = new_cwnd
                        tsl[lossy] = 0.0
                    else:
                        ss = upd & below
                        ca = upd & ~below & (cwnd <= rwnd_s)
                    if single_algo is not None:
                        # Full-array update: batch arithmetic is
                        # elementwise-consistent, so computing discarded
                        # lanes and selecting with np.where matches the
                        # gather/scatter form bit-for-bit.
                        algo = single_algo
                        cwnd = np.where(
                            ss,
                            np.minimum(cwnd * algo.slow_start_factor,
                                       rwnd_cap_s),
                            cwnd)
                        inc = algo.increase_batch(cwnd, tsl, rtt_s)
                        cwnd = np.where(
                            ca, np.minimum(cwnd + inc, rwnd_cap_s), cwnd)
                    else:
                        for algo, smask in groups:
                            sel = ss & smask
                            if sel.any():
                                cwnd[sel] = np.minimum(
                                    cwnd[sel] * algo.slow_start_factor,
                                    rwnd_cap_s[sel])
                            sel = ca & smask
                            if sel.any():
                                inc = algo.increase_batch(cwnd[sel], tsl[sel],
                                                          rtt_s[sel])
                                cwnd[sel] = np.minimum(cwnd[sel] + inc,
                                                       rwnd_cap_s[sel])

                fin = remaining <= 0.0
                n_finished = int(np.count_nonzero(fin))
                if n_finished != n_finished_prev:
                    n_finished_prev = n_finished
                    finished_streams = np.bincount(flow_of, weights=fin,
                                                   minlength=n_flows)
                    newly_done = proc_f & (finished_streams == k)
                    if newly_done.any():
                        done_f |= newly_done
                        for f in np.nonzero(newly_done)[0]:
                            prog = progresses[f]
                            prog.finish_time = seconds(now + dt)
                            # Final-tick sample (see _run_python).
                            prog.time_series.append((now + dt, float(alloc[f])))

            now += dt
            if now >= next_sample:
                next_sample = now + sample_s
                for f in np.nonzero(started_f & ~done_f)[0]:
                    progresses[f].time_series.append((now, float(alloc[f])))
        else:
            raise SimulationError(
                f"multi-flow simulation did not settle within {max_ticks} ticks"
            )

        # Mirror the struct-of-arrays state back into the object model.
        for i, st in enumerate(flat):
            st.cwnd = float(cwnd[i])
            st.ssthresh = float(ssthresh[i])
            st.time_since_loss = float(tsl[i])
            st.rtt_clock = float(rtt_clock[i])
            st.loss_flag = bool(loss_flag[i])
            st.delivered_bits = float(delivered[i])
            if bounded[i]:
                st.remaining_bits = float(remaining[i])
        for f, prog in enumerate(progresses):
            prog.started = bool(started_f[f] or prog.started)
            prog.loss_events += int(loss_events_f[f])
        return now

    def _advance_queues(self, demands: np.ndarray, dt: float) -> np.ndarray:
        """Advance the per-link virtual queues one tick; return the
        boolean overflow mask.  Shared verbatim by both backends.

        Growing links add ``overload * dt`` and draining links subtract
        it with a clamp at empty; since queues are non-negative, both
        branches are exactly ``max(0, q + overload * dt)``.
        """
        offered_per_link = (demands[:, None] * self._usage).sum(axis=0)
        overload = offered_per_link - self._capacities
        queues = np.maximum(0.0, self._queues + overload * dt)
        overflowing = queues > self._buffers
        self._queues = np.minimum(queues, self._buffers)
        return overflowing

    # -- conveniences ---------------------------------------------------------------
    def profile_of(self, label: str) -> PathProfile:
        try:
            return self._profiles[self._labels.index(label)]
        except ValueError:
            raise ConfigurationError(f"no flow labelled {label!r}") from None

    def aggregate_delivered(self) -> DataSize:
        return bits(sum(p.delivered.bits for p in self.progress.values()))

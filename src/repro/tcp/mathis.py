"""The Mathis TCP throughput model and window arithmetic.

The paper's Eq. 1 (Mathis, Semke, Mahdavi & Ott, 1997) bounds steady-state
TCP throughput under periodic loss:

.. math::

   \\text{rate} \\le \\frac{MSS}{RTT} \\cdot \\frac{C}{\\sqrt{p}}

where :math:`p` is the per-packet loss probability and :math:`C` a constant
of order one (:math:`\\sqrt{3/2}` for Reno with delayed-ACK disabled; the
paper's figure uses the plain :math:`C = 1` form, which we default to).

Eq. 2 is the bandwidth-delay-product window requirement: to fill a 1 Gbps
path at 10 ms RTT a sender needs a 1.25 MB window — 20x the unscaled 64 KB
maximum, which is how the Penn State firewall capped throughput near
50 Mbps.

All functions accept unit-safe quantities and offer vectorized variants for
figure generation.
"""

from __future__ import annotations

import math

import numpy as np

from ..errors import ConfigurationError
from ..units import DataRate, DataSize, TimeDelta

__all__ = [
    "MATHIS_CONSTANT_PAPER",
    "MATHIS_CONSTANT_RENO",
    "mathis_throughput",
    "mathis_throughput_array",
    "required_window",
    "window_limited_throughput",
    "loss_rate_for_throughput",
    "loss_free_throughput",
    "packets_per_second",
    "packets_lost_per_second",
]

#: The constant used by the paper's Figure 1 (plain Mathis form).
MATHIS_CONSTANT_PAPER = 1.0
#: The classical Reno derivation constant sqrt(3/2).
MATHIS_CONSTANT_RENO = math.sqrt(3.0 / 2.0)


def _validate_loss(loss_rate: float) -> float:
    if not 0.0 < loss_rate <= 1.0:
        raise ConfigurationError(
            f"Mathis model needs loss_rate in (0, 1], got {loss_rate}; "
            "use loss_free_throughput() for the p=0 case"
        )
    return float(loss_rate)


def mathis_throughput(
    mss: DataSize,
    rtt: TimeDelta,
    loss_rate: float,
    *,
    constant: float = MATHIS_CONSTANT_PAPER,
) -> DataRate:
    """Eq. 1: maximum TCP throughput under random loss.

    Examples
    --------
    >>> from repro.units import bytes_, ms
    >>> r = mathis_throughput(bytes_(8960), ms(50), 1/22000)
    >>> 200 < r.mbps < 230
    True
    """
    p = _validate_loss(loss_rate)
    if rtt.s <= 0:
        raise ConfigurationError("Mathis model needs a positive RTT")
    if mss.bits <= 0:
        raise ConfigurationError("Mathis model needs a positive MSS")
    return DataRate(constant * mss.bits / rtt.s / math.sqrt(p))


def mathis_throughput_array(
    mss: DataSize,
    rtt_seconds: np.ndarray,
    loss_rate: float,
    *,
    constant: float = MATHIS_CONSTANT_PAPER,
) -> np.ndarray:
    """Vectorized Eq. 1 over an array of RTTs — returns bps.

    RTT entries of zero map to ``inf`` (loss cannot bite at zero latency),
    matching the intuition of Figure 1's left edge.
    """
    p = _validate_loss(loss_rate)
    rtt_arr = np.asarray(rtt_seconds, dtype=np.float64)
    if np.any(rtt_arr < 0):
        raise ConfigurationError("RTTs must be non-negative")
    with np.errstate(divide="ignore"):
        return constant * mss.bits / rtt_arr / math.sqrt(p)


def required_window(rate: DataRate, rtt: TimeDelta) -> DataSize:
    """Eq. 2: the window (BDP) needed to sustain ``rate`` at ``rtt``.

    >>> from repro.units import Gbps, ms
    >>> required_window(Gbps(1), ms(10)).megabytes
    1.25
    """
    if rtt.s < 0:
        raise ConfigurationError("RTT must be non-negative")
    return rate.bdp(rtt)


def window_limited_throughput(window: DataSize, rtt: TimeDelta) -> DataRate:
    """Throughput ceiling imposed by a fixed window: ``window / RTT``.

    This is what clamped the Penn State hosts to ~50 Mbps: 64 KB / 10 ms.

    >>> from repro.units import KB, ms
    >>> round(window_limited_throughput(KB(64), ms(10)).mbps, 1)
    52.4
    """
    if rtt.s <= 0:
        raise ConfigurationError("RTT must be positive for a window limit")
    return DataRate(window.bits / rtt.s)


def loss_rate_for_throughput(
    target: DataRate,
    mss: DataSize,
    rtt: TimeDelta,
    *,
    constant: float = MATHIS_CONSTANT_PAPER,
) -> float:
    """Invert Eq. 1: the maximum tolerable loss rate for a target rate.

    Useful for engineering statements like "to run 10 Gbps across the
    country, loss must stay below X".
    """
    if target.bps <= 0:
        raise ConfigurationError("target rate must be positive")
    if rtt.s <= 0 or mss.bits <= 0:
        raise ConfigurationError("need positive RTT and MSS")
    p = (constant * mss.bits / rtt.s / target.bps) ** 2
    return min(1.0, p)


def loss_free_throughput(path_capacity: DataRate) -> DataRate:
    """The p=0 limit: TCP fills the pipe (Figure 1's topmost line)."""
    return path_capacity


def packets_per_second(rate: DataRate, frame_size: DataSize) -> float:
    """Frames per second at ``rate`` with ``frame_size`` frames.

    The paper's §2 example: a 10 Gbps line card at peak efficiency with
    regular-sized frames forwards 812,744 frames/s.  On the wire each
    1500-byte Ethernet frame carries 38 bytes of overhead (preamble, FCS,
    inter-frame gap), giving 10e9 / (1538 * 8) = 812,744.

    >>> from repro.units import Gbps, bytes_
    >>> round(packets_per_second(Gbps(10), bytes_(1538)))
    812744
    """
    if frame_size.bits <= 0:
        raise ConfigurationError("frame size must be positive")
    return rate.bps / frame_size.bits


def packets_lost_per_second(
    rate: DataRate, frame_size: DataSize, loss_rate: float
) -> float:
    """Packets lost per second at a given loss rate (the paper's "37/s")."""
    if not 0.0 <= loss_rate <= 1.0:
        raise ConfigurationError("loss_rate must be in [0, 1]")
    return packets_per_second(rate, frame_size) * loss_rate

"""TCP behaviour models.

Three layers, from analytic to dynamic:

* :mod:`repro.tcp.mathis` — the closed-form Mathis et al. throughput model
  (the paper's Eq. 1) and bandwidth-delay-product window math (Eq. 2).
* :mod:`repro.tcp.congestion` — pluggable congestion-control algorithms
  (Reno, H-TCP, CUBIC, plus an ideal loss-free reference).
* :mod:`repro.tcp.connection` — a per-RTT fluid window-dynamics simulator
  for a single connection over a :class:`~repro.netsim.topology.PathProfile`.
* :mod:`repro.tcp.simulate` — synchronized multi-flow simulation with
  bottleneck sharing and buffer-overflow loss.
"""

from .mathis import (
    mathis_throughput,
    required_window,
    window_limited_throughput,
    loss_rate_for_throughput,
    packets_per_second,
)
from .congestion import (
    CongestionControl,
    Reno,
    HTcp,
    Cubic,
    LossFreeIdeal,
    algorithm_by_name,
)
from .connection import TcpConnection, TransferResult, RoundSample
from .simulate import MultiFlowSimulation, FlowProgress

__all__ = [
    "mathis_throughput",
    "required_window",
    "window_limited_throughput",
    "loss_rate_for_throughput",
    "packets_per_second",
    "CongestionControl",
    "Reno",
    "HTcp",
    "Cubic",
    "LossFreeIdeal",
    "algorithm_by_name",
    "TcpConnection",
    "TransferResult",
    "RoundSample",
    "MultiFlowSimulation",
    "FlowProgress",
]

"""Fluid per-RTT TCP connection model.

The model advances one round-trip at a time.  Each round the sender offers
``min(cwnd, receive-window, pacing)`` segments; the path delivers up to its
bandwidth-delay product plus the bottleneck buffer; overshoot triggers a
congestion loss event, and independent per-packet random loss (failing line
cards, dirty optics — the soft failures of §3.3) triggers stochastic loss
events.  Congestion control reacts per :mod:`repro.tcp.congestion`.

This reproduces the dynamics the paper cares about:

* loss-free, well-buffered paths converge to the bottleneck (or receive
  window) limit — Figure 1's topmost line;
* tiny random loss collapses throughput with a 1/sqrt(p) RTT-dependent
  ceiling — the Mathis regime of Figure 1's lower curves;
* a 64 KB clamped window caps throughput at window/RTT — the Penn State
  firewall pathology (Eq. 2, Figure 8);
* recovery after loss takes many RTTs at high BDP, so the same loss rate
  hurts far more at 100 ms than at 1 ms — the "local users through the
  firewall are fine" observation of §3.4.

For very long transfers the model detects loss-free steady state and
fast-forwards analytically; with random loss it simulates up to
``max_rounds`` rounds and extrapolates from the trailing mean throughput
(flagged in the result).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from ..errors import ConfigurationError, SimulationError
from ..netsim.topology import PathProfile
from ..telemetry.tracer import NULL_TRACER, Tracer
from ..units import DataRate, DataSize, TimeDelta, bits, seconds
from .congestion import CongestionControl, Reno

__all__ = ["RoundSample", "TransferResult", "TcpConnection"]

#: Modern initial window (RFC 6928).
INITIAL_WINDOW_SEGMENTS = 10.0
#: Minimum retransmission timeout (RFC 6298 lower bound, Linux uses 200 ms;
#: we follow the RFC's conservative 1 s to make timeout pain visible).
MIN_RTO_SECONDS = 1.0


@dataclass(frozen=True)
class RoundSample:
    """One decimated sample of connection state."""

    time: float  # seconds since transfer start
    cwnd_segments: float
    throughput_bps: float


@dataclass
class TransferResult:
    """Outcome of a single-connection transfer or measurement.

    ``samples`` is decimated (stride doubles once 8192 samples accumulate)
    so even multi-million-round transfers stay small.
    """

    bytes_delivered: DataSize
    duration: TimeDelta
    rounds: int
    loss_events: int
    timeouts: int
    algorithm: str
    extrapolated: bool = False
    samples: List[RoundSample] = field(default_factory=list)

    @property
    def mean_throughput(self) -> DataRate:
        if self.duration.s <= 0:
            return DataRate(0.0)
        return DataRate(self.bytes_delivered.bits / self.duration.s)

    def sample_arrays(self) -> tuple:
        """(time_s, cwnd_segments, throughput_bps) as numpy arrays."""
        t = np.array([s.time for s in self.samples])
        w = np.array([s.cwnd_segments for s in self.samples])
        r = np.array([s.throughput_bps for s in self.samples])
        return t, w, r

    def summary(self) -> str:
        tail = " (extrapolated)" if self.extrapolated else ""
        return (
            f"{self.bytes_delivered.human()} in {self.duration.human()} "
            f"= {self.mean_throughput.human()} "
            f"[{self.algorithm}, {self.rounds} rounds, "
            f"{self.loss_events} losses, {self.timeouts} timeouts]{tail}"
        )


class TcpConnection:
    """A single TCP connection over a fixed path profile.

    Parameters
    ----------
    profile:
        End-to-end path characteristics from
        :meth:`repro.netsim.topology.Topology.profile`.
    algorithm:
        Congestion-control strategy (default Reno).
    rng:
        numpy Generator for stochastic loss draws.  Required whenever the
        path has non-zero random loss; deterministic runs may omit it.
    bottleneck_buffer:
        Queue depth at the bottleneck.  Defaults to one bandwidth-delay
        product — the provisioning the paper recommends for Science DMZ
        gear.  Shallow values reproduce cheap-switch behaviour.
    initial_cwnd:
        Initial window in segments (RFC 6928 default of 10).
    tracer:
        Optional :class:`~repro.telemetry.tracer.Tracer`.  When enabled
        the connection emits a span per transfer, an event per loss
        episode (congestion / random / timeout, with the window before
        and after) and decimated cwnd/throughput counter samples.
        Event stamps are seconds since transfer start plus
        ``trace_offset`` (pass the simulation time at which the
        transfer began to anchor events in a shared timeline).
    """

    def __init__(
        self,
        profile: PathProfile,
        *,
        algorithm: Optional[CongestionControl] = None,
        rng: Optional[np.random.Generator] = None,
        bottleneck_buffer: Optional[DataSize] = None,
        initial_cwnd: float = INITIAL_WINDOW_SEGMENTS,
        tracer: Optional[Tracer] = None,
        trace_offset: float = 0.0,
    ) -> None:
        self.profile = profile
        self.algorithm = algorithm if algorithm is not None else Reno()
        self._rng = rng
        self._tracer = tracer if tracer is not None else NULL_TRACER
        self._trace_t0 = float(trace_offset)
        if profile.random_loss > 0 and rng is None:
            raise ConfigurationError(
                "path has random loss; TcpConnection requires an rng "
                "(use Simulator.rng('tcp') or numpy.random.default_rng(seed))"
            )

        self.mss_bits = profile.flow.mss.bits
        if self.mss_bits <= 0:
            raise ConfigurationError("profile MSS must be positive")
        self.base_rtt = max(profile.base_rtt.s, 1e-6)
        self.capacity_bps = profile.capacity.bps
        self.loss_p = float(profile.random_loss)

        rwnd_bits = profile.flow.effective_receive_window().bits
        self.rwnd_segments = max(1.0, rwnd_bits / self.mss_bits)

        self.bdp_segments = max(
            1.0, self.capacity_bps * self.base_rtt / self.mss_bits
        )
        if bottleneck_buffer is None:
            bottleneck_buffer = profile.bottleneck_buffer
        if bottleneck_buffer is None:
            # Well-provisioned bottleneck: one BDP of queue (the paper's
            # recommendation for Science DMZ gear).
            self.buffer_segments = self.bdp_segments
        else:
            self.buffer_segments = max(0.0, bottleneck_buffer.bits / self.mss_bits)

        rate_limit = profile.flow.sender_rate_limit
        self.rate_limit_bps = rate_limit.bps if rate_limit is not None else None

        if initial_cwnd < 1:
            raise ConfigurationError("initial_cwnd must be >= 1 segment")
        self.initial_cwnd = float(initial_cwnd)

    # -- public API ---------------------------------------------------------------
    def transfer(
        self,
        size: DataSize,
        *,
        max_rounds: int = 2_000_000,
    ) -> TransferResult:
        """Move ``size`` bytes; returns the transfer outcome."""
        if size.bits <= 0:
            raise ConfigurationError("transfer size must be positive")
        return self._run(target_bits=size.bits, duration_s=None,
                         max_rounds=max_rounds)

    def measure(
        self,
        duration: TimeDelta,
        *,
        max_rounds: int = 2_000_000,
    ) -> TransferResult:
        """Run an unbounded flow for ``duration`` (a BWCTL-style test)."""
        if duration.s <= 0:
            raise ConfigurationError("measurement duration must be positive")
        return self._run(target_bits=None, duration_s=duration.s,
                         max_rounds=max_rounds)

    def steady_state_throughput(self) -> DataRate:
        """Analytic steady-state estimate (no simulation).

        Loss-free: min(capacity, window/RTT).  With loss: the Mathis bound,
        additionally clamped by the window and capacity limits.
        """
        window_cap = self.rwnd_segments * self.mss_bits / self.base_rtt
        caps = [self.capacity_bps, window_cap]
        if self.rate_limit_bps is not None:
            caps.append(self.rate_limit_bps)
        ceiling = min(caps)
        if self.loss_p <= 0:
            return DataRate(ceiling)
        mathis = self.mss_bits / self.base_rtt / math.sqrt(self.loss_p)
        return DataRate(min(ceiling, mathis))

    # -- engine ---------------------------------------------------------------------
    def _run(
        self,
        *,
        target_bits: Optional[float],
        duration_s: Optional[float],
        max_rounds: int,
    ) -> TransferResult:
        if max_rounds < 1:
            raise ConfigurationError("max_rounds must be >= 1")

        cwnd = min(self.initial_cwnd, self.rwnd_segments)
        ssthresh = float("inf")
        time_since_loss = 0.0
        elapsed = 0.0
        delivered_bits = 0.0
        loss_events = 0
        timeouts = 0
        rounds = 0
        extrapolated = False

        samples: List[RoundSample] = []
        stride = 1
        since_sample = 0

        # Steady-state fast-forward bookkeeping (loss-free paths only).
        steady_rounds = 0
        prev_rate = -1.0

        mss = self.mss_bits
        bdp = self.bdp_segments
        buf = self.buffer_segments
        p = self.loss_p
        rng = self._rng
        log1mp = math.log1p(-p) if 0 < p < 1 else 0.0

        tracer = self._tracer
        trace_on = tracer.enabled  # hoisted: one branch per use in the loop
        t0 = self._trace_t0
        if trace_on:
            tracer.event(
                "tcp", "transfer", t=t0, phase="B",
                target_bits=target_bits, duration_s=duration_s,
                capacity_bps=self.capacity_bps, base_rtt_s=self.base_rtt,
                loss_p=p, rwnd_segments=self.rwnd_segments,
                **self.algorithm.trace_attrs(),
            )

        while True:
            if target_bits is not None and delivered_bits >= target_bits:
                break
            if duration_s is not None and elapsed >= duration_s:
                break
            if rounds >= max_rounds:
                extrapolated = target_bits is not None
                break

            # --- sender's offered window this round -------------------------------
            w_target = min(cwnd, self.rwnd_segments)
            if self.rate_limit_bps is not None:
                pace = self.rate_limit_bps * self.base_rtt / mss
                w_target = min(w_target, max(1.0, pace))

            # --- bottleneck: queue growth and overflow -----------------------------
            congestion_loss = False
            if w_target > bdp:
                queue = w_target - bdp
                if queue > buf:
                    congestion_loss = True
                    queue = buf
            else:
                queue = 0.0
            # Round duration: base RTT inflated by standing-queue delay.
            rtt_eff = self.base_rtt + queue * mss / self.capacity_bps
            delivered_this_round = min(w_target, bdp + queue)

            # --- random loss -----------------------------------------------------------
            random_loss = False
            if p > 0 and delivered_this_round > 0:
                # P[at least one loss among delivered packets]
                p_round = 1.0 - math.exp(log1mp * delivered_this_round)
                if rng.random() < p_round:
                    random_loss = True

            if target_bits is not None:
                remaining = target_bits - delivered_bits
                delivered_bits += min(delivered_this_round * mss, remaining)
            else:
                delivered_bits += delivered_this_round * mss
            elapsed += rtt_eff
            rounds += 1
            time_since_loss += rtt_eff

            # --- decimated sampling ------------------------------------------------------
            since_sample += 1
            if since_sample >= stride:
                since_sample = 0
                samples.append(RoundSample(
                    time=elapsed,
                    cwnd_segments=cwnd,
                    throughput_bps=delivered_this_round * mss / rtt_eff,
                ))
                if trace_on:
                    # Counter tracks, decimated in lockstep with samples.
                    tracer.sample("cwnd_segments", cwnd, t=t0 + elapsed,
                                  category="tcp")
                    tracer.sample("throughput_bps",
                                  delivered_this_round * mss / rtt_eff,
                                  t=t0 + elapsed, category="tcp")
                if len(samples) >= 8192:
                    samples = samples[::2]
                    stride *= 2

            # --- window evolution ---------------------------------------------------------
            if congestion_loss or random_loss:
                loss_events += 1
                # The window that was actually in flight is what the loss
                # reduces (RFC 2861: cwnd must not be inflated beyond what
                # the connection has been sending).
                inflight = min(cwnd, w_target)
                if inflight < 4.0 and random_loss:
                    # Too few duplicate ACKs to fast-retransmit: timeout.
                    timeouts += 1
                    rto = max(MIN_RTO_SECONDS, 2.0 * rtt_eff)
                    elapsed += rto
                    ssthresh = max(2.0, inflight / 2.0)
                    cwnd = 1.0
                    if trace_on:
                        tracer.event("tcp", "loss", t=t0 + elapsed,
                                     kind="timeout", rto_s=rto,
                                     cwnd_before=inflight, cwnd_after=cwnd)
                        tracer.counter("timeouts", component="tcp").inc()
                else:
                    cwnd = self.algorithm.on_loss(
                        inflight, self.base_rtt, rtt_eff
                    )
                    ssthresh = cwnd
                    if trace_on:
                        tracer.event(
                            "tcp", "loss", t=t0 + elapsed,
                            kind="congestion" if congestion_loss else "random",
                            cwnd_before=inflight, cwnd_after=cwnd)
                if trace_on:
                    tracer.counter("loss_events", component="tcp").inc()
                time_since_loss = 0.0
                steady_rounds = 0
            else:
                # Congestion-window validation: when the flow is receive-
                # window or pacing limited (w_target < cwnd), cwnd is not
                # grown further — there are no ACKs beyond w_target to
                # clock it (RFC 2861).
                if cwnd <= w_target + 1e-9:
                    if cwnd < ssthresh:
                        cwnd = min(
                            cwnd * self.algorithm.slow_start_factor, ssthresh
                            if ssthresh != float("inf") else cwnd * 2.0,
                        )
                        if ssthresh == float("inf"):
                            cwnd = min(cwnd, 2.0 * (bdp + buf))
                    else:
                        cwnd += self.algorithm.increase(
                            cwnd, time_since_loss, rtt_eff
                        )
                    cwnd = min(cwnd, 2.0 * (bdp + buf) + self.rwnd_segments)

            # --- loss-free steady-state fast-forward --------------------------------
            # Once the delivered *rate* is stable (window-capped, pacing-
            # capped, or capacity-filling sawtooth) the rest of the transfer
            # is linear in time; skip ahead analytically.
            if p == 0 and target_bits is not None:
                rate = delivered_this_round * mss / rtt_eff
                if prev_rate > 0 and abs(rate - prev_rate) <= 1e-9 * prev_rate:
                    steady_rounds += 1
                else:
                    steady_rounds = 0
                prev_rate = rate
                if steady_rounds >= 3 and rate > 0:
                    remaining = target_bits - delivered_bits
                    if remaining > 0:
                        extra_rounds = remaining / (delivered_this_round * mss)
                        elapsed += remaining / rate
                        rounds += int(math.ceil(extra_rounds))
                        delivered_bits = target_bits
                    break

        # --- extrapolate an unfinished lossy transfer -------------------------------------
        if extrapolated and target_bits is not None:
            if delivered_bits <= 0 or elapsed <= 0:
                raise SimulationError(
                    "transfer made no progress within max_rounds; "
                    "path is effectively unusable"
                )
            rate = delivered_bits / elapsed
            remaining = target_bits - delivered_bits
            elapsed += remaining / rate
            delivered_bits = target_bits

        if trace_on:
            tracer.counter("rounds", component="tcp").inc(rounds)
            tracer.event("tcp", "transfer", t=t0 + elapsed, phase="E")
            tracer.event("tcp", "transfer-done", t=t0 + elapsed,
                         delivered_bits=delivered_bits, duration_s=elapsed,
                         rounds=rounds, loss_events=loss_events,
                         timeouts=timeouts, extrapolated=extrapolated)

        return TransferResult(
            bytes_delivered=bits(delivered_bits),
            duration=seconds(elapsed),
            rounds=rounds,
            loss_events=loss_events,
            timeouts=timeouts,
            algorithm=self.algorithm.name,
            extrapolated=extrapolated,
            samples=samples,
        )

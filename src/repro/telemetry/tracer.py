"""Structured event tracing for the simulation stack.

The paper's operational argument (§5, §6.4) is that soft failures are
invisible without continuous measurement; the same is true of the
simulator itself.  :class:`Tracer` is the library's single emission
point for structured events: every instrumented component (the event
engine, TCP connections, firewalls, fault injectors, the perfSONAR
mesh, transfer plans) writes :class:`TraceEvent` records through it.

Design constraints, in order:

1. **Zero overhead when off.**  The default everywhere is the shared
   :data:`NULL_TRACER`, whose ``enabled`` flag is False; hot loops hoist
   that flag into a local and skip all emission with one branch.
2. **Determinism.**  Events are stamped with *simulation* time and a
   strictly increasing sequence number.  Wall-clock stamps are opt-in
   (pass ``wall_clock=time.perf_counter``) precisely because they would
   break the byte-identical-log guarantee the benchmarks rely on.
3. **Bounded memory.**  Storage is a :class:`~repro.telemetry.recorder.
   FlightRecorder`; by default a tracer keeps everything (exports need
   the full log), but long-running scenarios can cap it and still dump
   the tail of history on failure.

>>> tracer = Tracer()
>>> tracer.event("demo", "hello", t=1.5, answer=42).name
'hello'
>>> with tracer.span("demo", "work", t=2.0):
...     tracer.counter("steps", component="demo").inc()
>>> [e.phase for e in tracer.events()]
['I', 'B', 'E']
"""

from __future__ import annotations

import itertools
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Optional

from ..errors import TelemetryError
from .metrics import Counter, Gauge, Histogram, MetricsRegistry, NULL_METRIC
from .recorder import FlightRecorder

__all__ = ["TraceEvent", "Tracer", "NullTracer", "NULL_TRACER",
           "ensure_tracer"]

#: Trace-event phases (a subset of the Chrome trace_event vocabulary):
#: "I" instant, "B" span begin, "E" span end, "C" counter sample.
PHASES = ("I", "B", "E", "C")


@dataclass(slots=True)
class TraceEvent:
    """One structured event.

    Attributes
    ----------
    seq:
        Strictly increasing emission order (the determinism tie-breaker).
    t:
        Simulation time in seconds.
    phase:
        "I" (instant), "B"/"E" (span begin/end) or "C" (counter sample).
    category:
        Coarse component label ("engine", "tcp", "perfsonar", ...).
        Exporters group events into per-category lanes.
    name:
        What happened ("dispatch", "loss", "owamp", ...).
    attrs:
        Key/value payload.  Values should be JSON-representable;
        exporters coerce anything else with ``str()``.
    wall:
        Optional wall-clock stamp (seconds, opaque epoch).  ``None``
        unless the tracer was built with a ``wall_clock`` — kept out of
        the default path so logs stay byte-identical across runs.
    """

    seq: int
    t: float
    phase: str
    category: str
    name: str
    attrs: Dict[str, object] = field(default_factory=dict)
    wall: Optional[float] = None

    def describe(self) -> str:
        """One-line rendering used by the text timeline."""
        kv = " ".join(f"{k}={_short(v)}" for k, v in self.attrs.items())
        body = f"{self.phase} {self.category}/{self.name}"
        return f"t={self.t:14.6f}  {body}" + (f"  {kv}" if kv else "")


def _short(value: object) -> str:
    if isinstance(value, float):
        return f"{value:g}"
    return str(value)


class Tracer:
    """Collects structured events, spans and metrics from the simulator.

    Parameters
    ----------
    capacity:
        Flight-recorder bound.  ``None`` (default) retains every event —
        right for exports; pass an int to keep only the last N for
        long-running scenarios where the tail is what matters.
    clock:
        Zero-argument callable returning current *simulation* time.
        Components that own a clock (the event engine) bind it via
        :meth:`bind_clock`; explicit ``t=`` always wins.
    wall_clock:
        Optional zero-argument wall-time source (e.g.
        ``time.perf_counter``).  Off by default for determinism.
    """

    #: Hot loops test this once and skip emission entirely when False.
    enabled: bool = True

    def __init__(
        self,
        *,
        capacity: Optional[int] = None,
        clock: Optional[Callable[[], float]] = None,
        wall_clock: Optional[Callable[[], float]] = None,
    ) -> None:
        self.recorder = FlightRecorder(capacity)
        self.metrics = MetricsRegistry()
        self._clock = clock
        self._wall = wall_clock
        self._seq = itertools.count()

    # -- clock ----------------------------------------------------------------
    def bind_clock(self, clock: Callable[[], float]) -> None:
        """Adopt a simulation-time source (the engine calls this)."""
        if not callable(clock):
            raise TelemetryError("tracer clock must be callable")
        self._clock = clock

    def now(self) -> float:
        """Current simulation time as the tracer sees it (0.0 unbound)."""
        return self._clock() if self._clock is not None else 0.0

    # -- emission -------------------------------------------------------------
    def event(
        self,
        category: str,
        name: str,
        *,
        t: Optional[float] = None,
        phase: str = "I",
        **attrs: object,
    ) -> TraceEvent:
        """Emit one event; returns it (callers normally ignore that)."""
        if phase not in PHASES:
            raise TelemetryError(
                f"unknown trace phase {phase!r}; expected one of {PHASES}")
        ev = TraceEvent(
            seq=next(self._seq),
            t=self.now() if t is None else float(t),
            phase=phase,
            category=category,
            name=name,
            attrs=attrs,
            wall=self._wall() if self._wall is not None else None,
        )
        self.recorder.append(ev)
        return ev

    @contextmanager
    def span(
        self,
        category: str,
        name: str,
        *,
        t: Optional[float] = None,
        **attrs: object,
    ) -> Iterator["Tracer"]:
        """Context manager emitting a begin/end pair around a block.

        The end stamp comes from the bound clock, so spans measure
        simulation time elapsed inside the block (both stamps equal
        when time does not advance, as in one dispatch).
        """
        begin = self.event(category, name, t=t, phase="B", **attrs)
        try:
            yield self
        finally:
            # A span can never end before it began; clamps the case of
            # an explicit begin stamp with no bound clock.
            self.event(category, name, t=max(begin.t, self.now()), phase="E")

    def span_at(
        self,
        category: str,
        name: str,
        t0: float,
        t1: float,
        **attrs: object,
    ) -> None:
        """Emit a begin/end pair with explicit stamps (retrospective
        spans: a finished file transfer, a completed job)."""
        if t1 < t0:
            raise TelemetryError(f"span ends before it starts ({t1} < {t0})")
        self.event(category, name, t=t0, phase="B", **attrs)
        self.event(category, name, t=t1, phase="E")

    def sample(self, name: str, value: float, *,
               t: Optional[float] = None, category: str = "metric") -> None:
        """Emit a counter sample ("C") — a point on a value-over-time
        track in the Chrome trace view (buffer occupancy, cwnd, ...)."""
        self.event(category, name, t=t, phase="C", value=float(value))

    # -- metrics --------------------------------------------------------------
    def counter(self, name: str, *, component: str = "") -> Counter:
        """Get or create a per-component monotonic counter."""
        return self.metrics.counter(name, component=component)

    def gauge(self, name: str, *, component: str = "") -> Gauge:
        return self.metrics.gauge(name, component=component)

    def histogram(self, name: str, *, component: str = "") -> Histogram:
        return self.metrics.histogram(name, component=component)

    # -- access ---------------------------------------------------------------
    def events(self) -> List[TraceEvent]:
        """All retained events, in emission order."""
        return self.recorder.events()

    def __len__(self) -> int:
        return len(self.recorder)

    def __bool__(self) -> bool:
        # Without this, an *empty* tracer would be falsy via __len__ and
        # `tracer or NULL_TRACER` fallbacks would silently discard it.
        return True

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"{type(self).__name__}({len(self.recorder)} events, "
                f"{len(self.metrics)} metrics)")


class _NullSpan:
    """Reusable no-op context manager."""

    __slots__ = ()

    def __enter__(self) -> "NullTracer":
        return NULL_TRACER

    def __exit__(self, *exc: object) -> None:
        return None


_NULL_SPAN = _NullSpan()


class NullTracer(Tracer):
    """The do-nothing tracer: the default everywhere.

    Every method is a no-op; ``enabled`` is False so instrumented hot
    loops skip emission with a single branch.  One shared instance
    (:data:`NULL_TRACER`) serves the whole process — it holds no state.
    """

    enabled = False

    def __init__(self) -> None:
        super().__init__(capacity=0)

    def bind_clock(self, clock: Callable[[], float]) -> None:
        return None

    def event(self, category: str, name: str, *, t: Optional[float] = None,
              phase: str = "I", **attrs: object) -> Optional[TraceEvent]:
        return None

    def span(self, category: str, name: str, *, t: Optional[float] = None,
             **attrs: object) -> _NullSpan:
        return _NULL_SPAN

    def span_at(self, category: str, name: str, t0: float, t1: float,
                **attrs: object) -> None:
        return None

    def sample(self, name: str, value: float, *, t: Optional[float] = None,
               category: str = "metric") -> None:
        return None

    def counter(self, name: str, *, component: str = ""):
        return NULL_METRIC

    def gauge(self, name: str, *, component: str = ""):
        return NULL_METRIC

    def histogram(self, name: str, *, component: str = ""):
        return NULL_METRIC


#: Shared process-wide no-op tracer; use as the default for every
#: ``tracer`` parameter instead of allocating per call site.
NULL_TRACER = NullTracer()


def ensure_tracer(trace: object) -> Tracer:
    """Normalize a user-facing ``trace`` argument into a tracer.

    ``None``/``False`` → :data:`NULL_TRACER`; ``True`` → a fresh
    :class:`Tracer`; a :class:`Tracer` instance passes through.
    """
    if trace is None or trace is False:
        return NULL_TRACER
    if trace is True:
        return Tracer()
    if isinstance(trace, Tracer):
        return trace
    raise TelemetryError(
        f"trace must be a bool, None or a Tracer, got {type(trace).__name__}")

"""Attach a tracer to everything in a topology that can emit.

Devices opt in to telemetry by exposing a ``tracer`` attribute
(:class:`~repro.devices.firewall.Firewall`,
:class:`~repro.devices.ids.IntrusionDetectionSystem`).  This helper
walks a topology — nodes and their attached transit elements — and
points every such slot at one shared tracer, so a whole design is
instrumented with one call.  Duck-typed on purpose: the telemetry
layer stays import-free of the device zoo.
"""

from __future__ import annotations

from .tracer import Tracer

__all__ = ["instrument_topology"]


def instrument_topology(topology, tracer: Tracer) -> int:
    """Set ``obj.tracer = tracer`` on every node/element that has the
    slot; returns how many objects were instrumented."""
    count = 0
    for node in topology.nodes():
        for obj in (node, *getattr(node, "elements", ())):
            if hasattr(obj, "tracer"):
                obj.tracer = tracer
                count += 1
    return count

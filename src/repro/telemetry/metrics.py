"""Aggregated metric primitives: counters, gauges, histograms.

Trace events answer "what happened, when"; metrics answer "how much,
in total".  A :class:`MetricsRegistry` keys every instrument by
``(component, name)`` so the same metric name can exist per component
("tcp" loss events vs "firewall" loss events) and renders a
deterministic summary table.

The instruments are deliberately tiny — a float and a few bookkeeping
fields — because instrumented hot loops increment them per event.  The
histogram keeps moments plus power-of-two magnitude buckets rather
than raw samples, so memory stays O(1) per instrument.
"""

from __future__ import annotations

import math
from typing import Dict, Iterator, List, Optional, Tuple

from ..errors import TelemetryError

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry",
           "NULL_METRIC"]


class Counter:
    """Monotonically increasing count."""

    __slots__ = ("name", "component", "value")

    kind = "counter"

    def __init__(self, name: str, component: str = "") -> None:
        self.name = name
        self.component = component
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise TelemetryError(
                f"counter {self.name!r} cannot decrease (inc {amount})")
        self.value += amount

    def as_dict(self) -> Dict[str, object]:
        return {"kind": self.kind, "value": self.value}

    def describe(self) -> str:
        return f"{self.value:g}"


class Gauge:
    """Last-observed value (buffer occupancy, active flows, ...)."""

    __slots__ = ("name", "component", "value", "updates")

    kind = "gauge"

    def __init__(self, name: str, component: str = "") -> None:
        self.name = name
        self.component = component
        self.value: Optional[float] = None
        self.updates = 0

    def set(self, value: float) -> None:
        self.value = float(value)
        self.updates += 1

    def as_dict(self) -> Dict[str, object]:
        return {"kind": self.kind, "value": self.value,
                "updates": self.updates}

    def describe(self) -> str:
        if self.value is None:
            return "unset"
        return f"{self.value:g} ({self.updates} updates)"


class Histogram:
    """Streaming distribution summary.

    Keeps count/sum/min/max plus counts per power-of-two magnitude
    bucket (bucket *k* holds values in ``[2^k, 2^(k+1))``; zeros and
    negatives land in dedicated buckets).  Enough to render a shape and
    compute a mean without retaining samples.
    """

    __slots__ = ("name", "component", "count", "total", "vmin", "vmax",
                 "buckets")

    kind = "histogram"

    def __init__(self, name: str, component: str = "") -> None:
        self.name = name
        self.component = component
        self.count = 0
        self.total = 0.0
        self.vmin = math.inf
        self.vmax = -math.inf
        self.buckets: Dict[int, int] = {}

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        if value < self.vmin:
            self.vmin = value
        if value > self.vmax:
            self.vmax = value
        if value > 0:
            bucket = math.frexp(value)[1] - 1  # floor(log2(value))
        elif value == 0:
            bucket = -(10 ** 6)
        else:
            bucket = -(10 ** 6) - 1
        self.buckets[bucket] = self.buckets.get(bucket, 0) + 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def as_dict(self) -> Dict[str, object]:
        return {
            "kind": self.kind,
            "count": self.count,
            "sum": self.total,
            "min": self.vmin if self.count else None,
            "max": self.vmax if self.count else None,
            "mean": self.mean,
            "buckets": {str(k): v for k, v in sorted(self.buckets.items())},
        }

    def describe(self) -> str:
        if not self.count:
            return "empty"
        return (f"n={self.count} mean={self.mean:g} "
                f"min={self.vmin:g} max={self.vmax:g}")


class _NullMetric:
    """Accepts every instrument operation and does nothing.

    Returned by :class:`~repro.telemetry.tracer.NullTracer` so call
    sites never branch on tracer type.
    """

    __slots__ = ()

    value = 0.0
    count = 0

    def inc(self, amount: float = 1.0) -> None:
        return None

    def set(self, value: float) -> None:
        return None

    def observe(self, value: float) -> None:
        return None


NULL_METRIC = _NullMetric()

_KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class MetricsRegistry:
    """Get-or-create store of instruments keyed by (component, name)."""

    def __init__(self) -> None:
        self._metrics: Dict[Tuple[str, str], object] = {}

    def _get(self, kind: str, name: str, component: str):
        if not name:
            raise TelemetryError("metric needs a non-empty name")
        key = (component, name)
        existing = self._metrics.get(key)
        if existing is not None:
            if existing.kind != kind:
                raise TelemetryError(
                    f"metric {component}/{name} already registered as "
                    f"{existing.kind}, requested {kind}")
            return existing
        metric = _KINDS[kind](name, component)
        self._metrics[key] = metric
        return metric

    def counter(self, name: str, *, component: str = "") -> Counter:
        return self._get("counter", name, component)

    def gauge(self, name: str, *, component: str = "") -> Gauge:
        return self._get("gauge", name, component)

    def histogram(self, name: str, *, component: str = "") -> Histogram:
        return self._get("histogram", name, component)

    # -- reading --------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._metrics)

    def __iter__(self) -> Iterator:
        for key in sorted(self._metrics):
            yield self._metrics[key]

    def get(self, name: str, *, component: str = ""):
        """Look up an instrument; None if it was never created."""
        return self._metrics.get((component, name))

    def as_dict(self) -> Dict[str, Dict[str, object]]:
        """Deterministic nested mapping: ``component/name`` -> summary."""
        out: Dict[str, Dict[str, object]] = {}
        for (component, name) in sorted(self._metrics):
            metric = self._metrics[(component, name)]
            label = f"{component}/{name}" if component else name
            out[label] = metric.as_dict()
        return out

    def render_text(self) -> str:
        """Aligned per-component summary table."""
        if not self._metrics:
            return "no metrics recorded"
        rows: List[Tuple[str, str, str]] = []
        for (component, name) in sorted(self._metrics):
            metric = self._metrics[(component, name)]
            rows.append((component or "-", f"{name} ({metric.kind})",
                         metric.describe()))
        w0 = max(len(r[0]) for r in rows)
        w1 = max(len(r[1]) for r in rows)
        lines = [f"{c:<{w0}}  {n:<{w1}}  {v}" for c, n, v in rows]
        return "\n".join(lines)

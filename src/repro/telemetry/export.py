"""Trace exporters: JSONL, text timeline, Chrome ``trace_event`` JSON.

Three consumers, three formats:

* **JSONL** — one JSON object per line, sorted keys, no whitespace:
  the machine-diffable archival format.  Byte-identical across runs
  with the same seed (provided the tracer has no wall clock).
* **Text timeline** — the human `tail -f` view; this is what flight
  recorder dumps and the ``repro trace`` console output use.
* **Chrome trace_event** — the profiling view: load the file in
  ``chrome://tracing`` or https://ui.perfetto.dev and see per-category
  lanes of spans, instants and counter tracks over simulation time.
  Format reference: the "Trace Event Format" document (Google).
"""

from __future__ import annotations

import json
import pathlib
from typing import Dict, Iterable, List, Optional

__all__ = [
    "event_to_dict",
    "to_jsonl",
    "write_jsonl",
    "render_timeline",
    "to_chrome_trace",
    "write_chrome_trace",
]

_JSON_SCALARS = (str, int, float, bool, type(None))


def _json_safe(value: object) -> object:
    """Coerce attribute values to something JSON-serializable."""
    if isinstance(value, _JSON_SCALARS):
        return value
    if isinstance(value, dict):
        return {str(k): _json_safe(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_json_safe(v) for v in value]
    human = getattr(value, "human", None)
    if callable(human):
        return human()
    return str(value)


def event_to_dict(event) -> Dict[str, object]:
    """Flatten one TraceEvent into a JSON-ready mapping."""
    data: Dict[str, object] = {
        "seq": event.seq,
        "t": event.t,
        "ph": event.phase,
        "cat": event.category,
        "name": event.name,
        "args": {str(k): _json_safe(v) for k, v in event.attrs.items()},
    }
    if event.wall is not None:
        data["wall"] = event.wall
    return data


# -- JSONL ---------------------------------------------------------------------
def to_jsonl(events: Iterable) -> str:
    """Render events as newline-delimited JSON (deterministic)."""
    lines = [
        json.dumps(event_to_dict(e), sort_keys=True, separators=(",", ":"))
        for e in events
    ]
    return "\n".join(lines) + ("\n" if lines else "")


def write_jsonl(events: Iterable, path) -> pathlib.Path:
    """Write the JSONL log to ``path``; returns the written path."""
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(to_jsonl(events), encoding="utf-8")
    return path


# -- text timeline -------------------------------------------------------------
def render_timeline(events: Iterable, *, indent_spans: bool = True) -> str:
    """Human-readable event listing, one event per line.

    Span begin/end pairs indent their interior so nesting reads like a
    call tree; pass ``indent_spans=False`` for a flat listing.
    """
    lines: List[str] = []
    depth = 0
    for event in events:
        if indent_spans and event.phase == "E" and depth > 0:
            depth -= 1
        pad = "  " * depth if indent_spans else ""
        lines.append(pad + event.describe())
        if indent_spans and event.phase == "B":
            depth += 1
    return "\n".join(lines)


# -- Chrome trace_event --------------------------------------------------------
def to_chrome_trace(events: Iterable, *, metrics=None) -> Dict[str, object]:
    """Build a Chrome ``trace_event`` document from events.

    One process (pid 1) with one thread lane per category, named via
    ``M``-phase metadata records.  Timestamps are simulation time in
    microseconds.  Counter samples ("C" events) become counter tracks.
    When a :class:`~repro.telemetry.metrics.MetricsRegistry` is given,
    its final values are attached as process metadata under
    ``otherData`` so the numbers travel with the trace.
    """
    events = list(events)
    categories = sorted({e.category for e in events})
    tids = {cat: i + 1 for i, cat in enumerate(categories)}

    records: List[Dict[str, object]] = []
    for cat in categories:
        records.append({
            "ph": "M", "pid": 1, "tid": tids[cat],
            "name": "thread_name", "args": {"name": cat},
        })
    for event in events:
        record: Dict[str, object] = {
            "pid": 1,
            "tid": tids[event.category],
            "ts": event.t * 1e6,
            "name": event.name,
            "cat": event.category,
        }
        args = {str(k): _json_safe(v) for k, v in event.attrs.items()}
        if event.phase == "C":
            record["ph"] = "C"
            record["args"] = {event.name: args.get("value", 0.0)}
        elif event.phase in ("B", "E"):
            record["ph"] = event.phase
            if event.phase == "B" and args:
                record["args"] = args
        else:
            record["ph"] = "i"
            record["s"] = "t"  # thread-scoped instant
            if args:
                record["args"] = args
        records.append(record)

    doc: Dict[str, object] = {
        "traceEvents": records,
        "displayTimeUnit": "ms",
    }
    if metrics is not None and len(metrics):
        doc["otherData"] = {"metrics": metrics.as_dict()}
    return doc


def write_chrome_trace(events: Iterable, path, *,
                       metrics=None) -> pathlib.Path:
    """Write a ``chrome://tracing``-loadable JSON file; returns the path."""
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    doc = to_chrome_trace(events, metrics=metrics)
    path.write_text(json.dumps(doc, sort_keys=True, indent=1) + "\n",
                    encoding="utf-8")
    return path

"""Telemetry: structured tracing, metrics and a flight recorder.

The observability layer of the simulator.  perfSONAR exists because
"the network is slow" is undiagnosable from the endpoints alone (§5);
this package exists because "the shape check failed" is undiagnosable
from a benchmark table alone.  Every instrumented subsystem — the
event engine, TCP connections, firewalls/IDS, fault injection, the
measurement mesh, transfer plans — emits through one
:class:`~repro.telemetry.tracer.Tracer`:

* :mod:`repro.telemetry.tracer` — :class:`Tracer` / :class:`NullTracer`
  and the :class:`TraceEvent` record;
* :mod:`repro.telemetry.recorder` — the bounded
  :class:`FlightRecorder` ring buffer (failure reports dump its tail);
* :mod:`repro.telemetry.metrics` — :class:`Counter` / :class:`Gauge` /
  :class:`Histogram` aggregated per component;
* :mod:`repro.telemetry.export` — JSONL, text timeline and Chrome
  ``trace_event`` exporters.

Quick start::

    from repro.scenario import Scenario
    from repro.telemetry import write_chrome_trace

    outcome = scenario.run(until=minutes(120), trace=True)
    write_chrome_trace(outcome.trace.events(), "scenario.trace.json",
                       metrics=outcome.trace.metrics)

The default everywhere is :data:`NULL_TRACER` — a shared no-op whose
cost in hot loops is a single predictable branch.
"""

from .export import (
    event_to_dict,
    render_timeline,
    to_chrome_trace,
    to_jsonl,
    write_chrome_trace,
    write_jsonl,
)
from .instrument import instrument_topology
from .metrics import Counter, Gauge, Histogram, MetricsRegistry
from .recorder import FlightRecorder
from .tracer import NULL_TRACER, NullTracer, TraceEvent, Tracer, ensure_tracer

__all__ = [
    "instrument_topology",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "TraceEvent",
    "ensure_tracer",
    "FlightRecorder",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "event_to_dict",
    "to_jsonl",
    "write_jsonl",
    "render_timeline",
    "to_chrome_trace",
    "write_chrome_trace",
]

"""Bounded flight recorder: the last N trace events, always on hand.

Aviation flight recorders exist because the interesting part of a
failure is the minutes *before* it.  Simulations are the same: when a
shape check fails or the engine raises
:class:`~repro.errors.SimulationError`, the question is "what did the
simulator just do?", and the answer is the tail of the event log.

:class:`FlightRecorder` is a ring buffer of
:class:`~repro.telemetry.tracer.TraceEvent` records.  With
``capacity=None`` it retains everything (what exporters want); with an
integer capacity it holds the most recent N events and counts what it
evicted, so a week-long scenario still fails with a useful tail.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Optional

from ..errors import TelemetryError

__all__ = ["FlightRecorder"]

#: Default retention when a bound is requested without a size.
DEFAULT_CAPACITY = 4096


class FlightRecorder:
    """Ring buffer over trace events.

    Parameters
    ----------
    capacity:
        Maximum retained events; ``None`` = unbounded.  Must be >= 0.
    """

    def __init__(self, capacity: Optional[int] = DEFAULT_CAPACITY) -> None:
        if capacity is not None:
            capacity = int(capacity)
            if capacity < 0:
                raise TelemetryError(
                    f"recorder capacity must be >= 0, got {capacity}")
        self.capacity = capacity
        self._ring: Deque = deque(maxlen=capacity)
        #: Events evicted from the ring so far (0 while unbounded).
        self.dropped = 0

    # -- writing --------------------------------------------------------------
    def append(self, event) -> None:
        if self.capacity is not None and len(self._ring) == self.capacity:
            self.dropped += 1
        self._ring.append(event)

    def clear(self) -> None:
        self._ring.clear()
        self.dropped = 0

    # -- reading --------------------------------------------------------------
    def events(self) -> List:
        """Retained events, oldest first."""
        return list(self._ring)

    def tail(self, n: int = 50) -> List:
        """The most recent ``n`` retained events, oldest first."""
        if n <= 0:
            return []
        ring = self._ring
        return list(ring)[-n:] if n < len(ring) else list(ring)

    def render_tail(self, n: int = 50) -> str:
        """Human-readable dump of the tail — what error reports attach."""
        from .export import render_timeline

        events = self.tail(n)
        if not events:
            return "flight recorder: no events recorded"
        omitted = (len(self._ring) - len(events)) + self.dropped
        header = (f"flight recorder: last {len(events)} of "
                  f"{len(self._ring) + self.dropped} events"
                  + (f" ({omitted} earlier omitted)" if omitted else ""))
        return header + "\n" + render_timeline(events)

    def __len__(self) -> int:
        return len(self._ring)

    def __iter__(self):
        return iter(self._ring)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        bound = "unbounded" if self.capacity is None else f"cap={self.capacity}"
        return (f"FlightRecorder({len(self._ring)} events, {bound}, "
                f"dropped={self.dropped})")

"""Execute an :class:`ExperimentSpec` and write its provenance.

:func:`run_experiment` is the one door every run shape goes through:

* **scenario** specs run as a single *grid point* through the same
  :class:`~repro.exec.runner.ParallelRunner` the sweeps use — which is
  what finally puts whole scenario runs behind the content-addressed
  :class:`~repro.exec.cache.ResultCache`: rerun the §2 timeline with an
  unchanged spec, seed and code version and the outcome is a disk read;
* **sweep** specs resolve their registered target and fan out with the
  context's workers/cache, per-point seeds derived from the spec seed;
* **bench** specs time their pinned scenarios via :mod:`repro.bench`
  (timings land in the manifest's run section — they are provenance,
  not identity).

Every run produces the same artifact set (``spec.json``,
``result.json``, ``manifest.json``) and a :class:`RunManifest` whose
digest is identical across serial, parallel and cache-warm executions
of the same spec — the property the golden-replay CI job gates on.
"""

from __future__ import annotations

import contextlib
import hashlib
import json
import time
from dataclasses import dataclass
from typing import Callable, Dict, Optional

from ..errors import ConfigurationError
from ..exec.seeding import canonical_json
from ..vectorize import SIM_BACKENDS, use_backend
from .context import RunContext
from .manifest import RunManifest, package_code_version
from .registry import sweep_target
from .spec import BenchSpec, ExperimentSpec, ScenarioSpec, SweepSpec

__all__ = ["RunResult", "register_spec_runner", "run_experiment"]


#: Executors for spec kinds defined outside this module.  Each maps a
#: kind to ``fn(spec, ctx, version) -> (payload, summary, value,
#: extra_artifacts)`` where ``extra_artifacts`` is a ``{filename: bytes}``
#: dict of *deterministic* files that join the manifest's digested
#: artifact set (e.g. a chaos campaign report).
_SPEC_RUNNERS: Dict[str, Callable] = {}

#: Lazily imported providers, mirroring the spec layer's lazy kinds.
_LAZY_RUNNERS: Dict[str, str] = {
    "campaign": "repro.chaos",
    "federation": "repro.federation",
}


def register_spec_runner(kind: str, fn: Callable) -> Callable:
    """Let :func:`run_experiment` execute an extension spec kind."""
    _SPEC_RUNNERS[kind] = fn
    return fn


def _spec_runner(kind: str) -> Optional[Callable]:
    fn = _SPEC_RUNNERS.get(kind)
    if fn is None and kind in _LAZY_RUNNERS:
        import importlib

        importlib.import_module(_LAZY_RUNNERS[kind])
        fn = _SPEC_RUNNERS.get(kind)
    return fn


@dataclass
class RunResult:
    """What a spec run handed back.

    ``payload`` is the JSON-able result record (what ``result.json``
    holds and what the result digest covers).  ``value`` is the richer
    in-process object when one exists — a
    :class:`~repro.analysis.sweep.SweepResult`, the bench suite
    payload, or (for *traced* scenario runs only) the
    :class:`~repro.scenario.ScenarioOutcome`.  Untraced scenario runs
    go through the exec engine — possibly a worker process or the
    cache — so only their JSON payload comes back.
    """

    spec: ExperimentSpec
    manifest: RunManifest
    payload: Dict[str, object]
    value: object = None
    artifact_dir: Optional[str] = None
    manifest_path: Optional[str] = None

    @property
    def cached(self) -> bool:
        """True when a scenario run was answered by the result cache."""
        return bool(self.manifest.stats.get("exec.cache.hits"))


def _outcome_payload(outcome) -> Dict[str, object]:
    """A ScenarioOutcome as a strict-JSON record (cacheable, hashable)."""
    first = outcome.first_alert()
    return {
        "duration_s": float(outcome.duration.s),
        "measurements": int(outcome.archive.count()),
        "alerts": len(outcome.alerts),
        "first_alert_s": None if first is None else float(first.time),
        "faults": len(outcome.faults),
        "detected": sum(1 for d in outcome.detection_delays.values()
                        if d is not None),
        "detection_delays_s": {
            str(idx): None if delay is None else float(delay)
            for idx, delay in sorted(outcome.detection_delays.items())
        },
    }


def _scenario_point(spec: str,
                    engine: Optional[str] = None) -> Dict[str, object]:
    """Run one scenario spec end to end; module-level so the exec
    engine can fingerprint, cache and (in principle) ship it to a pool
    exactly like any sweep target.

    ``engine`` is only passed (and thus only joins the cache identity)
    for the *approximate* tier: exact backends are bit-identical by
    contract, so their runs must keep sharing cache entries, while a
    fluid/hybrid result may differ and can never be served to — or
    from — a per-flow run.  Passing it explicitly also applies the
    engine inside pool workers, which a parent-process default would
    not survive under spawn.
    """
    from ..scenario import Scenario
    from ..units import seconds
    from ..vectorize import use_backend

    parsed = ExperimentSpec.from_json(spec)
    scenario = Scenario.from_spec(parsed)
    if engine is None:
        outcome = scenario.run(until=seconds(parsed.until_s))
    else:
        with use_backend(engine):
            outcome = scenario.run(until=seconds(parsed.until_s))
    return _outcome_payload(outcome)


def _run_scenario(spec: ScenarioSpec, ctx: RunContext, version: str):
    if ctx.tracer.enabled:
        # A cache hit could not replay trace events, so traced runs
        # execute in-process and skip the cache entirely.
        from ..scenario import Scenario
        from ..units import seconds

        scenario = Scenario.from_spec(spec)
        outcome = scenario.run(until=seconds(spec.until_s),
                               trace=ctx.tracer)
        payload = _outcome_payload(outcome)
        return payload, payload, outcome
    params: Dict[str, object] = {"spec": spec.to_json()}
    engine = ctx.resolved_backend()
    if engine not in SIM_BACKENDS:
        params["engine"] = engine
    runner = ctx.runner(code_version=version)
    outcomes = runner.map(_scenario_point, [params])
    payload = outcomes[0].value
    return payload, payload, None


def _run_sweep(spec: SweepSpec, ctx: RunContext, version: str):
    from ..analysis.sweep import sweep

    target = sweep_target(spec.target)
    if spec.seeded and not target.seeded:
        raise ConfigurationError(
            f"spec {spec.name!r} asks for per-point seeds but target "
            f"{spec.target!r} is registered without a seed parameter")
    # Approximate engines fork the sweep cache identity via the version
    # tag (sweep targets take arbitrary grids, so there is no single
    # params slot to carry the engine the way scenarios do); exact-tier
    # runs keep sharing entries by the bit-identity contract.
    engine = ctx.resolved_backend()
    if engine not in SIM_BACKENDS:
        version = f"{version}+{engine}"
    result = sweep(
        target.fn,
        spec.grid_mapping(),
        value_label=spec.value_label,
        on_error=spec.on_error,
        workers=ctx.workers,
        cache=ctx.cache,
        base_seed=spec.seed if spec.seeded else None,
        code_version=version,
        metrics=ctx.metrics,
        on_point=ctx.point_observer(),
    )
    payload = {
        "param_names": list(result.param_names),
        "value_label": result.value_label,
        "records": [
            {"params": dict(r.params), "value": r.value, "error": r.error}
            for r in result.records
        ],
    }
    summary = {
        "target": spec.target,
        "points": len(result.records),
        "ok": sum(1 for r in result.records if r.ok),
        "failed": sum(1 for r in result.records if not r.ok),
    }
    return payload, summary, result


def _run_bench(spec: BenchSpec, ctx: RunContext):
    from .. import bench

    suite = bench.run_suite_from_spec(spec)
    payload = {
        "scenarios": sorted(suite["results"]),
        "repeats": spec.repeats,
        "quick": spec.quick,
        "bench_schema": suite["schema"],
    }
    summary = {"scenarios": len(suite["results"]), "repeats": spec.repeats,
               "quick": spec.quick}
    timings = {name: float(seconds)
               for name, seconds in sorted(suite["results"].items())}
    timings["calibration"] = float(suite["calibration"])
    return payload, summary, suite, timings


def _pretty_bytes(data: Dict[str, object]) -> bytes:
    text = json.dumps(data, indent=2, sort_keys=True) + "\n"
    return text.encode("utf-8")


def _sha256(data: bytes) -> str:
    return hashlib.sha256(data).hexdigest()


def run_experiment(spec: ExperimentSpec,
                   context: Optional[RunContext] = None, *,
                   persist: bool = True) -> RunResult:
    """Run ``spec`` through ``context`` and record its manifest.

    Parameters
    ----------
    spec:
        Any :class:`~repro.experiment.spec.ExperimentSpec` kind.
    context:
        Execution knobs; defaults to a serial, uncached, untraced
        :class:`RunContext` (the manifest digest is the same either
        way — that is the point).
    persist:
        Write ``spec.json`` / ``result.json`` / ``manifest.json`` into
        the context's artifact directory.  Artifact *hashes* are
        computed from the exact bytes regardless, so a non-persisted
        run still produces the identical manifest digest.
    """
    ctx = context if context is not None else RunContext()
    ctx.bind(spec.seed)
    version = package_code_version()
    stats_before = ctx.stats()
    started = time.perf_counter()

    value: object = None
    timings: Dict[str, float] = {}
    extra_artifacts: Dict[str, bytes] = {}
    # An explicit context backend becomes the process default for the
    # duration of the run, so every kernel the spec reaches — including
    # traced in-process scenarios and serial sweep points — resolves it.
    with contextlib.ExitStack() as stack:
        if ctx.backend is not None:
            stack.enter_context(use_backend(ctx.backend))
        if isinstance(spec, ScenarioSpec):
            payload, summary, value = _run_scenario(spec, ctx, version)
        elif isinstance(spec, SweepSpec):
            payload, summary, value = _run_sweep(spec, ctx, version)
        elif isinstance(spec, BenchSpec):
            payload, summary, value, timings = _run_bench(spec, ctx)
        else:
            runner_fn = _spec_runner(spec.kind)
            if runner_fn is None:
                raise ConfigurationError(
                    f"cannot execute spec kind {type(spec).__name__!r}")
            payload, summary, value, extra_artifacts = runner_fn(
                spec, ctx, version)
    timings["elapsed_s"] = round(time.perf_counter() - started, 6)

    spec_bytes = _pretty_bytes(spec.to_dict())
    result_bytes = _pretty_bytes(payload)
    stats_after = ctx.stats()
    delta = {k: v - stats_before.get(k, 0) for k, v in stats_after.items()
             if v - stats_before.get(k, 0)}
    artifacts = {"spec.json": _sha256(spec_bytes),
                 "result.json": _sha256(result_bytes)}
    for name, data in sorted(extra_artifacts.items()):
        artifacts[name] = _sha256(data)
    manifest = RunManifest(
        kind=spec.kind,
        name=spec.name,
        spec_digest=spec.digest(),
        code_version=version,
        seed=spec.seed,
        result_digest=_sha256(
            canonical_json(payload).encode("utf-8")),
        summary=summary,
        artifacts=artifacts,
        timings=timings,
        stats=delta,
        workers=ctx.workers,
        backend=ctx.resolved_backend(),
    )

    artifact_dir = None
    manifest_path = None
    if persist:
        out_dir = ctx.artifact_dir(spec.name)
        (out_dir / "spec.json").write_bytes(spec_bytes)
        (out_dir / "result.json").write_bytes(result_bytes)
        for name, data in sorted(extra_artifacts.items()):
            (out_dir / name).write_bytes(data)
        if isinstance(spec, BenchSpec):
            suite_bytes = _pretty_bytes(value)
            (out_dir / "timings.json").write_bytes(suite_bytes)
            manifest.run_artifacts["timings.json"] = _sha256(suite_bytes)
        manifest_path = manifest.write(out_dir / "manifest.json")
        artifact_dir = str(out_dir)

    return RunResult(spec=spec, manifest=manifest, payload=payload,
                     value=value, artifact_dir=artifact_dir,
                     manifest_path=manifest_path)

"""Name registries that turn pure-data specs into live objects.

A spec file can only carry *names* — ``"design": "simple-science-dmz"``,
``"fault": "linecard"``, ``"target": "fig1_tcp"`` — so this module owns
the authoritative name→factory maps the whole system shares:

* :data:`DESIGNS` — the paper's notional designs (also the source of
  truth for the CLI's ``designs``/``audit``/``transfer`` commands);
* :data:`FAULTS` — the §3.3 soft-failure library, with JSON-scalar
  parameter surfaces (units are applied here, not in the spec);
* :data:`SWEEP_TARGETS` — functions a :class:`~repro.experiment.spec.SweepSpec`
  may sweep.  Targets must be module-level (picklable: ``repro run
  --workers N`` ships them to a process pool) and must accept only
  JSON-scalar keyword arguments so grid points round-trip through spec
  files and the result cache.

Register your own with :func:`register_sweep_target` before running a
spec that names it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Mapping

from ..errors import ConfigurationError

__all__ = [
    "DESIGNS",
    "FAULTS",
    "SWEEP_TARGETS",
    "SweepTarget",
    "build_design",
    "build_fault",
    "register_sweep_target",
    "sweep_target",
    "cu_host_throughput",
    "detection_delay_point",
    "fig1_tcp_point",
    "mathis_grid_point",
]


# -- designs ------------------------------------------------------------------

def _designs() -> Dict[str, Callable[[], object]]:
    from ..core import (
        big_data_site,
        campus_with_rcnet,
        general_purpose_campus,
        simple_science_dmz,
        supercomputer_center,
    )
    def _federated_wan(**kwargs):
        # Imported on build, not on registry import, so listing designs
        # never drags the federation package in as a side effect.
        from ..federation.design import federated_wan_design
        return federated_wan_design(**kwargs)

    return {
        "general-purpose-campus": general_purpose_campus,
        "simple-science-dmz": simple_science_dmz,
        "supercomputer-center": supercomputer_center,
        "big-data-site": big_data_site,
        "colorado-campus": campus_with_rcnet,
        "federated-wan": _federated_wan,
    }


#: Builders for the paper's notional designs (Figures 3–7 plus the §2
#: baseline), keyed by the names spec files and the CLI use.
DESIGNS: Dict[str, Callable[[], object]] = _designs()


def build_design(name: str):
    """Construct the named design bundle, or raise with the known names."""
    try:
        return DESIGNS[name]()
    except KeyError:
        known = ", ".join(sorted(DESIGNS))
        raise ConfigurationError(
            f"unknown design {name!r}; known designs: {known}")


# -- faults -------------------------------------------------------------------

def _linecard(loss_rate: float = 1.0 / 22_000.0):
    from ..devices.faults import FailingLineCard
    return FailingLineCard(loss_rate=float(loss_rate))


def _optics(bit_error_rate: float = 1e-12, packet_bytes: int = 9000):
    from ..devices.faults import DirtyOptics
    from ..units import bytes_
    return DirtyOptics(bit_error_rate=float(bit_error_rate),
                       packet_size=bytes_(int(packet_bytes)))


def _cpu(cpu_mbps: float = 300.0, added_latency_ms: float = 2.0):
    from ..devices.faults import ManagementCpuForwarding
    from ..units import Mbps, ms
    return ManagementCpuForwarding(cpu_rate=Mbps(float(cpu_mbps)),
                                   added_latency=ms(float(added_latency_ms)))


def _duplex(loss_rate: float = 0.02, capacity_mbps: float = 100.0):
    from ..devices.faults import DuplexMismatch
    from ..units import Mbps
    return DuplexMismatch(loss_rate=float(loss_rate),
                          capacity=Mbps(float(capacity_mbps)))


def _storage(stall_mbps: float = 50.0, added_latency_ms: float = 10.0):
    from ..devices.faults import StorageStall
    from ..units import Mbps, ms
    return StorageStall(stall_rate=Mbps(float(stall_mbps)),
                        added_latency=ms(float(added_latency_ms)))


def _cachebug():
    from ..devices.faults import CacheAccountingBug
    return CacheAccountingBug()


#: Soft-failure builders keyed by the spec-file fault kinds.  Builders
#: take only JSON scalars; unit wrapping happens inside.
FAULTS: Dict[str, Callable[..., object]] = {
    "linecard": _linecard,
    "optics": _optics,
    "cpu": _cpu,
    "duplex": _duplex,
    "storage": _storage,
    "cachebug": _cachebug,
}


def build_fault(kind: str, params: Mapping[str, object] = ()):
    """Construct the named fault with its spec parameters."""
    try:
        builder = FAULTS[kind]
    except KeyError:
        known = ", ".join(sorted(FAULTS))
        raise ConfigurationError(
            f"unknown fault kind {kind!r}; known kinds: {known}")
    try:
        return builder(**dict(params))
    except TypeError as exc:
        raise ConfigurationError(
            f"bad parameters for fault {kind!r}: {exc}")


# -- sweep targets ------------------------------------------------------------

@dataclass(frozen=True)
class SweepTarget:
    """A function a SweepSpec may name, plus how to drive it."""

    name: str
    fn: Callable[..., object]
    description: str = ""
    #: True when the target takes a per-point ``seed`` keyword; the
    #: runner then derives one from the spec seed for every grid point.
    seeded: bool = False


SWEEP_TARGETS: Dict[str, SweepTarget] = {}


def register_sweep_target(name: str, fn: Callable[..., object], *,
                          description: str = "",
                          seeded: bool = False) -> SweepTarget:
    """Make ``fn`` sweepable by name from spec files and the CLI."""
    target = SweepTarget(name=name, fn=fn, description=description,
                         seeded=seeded)
    SWEEP_TARGETS[name] = target
    return target


def sweep_target(name: str) -> SweepTarget:
    try:
        return SWEEP_TARGETS[name]
    except KeyError:
        known = ", ".join(sorted(SWEEP_TARGETS))
        raise ConfigurationError(
            f"unknown sweep target {name!r}; known targets: {known}")


def mathis_grid_point(rtt_ms: float, loss: float, mss_bytes: int) -> float:
    """Mathis ceiling (Eq 1) in Gbps for one (RTT, loss, MSS) point.

    The Figure 1 analytic line, and the CLI's ``repro sweep mathis``
    workhorse.
    """
    from ..tcp.mathis import mathis_throughput
    from ..units import bytes_, seconds
    rate = mathis_throughput(bytes_(int(mss_bytes)),
                             seconds(float(rtt_ms) / 1e3), float(loss))
    return round(rate.bps / 1e9, 6)


def fig1_tcp_point(algorithm: str, rtt_ms: float, loss: float,
                   rep: int, max_rounds: int = 200_000,
                   duration_s: float = 30.0,
                   window_mb: int = 512) -> float:
    """Measured fluid-TCP throughput (bps) for one Figure 1 grid point.

    10 Gbps hosts, 9 KB MTU, tuned windows — the paper's Figure 1
    working point.  ``rep`` seeds the loss process so repeated
    measurements at the same (algorithm, RTT, loss) are independent;
    ``loss == 0`` runs the deterministic loss-free model.
    """
    from dataclasses import replace

    import numpy as np

    from ..netsim import Link, Topology
    from ..tcp import TcpConnection, algorithm_by_name
    from ..units import Gbps, MB, bytes_, ms, seconds

    topo = Topology("fig1")
    topo.add_host("a", nic_rate=Gbps(10))
    topo.add_host("b", nic_rate=Gbps(10))
    topo.connect("a", "b", Link(rate=Gbps(10), delay=ms(float(rtt_ms) / 2),
                                mtu=bytes_(9000),
                                loss_probability=float(loss)))
    profile = topo.profile_between("a", "b")
    profile = replace(
        profile, flow=profile.flow.with_(max_receive_window=MB(window_mb)))
    rng = np.random.default_rng(int(rep)) if loss > 0 else None
    conn = TcpConnection(profile, algorithm=algorithm_by_name(algorithm),
                         rng=rng)
    return conn.measure(seconds(float(duration_s)),
                        max_rounds=int(max_rounds)).mean_throughput.bps


def detection_delay_point(cadence_min: float, probes: int,
                          rep: int) -> float:
    """Minutes for the mesh to catch the §2 line card, or None if missed.

    One point of the monitoring-cadence ablation: a simple Science DMZ,
    OWAMP every ``cadence_min`` minutes at ``probes`` packets per
    session, the 1/22000 line card injected at T+30 min, an 8.5-hour
    watch.
    """
    from ..scenario import Scenario
    from ..perfsonar.mesh import MeshConfig
    from ..units import minutes

    bundle = build_design("simple-science-dmz")
    scenario = (
        Scenario(bundle, seed=int(rep))
        .with_mesh(
            ["dmz-perfsonar", "remote-dtn"],
            config=MeshConfig(owamp_interval=minutes(float(cadence_min)),
                              bwctl_interval=minutes(60),
                              owamp_packets=int(probes)))
        .inject("border", _linecard(), at=minutes(30))
    )
    outcome = scenario.run(until=minutes(30 + 8 * 60))
    delay = outcome.detection_delays[0]
    return None if delay is None else round(delay / 60.0, 1)


def cu_host_throughput(fixed_fabric: bool, rep: int) -> float:
    """Per-host TCP throughput (bps) through the CU-Boulder fabric.

    The §6.1 before/after measurement: nine 1G CMS hosts offering ~5.4
    Gbps into the 10G uplink, fabric either buggy (silent store-and-
    forward flip) or vendor-fixed, one host's H-TCP throughput to the
    remote site measured under that load.
    """
    import numpy as np

    from ..netsim.packetsim import BurstySource
    from ..tcp import TcpConnection, algorithm_by_name
    from ..units import Gbps, KB, Mbps, seconds

    bundle = DESIGNS["colorado-campus"](fixed_fabric=bool(fixed_fabric))
    sources = [BurstySource(name=f"cms{i + 1}", line_rate=Gbps(1),
                            mean_rate=Mbps(600), burst_size=KB(256))
               for i in range(9)]
    fabric = bundle.extras["fabric"]
    fabric.set_offered_load(sources)
    profile = bundle.topology.profile_between(
        "cms1", bundle.remote_dtn, **bundle.science_policy)
    conn = TcpConnection(profile, algorithm=algorithm_by_name("htcp"),
                         rng=np.random.default_rng(int(rep)))
    return conn.measure(seconds(20), max_rounds=100_000).mean_throughput.bps


register_sweep_target(
    "mathis", mathis_grid_point,
    description="Mathis Eq 1 ceiling (Gbps) over RTT x loss x MSS")
register_sweep_target(
    "fig1_tcp", fig1_tcp_point,
    description="measured fluid-TCP throughput (bps), Figure 1 grid")
register_sweep_target(
    "detection_delay", detection_delay_point,
    description="minutes to detect the §2 line card vs probe cadence")
def federation_hit_rate_point(cache_gb: float, alpha: float,
                              seed: int = 0) -> float:
    """Federation-wide cache hit rate at one (cache size, Zipf) point.

    Thin wrapper so the registry stays import-light: the federation
    package loads only when a sweep actually names this target.
    """
    from ..federation.runner import federation_hit_rate
    return federation_hit_rate(float(cache_gb), float(alpha),
                               seed=int(seed))


register_sweep_target(
    "cu_host_throughput", cu_host_throughput,
    description="per-host TCP rate (bps) through the CU fan-in fabric")
register_sweep_target(
    "federation_hit_rate", federation_hit_rate_point,
    description="federation cache hit rate over cache size x Zipf alpha",
    seeded=True)

"""RunManifest: the provenance record written on every experiment run.

A manifest answers, for a run that happened, the questions a referee
would ask: *which* experiment (spec digest), *which code* (a version
tag hashed over the package source), *which seed*, *what came out*
(result digest + outcome summary), *what files were produced*
(per-artifact sha256), and *how long it took*.

The manifest splits into a **deterministic core** and a **run section**.
The core — everything above except timings/counters — is a pure
function of ``(spec, code, seed)``; :meth:`RunManifest.digest` hashes
exactly the core, so serial, parallel and cache-warm runs of the same
spec produce the *same digest*, which is what the golden-replay CI job
gates on.  Wall-clock timings, pool size and cache hit/miss counters
are real provenance too, but they legitimately differ run to run, so
they live in the ``run`` section outside the digest.
"""

from __future__ import annotations

import hashlib
import json
import os
import pathlib
from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional

from ..errors import ConfigurationError
from ..exec.seeding import canonical_json

__all__ = ["RunManifest", "package_code_version", "file_sha256"]

#: Bumped when the manifest layout changes incompatibly.
MANIFEST_SCHEMA_VERSION = 1

_CODE_VERSION: Optional[str] = None


def package_code_version() -> str:
    """A short tag that changes when any ``repro`` source file changes.

    sha256 over every ``.py`` file under the installed package, in
    sorted relative-path order.  Used as the manifest's code-version
    tag *and* as the result cache's version component during spec runs,
    so a cache entry can never outlive the code that produced it.
    Computed once per process.
    """
    global _CODE_VERSION
    if _CODE_VERSION is None:
        root = pathlib.Path(__file__).resolve().parent.parent
        digest = hashlib.sha256()
        for path in sorted(root.rglob("*.py")):
            digest.update(str(path.relative_to(root)).encode("utf-8"))
            digest.update(b"\0")
            digest.update(path.read_bytes())
            digest.update(b"\0")
        _CODE_VERSION = digest.hexdigest()[:16]
    return _CODE_VERSION


def file_sha256(path: os.PathLike | str) -> str:
    digest = hashlib.sha256()
    with open(path, "rb") as handle:
        for chunk in iter(lambda: handle.read(1 << 16), b""):
            digest.update(chunk)
    return digest.hexdigest()


@dataclass
class RunManifest:
    """Provenance of one experiment run (see module docs for the split).

    ``summary`` is the run's deterministic outcome summary (alert
    counts, detection delays, best grid point, ...); ``artifacts`` maps
    artifact file names to their sha256.  ``timings``/``stats``/
    ``workers`` are the non-deterministic run section.
    """

    kind: str
    name: str
    spec_digest: str
    code_version: str
    seed: int
    result_digest: str
    summary: Dict[str, object] = field(default_factory=dict)
    artifacts: Dict[str, str] = field(default_factory=dict)
    timings: Dict[str, float] = field(default_factory=dict)
    stats: Dict[str, int] = field(default_factory=dict)
    workers: int = 1
    #: Resolved simulation engine the run executed on ("numpy",
    #: "python", "fluid", "hybrid").  Run section, not core: the exact
    #: tier is bit-identical by contract, so the digest must not fork on
    #: it, and approximate engines are kept honest by the cache identity
    #: instead (see ``repro.experiment.runner``).  None on manifests
    #: written before the engine tier existed.
    backend: Optional[str] = None
    #: Artifacts whose bytes legitimately vary run-to-run (e.g. bench
    #: timing payloads); hashed for the record but outside the digest.
    run_artifacts: Dict[str, str] = field(default_factory=dict)

    # -- deterministic core ---------------------------------------------------
    def core(self) -> Dict[str, object]:
        """The digest-covered subset: a pure function of spec+code+seed."""
        return {
            "schema": MANIFEST_SCHEMA_VERSION,
            "kind": self.kind,
            "name": self.name,
            "spec_digest": self.spec_digest,
            "code_version": self.code_version,
            "seed": self.seed,
            "result_digest": self.result_digest,
            "summary": self.summary,
            "artifacts": self.artifacts,
        }

    def core_json(self) -> str:
        """Canonical JSON of the core — byte-identical across reruns."""
        return canonical_json(self.core())

    def digest(self) -> str:
        """sha256 of the core; what golden replays compare."""
        return hashlib.sha256(self.core_json().encode("utf-8")).hexdigest()

    # -- full serialization ---------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        out = self.core()
        out["digest"] = self.digest()
        out["run"] = {
            "timings": self.timings,
            "stats": self.stats,
            "workers": self.workers,
            "backend": self.backend,
            "artifacts": self.run_artifacts,
        }
        return out

    def write(self, path: os.PathLike | str) -> str:
        """Write the full manifest as human-diffable JSON."""
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")
        return os.fspath(path)

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "RunManifest":
        if data.get("schema") != MANIFEST_SCHEMA_VERSION:
            raise ConfigurationError(
                f"manifest has schema {data.get('schema')!r}; this "
                f"library speaks schema {MANIFEST_SCHEMA_VERSION}")
        run = data.get("run") or {}
        manifest = cls(
            kind=str(data["kind"]),
            name=str(data["name"]),
            spec_digest=str(data["spec_digest"]),
            code_version=str(data["code_version"]),
            seed=int(data["seed"]),
            result_digest=str(data["result_digest"]),
            summary=dict(data.get("summary") or {}),
            artifacts=dict(data.get("artifacts") or {}),
            timings=dict(run.get("timings") or {}),
            stats=dict(run.get("stats") or {}),
            workers=int(run.get("workers", 1)),
            backend=(str(run["backend"])
                     if run.get("backend") is not None else None),
            run_artifacts=dict(run.get("artifacts") or {}),
        )
        recorded = data.get("digest")
        if recorded is not None and recorded != manifest.digest():
            raise ConfigurationError(
                f"manifest digest mismatch: file says {recorded!r}, "
                f"core hashes to {manifest.digest()!r} — the file was "
                "edited after it was written")
        return manifest

    @classmethod
    def from_file(cls, path: os.PathLike | str) -> "RunManifest":
        try:
            with open(path, "r", encoding="utf-8") as handle:
                data = json.load(handle)
        except OSError as exc:
            raise ConfigurationError(f"cannot read manifest {path!r}: {exc}")
        except ValueError as exc:
            raise ConfigurationError(
                f"manifest {path!r} is not valid JSON: {exc}")
        return cls.from_dict(data)

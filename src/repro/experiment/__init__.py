"""Experiments as data: specs, run contexts, and provenance manifests.

Any paper figure is one portable JSON file plus one command.  The three
historic run shapes — :class:`~repro.scenario.Scenario` timelines,
:func:`repro.analysis.sweep.sweep` grids, and :mod:`repro.bench` timing
suites — all construct themselves *from* a serializable
:class:`ExperimentSpec` and execute *through* one :class:`RunContext`,
so the exec layer's process pool, content-addressed result cache and
telemetry counters apply uniformly instead of only to sweeps:

* :mod:`repro.experiment.spec` — :class:`ExperimentSpec` and its kinds
  (``scenario`` / ``sweep`` / ``bench``) with lossless JSON round-trip;
* :mod:`repro.experiment.registry` — the name→factory maps specs refer
  to (designs, faults, sweep targets);
* :mod:`repro.experiment.context` — :class:`RunContext`: workers,
  cache, tracer, artifact directory, and the derive-seeded seed tree;
* :mod:`repro.experiment.manifest` — :class:`RunManifest`: spec digest,
  code-version tag, per-artifact hashes, timings, outcome summary;
* :mod:`repro.experiment.runner` — :func:`run_experiment`.

Quick start::

    from repro.experiment import ExperimentSpec, RunContext, run_experiment

    spec = ExperimentSpec.from_file("specs/linecard_softfail.json")
    result = run_experiment(spec, RunContext(cache=".repro-cache"))
    print(result.manifest.digest())     # same every run, warm or cold

or, without writing Python: ``python -m repro.cli run <spec.json>``.
See ``docs/experiments.md``.
"""

from .context import RunContext
from .manifest import RunManifest, file_sha256, package_code_version
from .registry import (
    DESIGNS,
    FAULTS,
    SWEEP_TARGETS,
    SweepTarget,
    build_design,
    build_fault,
    register_sweep_target,
    sweep_target,
)
from .runner import RunResult, register_spec_runner, run_experiment
from .spec import (
    SPEC_SCHEMA_VERSION,
    AlertRuleSpec,
    BenchSpec,
    ExperimentSpec,
    FaultSpec,
    LinkCutSpec,
    MeshSpec,
    ScenarioSpec,
    SweepSpec,
    lazy_spec_kinds,
    load_spec,
    register_spec_kind,
    registered_spec_kinds,
    spec_kinds,
)

__all__ = [
    "ExperimentSpec",
    "ScenarioSpec",
    "SweepSpec",
    "BenchSpec",
    "MeshSpec",
    "FaultSpec",
    "LinkCutSpec",
    "AlertRuleSpec",
    "SPEC_SCHEMA_VERSION",
    "lazy_spec_kinds",
    "load_spec",
    "register_spec_kind",
    "register_spec_runner",
    "registered_spec_kinds",
    "spec_kinds",
    "RunContext",
    "RunResult",
    "RunManifest",
    "run_experiment",
    "package_code_version",
    "file_sha256",
    "DESIGNS",
    "FAULTS",
    "SWEEP_TARGETS",
    "SweepTarget",
    "build_design",
    "build_fault",
    "register_sweep_target",
    "sweep_target",
]
